"""API quality gates: documentation coverage and import hygiene."""

import importlib
import inspect
import pkgutil
import types

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.mobility",
    "repro.radio",
    "repro.clustering",
    "repro.hierarchy",
    "repro.routing",
    "repro.gls",
    "repro.core",
    "repro.sim",
    "repro.service",
    "repro.analysis",
    "repro.experiments",
    "repro.app",
    "repro.viz",
]


def iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                yield importlib.import_module(f"{pkg_name}.{info.name}")


class TestDocumentation:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()
        ]
        assert not undocumented, undocumented

    def test_public_symbols_documented(self):
        """Everything exported via __all__ carries a docstring."""
        missing = []
        for mod in iter_modules():
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name, None)
                if obj is None or isinstance(obj, types.ModuleType):
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (inspect.getdoc(obj) or "").strip():
                        missing.append(f"{mod.__name__}.{name}")
        assert not missing, missing

    def test_public_methods_documented(self):
        """Public methods of exported classes carry docstrings."""
        missing = []
        for mod in iter_modules():
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name, None)
                if obj is None or not inspect.isclass(obj):
                    continue
                for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                    if meth_name.startswith("_"):
                        continue
                    if meth.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    if not (inspect.getdoc(meth) or "").strip():
                        missing.append(f"{mod.__name__}.{name}.{meth_name}")
        assert not missing, missing


class TestExports:
    def test_all_lists_resolve(self):
        for mod in iter_modules():
            if mod.__name__ == "repro":
                continue  # the root lists subpackages, loaded lazily
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{mod.__name__}.__all__ lists {name}"

    def test_subpackage_list_accurate(self):
        for name in repro.__all__:
            importlib.import_module(f"repro.{name}")


class TestGoldenDeterminism:
    """Seeded regression pin: if refactors change simulation semantics,
    this fails loudly so EXPERIMENTS.md numbers get re-derived."""

    def test_reference_run_metrics(self):
        from repro.sim import Scenario, run_scenario

        res = run_scenario(
            Scenario(n=100, steps=10, warmup=5, speed=1.0, seed=2024,
                     hop_mode="euclidean", max_levels=3),
            hop_sample_every=10_000,
        )
        # Pinned from the reference implementation; loose enough for
        # benign float reorderings, tight enough to catch semantic drift.
        assert res.f0 == pytest.approx(1.530, rel=0.02)
        assert res.phi == pytest.approx(0.456, rel=0.05)
        assert res.gamma == pytest.approx(1.726, rel=0.05)
