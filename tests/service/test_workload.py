"""Tests for the open-loop workload generator: determinism, process
shapes, and the request-stream invariants the dispatcher relies on."""

import numpy as np
import pytest

from repro.service import WorkloadGenerator
from repro.service.workload import (
    DIURNAL_AMPLITUDE,
    DIURNAL_PERIOD,
    Request,
)


def _drain(gen, steps=20, dt=1.0):
    out = []
    for s in range(steps):
        out.extend(gen.step(s, s * dt))
    return out


def _gen(seed=0, **over):
    kw = dict(n=50, rate=20.0, process="poisson", dt=1.0,
              update_fraction=0.2, rng=np.random.default_rng(seed))
    kw.update(over)
    return WorkloadGenerator(**kw)


class TestValidation:
    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="arrival process"):
            _gen(process="bursty")

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            _gen(rate=-1.0)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = _drain(_gen(seed=42))
        b = _drain(_gen(seed=42))
        assert a == b

    def test_different_seed_different_stream(self):
        assert _drain(_gen(seed=1)) != _drain(_gen(seed=2))

    def test_hotspot_and_diurnal_deterministic(self):
        for process in ("hotspot", "diurnal"):
            assert _drain(_gen(seed=9, process=process)) == \
                _drain(_gen(seed=9, process=process))


class TestStreamInvariants:
    def test_arrivals_sorted_and_indexed(self):
        reqs = _drain(_gen(seed=3))
        assert [r.index for r in reqs] == list(range(len(reqs)))
        assert all(isinstance(r, Request) for r in reqs)
        times = [r.t for r in reqs]
        assert times == sorted(times)

    def test_arrival_times_fall_inside_their_step(self):
        gen = _gen(seed=3, dt=0.5)
        for s in range(10):
            for r in gen.step(s, s * 0.5):
                assert s * 0.5 <= r.t < (s + 1) * 0.5
                assert r.step == s

    def test_lookup_targets_never_self(self):
        for process in ("poisson", "hotspot"):
            for r in _drain(_gen(seed=5, process=process, n=4)):
                if r.kind == "lookup":
                    assert r.target != r.source
                else:
                    assert r.target == r.source

    def test_update_fraction_extremes(self):
        assert all(r.kind == "lookup"
                   for r in _drain(_gen(seed=7, update_fraction=0.0)))
        assert all(r.kind == "update"
                   for r in _drain(_gen(seed=7, update_fraction=1.0)))

    def test_mean_count_tracks_rate(self):
        lo = len(_drain(_gen(seed=11, rate=5.0), steps=40))
        hi = len(_drain(_gen(seed=11, rate=50.0), steps=40))
        assert 100 < lo < 300  # ~200 expected
        assert 1600 < hi < 2400  # ~2000 expected

    def test_zero_rate_generates_nothing(self):
        assert _drain(_gen(rate=0.0)) == []


class TestProcesses:
    def test_diurnal_rate_modulates_around_mean(self):
        gen = _gen(process="diurnal", rate=40.0)
        peak_t = DIURNAL_PERIOD / 4.0
        trough_t = 3.0 * DIURNAL_PERIOD / 4.0
        assert gen.rate_at(peak_t) == pytest.approx(
            40.0 * (1.0 + DIURNAL_AMPLITUDE))
        assert gen.rate_at(trough_t) == pytest.approx(
            40.0 * (1.0 - DIURNAL_AMPLITUDE))
        # One full period averages back to the configured mean.
        ts = np.linspace(0.0, DIURNAL_PERIOD, 1000, endpoint=False)
        assert np.mean([gen.rate_at(t) for t in ts]) == pytest.approx(
            40.0, rel=1e-3)

    def test_poisson_rate_is_flat(self):
        gen = _gen(process="poisson", rate=40.0)
        assert {gen.rate_at(t) for t in (0.0, 7.3, 100.0)} == {40.0}

    def test_hotspot_targets_are_skewed(self):
        """Zipf targets concentrate: the most popular target of the
        hotspot stream must soak up far more lookups than the most
        popular target of the uniform stream."""

        def top_share(process):
            reqs = [r for r in _drain(_gen(seed=13, process=process,
                                           rate=100.0, n=200), steps=30)
                    if r.kind == "lookup"]
            counts = np.bincount([r.target for r in reqs], minlength=200)
            return counts.max() / counts.sum()

        assert top_share("hotspot") > 3.0 * top_share("poisson")
