"""Tests for the service SLO report: percentiles, derived rates, and
the flat metrics view manifests consume."""

import math

import numpy as np
import pytest

from repro.service import ServiceReport


def _report(**over):
    kw = dict(duration=10.0, offered=8, shed=1, dropped=1,
              lookups=4, updates=2, direct_hits=3, fallback_hits=1,
              failed=0, packets=40,
              latencies=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
              waits=[0.0, 0.0, 0.1, 0.1, 0.2, 0.2],
              queue_depth_series=[0, 2, 1, 0])
    kw.update(over)
    return ServiceReport(**kw)


class TestDerived:
    def test_counts(self):
        rep = _report()
        assert rep.served == 6
        assert rep.admitted == 7
        assert rep.throughput == pytest.approx(0.6)
        assert rep.peak_queue_depth == 2

    def test_percentiles_match_numpy(self):
        rep = _report()
        lats = np.asarray(rep.latencies)
        assert rep.p50 == pytest.approx(np.percentile(lats, 50))
        assert rep.p95 == pytest.approx(np.percentile(lats, 95))
        assert rep.p99 == pytest.approx(np.percentile(lats, 99))
        assert rep.mean_latency == pytest.approx(0.35)
        assert rep.mean_wait == pytest.approx(0.1)

    def test_success_rate(self):
        assert _report().success_rate == 1.0
        assert _report(failed=4).success_rate == 0.5
        # No served lookups at all: vacuous success, not a zero.
        assert _report(direct_hits=0, fallback_hits=0).success_rate == 1.0


class TestIdleReport:
    def test_idle_is_nan_not_zero(self):
        rep = ServiceReport(duration=10.0)
        assert rep.served == 0
        assert rep.throughput == 0.0
        assert math.isnan(rep.p50)
        assert math.isnan(rep.p99)
        assert math.isnan(rep.mean_latency)
        assert math.isnan(rep.mean_wait)
        assert rep.latency_histogram() == ([], [])

    def test_zero_duration_throughput(self):
        assert ServiceReport(duration=0.0).throughput == 0.0


class TestViews:
    def test_histogram_covers_every_sample(self):
        rep = _report()
        counts, edges = rep.latency_histogram(bins=5)
        assert sum(counts) == rep.served
        assert len(edges) == 6
        assert edges[0] == pytest.approx(min(rep.latencies))
        assert edges[-1] == pytest.approx(max(rep.latencies))

    def test_to_metrics_is_flat_and_complete(self):
        m = _report().to_metrics()
        assert all(k.startswith("service_") for k in m)
        assert all(isinstance(v, float) for v in m.values())
        assert m["service_offered"] == 8.0
        assert m["service_served"] == 6.0
        assert m["service_shed"] == 1.0
        assert m["service_dropped"] == 1.0
        assert m["service_p99_latency"] == pytest.approx(_report().p99)
