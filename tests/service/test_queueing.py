"""Tests for the deterministic backpressure primitives: token-bucket
admission and the bounded multi-server FIFO queue."""

import pytest

from repro.service import QueueDecision, ServiceQueue, TokenBucket


class TestTokenBucket:
    def test_rate_zero_admits_everything(self):
        bucket = TokenBucket(rate=0.0)
        assert all(bucket.admit(t * 0.001) for t in range(1000))
        assert bucket.shed == 0

    def test_burst_then_shed(self):
        """A full bucket admits one burst's worth instantly, then sheds
        until tokens refill."""
        bucket = TokenBucket(rate=10.0)  # burst defaults to 10 tokens
        admitted = sum(bucket.admit(0.0) for _ in range(25))
        assert admitted == 10
        assert bucket.shed == 15

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0)
        for _ in range(10):
            assert bucket.admit(0.0)
        assert not bucket.admit(0.0)
        # 0.5 s later: 5 new tokens.
        assert sum(bucket.admit(0.5) for _ in range(10)) == 5

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert sum(bucket.admit(100.0) for _ in range(10)) == 3

    def test_steady_stream_at_rate_passes(self):
        bucket = TokenBucket(rate=10.0)
        times = [i * 0.1 for i in range(200)]  # exactly 10/s
        assert all(bucket.admit(t) for t in times)


class TestServiceQueue:
    def test_validation(self):
        with pytest.raises(ValueError, match="worker"):
            ServiceQueue(0, 4)
        with pytest.raises(ValueError, match="capacity"):
            ServiceQueue(1, 0)

    def test_free_worker_starts_immediately(self):
        q = ServiceQueue(workers=2, capacity=4)
        d = q.submit(1.0, 0.5)
        assert d == QueueDecision(accepted=True, start=1.0, completion=1.5)
        assert q.depth(1.0) == 0

    def test_fifo_wait_when_busy(self):
        q = ServiceQueue(workers=1, capacity=4)
        q.submit(0.0, 1.0)
        d2 = q.submit(0.1, 1.0)
        d3 = q.submit(0.2, 1.0)
        assert (d2.start, d2.completion) == (1.0, 2.0)
        assert (d3.start, d3.completion) == (2.0, 3.0)
        assert q.depth(0.5) == 2  # both still waiting
        assert q.depth(1.5) == 1  # one started
        assert q.depth(2.5) == 0

    def test_multi_server_parallelism(self):
        q = ServiceQueue(workers=2, capacity=4)
        a = q.submit(0.0, 1.0)
        b = q.submit(0.0, 1.0)
        c = q.submit(0.0, 1.0)
        assert a.start == b.start == 0.0
        assert c.start == 1.0  # third waits for the earliest-free worker

    def test_bounded_backlog_drops(self):
        q = ServiceQueue(workers=1, capacity=2)
        q.submit(0.0, 10.0)
        assert q.submit(0.0, 1.0).accepted  # backlog 1
        assert q.submit(0.0, 1.0).accepted  # backlog 2 (at capacity)
        d = q.submit(0.0, 1.0)
        assert not d.accepted
        assert q.dropped == 1
        # A dropped request must not occupy a worker.
        assert q.submit(30.0, 1.0).start == 30.0

    def test_backlog_drains_then_accepts_again(self):
        q = ServiceQueue(workers=1, capacity=1)
        q.submit(0.0, 1.0)
        q.submit(0.0, 1.0)
        assert not q.submit(0.0, 1.0).accepted
        # After the backlog drains, arrivals are accepted again.
        assert q.submit(5.0, 1.0).accepted

    def test_zero_service_time_clamped(self):
        q = ServiceQueue(workers=1, capacity=1)
        d = q.submit(0.0, -3.0)
        assert d.completion == d.start == 0.0
