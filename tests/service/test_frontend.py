"""Front-end batch dispatch vs the historical per-request oracle.

PR 10 rewired `ServiceFrontend._dispatch` through
`repro.core.batch_query`; these tests pin the (packets, outcome) pairs
to an inline reimplementation of the old scalar per-request resolution,
for lossless and lossy CHLM steps alike.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import full_assignment
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.service.frontend import ServiceFrontend
from repro.service.workload import Request
from repro.sim import Scenario
from repro.sim.hops import EuclideanHops


def scenario(**kw):
    base = dict(n=120, steps=4, warmup=1, seed=0, max_levels=3,
                arrival_rate=200.0, admission_rate=150.0)
    base.update(kw)
    return Scenario(**base)


def make_snapshot(sc, seed=0):
    rng = np.random.default_rng(seed)
    pts = disc_for_density(sc.n, sc.density).sample(sc.n, rng)
    r_tx = radius_for_degree(9.0, sc.density)
    edges = unit_disk_edges(pts, r_tx)
    h = build_hierarchy(np.arange(sc.n), edges, max_levels=sc.max_levels)
    return SimpleNamespace(
        step=0, hierarchy=h, assignment=full_assignment(h),
        hop_fn=EuclideanHops(pts, r_tx), positions=pts,
    )


def make_requests(sc, count, seed=1, update_fraction=0.3):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        kind = "update" if rng.random() < update_fraction else "lookup"
        source = int(rng.integers(0, sc.n))
        target = source if kind == "update" else int(rng.integers(0, sc.n))
        out.append(Request(index=i, step=0, t=0.01 * i, kind=kind,
                           source=source, target=target,
                           delivery_seed=int(rng.integers(0, 2**63))))
    return out


def oracle_resolve(sc, snap, req, delivery):
    """The pre-batch `_resolve`: scalar per-request resolution."""
    from repro.core.query import resolve
    from repro.core.servers import lm_levels
    from repro.faults import expanding_ring_cost

    if req.kind == "update":
        packets = 0
        for level in range(2, lm_levels(snap.hierarchy) + 1):
            srv = snap.assignment.servers.get((req.target, level))
            if srv is None:
                continue
            hops = max(snap.hop_fn(req.target, srv), 0)
            packets += (hops if delivery is None
                        else delivery.send(hops, level=level).packets)
        return packets, "update"
    qr = resolve(snap.hierarchy, snap.assignment, req.source, req.target,
                 snap.hop_fn, hash_fn=sc.hash_fn, delivery=delivery)
    packets, hit = qr.packets, qr.hit_level >= 0
    if hit:
        return packets, "direct"
    target_hops = snap.hop_fn(req.source, req.target)
    if target_hops > 0:
        packets += expanding_ring_cost(target_hops, sc.n, sc.density, sc.r_tx)
        return packets, "fallback"
    return packets, "failed"


class TestBatchDispatchOracle:
    def test_lossless_matches_scalar_oracle(self):
        sc = scenario()
        snap = make_snapshot(sc)
        frontend = ServiceFrontend(sc, np.random.default_rng(0))
        requests = make_requests(sc, 300)
        got = frontend._dispatch(requests, snap)
        want = [oracle_resolve(sc, snap, r, None) for r in requests]
        assert got == want
        assert {o for _, o in got} >= {"update", "direct"}
        frontend.close()

    def test_lossless_stale_assignment_falls_back(self):
        """A stale assignment (drifted topology) forces misses; the
        fallback/failed split must match the oracle exactly."""
        sc = scenario()
        snap_old = make_snapshot(sc, seed=0)
        snap_new = make_snapshot(sc, seed=9)
        snap = SimpleNamespace(
            step=0, hierarchy=snap_new.hierarchy,
            assignment=snap_old.assignment,  # stale on purpose
            hop_fn=snap_new.hop_fn, positions=snap_new.positions,
        )
        frontend = ServiceFrontend(sc, np.random.default_rng(0))
        requests = make_requests(sc, 200, seed=5)
        got = frontend._dispatch(requests, snap)
        want = [oracle_resolve(sc, snap, r, None) for r in requests]
        assert got == want
        assert any(o == "fallback" for _, o in got)
        frontend.close()

    @pytest.mark.parametrize("seed", [0, 3])
    def test_lossy_matches_scalar_oracle(self, seed):
        """Per-request delivery engines draw identically whether they
        walk precomputed plans or the scalar climb."""
        sc = scenario(loss_rate=0.2, retry_attempts=3)
        snap = make_snapshot(sc, seed=seed)
        shared = SimpleNamespace(loss=sc.loss_model())
        frontend = ServiceFrontend(sc, np.random.default_rng(0),
                                   delivery=shared)
        requests = make_requests(sc, 200, seed=seed + 10)
        got = frontend._dispatch(requests, snap)
        retry = sc.retry_policy()
        want = []
        for req in requests:
            delivery = frontend._delivery_for(req, shared.loss, retry)
            want.append(oracle_resolve(sc, snap, req, delivery))
        assert got == want
        frontend.close()

    def test_empty_step(self):
        sc = scenario()
        frontend = ServiceFrontend(sc, np.random.default_rng(0))
        assert frontend._dispatch([], make_snapshot(sc)) == []
        frontend.close()
