"""Tests for the flat routing baseline."""

import numpy as np
import pytest

from repro.graphs import CompactGraph
from repro.routing import FlatRouter, flat_table_size


@pytest.fixture
def chain_router():
    g = CompactGraph(range(5), [[0, 1], [1, 2], [2, 3], [3, 4]])
    return FlatRouter(g)


class TestFlatRouter:
    def test_hop_count(self, chain_router):
        assert chain_router.hop_count(0, 4) == 4
        assert chain_router.hop_count(0, 0) == 0
        assert chain_router.hop_count(2, 3) == 1

    def test_path(self, chain_router):
        assert chain_router.path(0, 3) == [0, 1, 2, 3]

    def test_unreachable(self):
        r = FlatRouter(CompactGraph(range(4), [[0, 1], [2, 3]]))
        assert r.hop_count(0, 3) == -1
        assert r.path(0, 3) is None

    def test_cache_consistency(self, chain_router):
        d1 = chain_router.distances_from(0)
        d2 = chain_router.distances_from(0)
        assert d1 is d2  # cached
        chain_router.clear_cache()
        d3 = chain_router.distances_from(0)
        assert d3 is not d1
        assert np.array_equal(d1, d3)

    def test_table_size(self, chain_router):
        assert chain_router.table_size(2) == 4
        with pytest.raises(KeyError):
            chain_router.table_size(99)


class TestFlatTableSize:
    def test_values(self):
        assert flat_table_size(1) == 0
        assert flat_table_size(100) == 99

    def test_invalid(self):
        with pytest.raises(ValueError):
            flat_table_size(0)
