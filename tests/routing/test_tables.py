"""Tests for routing-table size accounting (EXP-T9 substrate)."""

import numpy as np
import pytest

from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import (
    flat_table_size,
    hierarchical_table_size,
    hierarchical_table_sizes,
)


def make_hierarchy(n, seed=0, density=0.02, degree=9.0):
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    edges = unit_disk_edges(pts, radius_for_degree(degree, density))
    return build_hierarchy(np.arange(n), edges)


class TestHierarchicalTableSize:
    def test_pair(self):
        h = build_hierarchy([1, 2], [[1, 2]])
        # Level-1 cluster {1,2}: one peer each; no higher levels with
        # siblings.
        assert hierarchical_table_size(h, 1) == 1
        assert hierarchical_table_size(h, 2) == 1

    def test_single_node(self):
        h = build_hierarchy([5], np.empty((0, 2)))
        assert hierarchical_table_size(h, 5) == 0

    def test_vectorized_matches_scalar(self):
        h = make_hierarchy(120, seed=1)
        sizes = hierarchical_table_sizes(h)
        for v in range(0, 120, 13):
            assert sizes[v] == hierarchical_table_size(h, v)

    def test_much_smaller_than_flat(self):
        n = 400
        h = make_hierarchy(n, seed=2)
        sizes = hierarchical_table_sizes(h)
        assert sizes.mean() < flat_table_size(n) / 4

    def test_grows_sublinearly(self):
        """Mean hierarchical table size should grow much slower than n."""
        means = []
        for n in (100, 400):
            h = make_hierarchy(n, seed=3)
            means.append(hierarchical_table_sizes(h).mean())
        growth = means[1] / means[0]
        assert growth < 4.0 * 0.75  # far below the linear factor of 4
