"""Tests for strict hierarchical routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DiscRegion, disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import FlatRouter, HierarchicalRouter


def make_network(n, density=0.02, degree=9.0, seed=0):
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    edges = unit_disk_edges(pts, radius_for_degree(degree, density))
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges)
    return g, h


class TestSmallNetworks:
    def test_trivial_same_node(self):
        g = CompactGraph([1, 2], [[1, 2]])
        h = build_hierarchy([1, 2], [[1, 2]])
        r = HierarchicalRouter(h, g)
        assert r.path(1, 1) == [1]
        assert r.hop_count(1, 1) == 0

    def test_pair(self):
        g = CompactGraph([1, 2], [[1, 2]])
        h = build_hierarchy([1, 2], [[1, 2]])
        r = HierarchicalRouter(h, g)
        assert r.path(1, 2) == [1, 2]
        assert r.hop_count(1, 2) == 1

    def test_disconnected_returns_none(self):
        edges = [[0, 1], [2, 3]]
        g = CompactGraph(range(4), edges)
        h = build_hierarchy(range(4), edges)
        r = HierarchicalRouter(h, g)
        assert r.path(0, 3) is None
        assert r.hop_count(0, 3) == -1

    def test_node_set_mismatch_raises(self):
        g = CompactGraph([1, 2, 3], [[1, 2]])
        h = build_hierarchy([1, 2], [[1, 2]])
        with pytest.raises(ValueError):
            HierarchicalRouter(h, g)

    def test_common_level(self):
        edges = [[0, 1], [1, 2], [2, 3]]
        g = CompactGraph(range(4), edges)
        h = build_hierarchy(range(4), edges)
        r = HierarchicalRouter(h, g)
        # Same node -> level 0; anything else >= 1.
        assert r.common_level(0, 0) == 0
        assert r.common_level(0, 3) >= 1


class TestRealisticNetworks:
    def test_paths_are_valid_walks(self):
        g, h = make_network(150, seed=1)
        r = HierarchicalRouter(h, g)
        flat = FlatRouter(g)
        rng = np.random.default_rng(2)
        checked = 0
        for _ in range(40):
            s, d = rng.integers(0, 150, size=2)
            p = r.path(int(s), int(d))
            if p is None:
                assert flat.hop_count(int(s), int(d)) == -1
                continue
            checked += 1
            assert p[0] == s and p[-1] == d
            for a, b in zip(p, p[1:]):
                assert b in g.neighbors(a).tolist(), f"{a}->{b} not a link"
        assert checked > 20

    def test_stretch_bounded(self):
        """Hierarchical routes may be longer than shortest paths but the
        stretch should be modest on average (constant-factor)."""
        g, h = make_network(200, seed=3)
        r = HierarchicalRouter(h, g)
        flat = FlatRouter(g)
        rng = np.random.default_rng(4)
        stretches = []
        for _ in range(60):
            s, d = rng.integers(0, 200, size=2)
            if s == d:
                continue
            hp = r.hop_count(int(s), int(d))
            fp = flat.hop_count(int(s), int(d))
            if fp <= 0:
                continue
            assert hp >= fp  # can't beat the shortest path
            stretches.append(hp / fp)
        # Hierarchical routing pays a constant-factor stretch (large for
        # nearby pairs split across high-level cluster boundaries); the
        # bound here just pins it to a constant, per Kleinrock-Kamoun.
        assert np.mean(stretches) < 3.5
        assert np.median(stretches) < 2.5

    def test_deterministic(self):
        g, h = make_network(120, seed=5)
        r1 = HierarchicalRouter(h, g)
        r2 = HierarchicalRouter(h, g)
        for s, d in [(0, 100), (5, 77), (30, 31)]:
            assert r1.path(s, d) == r2.path(s, d)

    def test_unconfined_mode(self):
        g, h = make_network(100, seed=6)
        r = HierarchicalRouter(h, g, confine=False)
        p = r.path(0, 99)
        if p is not None:
            assert p[0] == 0 and p[-1] == 99


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_hierarchical_route_validity_property(seed):
    """On random connected-ish graphs every returned route is a real walk
    from s to d, and unreachable pairs match flat routing's verdict."""
    rng = np.random.default_rng(seed)
    n = 60
    pts = DiscRegion(5.0).sample(n, rng)
    edges = unit_disk_edges(pts, 1.6)
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges)
    r = HierarchicalRouter(h, g)
    flat = FlatRouter(g)
    for _ in range(10):
        s, d = rng.integers(0, n, size=2)
        p = r.path(int(s), int(d))
        fp = flat.hop_count(int(s), int(d))
        if p is None:
            assert fp == -1
        else:
            assert p[0] == s and p[-1] == d
            for a, b in zip(p, p[1:]):
                assert b in g.neighbors(a).tolist()
            assert len(p) - 1 >= fp
