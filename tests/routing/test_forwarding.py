"""Tests for hop-by-hop hierarchical forwarding.

These validate the paper's Section 2.1 claim operationally: the
hierarchical address plus O(log n)-scale per-node state suffice to
deliver packets, loop-free, without any centralized path computation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DiscRegion, disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import FlatRouter, ForwardingFabric


DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


def make_fabric(n, seed=0):
    region = disc_for_density(n, DENSITY)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    edges = unit_disk_edges(pts, R_TX)
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges, max_levels=3,
                        level_mode="radio", positions=pts, r0=R_TX)
    return g, h, ForwardingFabric(h, g)


@pytest.fixture(scope="module")
def fabric200():
    return make_fabric(200, seed=1)


class TestConstruction:
    def test_node_set_mismatch(self):
        g = CompactGraph([1, 2, 3], [[1, 2]])
        h = build_hierarchy([1, 2], [[1, 2]])
        with pytest.raises(ValueError):
            ForwardingFabric(h, g)

    def test_table_sizes_sublinear(self, fabric200):
        g, h, fab = fabric200
        sizes = fab.table_sizes()
        assert sizes.mean() < 200 / 4
        assert (sizes >= 0).all()

    def test_table_structure(self, fabric200):
        g, h, fab = fabric200
        t = fab.table(0)
        assert t.node == 0
        # Intra entries target level-1 cluster peers.
        c1 = h.cluster_of(0, 1)
        peers = set(h.members0(1, c1).tolist()) - {0}
        assert set(t.intra) <= peers
        # Next hops are physical neighbors.
        nbrs = set(g.neighbors(0).tolist())
        for nh in t.intra.values():
            assert nh in nbrs
        for nh in t.clusters.values():
            assert nh in nbrs
        assert t.size == len(t.intra) + len(t.clusters)


class TestDelivery:
    def test_full_delivery_on_connected_pairs(self, fabric200):
        g, h, fab = fabric200
        flat = FlatRouter(g)
        rng = np.random.default_rng(2)
        delivered = 0
        for _ in range(80):
            s, d = (int(x) for x in rng.integers(0, 200, size=2))
            res = fab.forward(s, d)
            if flat.hop_count(s, d) < 0:
                assert not res.delivered
                continue
            assert res.delivered, (s, d, res.reason)
            delivered += 1
            assert res.path[0] == s and res.path[-1] == d
            for a, b in zip(res.path, res.path[1:]):
                assert b in g.neighbors(a).tolist()
        assert delivered > 50

    def test_no_livelock(self, fabric200):
        """The descent is livelock-free: a relay can be crossed by more
        than one segment (descending can geographically backtrack), but
        never many times — and never twice within the same segment, so
        there is no A-B ping-pong."""
        g, h, fab = fabric200
        flat = FlatRouter(g)
        rng = np.random.default_rng(3)
        for _ in range(60):
            s, d = (int(x) for x in rng.integers(0, 200, size=2))
            if flat.hop_count(s, d) < 0:
                continue
            res = fab.forward(s, d)
            counts = {}
            for x in res.path:
                counts[x] = counts.get(x, 0) + 1
            assert max(counts.values()) <= 3, res.path
            # Immediate ping-pong (A-B-A-B) never occurs.
            for a, b, c, e in zip(res.path, res.path[1:], res.path[2:],
                                  res.path[3:]):
                assert not (a == c and b == e), res.path

    def test_self_delivery(self, fabric200):
        _, _, fab = fabric200
        res = fab.forward(5, 5)
        assert res.delivered and res.path == [5] and res.hops == 0

    def test_stretch_modest(self, fabric200):
        g, h, fab = fabric200
        flat = FlatRouter(g)
        rng = np.random.default_rng(4)
        stretches = []
        for _ in range(60):
            s, d = (int(x) for x in rng.integers(0, 200, size=2))
            fp = flat.hop_count(s, d)
            if fp <= 0:
                continue
            res = fab.forward(s, d)
            stretches.append(res.hops / fp)
        assert np.mean(stretches) < 1.6

    def test_ttl_respected(self, fabric200):
        g, h, fab = fabric200
        flat = FlatRouter(g)
        rng = np.random.default_rng(5)
        for _ in range(20):
            s, d = (int(x) for x in rng.integers(0, 200, size=2))
            if flat.hop_count(s, d) < 2:
                continue
            res = fab.forward(s, d, ttl=1)
            assert not res.delivered
            assert len(res.path) <= 2
            break


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_forwarding_delivery_property(seed):
    """On random deployments, every flat-reachable pair is delivered,
    loop-free."""
    rng = np.random.default_rng(seed)
    n = 80
    pts = DiscRegion(35.0).sample(n, rng)
    edges = unit_disk_edges(pts, R_TX)
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges, max_levels=3,
                        level_mode="radio", positions=pts, r0=R_TX)
    fab = ForwardingFabric(h, g)
    flat = FlatRouter(g)
    for _ in range(15):
        s, d = (int(x) for x in rng.integers(0, n, size=2))
        res = fab.forward(s, d)
        if flat.hop_count(s, d) < 0:
            assert not res.delivered
        else:
            assert res.delivered, (seed, s, d, res.reason)
            counts = {}
            for x in res.path:
                counts[x] = counts.get(x, 0) + 1
            assert max(counts.values()) <= 3, res.path
