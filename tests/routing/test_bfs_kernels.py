"""Equivalence suite for the batched CSR BFS kernels.

The vectorized forwarding fabric is only admissible because it is
*bit-identical* to the deque-BFS reference: same next-hop arrays, same
``ForwardingTable`` contents, same ``forward()`` paths.  These tests pin
that equivalence over randomized topologies (including disconnected
ones), hierarchy depths, confinement masks, scoped early stops, and the
disconnected-parent fallback path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.lca import Election
from repro.geometry import DiscRegion, disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.hierarchy.levels import ClusteredHierarchy, LevelTopology
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import ForwardingFabric
from repro.routing.bfs_kernels import (
    deque_next_hop,
    flood_rows_safe,
    labeled_next_hop,
    single_next_hop,
)

DENSITY = 0.02


def random_graph(n, seed, degree=9.0):
    r_tx = radius_for_degree(degree, DENSITY)
    rng = np.random.default_rng(seed)
    pts = disc_for_density(n, DENSITY).sample(n, rng)
    edges = unit_disk_edges(pts, r_tx)
    return CompactGraph(np.arange(n), edges), pts, r_tx, rng


def make_stack(n, seed, L=3, degree=9.0):
    r_tx = radius_for_degree(degree, DENSITY)
    rng = np.random.default_rng(seed)
    pts = disc_for_density(n, DENSITY).sample(n, rng)
    edges = unit_disk_edges(pts, r_tx)
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges, max_levels=L,
                        level_mode="radio", positions=pts, r0=r_tx)
    return g, h


class TestKernelVsOracle:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("degree", [3.0, 9.0])
    def test_single_flood_matches_deque(self, seed, degree):
        # degree 3 is subcritical: disconnected components exercised.
        g, _, _, rng = random_graph(90, seed, degree)
        targets = np.sort(rng.choice(90, size=3, replace=False))
        nh_ref, d_ref = deque_next_hop(g, targets)
        nh_vec, d_vec = single_next_hop(g, targets)
        assert np.array_equal(nh_ref, nh_vec)
        assert np.array_equal(d_ref, d_vec)

    @pytest.mark.parametrize("seed", range(4))
    def test_masked_flood_matches_deque(self, seed):
        g, _, _, rng = random_graph(90, seed)
        mask = rng.random(90) < 0.5
        targets = np.sort(rng.choice(90, size=2, replace=False))
        nh_ref, d_ref = deque_next_hop(g, targets, restrict_mask=mask)
        nh_vec, d_vec = single_next_hop(g, targets, restrict_mask=mask)
        assert np.array_equal(nh_ref, nh_vec)
        assert np.array_equal(d_ref, d_vec)

    @pytest.mark.parametrize("seed", range(3))
    def test_labeled_flood_matches_per_label_deque(self, seed):
        g, _, _, rng = random_graph(80, seed)
        # Several labels with multi-source target sets and per-label masks.
        n_labels = 5
        sources, labels, masks = [], [], []
        for j in range(n_labels):
            srcs = rng.choice(80, size=int(rng.integers(1, 4)), replace=False)
            sources.append(np.sort(srcs))
            labels.append(np.full(srcs.size, j, dtype=np.int64))
            masks.append(rng.random(80) < 0.7)
        nh, dist = labeled_next_hop(
            g, np.concatenate(sources), np.concatenate(labels), n_labels,
            restrict_mask=np.array(masks))
        for j in range(n_labels):
            nh_ref, d_ref = deque_next_hop(
                g, g.node_ids[sources[j]], restrict_mask=masks[j])
            assert np.array_equal(nh[j], nh_ref), j
            assert np.array_equal(dist[j], d_ref), j

    def test_scoped_early_stop_valid_at_needed_columns(self):
        g, _, _, rng = random_graph(120, 7)
        n_labels = 4
        sources = rng.choice(120, size=n_labels, replace=False).astype(np.int64)
        labels = np.arange(n_labels, dtype=np.int64)
        needed = np.zeros(n_labels * 120, dtype=bool)
        needed_cols = []
        for j in range(n_labels):
            cols = rng.choice(120, size=6, replace=False)
            needed_cols.append(cols)
            needed[j * 120 + cols] = True
        nh, dist = labeled_next_hop(g, sources, labels, n_labels, needed=needed)
        for j in range(n_labels):
            nh_ref, d_ref = deque_next_hop(g, g.node_ids[sources[j : j + 1]])
            cols = needed_cols[j]
            assert np.array_equal(nh[j][cols], nh_ref[cols]), j
            assert np.array_equal(dist[j][cols], d_ref[cols]), j
            # Everything the scoped flood skipped lies strictly beyond
            # the farthest needed node (the safety-rule invariant).
            if (dist[j] >= 0).any() and (d_ref[dist[j] < 0] >= 0).any():
                assert d_ref[dist[j] < 0][d_ref[dist[j] < 0] >= 0].min() \
                    > d_ref[cols][d_ref[cols] >= 0].max()

    def test_empty_sources(self):
        g, _, _, _ = random_graph(30, 0)
        nh, dist = labeled_next_hop(
            g, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 2)
        assert nh.shape == (2, 30) and (nh == -1).all() and (dist == -1).all()


class TestEventSafety:
    """``flood_rows_safe`` must never keep a row a re-run would change."""

    def path_graph(self, n=6):
        edges = np.array([[i, i + 1] for i in range(n - 1)])
        return CompactGraph(np.arange(n), edges)

    def test_up_between_equal_levels_safe(self):
        # star-ish: 0-1, 0-2; adding 1-2 joins two dist-1 nodes.
        g = CompactGraph(np.arange(3), [[0, 1], [0, 2]])
        nh, dist = deque_next_hop(g, np.array([0]))
        assert flood_rows_safe(dist, nh, np.array([[1, 2]]), np.empty((0, 2)))[0]

    def test_up_across_levels_unsafe(self):
        g = self.path_graph()
        nh, dist = deque_next_hop(g, np.array([0]))
        assert not flood_rows_safe(dist, nh, np.array([[0, 3]]), np.empty((0, 2)))[0]

    def test_down_tree_edge_unsafe(self):
        g = self.path_graph()
        nh, dist = deque_next_hop(g, np.array([0]))
        assert not flood_rows_safe(dist, nh, np.empty((0, 2)), np.array([[2, 3]]))[0]

    def test_down_non_tree_edge_safe(self):
        # cycle 0-1-2-3-0: toward target 0, edge 1-2 or 2-3 is non-tree
        # for exactly one orientation of the tie-break.
        g = CompactGraph(np.arange(4), [[0, 1], [1, 2], [2, 3], [0, 3]])
        nh, dist = deque_next_hop(g, np.array([0]))
        # node 2 has dist 2 and one parent; the unused dist-1 edge is safe.
        parent = nh[2]
        other = 3 if parent == 1 else 1
        assert flood_rows_safe(dist, nh, np.empty((0, 2)),
                               np.array([[2, other]]))[0]
        assert not flood_rows_safe(dist, nh, np.empty((0, 2)),
                                   np.array([[2, parent]]))[0]

    def test_down_both_unreached_safe(self):
        g = CompactGraph(np.arange(4), [[0, 1], [2, 3]])
        nh, dist = deque_next_hop(g, np.array([0]))
        assert flood_rows_safe(dist, nh, np.empty((0, 2)), np.array([[2, 3]]))[0]

    def test_mask_exempts_outside_events(self):
        g = self.path_graph()
        mask = np.array([True, True, True, False, False, False])
        nh, dist = deque_next_hop(g, np.array([0]), restrict_mask=mask)
        # 3-4 lies outside the mask: irrelevant however drastic.
        assert flood_rows_safe(dist, nh, np.empty((0, 2)), np.array([[3, 4]]),
                               restrict_mask=mask)[0]
        assert flood_rows_safe(dist, nh, np.array([[3, 4]]), np.empty((0, 2)),
                               restrict_mask=mask)[0]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_safe_rows_survive_events_bit_identically(self, seed):
        """Property: rows marked safe are bit-identical on the post-event
        graph; this is the soundness contract FabricCache relies on."""
        rng = np.random.default_rng(seed)
        n = 60
        r_tx = radius_for_degree(6.0, DENSITY)
        pts = DiscRegion(31.0).sample(n, rng)
        e_old = unit_disk_edges(pts, r_tx)
        pts2 = pts + rng.normal(scale=0.4, size=pts.shape)
        e_new = unit_disk_edges(pts2, r_tx)
        g_old = CompactGraph(np.arange(n), e_old)
        g_new = CompactGraph(np.arange(n), e_new)
        old = set(map(tuple, e_old.tolist()))
        new = set(map(tuple, e_new.tolist()))
        ups = np.array(sorted(new - old)).reshape(-1, 2)
        downs = np.array(sorted(old - new)).reshape(-1, 2)
        targets = np.sort(rng.choice(n, size=2, replace=False))
        nh, dist = deque_next_hop(g_old, targets)
        if flood_rows_safe(dist, nh, ups, downs)[0]:
            nh2, dist2 = deque_next_hop(g_new, targets)
            assert np.array_equal(nh, nh2) and np.array_equal(dist, dist2)


class TestFabricEquivalence:
    @pytest.mark.parametrize("n,L,seed", [(80, 1, 0), (80, 3, 1), (150, 2, 2),
                                          (150, 4, 3)])
    def test_tables_sizes_paths_match_reference(self, n, L, seed):
        g, h = make_stack(n, seed, L=L)
        ref = ForwardingFabric(h, g, mode="reference")
        vec = ForwardingFabric(h, g)
        assert np.array_equal(ref.table_sizes(), vec.table_sizes())
        for v in range(n):
            tr, tv = ref.table(v), vec.table(v)
            assert tr.intra == tv.intra, v
            assert tr.clusters == tv.clusters, v
        rng = np.random.default_rng(seed + 100)
        for _ in range(40):
            s, d = (int(x) for x in rng.integers(0, n, size=2))
            rr, rv = ref.forward(s, d), vec.forward(s, d)
            assert rr.delivered == rv.delivered and rr.path == rv.path, (s, d)

    def test_sparse_disconnected_deployment(self):
        # Subcritical degree: disconnected parent subgraphs abound, so
        # the sibling-route fallback path is exercised heavily.
        g, h = make_stack(120, 5, L=3, degree=4.0)
        ref = ForwardingFabric(h, g, mode="reference")
        vec = ForwardingFabric(h, g)
        assert np.array_equal(ref.table_sizes(), vec.table_sizes())
        for v in range(120):
            assert ref.table(v).clusters == vec.table(v).clusters, v

    def test_handbuilt_disconnected_parent_fallback(self):
        """Deterministic fallback: two sibling clusters that share a
        parent but have no intra-parent connecting path, so carrier
        routes must come from the unrestricted fallback flood."""
        ids = np.arange(8)
        edges = np.array([[0, 1], [2, 3], [4, 5], [6, 7],
                          [1, 4], [5, 2], [3, 6]])
        e0 = Election(
            node_ids=ids,
            elected_head=np.array([0, 0, 2, 2, 4, 4, 6, 6]),
            member_of=np.array([0, 0, 2, 2, 4, 4, 6, 6]),
            elector_count=np.zeros(8, dtype=np.int64),
            clusterheads=np.array([0, 2, 4, 6]),
        )
        l1_ids = np.array([0, 2, 4, 6])
        e1 = Election(
            node_ids=l1_ids,
            elected_head=np.array([0, 0, 4, 4]),
            member_of=np.array([0, 0, 4, 4]),
            elector_count=np.zeros(4, dtype=np.int64),
            clusterheads=np.array([0, 4]),
        )
        h = ClusteredHierarchy([
            LevelTopology(k=0, node_ids=ids, edges=edges, election=e0),
            LevelTopology(k=1, node_ids=l1_ids,
                          edges=np.array([[0, 4], [2, 4], [2, 6]]),
                          election=e1),
            LevelTopology(k=2, node_ids=np.array([0, 4]),
                          edges=np.array([[0, 4]]), election=None),
        ])
        g = CompactGraph(ids, edges)
        ref = ForwardingFabric(h, g, mode="reference")
        vec = ForwardingFabric(h, g)
        # Cluster A={0,1} and B={2,3} share parent P={0..3} but are only
        # connected via C={4,5}: confined floods cannot route A toward B.
        for fab in (ref, vec):
            assert fab.table(0).clusters[(1, 2)] == 1
            assert fab.table(1).clusters[(1, 2)] == 4
        assert np.array_equal(ref.table_sizes(), vec.table_sizes())
        for v in ids.tolist():
            assert ref.table(v).intra == vec.table(v).intra
            assert ref.table(v).clusters == vec.table(v).clusters
        for s in ids.tolist():
            for d in ids.tolist():
                rr, rv = ref.forward(s, d), vec.forward(s, d)
                assert rr.delivered and rv.delivered
                assert rr.path == rv.path


class TestLaziness:
    def test_forward_builds_no_tables(self):
        g, h = make_stack(100, 3)
        fab = ForwardingFabric(h, g)
        rng = np.random.default_rng(0)
        for _ in range(10):
            s, d = (int(x) for x in rng.integers(0, 100, size=2))
            fab.forward(s, d)
        assert fab._tables == {}  # delivery never materializes a table

    def test_table_builds_only_touched_records(self):
        g, h = make_stack(100, 3)
        fab = ForwardingFabric(h, g)
        fab.table(0)
        # One intra record, at most one sib record per intermediate
        # level, one top record — not the whole fabric.
        assert 0 < len(fab._records) <= 1 + h.num_levels
        before = len(fab._records)
        fab.table(0)  # memoized: no new records
        assert len(fab._records) == before

    def test_l0_cache_bounded(self):
        g, h = make_stack(100, 3)
        fab = ForwardingFabric(h, g, l0_cache_entries=8)
        rng = np.random.default_rng(1)
        for d in rng.integers(0, 100, size=50).tolist():
            fab.forward(0, int(d))
        assert len(fab._l0_cache) <= 8

    def test_nh_cache_bounded_under_mixed_level_stream(self):
        # Regression: cluster-level (k >= 1) floods used to accumulate
        # without bound — only level 0 had the LRU.  A long message
        # stream crossing clusters at every level must stay inside both
        # budgets.
        g, h = make_stack(120, 3)
        fab = ForwardingFabric(h, g, l0_cache_entries=8, nh_cache_entries=4)
        rng = np.random.default_rng(3)
        for s, d in rng.integers(0, 120, size=(300, 2)).tolist():
            fab.forward(int(s), int(d))
        assert 0 < len(fab._nh_cache) <= 4
        assert len(fab._l0_cache) <= 8

    def test_nh_cache_eviction_does_not_change_delivery(self):
        # LRU eviction is a cost, never a behavior change: a tightly
        # bounded fabric must forward exactly like an unbounded one.
        g, h = make_stack(100, 3)
        loose = ForwardingFabric(h, g)
        tight = ForwardingFabric(h, g, l0_cache_entries=2, nh_cache_entries=1)
        rng = np.random.default_rng(4)
        for s, d in rng.integers(0, 100, size=(60, 2)).tolist():
            a = loose.forward(int(s), int(d))
            b = tight.forward(int(s), int(d))
            assert a.delivered == b.delivered
            assert a.path == b.path
        assert np.array_equal(loose.table_sizes(), tight.table_sizes())

    def test_unknown_node_raises(self):
        g, h = make_stack(50, 0)
        fab = ForwardingFabric(h, g)
        with pytest.raises(KeyError):
            fab.table(50)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_fabric_equivalence_property(seed):
    """Random deployments: vectorized == reference on tables and paths."""
    rng = np.random.default_rng(seed)
    n = 70
    r_tx = radius_for_degree(9.0, DENSITY)
    pts = DiscRegion(34.0).sample(n, rng)
    edges = unit_disk_edges(pts, r_tx)
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges, max_levels=3,
                        level_mode="radio", positions=pts, r0=r_tx)
    ref = ForwardingFabric(h, g, mode="reference")
    vec = ForwardingFabric(h, g)
    assert np.array_equal(ref.table_sizes(), vec.table_sizes())
    for v in rng.integers(0, n, size=10).tolist():
        assert ref.table(int(v)).intra == vec.table(int(v)).intra
        assert ref.table(int(v)).clusters == vec.table(int(v)).clusters
    for _ in range(15):
        s, d = (int(x) for x in rng.integers(0, n, size=2))
        rr, rv = ref.forward(s, d), vec.forward(s, d)
        assert rr.delivered == rv.delivered and rr.path == rv.path
