"""Tests for cross-step forwarding-fabric reuse.

The cache's contract is absolute: however much flood state it carries
across a step, the resulting fabric must be bit-identical — tables,
sizes, and forward paths — to one built from scratch on the new
snapshot.  These tests drive it with drifting deployments, crafted
link events, and the full messaging stack.
"""

import numpy as np
import pytest

from repro.app import MessagingService
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.mobility import RandomWaypoint
from repro.radio import radius_for_degree, unit_disk_edges
from repro.radio.linkevents import LinkTracker
from repro.routing import FabricCache, ForwardingFabric
from repro.sim.hops import EuclideanHops

DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


def snapshot(n, pts, L=3):
    edges = unit_disk_edges(pts, R_TX)
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges, max_levels=L,
                        level_mode="radio", positions=pts, r0=R_TX)
    return h, g, edges


def assert_fabrics_equal(fab, ref, n, seed):
    assert np.array_equal(fab.table_sizes(), ref.table_sizes())
    for v in range(n):
        tr, tv = ref.table(v), fab.table(v)
        assert tr.intra == tv.intra and tr.clusters == tv.clusters, v
    rng = np.random.default_rng(seed)
    for _ in range(30):
        s, d = (int(x) for x in rng.integers(0, n, size=2))
        rr, rv = ref.forward(s, d), fab.forward(s, d)
        assert rr.delivered == rv.delivered and rr.path == rv.path, (s, d)


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("seed,drift", [(0, 0.15), (3, 0.5)])
    def test_drifting_snapshots_match_fresh_reference(self, seed, drift):
        n = 130
        rng = np.random.default_rng(seed)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        tracker = LinkTracker(n)
        cache = FabricCache()
        for step in range(5):
            h, g, edges = snapshot(n, pts)
            fab = cache.update(h, g, tracker.observe(edges))
            ref = ForwardingFabric(h, g, mode="reference")
            assert_fabrics_equal(fab, ref, n, 1000 + step)
            pts = pts + rng.normal(scale=drift, size=pts.shape)
        assert cache.stats.updates == 5
        assert cache.stats.full_rebuilds == 1  # only the baseline step

    def test_low_drift_reuses_flood_rows(self):
        n = 150
        rng = np.random.default_rng(9)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        tracker = LinkTracker(n)
        cache = FabricCache()
        for _ in range(4):
            h, g, edges = snapshot(n, pts)
            cache.update(h, g, tracker.observe(edges)).table_sizes()
            pts = pts + rng.normal(scale=0.1, size=pts.shape)
        assert cache.stats.records_reused > 0
        assert cache.stats.rows_reused > 0

    def test_crafted_single_link_events(self):
        """Remove then restore one specific far link; the cache must
        stay exact through both transitions."""
        n = 120
        rng = np.random.default_rng(4)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        _, _, edges = snapshot(n, pts)
        tracker = LinkTracker(n)
        cache = FabricCache()
        drop = tuple(edges[len(edges) // 2])
        keep = np.array([e for e in edges.tolist() if tuple(e) != drop])
        for step_edges in (edges, keep, edges):
            g = CompactGraph(np.arange(n), step_edges)
            h = build_hierarchy(np.arange(n), step_edges, max_levels=3,
                                level_mode="radio", positions=pts, r0=R_TX)
            diff = tracker.observe(step_edges)
            fab = cache.update(h, g, diff)
            ref = ForwardingFabric(h, g, mode="reference")
            assert_fabrics_equal(fab, ref, n, 7)


class TestRebuildTriggers:
    def make(self, n=100, seed=0):
        rng = np.random.default_rng(seed)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        return pts, snapshot(n, pts)

    def test_first_update_is_full_rebuild(self):
        _, (h, g, edges) = self.make()
        cache = FabricCache()
        cache.update(h, g, LinkTracker(100).observe(edges))
        assert cache.stats.full_rebuilds == 1

    def test_none_diff_forces_rebuild(self):
        _, (h, g, edges) = self.make()
        cache = FabricCache()
        cache.update(h, g, LinkTracker(100).observe(edges))
        cache.update(h, g, None)
        assert cache.stats.full_rebuilds == 2

    def test_depth_change_forces_rebuild(self):
        pts, (h, g, edges) = self.make()
        cache = FabricCache()
        tracker = LinkTracker(100)
        cache.update(h, g, tracker.observe(edges))
        h2 = build_hierarchy(np.arange(100), edges, max_levels=1,
                             level_mode="radio", positions=pts, r0=R_TX)
        fab = cache.update(h2, g, tracker.observe(edges))
        if h.num_levels != h2.num_levels:
            assert cache.stats.full_rebuilds == 2
        ref = ForwardingFabric(h2, g, mode="reference")
        assert_fabrics_equal(fab, ref, 100, 3)

    def test_explicit_invalidate_forces_rebuild(self):
        _, (h, g, edges) = self.make()
        cache = FabricCache()
        tracker = LinkTracker(100)
        cache.update(h, g, tracker.observe(edges))
        cache.invalidate()
        assert cache.stats.explicit_invalidations == 1
        assert cache.fabric is None
        fab = cache.update(h, g, tracker.observe(edges))
        assert cache.stats.full_rebuilds == 2
        assert_fabrics_equal(fab, ForwardingFabric(h, g, mode="reference"),
                             100, 5)
        # Invalidating an already-empty cache is a silent no-op.
        FabricCache().invalidate()

    def test_massive_diff_abandons_carry(self):
        """A partition severing (then healing) the whole deployment at
        once floods the diff with more events than carry is worth; the
        cache must fall back to a full rebuild — and stay exact."""
        n = 100
        rng = np.random.default_rng(2)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        edges = unit_disk_edges(pts, R_TX)
        side = pts[:, 0] > 0
        cut = edges[side[edges[:, 0]] == side[edges[:, 1]]]
        tracker = LinkTracker(n)
        cache = FabricCache(mass_invalidate_fraction=0.25)
        for step_edges in (edges, cut, edges):
            g = CompactGraph(np.arange(n), step_edges)
            h = build_hierarchy(np.arange(n), step_edges, max_levels=3,
                                level_mode="radio", positions=pts, r0=R_TX)
            fab = cache.update(h, g, tracker.observe(step_edges))
            assert_fabrics_equal(
                fab, ForwardingFabric(h, g, mode="reference"), n, 9)
        assert cache.stats.mass_invalidations == 2  # sever + heal
        assert cache.stats.full_rebuilds == 3

    def test_mass_threshold_inf_always_carries(self):
        n = 100
        rng = np.random.default_rng(2)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        edges = unit_disk_edges(pts, R_TX)
        side = pts[:, 0] > 0
        cut = edges[side[edges[:, 0]] == side[edges[:, 1]]]
        tracker = LinkTracker(n)
        cache = FabricCache(mass_invalidate_fraction=float("inf"))
        for step_edges in (edges, cut, edges):
            g = CompactGraph(np.arange(n), step_edges)
            h = build_hierarchy(np.arange(n), step_edges, max_levels=3,
                                level_mode="radio", positions=pts, r0=R_TX)
            fab = cache.update(h, g, tracker.observe(step_edges))
            assert_fabrics_equal(
                fab, ForwardingFabric(h, g, mode="reference"), n, 13)
        assert cache.stats.mass_invalidations == 0
        assert cache.stats.full_rebuilds == 1

    def test_reference_mode_always_rebuilds(self):
        _, (h, g, edges) = self.make()
        cache = FabricCache(mode="reference")
        tracker = LinkTracker(100)
        for _ in range(2):
            fab = cache.update(h, g, tracker.observe(edges))
        assert cache.stats.full_rebuilds == 2
        assert fab.mode == "reference"


class TestMessagingIntegration:
    def test_incremental_service_matches_rebuild_service(self):
        """Two services over identical mobility: the incremental fabric
        must produce exactly the same session outcomes."""
        n = 120
        region = disc_for_density(n, DENSITY)
        rng = np.random.default_rng(11)
        model = RandomWaypoint(n, region, 1.0, rng)
        svc_inc = MessagingService(n, R_TX, max_levels=3, incremental=True)
        svc_ref = MessagingService(n, R_TX, max_levels=3, incremental=False)
        pair_rng = np.random.default_rng(12)
        compared = 0
        for step in range(5):
            model.step(1.0)
            pts = model.positions.copy()
            hop = EuclideanHops(pts, R_TX)
            svc_inc.observe(pts, hop)
            svc_ref.observe(pts, hop)
            if not svc_inc.ready:
                continue
            for _ in range(15):
                s, d = (int(x) for x in pair_rng.integers(0, n, size=2))
                assert svc_inc.send(s, d, hop) == svc_ref.send(s, d, hop), (step, s, d)
                compared += 1
        assert compared > 0
        # Delivery-only workloads never materialize flood records (lazy
        # tables), but the forward()-path flood caches do carry over.
        assert svc_inc._fabric_cache.stats.floods_reused > 0


class TestSharedDirtySets:
    def test_delta_plane_dirty_sets_match_internal_diff(self):
        """The event plane's ``HierarchyDelta.dirty_sets()`` must stand
        in exactly for the ancestry diff ``_carry`` computes itself —
        same sets, hence the same fabric, record for record."""
        from repro.hierarchy import compute_delta

        n = 130
        rng = np.random.default_rng(21)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        tr_a, tr_b = LinkTracker(n), LinkTracker(n)
        cache_int = FabricCache()   # computes dirty sets internally
        cache_ext = FabricCache()   # fed the delta plane's sets
        prev_h = None
        for step in range(6):
            h, g, edges = snapshot(n, pts)
            delta = compute_delta(prev_h, h)
            dirty = None if delta.full else delta.dirty_sets()
            if prev_h is not None:
                # The shared sets are literally what _carry derives.
                expect = [set() for _ in range(h.num_levels + 1)]
                for k in range(1, h.num_levels + 1):
                    moved = prev_h.ancestry(k) != h.ancestry(k)
                    if moved.any():
                        expect[k] = set(np.unique(
                            prev_h.ancestry(k)[moved]).tolist())
                        expect[k] |= set(np.unique(
                            h.ancestry(k)[moved]).tolist())
                assert dirty == expect
            fab_int = cache_int.update(h, g, tr_a.observe(edges))
            fab_ext = cache_ext.update(h, g, tr_b.observe(edges),
                                       dirty=dirty)
            ref = ForwardingFabric(h, g, mode="reference")
            assert_fabrics_equal(fab_ext, ref, n, 300 + step)
            assert_fabrics_equal(fab_ext, fab_int, n, 600 + step)
            prev_h = h
            pts = pts + rng.normal(scale=0.4, size=pts.shape)
        assert cache_ext.stats.records_reused > 0
