"""Shared-memory result transport: pack/unpack fidelity, sweep
integration (byte-identical caches vs pickling), and orphan reaping
after worker death."""

import hashlib
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.sim import Scenario, expand_grid, run_sweep
from repro.sim.shm import (
    SharedArrayPool,
    ShmPayload,
    cleanup_segments,
    pack_result,
    shm_available,
    sweep_prefix,
    unpack_result,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

BASE = Scenario(n=60, steps=5, warmup=1, speed=1.5, hop_mode="euclidean",
                max_levels=2)


def _shm_entries(prefix: str) -> list[str]:
    return [e for e in os.listdir("/dev/shm") if e.startswith(prefix)]


class TestPackUnpack:
    def test_roundtrip_bit_identical(self):
        obj = {
            "big": np.arange(50_000, dtype=np.float64).reshape(500, 100),
            "ints": np.arange(30_000, dtype=np.int64),
            "small": np.arange(7),
            "meta": ("hello", 3.5, [1, 2]),
        }
        prefix = sweep_prefix()
        payload = pack_result(obj, prefix)
        assert isinstance(payload, ShmPayload)
        back = unpack_result(payload)
        assert pickle.dumps(back) == pickle.dumps(obj)
        # The segment was unlinked by unpack; nothing left behind.
        assert not _shm_entries(prefix)

    def test_unpacked_arrays_are_writable_and_owned(self):
        obj = np.ones(20_000)
        payload = pack_result(obj, sweep_prefix())
        back = unpack_result(payload)
        back[0] = 7.0  # would raise on a read-only frombuffer view
        assert back.flags["OWNDATA"] or back.base is not None

    def test_small_objects_skip_the_segment(self):
        prefix = sweep_prefix()
        payload = pack_result({"x": np.arange(4), "y": 1}, prefix)
        assert isinstance(payload, bytes)
        assert not _shm_entries(prefix)
        back = unpack_result(payload)
        assert back["y"] == 1 and np.array_equal(back["x"], np.arange(4))

    def test_sim_result_roundtrip(self):
        from repro.sim.engine import run_scenario

        res = run_scenario(BASE)
        payload = pack_result(res, sweep_prefix(), threshold=64)
        back = unpack_result(payload)
        assert pickle.dumps(back) == pickle.dumps(res)

    def test_pool_publish_attach(self):
        pool = SharedArrayPool()
        arrays = {"u": np.arange(10), "v": np.ones((3, 4))}
        name, specs = pool.publish(arrays)
        reader = SharedArrayPool()
        views = reader.attach(name, specs)
        assert np.array_equal(views["u"], arrays["u"])
        assert np.array_equal(views["v"], arrays["v"])
        del views
        reader.close()
        pool.close()
        assert not _shm_entries(pool.prefix)


class TestSweepTransport:
    def _cache_digest(self, cache_dir) -> str:
        h = hashlib.sha256()
        for p in sorted(cache_dir.glob("*.pkl")):
            h.update(p.read_bytes())
        return h.hexdigest()

    def test_shm_and_pickle_caches_byte_identical(self, tmp_path):
        scs = expand_grid(BASE, [60], seeds=(0, 1))
        d_shm, d_pkl = tmp_path / "shm", tmp_path / "pkl"
        events = []
        run_sweep(scs, workers=2, cache_dir=d_shm, shm=True,
                  progress=events.append)
        assert all(e.ser_seconds > 0 for e in events if not e.from_cache)
        run_sweep(scs, workers=2, cache_dir=d_pkl, shm=False,
                  progress=events.append)
        assert self._cache_digest(d_shm) == self._cache_digest(d_pkl)
        assert not _shm_entries("repro_sweep")

    def test_serial_sweep_has_no_transport(self):
        events = []
        run_sweep(expand_grid(BASE, [60], seeds=(0,)), workers=0,
                  shm=True, progress=events.append)
        assert events[0].ser_seconds == 0.0

    def test_env_override_disables_shm(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_SHM", "0")
        from repro.sim.sweep import _resolve_shm

        assert _resolve_shm(None, 2) is False
        assert _resolve_shm(True, 2) is True  # explicit arg wins

    def test_shm_never_engages_serially(self):
        from repro.sim.sweep import _resolve_shm

        assert _resolve_shm(True, 0) is False


class TestOrphanReaping:
    def test_killed_worker_segment_is_swept(self):
        """A worker that dies after publishing leaks its segment; the
        prefix sweep must find and unlink it."""
        prefix = sweep_prefix()
        pid = os.fork()
        if pid == 0:  # child: publish, then die without unlinking
            pack_result(np.arange(100_000, dtype=np.float64), prefix)
            os.kill(os.getpid(), signal.SIGKILL)
        os.waitpid(pid, 0)
        assert len(_shm_entries(prefix)) == 1
        assert cleanup_segments(prefix) == 1
        assert not _shm_entries(prefix)

    def test_cleanup_ignores_other_prefixes(self):
        mine, other = sweep_prefix(), sweep_prefix()
        payload = pack_result(np.arange(100_000, dtype=np.float64), other)
        try:
            assert cleanup_segments(mine) == 0
            assert _shm_entries(other)
        finally:
            cleanup_segments(other)

    def test_sweep_reaps_orphans_from_crashed_workers(self, tmp_path):
        """End-to-end: a sweep whose worker crashes mid-flight must not
        leave segments behind once it returns."""
        import repro.sim.sweep as sweep_mod

        before = set(_shm_entries("repro_sweep"))
        scs = expand_grid(BASE, [60], seeds=(0, 1))
        run_sweep(scs, workers=2, shm=True, task_retries=0)
        assert set(_shm_entries("repro_sweep")) == before
