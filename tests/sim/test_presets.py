"""Tests for scenario presets."""

import pytest

from repro.sim import PRESETS, Scenario, make_scenario, run_scenario


class TestPresets:
    def test_all_presets_valid(self):
        for name in PRESETS:
            sc = make_scenario(name, n=50, steps=3, warmup=1)
            assert isinstance(sc, Scenario)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            make_scenario("mars-rover")

    def test_overrides_win(self):
        sc = make_scenario("paper-default", speed=3.0, n=77)
        assert sc.speed == 3.0
        assert sc.n == 77

    def test_expected_regimes(self):
        assert make_scenario("squads").mobility == "group"
        assert make_scenario("sensor-field").mobility == "stationary"
        assert make_scenario("sensor-field").failure_rate > 0
        assert make_scenario("vehicular").mobility == "gauss_markov"

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_runnable(self, name):
        sc = make_scenario(name, n=60, steps=3, warmup=1,
                           hop_mode="euclidean", max_levels=2, seed=1)
        res = run_scenario(sc, hop_sample_every=10)
        assert res.elapsed > 0
