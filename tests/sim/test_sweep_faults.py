"""Crash, timeout, and retry tests for the fault-tolerant sweep runner.

Worker functions live at module level so ``ProcessPoolExecutor`` can
pickle them by qualified name; the crash tests genuinely SIGKILL the
worker process, exercising the ``BrokenProcessPool`` path end to end.
"""

import os
import signal
import time

import pytest

from repro.sim import (
    Scenario,
    SweepError,
    SweepRun,
    TaskError,
    expand_grid,
    parallel_map,
    run_sweep,
    run_sweep_detailed,
)

GOOD = Scenario(n=60, steps=3, warmup=1, speed=1.5, hop_mode="euclidean",
                max_levels=2)
BAD = Scenario(n=60, steps=3, warmup=1, mobility="nope", max_levels=2)
"""Constructs fine but raises inside the worker at model build time."""


def _inc(x):
    return x + 1


def _boom(x):
    raise ValueError(f"bad item {x}")


def _die_once(path):
    """SIGKILL the worker on first call; succeed once the sentinel exists."""
    if not os.path.exists(path):
        open(path, "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _die_always(_x):
    os.kill(os.getpid(), signal.SIGKILL)


def _hang(_x):
    time.sleep(600)


def _report_pid_then_finish(outdir):
    """Drop a pid marker, simulate work, then drop a completion marker.

    A worker that survives an interrupt untreated finishes the "work"
    and writes the ``.done`` file; a terminated one never does."""
    base = os.path.join(outdir, str(os.getpid()))
    open(base + ".pid", "w").close()
    time.sleep(2.0)
    open(base + ".done", "w").close()
    return "finished"


class TestCrashRecovery:
    def test_killed_worker_is_retried_and_succeeds(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        out = parallel_map(_die_once, [sentinel], workers=2,
                           task_retries=1, retry_backoff=0.01)
        assert out == ["survived"]

    def test_killed_worker_yields_partial_results_and_error_record(self):
        with pytest.raises(SweepError) as ei:
            parallel_map(_die_always, [7], workers=2,
                         task_retries=1, retry_backoff=0.01)
        run = ei.value.run
        assert isinstance(run, SweepRun) and not run.ok
        assert run.results == [None]
        (err,) = run.errors
        assert err.kind == "crash"
        assert err.index == 0
        assert err.attempts == 2  # first try + one retry
        assert "died" in err.message or "broke" in err.message

    def test_partial_mode_returns_none_holes(self):
        out = parallel_map(_die_always, [7], workers=2, task_retries=0,
                           retry_backoff=0.01, on_error="partial")
        assert out == [None]


class TestTimeout:
    def test_hung_worker_times_out_with_record(self):
        with pytest.raises(SweepError) as ei:
            parallel_map(_hang, [None], workers=2, task_timeout=0.5,
                         task_retries=0, retry_backoff=0.01)
        (err,) = ei.value.run.errors
        assert err.kind == "timeout"
        assert "task_timeout" in err.message


class TestInterruptTeardown:
    def test_keyboard_interrupt_terminates_workers(self, tmp_path,
                                                   monkeypatch):
        """Regression: Ctrl-C used to tear down workers only in the
        timeout branch; any other exit left them running their tasks as
        orphans.  An interrupt mid-round must kill every live worker."""
        import repro.sim.sweep as sweep_mod

        def interrupting_wait(pending, timeout=None, return_when=None):
            # Let both workers start (pid markers appear), then act as
            # if the user hit Ctrl-C while the round was in flight.
            deadline = time.monotonic() + 30.0
            while len(list(tmp_path.glob("*.pid"))) < 2:
                if time.monotonic() > deadline:  # pragma: no cover
                    raise AssertionError("workers never started")
                time.sleep(0.02)
            raise KeyboardInterrupt

        monkeypatch.setattr(sweep_mod, "wait", interrupting_wait)
        with pytest.raises(KeyboardInterrupt):
            sweep_mod._parallel_round(
                _report_pid_then_finish,
                {0: str(tmp_path), 1: str(tmp_path)},
                2, None, lambda i, res: None)
        # Terminated workers die inside the sleep and never write the
        # completion marker; orphans would write it ~2s after starting.
        time.sleep(2.5)
        assert len(list(tmp_path.glob("*.pid"))) == 2
        assert list(tmp_path.glob("*.done")) == []


class TestExceptionRetries:
    def test_attempts_bounded_and_counted(self):
        with pytest.raises(SweepError) as ei:
            parallel_map(_boom, [1], workers=0, task_retries=2,
                         retry_backoff=0.0)
        (err,) = ei.value.run.errors
        assert err.kind == "exception"
        assert err.attempts == 3  # 1 + task_retries
        assert "bad item 1" in err.message

    def test_healthy_items_unaffected_by_failures(self):
        out = parallel_map(_inc, [1, 2, 3], workers=0, task_retries=0)
        assert out == [2, 3, 4]
        partial = parallel_map(_boom, [1, 2], workers=0, task_retries=0,
                               retry_backoff=0.0, on_error="partial")
        assert partial == [None, None]

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_sweep_detailed([GOOD], task_retries=-1)
        with pytest.raises(ValueError):
            run_sweep([GOOD], on_error="sometimes")


class TestSweepPartialResults:
    """The acceptance scenario: a grid where one task fails must still
    complete every healthy task and report the failure structurally."""

    def test_detailed_run_completes_healthy_tasks(self):
        run = run_sweep_detailed([GOOD, BAD], hop_sample_every=4,
                                 task_retries=0, retry_backoff=0.0)
        assert len(run.results) == 2
        assert run.results[0] is not None
        assert run.results[0].scenario == GOOD
        assert run.results[1] is None
        assert not run.ok
        (err,) = run.errors
        assert isinstance(err, TaskError)
        assert err.index == 1 and err.kind == "exception"
        assert err.scenario == BAD
        assert "unknown mobility" in err.message

    def test_run_sweep_raises_at_end_with_partials_attached(self):
        with pytest.raises(SweepError) as ei:
            run_sweep([GOOD, BAD], hop_sample_every=4, task_retries=0,
                      retry_backoff=0.0)
        run = ei.value.run
        assert run.results[0] is not None and run.results[1] is None
        assert "task 1" in str(ei.value)

    def test_run_sweep_partial_mode(self):
        out = run_sweep([BAD, GOOD], hop_sample_every=4, task_retries=0,
                        retry_backoff=0.0, on_error="partial")
        assert out[0] is None and out[1] is not None

    def test_failed_task_is_retried(self):
        run = run_sweep_detailed([BAD], hop_sample_every=4, task_retries=2,
                                 retry_backoff=0.0)
        assert run.errors[0].attempts == 3

    def test_parallel_grid_with_crasher_keeps_healthy_results(self):
        """Mixed grid through real processes: the healthy scenarios all
        finish (possibly via retry after the pool breaks) and match the
        serial run bit-for-bit."""
        grid = expand_grid(GOOD, [60], seeds=(0, 1)) + [BAD]
        run = run_sweep_detailed(grid, hop_sample_every=4, workers=2,
                                 task_retries=2, retry_backoff=0.01)
        assert [r is not None for r in run.results] == [True, True, False]
        serial = run_sweep(grid[:2], hop_sample_every=4, workers=0)
        for got, want in zip(run.results[:2], serial):
            assert got.phi == want.phi and got.gamma == want.gamma
        assert run.errors[0].scenario == BAD
