"""Tests for event traces and their simulator integration."""

import pytest

from repro.sim import EventTrace, Scenario, Simulator


class TestEventTrace:
    def test_record_and_len(self):
        t = EventTrace()
        t.record(1.0, "migration", node=5, level=2)
        t.record(2.0, "handoff", phi=3)
        assert len(t) == 2

    def test_filter_by_kind(self):
        t = EventTrace()
        t.record(1.0, "a")
        t.record(2.0, "b")
        t.record(3.0, "a")
        assert len(t.filter(kind="a")) == 2

    def test_filter_by_time(self):
        t = EventTrace()
        for i in range(5):
            t.record(float(i), "x")
        assert len(t.filter(t_min=1.0, t_max=3.0)) == 3

    def test_summary(self):
        t = EventTrace()
        t.record(0, "a")
        t.record(0, "a")
        t.record(0, "b")
        assert t.summary() == {"a": 2, "b": 1}

    def test_capacity_drops_counted(self):
        t = EventTrace(capacity=2)
        for i in range(5):
            t.record(float(i), "x")
        assert len(t) == 2
        assert t.dropped == 3
        assert "dropped" in t.to_lines()[-1]

    def test_to_lines_limit(self):
        t = EventTrace()
        for i in range(10):
            t.record(float(i), "x", i=i)
        lines = t.to_lines(limit=3)
        assert len(lines) == 3
        assert "i=9" in lines[-1]

    def test_str_rendering(self):
        t = EventTrace()
        t.record(1.5, "migration", node=3)
        assert "migration" in str(t.events[0])
        assert "node=3" in str(t.events[0])

    def test_iteration(self):
        t = EventTrace()
        t.record(0, "x")
        assert [ev.kind for ev in t] == ["x"]

    def test_saturation_keeps_newest(self):
        t = EventTrace(capacity=3)
        for i in range(10):
            t.record(float(i), "x", i=i)
        assert [ev.payload["i"] for ev in t] == [7, 8, 9]
        assert t.dropped == 7

    def test_saturated_jsonl_round_trip(self, tmp_path):
        t = EventTrace(capacity=4)
        for i in range(12):
            t.record(float(i), "migration", node=i)
        path = tmp_path / "trace.jsonl"
        t.to_jsonl(path)
        back = EventTrace.from_jsonl(path)
        assert [ev.payload["node"] for ev in back] == [8, 9, 10, 11]
        assert back.dropped == t.dropped == 8
        assert back.capacity == 4
        # The restored ring is live, not just a transcript: one more
        # record evicts the oldest surviving event.
        back.record(12.0, "migration", node=12)
        assert [ev.payload["node"] for ev in back] == [9, 10, 11, 12]
        assert back.dropped == 9


class TestSimulatorIntegration:
    def test_trace_collected(self):
        sc = Scenario(n=80, steps=8, warmup=2, speed=2.0, seed=1, max_levels=3)
        sim = Simulator(sc, trace=True)
        res = sim.run()
        assert res.trace is not None
        assert len(res.trace) > 0
        kinds = set(res.trace.summary())
        assert "handoff" in kinds or any(k.startswith("reorg") for k in kinds)

    def test_trace_off_by_default(self):
        sc = Scenario(n=60, steps=4, warmup=1, speed=2.0, seed=1, max_levels=2)
        res = Simulator(sc).run()
        assert res.trace is None

    def test_stationary_trace_empty(self):
        sc = Scenario(n=60, steps=4, warmup=0, mobility="stationary",
                      seed=1, max_levels=2)
        res = Simulator(sc, trace=True).run()
        assert len(res.trace) == 0
