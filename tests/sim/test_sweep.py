"""Tests for the parallel sweep runner and its result cache."""

from dataclasses import replace

import numpy as np
import pytest

import repro.sim.sweep as sweep_mod
from repro.analysis import sweep
from repro.sim import (
    Scenario,
    cached_sweep,
    expand_grid,
    parallel_map,
    run_sweep,
    scenario_key,
)

BASE = Scenario(n=60, steps=5, warmup=1, speed=1.5, hop_mode="euclidean",
                max_levels=2)


def _fingerprint(res):
    """Every scalar metric stream of a SimResult, for bit-identity checks."""
    return (
        res.phi, res.gamma, res.f0, res.handoff_rate, res.mean_degree,
        res.giant_fraction, res.elapsed,
        dict(res.level_series.link_events),
        dict(res.level_series.drift_link_events),
        dict(res.level_series.address_changes),
        res.h_network, res.h_levels,
        res.ledger.phi_k(), res.ledger.gamma_k(), res.ledger.f_k(),
    )


def _double(x: float) -> float:
    """Module-level so parallel_map can pickle it."""
    return 2.0 * x


class TestExpandGrid:
    def test_sizes_times_seeds(self):
        grid = expand_grid(BASE, [60, 90], seeds=(0, 1, 2))
        assert [(s.n, s.seed) for s in grid] == [
            (60, 0), (60, 1), (60, 2), (90, 0), (90, 1), (90, 2),
        ]

    def test_hook_applied_before_seeding(self):
        grid = expand_grid(
            BASE, [60], seeds=(5,),
            scenario_for=lambda sc, n: replace(sc, max_levels=1),
        )
        assert grid[0].max_levels == 1 and grid[0].seed == 5

    def test_no_sizes_varies_seeds_only(self):
        grid = expand_grid(BASE, None, seeds=(0, 1))
        assert [(s.n, s.seed) for s in grid] == [(60, 0), (60, 1)]


class TestDeterminism:
    def test_parallel_bit_identical_to_serial(self):
        grid = expand_grid(BASE, [60, 90], seeds=(0, 1))
        serial = run_sweep(grid, hop_sample_every=4, workers=0)
        parallel = run_sweep(grid, hop_sample_every=4, workers=2)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.scenario == b.scenario
            assert _fingerprint(a) == _fingerprint(b)
            assert np.array_equal(a.final_positions, b.final_positions)

    def test_cached_sweep_matches_analysis_sweep(self):
        metrics = {"total": lambda r: r.handoff_rate, "f0": lambda r: r.f0}
        a = sweep([60, 90], BASE, metrics, seeds=(0, 1))
        b = cached_sweep([60, 90], BASE, metrics, seeds=(0, 1), workers=2)
        for p, q in zip(a, b):
            assert p.n == q.n
            assert p.values == q.values
            assert p.stds == q.stds


class TestCache:
    def test_second_invocation_hits_cache(self, tmp_path, monkeypatch):
        grid = expand_grid(BASE, [60], seeds=(0, 1))
        first = run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.pkl"))) == 2

        # Any attempt to simulate now is a bug: results must come purely
        # from the cache.
        def boom(args):
            raise AssertionError("cache miss: re-simulated a cached run")

        monkeypatch.setattr(sweep_mod, "_run_task", boom)
        second = run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        for a, b in zip(first, second):
            assert _fingerprint(a) == _fingerprint(b)

    def test_progress_reports_cache_hits(self, tmp_path):
        grid = expand_grid(BASE, [60], seeds=(0,))
        run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        events = []
        run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path,
                  progress=events.append)
        assert [e.from_cache for e in events] == [True]
        assert events[-1].done == events[-1].total == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        grid = expand_grid(BASE, [60], seeds=(0,))
        key = scenario_key(grid[0], 4)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        res = run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        assert res[0].phi >= 0  # re-simulated, and
        serial = run_sweep(grid, hop_sample_every=4)
        assert _fingerprint(res[0]) == _fingerprint(serial[0])

    def test_truncated_entry_is_a_miss_and_self_heals(self, tmp_path):
        """A pickle cut off mid-write (crash during a non-atomic copy,
        disk full...) must re-simulate, then overwrite the bad entry."""
        grid = expand_grid(BASE, [60], seeds=(0,))
        first = run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        path = tmp_path / f"{scenario_key(grid[0], 4)}.pkl"
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        again = run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        assert _fingerprint(again[0]) == _fingerprint(first[0])
        assert path.read_bytes() == blob  # entry rewritten whole

    def test_wrong_object_type_is_a_miss(self, tmp_path):
        """A valid pickle of the wrong type (cache dir shared with other
        tooling) must be treated as a miss, not returned as a result."""
        import pickle

        grid = expand_grid(BASE, [60], seeds=(0,))
        path = tmp_path / f"{scenario_key(grid[0], 4)}.pkl"
        path.write_bytes(pickle.dumps({"not": "a SimResult"}))
        res = run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        assert _fingerprint(res[0]) == _fingerprint(
            run_sweep(grid, hop_sample_every=4)[0]
        )

    def test_corrupt_entry_through_cached_sweep(self, tmp_path):
        """End-to-end: cached_sweep over a poisoned cache still returns
        correct aggregates."""
        metrics = {"total": lambda r: r.handoff_rate}
        clean = cached_sweep([60], BASE, metrics, seeds=(0,))
        for sc in expand_grid(BASE, [60], seeds=(0,)):
            # None resolves to the scenario's own cadence — the same key
            # the cached_sweep default below computes.
            bad = tmp_path / f"{scenario_key(sc, None)}.pkl"
            bad.write_bytes(b"\x80\x04garbage")
        poisoned = cached_sweep([60], BASE, metrics, seeds=(0,),
                                cache_dir=tmp_path)
        assert poisoned[0].values == clean[0].values

    def test_no_cache_dir_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_sweep(expand_grid(BASE, [60], seeds=(0,)), hop_sample_every=4)
        assert not list(tmp_path.rglob("*.pkl"))


class TestCachedSweepShapes:
    """Regressions: ``expand_grid`` accepts ns=None and any iterable, so
    ``cached_sweep`` must too (it used to crash on None and return zero
    points for a generator consumed during grid expansion)."""

    METRICS = {"total": lambda r: r.handoff_rate}

    def test_ns_none_falls_back_to_base_size(self):
        points = cached_sweep(None, BASE, self.METRICS, seeds=(0, 1))
        assert [p.n for p in points] == [BASE.n]
        assert points[0].seeds == 2
        explicit = cached_sweep([BASE.n], BASE, self.METRICS, seeds=(0, 1))
        assert points[0].values == explicit[0].values

    def test_generator_ns_yields_every_point(self):
        lazy = cached_sweep((n for n in [60, 90]), BASE, self.METRICS,
                            seeds=(0,))
        eager = cached_sweep([60, 90], BASE, self.METRICS, seeds=(0,))
        assert [p.n for p in lazy] == [60, 90]
        assert [(p.n, p.values) for p in lazy] == \
            [(p.n, p.values) for p in eager]

    def test_numpy_ns_axis(self):
        points = cached_sweep(np.array([60, 90]), BASE, self.METRICS,
                              seeds=(0,))
        assert [p.n for p in points] == [60, 90]
        assert all(type(p.n) is int for p in points)


class TestMissingMetricAggregation:
    """Regression: a metric returning None ("not measured in this run")
    used to crash ``float()`` or get zeroed via ``or 0.0`` wrappers,
    dragging down mixed-grid means.  None now propagates as NaN and is
    skipped by the aggregation."""

    METRICS = {"succ": lambda r: r.query_success_rate,
               "phi": lambda r: r.phi}

    def test_unmeasured_cells_skip_not_zero(self):
        # n=60 samples queries; n=90 samples none.  The no-query point
        # must report NaN — not 0.0, which would poison grid-wide
        # averages downstream.
        def per_n(sc, n):
            return replace(sc, queries_per_step=3 if n == 60 else 0)

        lo, hi = cached_sweep([60, 90], BASE, self.METRICS, seeds=(0, 1),
                              scenario_for=per_n, keep_results=True)
        rates = [r.query_success_rate for r in lo.results]
        assert all(r is not None for r in rates)
        assert lo.values["succ"] == float(np.mean(rates))
        assert all(r.query_success_rate is None for r in hi.results)
        assert np.isnan(hi.values["succ"])
        assert np.isnan(hi.stds["succ"])
        # Metrics measured everywhere aggregate exactly as before.
        for p in (lo, hi):
            assert p.values["phi"] == float(
                np.mean([r.phi for r in p.results]))


class TestScenarioKey:
    def test_stable(self):
        assert scenario_key(BASE, 4) == scenario_key(replace(BASE), 4)

    def test_numpy_fields_hash_like_native(self):
        """Regression: a scenario built from an ``np.arange`` size axis
        (``n=np.int64(...)``) must hit the cache entries written by the
        equal native-int scenario — ``default=str`` used to serialize
        the two differently."""
        native = replace(BASE, n=60, speed=1.5, seed=0)
        numpied = replace(BASE, n=np.int64(60), speed=np.float64(1.5),
                          seed=np.int64(0))
        assert scenario_key(numpied, 4) == scenario_key(native, 4)

    def test_numpy_key_hits_native_cache(self, tmp_path):
        """End to end: results cached under native-int keys replay for
        the numpy-typed equal grid (no silent re-simulation)."""
        native = expand_grid(BASE, [60], seeds=(0,))
        run_sweep(native, hop_sample_every=4, cache_dir=tmp_path)
        events = []
        numpied = [replace(BASE, n=np.int64(60), seed=np.int64(0))]
        run_sweep(numpied, hop_sample_every=4, cache_dir=tmp_path,
                  progress=events.append)
        assert [e.from_cache for e in events] == [True]

    def test_profile_gets_its_own_key(self):
        assert scenario_key(BASE, 4, profile=True) != scenario_key(BASE, 4)
        # profile=False keeps the historical payload, so existing caches
        # still hit.
        assert scenario_key(BASE, 4, profile=False) == scenario_key(BASE, 4)

    def test_every_field_matters(self):
        baseline = scenario_key(BASE, 4)
        changed = {
            "n": 61, "density": 0.03, "target_degree": 8.0, "speed": 2.0,
            "dt": 0.5, "steps": 6, "warmup": 2, "mobility": "stationary",
            "seed": 1, "hop_mode": "bfs", "max_levels": 3,
        }
        for field, value in changed.items():
            assert scenario_key(replace(BASE, **{field: value}), 4) != baseline, field

    def test_cadence_and_code_version_matter(self, monkeypatch):
        assert scenario_key(BASE, 4) != scenario_key(BASE, 8)
        before = scenario_key(BASE, 4)
        monkeypatch.setattr(sweep_mod, "CODE_VERSION", "test-bump")
        assert scenario_key(BASE, 4) != before


class TestParallelMap:
    def test_order_preserved(self):
        xs = [3.0, 1.0, 2.0]
        assert parallel_map(_double, xs, workers=2) == [6.0, 2.0, 4.0]

    def test_serial_fallback(self):
        assert parallel_map(_double, [1.0], workers=0) == [2.0]

    def test_empty(self):
        assert parallel_map(_double, [], workers=4) == []


class TestProgressTelemetry:
    def test_task_seconds_is_per_task_not_sweep_total(self):
        grid = expand_grid(BASE, [60], seeds=(0, 1, 2))
        events = []
        run_sweep(grid, hop_sample_every=4, progress=events.append)
        assert len(events) == 3
        # Sweep elapsed is monotone; per-task durations are not cumulative.
        assert [e.elapsed for e in events] == sorted(e.elapsed for e in events)
        assert sum(e.task_seconds for e in events) <= events[-1].elapsed + 0.1
        for e in events:
            assert 0 < e.task_seconds <= e.elapsed + 1e-9
            assert e.attempts == 1

    def test_parallel_events_carry_worker_pids(self):
        import os

        grid = expand_grid(BASE, [60, 90], seeds=(0, 1))
        events = []
        run_sweep(grid, hop_sample_every=4, workers=2,
                  progress=events.append)
        workers = {e.worker for e in events}
        assert None not in workers
        assert os.getpid() not in workers

    def test_cache_hits_report_load_time(self, tmp_path):
        grid = expand_grid(BASE, [60], seeds=(0,))
        run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        events = []
        run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path,
                  progress=events.append)
        assert events[0].from_cache
        assert events[0].worker is None
        assert 0 <= events[0].task_seconds < 5.0

    def test_print_progress_reports_both_clocks(self, capsys):
        from repro.sim import SweepProgress, print_progress

        print_progress(SweepProgress(
            done=1, total=2, cached=0, scenario=BASE, elapsed=12.5,
            from_cache=False, task_seconds=3.25, worker=123, attempts=2,
        ))
        err = capsys.readouterr().err
        assert "3.25s task" in err
        assert "12.5s sweep" in err
        assert "x2" in err  # retried task is visible


class TestProfiledSweep:
    def test_profile_attaches_timings_and_keeps_metrics(self):
        grid = expand_grid(BASE, [60], seeds=(0,))
        plain = run_sweep(grid, hop_sample_every=4)
        profiled = run_sweep(grid, hop_sample_every=4, profile=True)
        assert _fingerprint(plain[0]) == _fingerprint(profiled[0])
        assert plain[0].timings is None
        assert profiled[0].timings.steps == BASE.steps

    def test_profiled_cache_entry_round_trips_timings(self, tmp_path):
        grid = expand_grid(BASE, [60], seeds=(0,))
        first = run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path,
                          profile=True)
        events = []
        again = run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path,
                          profile=True, progress=events.append)
        assert [e.from_cache for e in events] == [True]
        assert again[0].timings.totals == first[0].timings.totals

    def test_profiled_and_plain_caches_are_disjoint(self, tmp_path):
        grid = expand_grid(BASE, [60], seeds=(0,))
        run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path)
        run_sweep(grid, hop_sample_every=4, cache_dir=tmp_path, profile=True)
        assert len(list(tmp_path.glob("*.pkl"))) == 2


class TestRunSweepBasics:
    def test_empty_grid(self):
        assert run_sweep([]) == []

    def test_results_in_task_order(self):
        grid = expand_grid(BASE, [90, 60], seeds=(1, 0))
        res = run_sweep(grid, hop_sample_every=4, workers=2)
        assert [(r.scenario.n, r.scenario.seed) for r in res] == [
            (90, 1), (90, 0), (60, 1), (60, 0),
        ]

    def test_cached_sweep_rejects_empty_metrics(self):
        with pytest.raises(ValueError):
            cached_sweep([60], BASE, {}, seeds=(0,))
