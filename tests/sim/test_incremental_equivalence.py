"""Equivalence matrix for the event-driven hierarchy plane.

The standing contract of every incremental feature in this repo:
switched on, ``Scenario.incremental_hierarchy`` must produce **the same
numbers** as the full per-step rebuild — every series, every per-level
breakdown, every (i)-(vii) event count — across plain, lossy, chaos,
stateful-election, and contraction regimes, and through a
checkpoint/resume cycle.  No tolerance, no "statistically close":
bit-identical.
"""

from dataclasses import replace

import pytest

from repro.sim import Scenario, run_scenario
from repro.sim.engine import Simulator


def _fingerprint(res):
    lg = res.ledger
    return (
        res.phi, res.gamma, res.f0, res.handoff_rate,
        res.mean_degree, res.giant_fraction,
        tuple(sorted(lg.phi_k().items())),
        tuple(sorted(lg.gamma_k().items())),
        tuple(sorted(lg.f_k().items())),
        tuple(sorted(
            ((kind.value, lvl), count)
            for (kind, lvl), count in lg.reorg_event_counts.items()
        )),
        lg.retransmitted_packets, lg.abandoned_entries,
        lg.recovered_entries, lg.recovery_time_total,
        tuple(lg.stale_series),
        tuple(res.h_network),
        tuple((k, tuple(v)) for k, v in sorted(res.h_levels.items())),
    )


def _pair(sc, hop_sample_every=25):
    """Run the scenario with the delta plane off and on."""
    off = run_scenario(replace(sc, incremental_hierarchy=False),
                       hop_sample_every=hop_sample_every)
    on = run_scenario(replace(sc, incremental_hierarchy=True),
                      hop_sample_every=hop_sample_every)
    return off, on


class TestRegimeMatrix:
    def test_plain(self):
        off, on = _pair(Scenario(n=80, steps=8, warmup=2, seed=3,
                                 max_levels=3))
        assert _fingerprint(off) == _fingerprint(on)

    def test_lossy_with_queries(self):
        off, on = _pair(Scenario(n=100, steps=12, warmup=3, seed=11,
                                 max_levels=3, loss_rate=0.08,
                                 retry_attempts=3, queries_per_step=4))
        assert _fingerprint(off) == _fingerprint(on)
        assert off.queries.attempts == on.queries.attempts
        assert off.queries.success_series == on.queries.success_series

    def test_chaos_crash_and_partition(self):
        off, on = _pair(Scenario(
            n=90, steps=12, warmup=3, seed=7, max_levels=3,
            chaos=("crash:start=2,duration=4,rate=0.04,repair=3",
                   "partition:start=7,duration=3"),
        ))
        assert _fingerprint(off) == _fingerprint(on)
        assert (off.extras["chaos"].total_violations
                == on.extras["chaos"].total_violations)

    def test_sticky_elections(self):
        off, on = _pair(Scenario(n=80, steps=10, warmup=2, seed=5,
                                 max_levels=3, election_mode="sticky"))
        assert _fingerprint(off) == _fingerprint(on)

    def test_persistent_elections(self):
        off, on = _pair(Scenario(n=80, steps=10, warmup=2, seed=9,
                                 max_levels=3, election_mode="persistent"))
        assert _fingerprint(off) == _fingerprint(on)

    def test_contraction_levels(self):
        off, on = _pair(Scenario(n=80, steps=8, warmup=2, seed=13,
                                 max_levels=3, level_mode="contraction"))
        assert _fingerprint(off) == _fingerprint(on)


class TestResume:
    def test_resumed_incremental_run_is_bit_identical(self, tmp_path):
        """Interrupt an incremental run mid-flight; the resumed half
        must reproduce the uninterrupted run exactly (the delta plane
        and edge cache ride the checkpoint)."""
        sc = Scenario(n=80, steps=12, warmup=3, seed=0, max_levels=3,
                      incremental_hierarchy=True)
        baseline = Simulator(sc).run()

        path = tmp_path / "inc.ckpt"
        Simulator(sc).run(checkpoint_every=5, checkpoint_path=str(path))
        resumed_sim = Simulator.restore(str(path))
        assert 0 < resumed_sim.next_step < sc.steps
        assert resumed_sim._delta_plane is not None
        assert resumed_sim._edge_cache is not None
        resumed = resumed_sim.run()
        assert _fingerprint(baseline) == _fingerprint(resumed)

    def test_resume_matches_full_rebuild_run(self, tmp_path):
        """Transitively: resumed-incremental == incremental == full."""
        sc = Scenario(n=70, steps=10, warmup=2, seed=4, max_levels=3)
        full = run_scenario(sc, hop_sample_every=25)

        inc = replace(sc, incremental_hierarchy=True)
        path = tmp_path / "inc2.ckpt"
        Simulator(inc).run(checkpoint_every=4, checkpoint_path=str(path))
        resumed = Simulator.restore(str(path)).run()
        assert _fingerprint(full) == _fingerprint(resumed)


class TestScenarioValidation:
    def test_requires_lca_clustering(self):
        with pytest.raises(ValueError, match="delta plane"):
            Scenario(n=40, steps=4, clustering="maxmin",
                     incremental_hierarchy=True)

    def test_requires_rendezvous_hash(self):
        with pytest.raises(ValueError, match="rendezvous"):
            Scenario(n=40, steps=4, hash_fn="naive",
                     incremental_hierarchy=True)

    def test_flag_changes_sweep_cache_key(self):
        """Incremental runs must never collide with full-rebuild cache
        entries (they are equivalent, but the cache must not *assume*
        it)."""
        from repro.sim.sweep import scenario_key

        off = Scenario(n=40, steps=4)
        on = replace(off, incremental_hierarchy=True)
        assert scenario_key(off) != scenario_key(on)


class TestCliFlag:
    @pytest.mark.parametrize("cmd", ["simulate", "serve", "sweep"])
    def test_parser_accepts_both_forms(self, cmd):
        from repro.cli import build_parser

        parser = build_parser()
        on = parser.parse_args([cmd, "--incremental-hierarchy"])
        off = parser.parse_args([cmd, "--no-incremental-hierarchy"])
        default = parser.parse_args([cmd])
        assert on.incremental_hierarchy is True
        assert off.incremental_hierarchy is False
        assert default.incremental_hierarchy is False
