"""Tests for scenario configuration."""

import numpy as np
import pytest

from repro.sim import Scenario


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 1},
            {"density": 0.0},
            {"target_degree": 0.0},
            {"dt": 0.0},
            {"steps": 0},
            {"warmup": -1},
            {"hop_mode": "psychic"},
            {"detour": 0.5},
            {"verlet_skin": 0.0},
            {"verlet_skin": -0.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            Scenario(**kwargs)

    def test_defaults_valid(self):
        sc = Scenario()
        assert sc.n == 200

    @pytest.mark.parametrize(
        "field",
        ["density", "target_degree", "speed", "dt", "detour", "failure_rate",
         "repair_time", "loss_rate", "loss_level_coeff", "retry_attempts",
         "retry_backoff", "retry_backoff_factor", "retry_jitter",
         "retry_timeout", "verlet_skin"],
    )
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_floats(self, field, bad):
        with pytest.raises((ValueError, TypeError)):
            Scenario(**{field: bad})

    def test_rejects_non_finite_speed_tuple(self):
        with pytest.raises(ValueError):
            Scenario(speed=(1.0, float("nan")))

    def test_error_message_names_the_field(self):
        with pytest.raises(ValueError, match="density"):
            Scenario(density=float("nan"))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_rate": -0.01},
            {"loss_rate": 1.0},   # certain loss: every message spins
            {"loss_rate": 1.5},
            {"loss_level_coeff": -1.0},
            {"retry_attempts": 0},
            {"retry_backoff": -0.1},
            {"retry_backoff_factor": 0.5},
            {"retry_jitter": -0.2},
            {"retry_timeout": 0.0},
            {"queries_per_step": -1},
        ],
    )
    def test_rejects_bad_fault_fields(self, kwargs):
        with pytest.raises(ValueError):
            Scenario(**kwargs)

    def test_loss_rate_message_is_actionable(self):
        with pytest.raises(ValueError, match=r"loss_rate.*\[0, 1\)"):
            Scenario(loss_rate=1.2)

    @pytest.mark.parametrize("steps", [0, -3])
    def test_zero_steps_rejected_with_actionable_message(self, steps):
        """Pinned behavior: a steps<1 scenario is rejected up front (the
        engine divides by ``steps`` for every per-step rate), and the
        message points at ``warmup`` for unmetered mixing."""
        with pytest.raises(ValueError, match=r"steps must be >= 1.*warmup"):
            Scenario(steps=steps)

    def test_faults_enabled_gate(self):
        assert not Scenario().faults_enabled
        assert not Scenario(retry_attempts=5).faults_enabled
        assert Scenario(loss_rate=0.01).faults_enabled

    def test_fault_helpers_mirror_fields(self):
        sc = Scenario(loss_rate=0.1, loss_level_coeff=0.2, retry_attempts=3,
                      retry_backoff=0.5, retry_backoff_factor=3.0,
                      retry_jitter=0.0, retry_timeout=9.0)
        assert sc.loss_model().rate == 0.1
        assert sc.loss_model().level_coeff == 0.2
        policy = sc.retry_policy()
        assert policy.max_attempts == 3
        assert policy.base_backoff == 0.5
        assert policy.backoff_factor == 3.0
        assert policy.jitter == 0.0
        assert policy.timeout == 9.0


class TestChaosFields:
    @pytest.mark.parametrize("kwargs", [
        {"chaos": ("crash:rate=-1",)},              # bad episode value
        {"chaos": ("meteor:start=1,duration=2",)},  # unknown kind
        {"chaos": ("partition:start=1,duration=-2",)},
        {"invariant_mode": "loose"},
        {"slo_success_threshold": 0.0},
        {"slo_success_threshold": 1.5},
        {"slo_success_threshold": float("nan")},
        {"slo_window": 0},
    ])
    def test_rejects_bad_chaos_values(self, kwargs):
        with pytest.raises(ValueError):
            Scenario(**kwargs)

    def test_rejects_non_episode_chaos_entries(self):
        with pytest.raises(TypeError, match="episode"):
            Scenario(chaos=(object(),))

    def test_string_specs_normalized_to_episodes(self):
        from repro.faults import CrashEpisode, PartitionEpisode

        sc = Scenario(chaos=("crash:rate=0.1,repair=5",
                             PartitionEpisode(start=3.0, duration=2.0)))
        assert isinstance(sc.chaos[0], CrashEpisode)
        assert sc.chaos[0].repair_time == 5.0
        assert isinstance(sc.chaos[1], PartitionEpisode)

    def test_invariant_mode_resolution(self):
        assert Scenario().resolved_invariant_mode == "off"
        assert Scenario(failure_rate=0.01).resolved_invariant_mode == "count"
        assert Scenario(
            chaos=("burst:rate=0.3,start=1,duration=2",)
        ).resolved_invariant_mode == "count"
        assert Scenario(invariant_mode="strict").resolved_invariant_mode \
            == "strict"
        assert Scenario(failure_rate=0.01,
                        invariant_mode="off").resolved_invariant_mode == "off"

    def test_fault_schedule_appends_legacy_episode(self):
        sched = Scenario(failure_rate=0.02, repair_time=7.0).fault_schedule()
        assert len(sched) == 1
        ep = sched.episodes[0]
        assert ep.rate == 0.02 and ep.repair_time == 7.0
        assert ep.stream == "failures"
        assert not Scenario().fault_schedule()


class TestDerivedQuantities:
    def test_fixed_density_scaling(self):
        """Area grows linearly with n at fixed density (Section 1.2)."""
        a = Scenario(n=100).region.area
        b = Scenario(n=400).region.area
        assert b == pytest.approx(4 * a)

    def test_r_tx_independent_of_n(self):
        """At fixed density the transmission radius is constant — R_tx
        does not shrink with n in the paper's scaling regime."""
        assert Scenario(n=100).r_tx == pytest.approx(Scenario(n=1000).r_tx)

    def test_r_tx_gives_target_degree(self):
        sc = Scenario(density=0.01, target_degree=8.0)
        expected = np.sqrt(8.0 / (np.pi * 0.01))
        assert sc.r_tx == pytest.approx(expected)

    def test_auto_hop_mode(self):
        assert Scenario(n=100).resolved_hop_mode == "bfs"
        assert Scenario(n=2000).resolved_hop_mode == "euclidean"
        assert Scenario(n=2000, hop_mode="bfs").resolved_hop_mode == "bfs"

    def test_duration(self):
        assert Scenario(steps=50, dt=0.5).duration == pytest.approx(25.0)

    def test_mean_step_displacement(self):
        sc = Scenario(speed=2.0, dt=1.0)
        assert sc.mean_step_displacement() == pytest.approx(2.0 / sc.r_tx)
        sc2 = Scenario(speed=(1.0, 3.0), dt=1.0)
        assert sc2.mean_step_displacement() == pytest.approx(2.0 / sc2.r_tx)

    def test_frozen(self):
        sc = Scenario()
        with pytest.raises(Exception):
            sc.n = 5


class TestVerletSkin:
    def test_default_and_override(self):
        assert Scenario().verlet_skin == pytest.approx(0.5)
        assert Scenario(verlet_skin=1.2).verlet_skin == pytest.approx(1.2)

    def test_skin_reaches_the_edge_cache(self):
        from repro.sim.engine import Simulator

        sim = Simulator(Scenario(n=60, steps=2, warmup=0, max_levels=2,
                                 incremental_hierarchy=True,
                                 verlet_skin=0.9))
        assert sim._edge_cache._skin == pytest.approx(0.9)

    def test_results_bit_identical_across_skins(self):
        """The skin only moves the rebuild cadence; every metric stream
        must be unaffected."""
        import dataclasses
        import pickle

        from repro.sim.engine import run_scenario

        base = dict(n=80, steps=6, warmup=1, speed=2.0, max_levels=2,
                    hop_mode="euclidean", incremental_hierarchy=True)
        r_small = run_scenario(Scenario(**base, verlet_skin=0.2))
        r_large = run_scenario(Scenario(**base, verlet_skin=2.0))
        for f in dataclasses.fields(r_small):
            if f.name == "scenario":  # differs by construction
                continue
            a = pickle.dumps(getattr(r_small, f.name))
            b = pickle.dumps(getattr(r_large, f.name))
            assert a == b, f.name
