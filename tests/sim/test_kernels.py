"""Equivalence tests: vectorized step kernels vs the original
pure-Python implementations they replaced.

The reference implementations here are verbatim ports of the seed
engine's set-based level diff and deque-BFS giant-component sweep; the
kernels must agree on random graphs, including the empty-edge and
single-node corners.
"""

from collections import deque

import numpy as np
import pytest

from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.radio.unit_disk import encode_edges
from repro.sim.kernels import (
    EMPTY_IDS,
    EMPTY_KEYS,
    count_drift,
    diff_keys,
    giant_fraction,
    level_edge_keys,
)


# -- reference implementations (the seed engine's originals) ------------------------


def ref_level_edge_sets(h):
    return {
        lvl.k: (
            {tuple(e) for e in lvl.edges.tolist()},
            set(lvl.node_ids.tolist()),
        )
        for lvl in h.levels
        if lvl.k >= 1
    }


def ref_diff_and_drift(before, nodes_before, after, nodes_after):
    changed = before ^ after
    persistent = nodes_before & nodes_after
    drift = sum(1 for u, v in changed if u in persistent and v in persistent)
    return len(changed), drift


def ref_giant_fraction(g: CompactGraph) -> float:
    seen = np.zeros(g.n, dtype=bool)
    best = 0
    for start in range(g.n):
        if seen[start]:
            continue
        size = 0
        q = deque([start])
        seen[start] = True
        while q:
            u = q.popleft()
            size += 1
            for w in g.neighbors_idx(u):
                if not seen[w]:
                    seen[w] = True
                    q.append(w)
        best = max(best, size)
    return best / g.n


def random_edges(rng, n, m):
    """Canonical (u < v, unique) random edge array over nodes 0..n-1."""
    if m == 0 or n < 2:
        return np.empty((0, 2), dtype=np.int64)
    e = rng.integers(0, n, size=(m, 2))
    e = e[e[:, 0] != e[:, 1]]
    e = np.sort(e, axis=1)
    return np.unique(e, axis=0).astype(np.int64)


# -- edge-diff kernel ---------------------------------------------------------------


class TestDiffKernel:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_set_symmetric_difference(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        e1 = random_edges(rng, n, 120)
        e2 = random_edges(rng, n, 120)
        k1 = np.sort(encode_edges(e1, n))
        k2 = np.sort(encode_edges(e2, n))
        changed = diff_keys(k1, k2)
        ref = {tuple(e) for e in e1.tolist()} ^ {tuple(e) for e in e2.tolist()}
        assert changed.size == len(ref)
        got = {(int(k) // n, int(k) % n) for k in changed}
        assert got == ref

    def test_empty_vs_empty(self):
        assert diff_keys(EMPTY_KEYS, EMPTY_KEYS).size == 0

    def test_empty_vs_nonempty(self):
        rng = np.random.default_rng(0)
        e = random_edges(rng, 20, 30)
        keys = np.sort(encode_edges(e, 20))
        assert diff_keys(EMPTY_KEYS, keys).size == keys.size
        assert diff_keys(keys, EMPTY_KEYS).size == keys.size

    def test_identical_snapshots(self):
        rng = np.random.default_rng(1)
        keys = np.sort(encode_edges(random_edges(rng, 30, 60), 30))
        assert diff_keys(keys, keys.copy()).size == 0


class TestDriftKernel:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_set_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 40
        e1, e2 = random_edges(rng, n, 100), random_edges(rng, n, 100)
        ids1 = np.unique(rng.integers(0, n, size=25)).astype(np.int64)
        ids2 = np.unique(rng.integers(0, n, size=25)).astype(np.int64)
        k1 = np.sort(encode_edges(e1, n))
        k2 = np.sort(encode_edges(e2, n))
        changed = diff_keys(k1, k2)
        drift = count_drift(changed, n, ids1, ids2)
        ref_changed, ref_drift = ref_diff_and_drift(
            {tuple(e) for e in e1.tolist()}, set(ids1.tolist()),
            {tuple(e) for e in e2.tolist()}, set(ids2.tolist()),
        )
        assert changed.size == ref_changed
        assert drift == ref_drift

    def test_no_changes(self):
        assert count_drift(EMPTY_KEYS, 10, np.arange(5), np.arange(5)) == 0

    def test_no_persistent_nodes(self):
        keys = np.sort(encode_edges(np.array([[0, 1], [2, 3]]), 10))
        assert count_drift(keys, 10, np.array([0, 1]), np.array([8, 9])) == 0


class TestLevelEdgeKeys:
    def test_matches_reference_on_hierarchy(self):
        rng = np.random.default_rng(7)
        n = 80
        pts = rng.uniform(0, 60, size=(n, 2))
        from repro.radio import unit_disk_edges

        edges = unit_disk_edges(pts, 12.0)
        h = build_hierarchy(np.arange(n), edges, max_levels=3,
                            level_mode="radio", positions=pts, r0=12.0)
        keys = level_edge_keys(h, n)
        ref = ref_level_edge_sets(h)
        assert set(keys) == set(ref)
        for k, (key_arr, id_arr) in keys.items():
            ref_edges, ref_ids = ref[k]
            assert {(int(x) // n, int(x) % n) for x in key_arr} == ref_edges
            assert set(id_arr.tolist()) == ref_ids
            # the form the diff kernels assume
            assert np.all(np.diff(key_arr) > 0) or key_arr.size <= 1


# -- giant-component kernel ---------------------------------------------------------


class TestGiantFraction:
    @pytest.mark.parametrize("seed,n,m", [
        (0, 30, 25), (1, 50, 10), (2, 50, 200), (3, 10, 0), (4, 100, 99),
    ])
    def test_matches_bfs_reference(self, seed, n, m):
        rng = np.random.default_rng(seed)
        g = CompactGraph(np.arange(n), random_edges(rng, n, m))
        assert giant_fraction(g) == pytest.approx(ref_giant_fraction(g))

    def test_single_node(self):
        g = CompactGraph([0], np.empty((0, 2), dtype=np.int64))
        assert giant_fraction(g) == 1.0

    def test_no_edges(self):
        g = CompactGraph(np.arange(8), np.empty((0, 2), dtype=np.int64))
        assert giant_fraction(g) == pytest.approx(1 / 8)

    def test_fully_connected(self):
        n = 6
        e = np.array([(u, v) for u in range(n) for v in range(u + 1, n)])
        g = CompactGraph(np.arange(n), e)
        assert giant_fraction(g) == 1.0

    def test_two_components(self):
        e = np.array([[0, 1], [1, 2], [3, 4]])
        g = CompactGraph(np.arange(5), e)
        assert giant_fraction(g) == pytest.approx(3 / 5)
