"""Equivalence and behavior tests for the lossy control plane.

The acceptance bar for the fault subsystem is exactness at zero: with
``loss_rate=0`` every metered series must be bit-identical to the
pre-fault engine.  The tests here enforce that at two layers (the
handoff engine against an explicit zero-loss DeliveryEngine, and the
full simulator against inert fault knobs), then pin down the lossy
regime: determinism, retransmission accounting, stale-server recovery,
and query degradation.
"""

import numpy as np
import pytest

from repro.core import HandoffEngine
from repro.faults import DeliveryEngine, LossModel, RetryPolicy
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.sim import Scenario, run_scenario


def _fingerprint(res):
    """Every metered series of a SimResult, for bit-identity checks."""
    return (
        res.phi, res.gamma, res.f0, res.handoff_rate, res.mean_degree,
        res.giant_fraction,
        dict(res.level_series.link_events),
        dict(res.level_series.address_changes),
        res.h_network, res.h_levels,
        res.ledger.phi_k(), res.ledger.gamma_k(), res.ledger.f_k(),
        res.ledger.retransmitted_packets, res.ledger.abandoned_entries,
        res.ledger.recovered_entries, list(res.ledger.stale_series),
    )


def _snapshots(n=120, steps=6, seed=0):
    from repro.mobility import RandomWaypoint

    density = 0.02
    region = disc_for_density(n, density)
    model = RandomWaypoint(n, region, 8.0, np.random.default_rng(seed))
    r = radius_for_degree(9.0, density)

    def snap():
        edges = unit_disk_edges(model.positions.copy(), r)
        return build_hierarchy(np.arange(n), edges)

    snaps = [snap()]
    for _ in range(steps):
        model.step(1.0)
        snaps.append(snap())
    return snaps


def unit_hops(u, v):
    return 0 if u == v else 1


class TestZeroLossExactness:
    def test_engine_with_zero_loss_delivery_matches_none(self):
        """A zero-rate DeliveryEngine must be an exact pass-through for
        the handoff engine: same packets, same assignment, no RNG use."""
        snaps = _snapshots()
        plain = HandoffEngine()
        rng = np.random.default_rng(99)
        state_before = rng.bit_generator.state
        lossless = DeliveryEngine(
            loss=LossModel(rate=0.0),
            retry=RetryPolicy(max_attempts=8, jitter=0.5),
            rng=rng,
        )
        faulted = HandoffEngine()
        for t, h in enumerate(snaps):
            a = plain.observe(h, unit_hops)
            b = faulted.observe(h, unit_hops, delivery=lossless, now=float(t))
            assert a.migration_packets == b.migration_packets
            assert a.reorg_packets == b.reorg_packets
            assert a.registration_packets == b.registration_packets
            assert b.retransmitted_packets == 0
            assert b.abandoned_entries == 0
            assert b.stale_entries == 0
        assert plain.assignment.servers == faulted.assignment.servers
        assert rng.bit_generator.state == state_before

    def test_simulation_bit_identical_with_inert_fault_knobs(self):
        """loss_rate=0 plus arbitrary retry settings must replay the
        default scenario exactly — the retry knobs are inert at zero."""
        base = Scenario(n=80, steps=8, warmup=2, speed=1.5, seed=3,
                        max_levels=3, hop_mode="euclidean")
        knobbed = Scenario(n=80, steps=8, warmup=2, speed=1.5, seed=3,
                           max_levels=3, hop_mode="euclidean",
                           loss_rate=0.0, retry_attempts=7,
                           retry_backoff=0.9, retry_jitter=0.5,
                           retry_timeout=42.0)
        assert _fingerprint(run_scenario(base, hop_sample_every=4)) == \
            _fingerprint(run_scenario(knobbed, hop_sample_every=4))

    def test_query_sampling_does_not_perturb_metered_series(self):
        """Queries draw from their own RNG stream, so sampling them must
        leave phi/gamma/f0 and every handoff series untouched."""
        quiet = Scenario(n=80, steps=8, warmup=2, speed=1.5, seed=3,
                         max_levels=3, hop_mode="euclidean")
        sampled = Scenario(n=80, steps=8, warmup=2, speed=1.5, seed=3,
                           max_levels=3, hop_mode="euclidean",
                           queries_per_step=4)
        a = run_scenario(quiet, hop_sample_every=4)
        b = run_scenario(sampled, hop_sample_every=4)
        assert _fingerprint(a) == _fingerprint(b)
        assert a.queries is None and a.query_success_rate is None
        assert b.queries is not None
        assert b.queries.attempts == 8 * 4
        assert b.query_success_rate == 1.0  # lossless: every query lands


LOSSY = Scenario(n=100, steps=12, warmup=2, speed=1.5, seed=11,
                 max_levels=3, hop_mode="euclidean",
                 loss_rate=0.08, retry_attempts=3, queries_per_step=4)


class TestLossyBehavior:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(LOSSY, hop_sample_every=4)

    def test_seed_deterministic(self, result):
        again = run_scenario(LOSSY, hop_sample_every=4)
        assert _fingerprint(result) == _fingerprint(again)
        assert result.queries.success_series == again.queries.success_series

    def test_retransmissions_metered(self, result):
        assert result.ledger.retransmitted_packets > 0
        assert result.ledger.retransmission_rate > 0

    def test_abandonment_leaves_then_recovers_stale_entries(self, result):
        led = result.ledger
        assert led.abandoned_entries > 0
        assert len(led.stale_series) == LOSSY.steps
        assert max(led.stale_series) > 0
        # Recoveries happen and take at least one step each.
        assert led.recovered_entries > 0
        assert led.mean_recovery_time >= LOSSY.dt

    def test_lossy_costs_more_than_lossless(self, result):
        from dataclasses import replace

        clean = run_scenario(replace(LOSSY, loss_rate=0.0), hop_sample_every=4)
        assert result.handoff_rate > clean.handoff_rate

    def test_query_ledger_populated(self, result):
        q = result.queries
        assert q.attempts == LOSSY.steps * LOSSY.queries_per_step
        assert 0.0 <= q.success_rate <= 1.0
        assert q.total_packets > 0

    def test_rates_scale_with_loss(self):
        from dataclasses import replace

        mild = run_scenario(replace(LOSSY, loss_rate=0.02), hop_sample_every=4)
        harsh = run_scenario(replace(LOSSY, loss_rate=0.25), hop_sample_every=4)
        assert harsh.ledger.retransmission_rate > mild.ledger.retransmission_rate
        assert harsh.ledger.abandonment_rate >= mild.ledger.abandonment_rate
