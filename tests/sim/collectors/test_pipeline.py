"""Tests for the collector pipeline: dispatch contract, extras routing,
and non-interference with the default measurement plane."""

import numpy as np

from repro.sim import Scenario, Simulator
from repro.sim.collectors import Collector


class CountingCollector(Collector):
    """Records exactly which hooks fire and with which snapshots."""

    name = "counting"

    def __init__(self):
        self.start_calls = 0
        self.start_snap = None
        self.steps_seen = []
        self.finalized = False

    def on_start(self, snap):
        self.start_calls += 1
        self.start_snap = snap

    def on_step(self, snap):
        self.steps_seen.append(snap.step)

    def finalize(self, elapsed):
        self.finalized = True
        return {"steps_observed": len(self.steps_seen)}


def _scenario(**over):
    base = dict(n=80, steps=8, warmup=2, speed=2.0, seed=3, max_levels=3)
    base.update(over)
    return Scenario(**base)


class TestDispatchContract:
    def test_every_step_seen_exactly_once(self):
        sc = _scenario()
        c = CountingCollector()
        Simulator(sc, collectors=[c]).run()
        assert c.start_calls == 1
        assert c.steps_seen == list(range(sc.steps))
        assert c.finalized

    def test_start_snapshot_is_baseline(self):
        c = CountingCollector()
        Simulator(_scenario(), collectors=[c]).run()
        snap = c.start_snap
        assert snap.step == -1
        assert snap.report is None
        assert snap.prev_hierarchy is None
        assert snap.t == 0.0

    def test_step_snapshots_carry_state(self):
        class Probing(Collector):
            def __init__(self):
                self.ok = True

            def on_step(self, snap):
                self.ok = self.ok and (
                    snap.report is not None
                    and snap.hierarchy is not None
                    and snap.prev_hierarchy is not None
                    and snap.assignment is not None
                    and snap.positions.shape == (snap.scenario.n, 2)
                )

        p = Probing()
        Simulator(_scenario(), collectors=[p]).run()
        assert p.ok


class TestExtrasRouting:
    def test_unknown_dict_keys_land_in_extras(self):
        c = CountingCollector()
        res = Simulator(_scenario(), collectors=[c]).run()
        assert res.extras["steps_observed"] == 8

    def test_non_dict_return_keyed_by_name(self):
        class Scalar(Collector):
            name = "scalar"

            def finalize(self, elapsed):
                return 42

        res = Simulator(_scenario(), collectors=[Scalar()]).run()
        assert res.extras["scalar"] == 42

    def test_no_custom_collectors_no_extras(self):
        res = Simulator(_scenario()).run()
        assert res.extras == {}


class TestNonInterference:
    def test_extra_collector_leaves_default_series_bit_identical(self):
        sc = _scenario(steps=10, queries_per_step=4)
        plain = Simulator(sc).run()
        with_extra = Simulator(sc, collectors=[CountingCollector()]).run()
        assert plain.phi == with_extra.phi
        assert plain.gamma == with_extra.gamma
        assert plain.f0 == with_extra.f0
        assert plain.h_network == with_extra.h_network
        assert plain.ledger.stale_series == with_extra.ledger.stale_series
        assert plain.queries.probe_packets == with_extra.queries.probe_packets
        assert np.array_equal(plain.final_positions,
                              with_extra.final_positions)


class TestQuerySelfPairs:
    def test_self_pairs_redrawn_and_counted(self):
        # n small enough that s == d draws are near-certain across
        # steps * queries_per_step batches; lossless so every properly
        # drawn query must resolve.
        sc = _scenario(n=40, steps=10, queries_per_step=30, loss_rate=0.0)
        res = Simulator(sc).run()
        q = res.queries
        assert q.self_pairs > 0
        assert q.attempts == sc.steps * sc.queries_per_step
        assert q.success_rate == 1.0
        assert q.failures == 0
