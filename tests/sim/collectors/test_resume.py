"""Tests for checkpoint/resume: a resumed run must be indistinguishable
from an uninterrupted one, and stale/corrupt checkpoints must be
rejected or ignored rather than trusted."""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.persist import load_checkpoint, save_checkpoint
from repro.sim import Scenario, SimCheckpoint, Simulator
from repro.sim.sweep import CODE_VERSION, _run_task, run_sweep


def _scenario(**over):
    base = dict(n=80, steps=12, warmup=3, speed=2.0, seed=7, max_levels=3)
    base.update(over)
    return Scenario(**base)


def _assert_same_result(a, b):
    assert a.phi == b.phi
    assert a.gamma == b.gamma
    assert a.f0 == b.f0
    assert a.ledger.stale_series == b.ledger.stale_series
    assert a.ledger.migration_packets == b.ledger.migration_packets
    assert a.ledger.reorg_packets == b.ledger.reorg_packets
    assert np.array_equal(a.final_positions, b.final_positions)


class TestResumeEqualsUninterrupted:
    def test_restore_mid_run_finishes_identically(self, tmp_path):
        sc = _scenario()
        baseline = Simulator(sc).run()

        path = tmp_path / "run.ckpt"
        # A checkpointing run leaves its last mid-run checkpoint behind
        # (the engine itself never deletes; callers do).
        checkpointed = Simulator(sc).run(checkpoint_every=5,
                                         checkpoint_path=str(path))
        _assert_same_result(baseline, checkpointed)
        assert path.exists()

        resumed_sim = Simulator.restore(str(path))
        assert 0 < resumed_sim.next_step < sc.steps
        _assert_same_result(baseline, resumed_sim.run())

    def test_resume_lossy_scenario_with_queries(self, tmp_path):
        sc = _scenario(loss_rate=0.15, retry_attempts=3, queries_per_step=5)
        baseline = Simulator(sc).run()

        path = tmp_path / "lossy.ckpt"
        Simulator(sc).run(checkpoint_every=4, checkpoint_path=str(path))
        resumed = Simulator.restore(str(path)).run()
        _assert_same_result(baseline, resumed)
        assert resumed.queries.attempts == baseline.queries.attempts
        assert resumed.queries.probe_packets == baseline.queries.probe_packets
        assert (resumed.queries.success_series
                == baseline.queries.success_series)

    def test_restore_accepts_checkpoint_object(self, tmp_path):
        sc = _scenario(steps=8)
        baseline = Simulator(sc).run()
        path = tmp_path / "obj.ckpt"
        Simulator(sc).run(checkpoint_every=3, checkpoint_path=str(path))
        ck = load_checkpoint(path)
        assert isinstance(ck, SimCheckpoint)
        _assert_same_result(baseline, Simulator.restore(ck).run())

    def test_checkpoint_every_requires_path(self):
        with pytest.raises(ValueError):
            Simulator(_scenario()).run(checkpoint_every=5)

    def test_resume_mid_fault_episode_is_bit_identical(self, tmp_path):
        """Checkpoint taken while a crash episode, a partition, and a
        burst window are all in flight; the resumed run must replay the
        exact chaos draws and invariant series."""
        sc = _scenario(
            steps=14, queries_per_step=4,
            chaos=("crash:start=2,duration=10,rate=0.05,repair=6",
                   "partition:start=4,duration=9,angle=0.5",
                   "burst:start=3,duration=9,rate=0.4"),
        )
        baseline = Simulator(sc).run()

        path = tmp_path / "chaotic.ckpt"
        Simulator(sc).run(checkpoint_every=5, checkpoint_path=str(path))
        resumed_sim = Simulator.restore(str(path))
        assert resumed_sim._chaos is not None
        assert resumed_sim._chaos.partition_active()  # mid-episode
        resumed = resumed_sim.run()
        _assert_same_result(baseline, resumed)
        a, b = baseline.extras["chaos"], resumed.extras["chaos"]
        assert a.violations_series == b.violations_series
        assert a.down_series == b.down_series
        assert a.stale_series == b.stale_series
        assert [e.time_to_reconverge for e in a.episodes] == \
               [e.time_to_reconverge for e in b.episodes]
        assert (baseline.queries.success_series
                == resumed.queries.success_series)


class TestStaleCheckpointRejection:
    def _write_checkpoint(self, tmp_path, **replace):
        sc = _scenario(steps=8)
        path = tmp_path / "x.ckpt"
        Simulator(sc).run(checkpoint_every=3, checkpoint_path=str(path))
        ck = load_checkpoint(path)
        if replace:
            ck = dataclasses.replace(ck, **replace)
            save_checkpoint(ck, path)
        return path

    def test_code_version_mismatch_rejected(self, tmp_path):
        path = self._write_checkpoint(tmp_path, code_version="stale-0")
        with pytest.raises(ValueError, match="simulator version"):
            load_checkpoint(path)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = self._write_checkpoint(tmp_path, schema=999)
        with pytest.raises(ValueError, match="schema"):
            load_checkpoint(path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        with path.open("wb") as f:
            pickle.dump({"not": "a checkpoint"}, f)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_restore_rejects_stale_object(self, tmp_path):
        good = load_checkpoint(self._write_checkpoint(tmp_path))
        stale = dataclasses.replace(good, code_version="stale-0")
        with pytest.raises(ValueError):
            Simulator.restore(stale)
        assert CODE_VERSION == good.code_version


class TestSweepCheckpointing:
    def test_run_task_falls_back_on_corrupt_checkpoint(self, tmp_path):
        sc = _scenario(steps=6)
        baseline = _run_task((sc, None, False, None, None, None))
        bad = tmp_path / "task.ckpt"
        bad.write_bytes(b"\x80\x04 not a checkpoint")
        out = _run_task((sc, None, False, str(bad), 3, None))
        _assert_same_result(baseline.result, out.result)
        # Completed task cleans up its checkpoint.
        assert not bad.exists()

    def test_run_task_ignores_checkpoint_for_other_scenario(self, tmp_path):
        sc_a = _scenario(steps=6, seed=1)
        sc_b = _scenario(steps=6, seed=2)
        path = tmp_path / "mismatch.ckpt"
        Simulator(sc_a).run(checkpoint_every=2, checkpoint_path=str(path))
        baseline = _run_task((sc_b, None, False, None, None, None))
        out = _run_task((sc_b, None, False, str(path), 2, None))
        _assert_same_result(baseline.result, out.result)

    def test_sweep_with_checkpoint_dir_matches_plain(self, tmp_path):
        grid = [_scenario(steps=6, seed=s) for s in (0, 1)]
        plain = run_sweep(grid)
        ckpt = run_sweep(grid, checkpoint_dir=tmp_path, checkpoint_every=2)
        for a, b in zip(plain, ckpt):
            _assert_same_result(a, b)
        # All tasks completed, so no checkpoint files survive.
        assert list(tmp_path.glob("*.ckpt")) == []
