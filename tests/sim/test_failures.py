"""Tests for failure injection and address-lifetime metrics."""

import numpy as np
import pytest

from repro.sim import Scenario, run_scenario


class TestFailureValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Scenario(failure_rate=-0.1)

    def test_zero_repair_rejected(self):
        with pytest.raises(ValueError):
            Scenario(repair_time=0.0)


class TestFailureInjection:
    def test_zero_rate_is_noop(self):
        a = run_scenario(Scenario(n=80, steps=8, warmup=2, speed=1.5,
                                  seed=4, max_levels=3, failure_rate=0.0))
        b = run_scenario(Scenario(n=80, steps=8, warmup=2, speed=1.5,
                                  seed=4, max_levels=3))
        assert a.phi == b.phi
        assert a.gamma == b.gamma

    def test_failures_change_dynamics(self):
        base = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=1.0,
                                     seed=5, max_levels=3))
        failing = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=1.0,
                                        seed=5, max_levels=3,
                                        failure_rate=0.02, repair_time=10.0))
        # Heavy failure rate measurably changes link dynamics.
        assert failing.f0 != pytest.approx(base.f0)

    def test_stationary_with_failures_has_events(self):
        """Even with zero mobility, crashes alone produce link events
        and handoff — the isolated effect of the excluded factor."""
        res = run_scenario(Scenario(n=100, steps=20, warmup=0,
                                    mobility="stationary", seed=6,
                                    max_levels=3, failure_rate=0.01,
                                    repair_time=5.0))
        assert res.f0 > 0
        assert res.handoff_rate > 0

    def test_determinism_with_failures(self):
        sc = Scenario(n=80, steps=10, warmup=2, speed=1.0, seed=7,
                      max_levels=3, failure_rate=0.01)
        assert run_scenario(sc).handoff_rate == pytest.approx(
            run_scenario(sc).handoff_rate
        )


class TestComponentLifetimes:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(Scenario(n=100, steps=20, warmup=5, speed=1.5,
                                     seed=8, max_levels=3))

    def test_lifetimes_positive(self, result):
        lifetimes = result.component_lifetimes()
        assert lifetimes
        assert all(t > 0 for t in lifetimes.values())

    def test_staleness_in_unit_interval(self, result):
        stale = result.staleness_fraction()
        assert all(0 <= v <= 1 for v in stale.values())

    def test_staleness_lag_validation(self, result):
        with pytest.raises(ValueError):
            result.staleness_fraction(update_lag=0.0)

    def test_stationary_infinite_lifetime(self):
        res = run_scenario(Scenario(n=60, steps=6, warmup=0,
                                    mobility="stationary", seed=9,
                                    max_levels=2))
        lifetimes = res.component_lifetimes()
        assert all(np.isinf(t) for t in lifetimes.values())
