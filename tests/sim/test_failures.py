"""Tests for failure injection and address-lifetime metrics."""

import numpy as np
import pytest

from repro.sim import Scenario, run_scenario


class TestFailureValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Scenario(failure_rate=-0.1)

    def test_zero_repair_rejected(self):
        with pytest.raises(ValueError):
            Scenario(repair_time=0.0)


class TestFailureInjection:
    def test_zero_rate_is_noop(self):
        a = run_scenario(Scenario(n=80, steps=8, warmup=2, speed=1.5,
                                  seed=4, max_levels=3, failure_rate=0.0))
        b = run_scenario(Scenario(n=80, steps=8, warmup=2, speed=1.5,
                                  seed=4, max_levels=3))
        assert a.phi == b.phi
        assert a.gamma == b.gamma

    def test_failures_change_dynamics(self):
        base = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=1.0,
                                     seed=5, max_levels=3))
        failing = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=1.0,
                                        seed=5, max_levels=3,
                                        failure_rate=0.02, repair_time=10.0))
        # Heavy failure rate measurably changes link dynamics.
        assert failing.f0 != pytest.approx(base.f0)

    def test_stationary_with_failures_has_events(self):
        """Even with zero mobility, crashes alone produce link events
        and handoff — the isolated effect of the excluded factor."""
        res = run_scenario(Scenario(n=100, steps=20, warmup=0,
                                    mobility="stationary", seed=6,
                                    max_levels=3, failure_rate=0.01,
                                    repair_time=5.0))
        assert res.f0 > 0
        assert res.handoff_rate > 0

    def test_determinism_with_failures(self):
        sc = Scenario(n=80, steps=10, warmup=2, speed=1.0, seed=7,
                      max_levels=3, failure_rate=0.01)
        assert run_scenario(sc).handoff_rate == pytest.approx(
            run_scenario(sc).handoff_rate
        )


class TestFailureMechanics:
    """White-box tests of the crash/repair model, now served by the
    chaos engine (``Scenario.failure_rate`` rides a whole-run
    :class:`~repro.faults.CrashEpisode` on the legacy RNG stream)."""

    @staticmethod
    def _sim(**kwargs):
        from repro.sim.engine import Simulator

        defaults = dict(n=50, steps=5, warmup=0, mobility="stationary",
                        seed=3, max_levels=2)
        defaults.update(kwargs)
        return Simulator(Scenario(**defaults))

    def test_crashed_node_loses_all_edges(self):
        chaos = self._sim(failure_rate=0.05)._chaos
        chaos.now = 10.0
        chaos.down_until[7] = 99.0  # node 7 is down
        edges = np.array([[7, 1], [2, 7], [2, 3], [4, 5]])
        kept = chaos.filter_edges(edges, np.zeros((50, 2)))
        assert 7 not in kept
        assert kept.tolist() == [[2, 3], [4, 5]]

    def test_recovery_after_repair_time(self):
        chaos = self._sim(failure_rate=0.05, repair_time=5.0)._chaos
        chaos.now = 10.0
        chaos.down_until[7] = 12.0
        pos = np.zeros((50, 2))
        edges = np.array([[7, 1]])
        assert chaos.filter_edges(edges, pos).size == 0  # down at t=10
        chaos.now = 12.5  # repaired: down_until < now
        assert chaos.filter_edges(edges, pos).tolist() == [[7, 1]]

    def test_zero_rate_builds_no_chaos_engine(self):
        """failure_rate=0 (and no schedule) must keep the fault path
        structurally absent — nothing to draw from, filter, or pickle."""
        sim = self._sim(failure_rate=0.0)
        assert sim._chaos is None
        assert sim.checkpoint().chaos is None

    def test_crash_schedule_seed_deterministic(self):
        def schedule(seed):
            chaos = self._sim(failure_rate=0.2, repair_time=3.0,
                              seed=seed)._chaos
            out = []
            for _ in range(20):
                chaos.advance(1.0)
                out.append(chaos.down_until.copy())
            return np.stack(out)

        assert np.array_equal(schedule(5), schedule(5))
        assert not np.array_equal(schedule(5), schedule(6))

    def test_crash_rate_tracks_poisson_intensity(self):
        """Over many node-steps the empirical crash probability matches
        1 - exp(-rate * dt)."""
        chaos = self._sim(n=2000, failure_rate=0.1, repair_time=0.5,
                          seed=1)._chaos
        crashes = 0
        trials = 0
        for _ in range(30):
            up_before = chaos.down_until < chaos.now + 1.0
            trials += int(up_before.sum())
            before = chaos.down_until.copy()
            chaos.advance(1.0)
            crashes += int((chaos.down_until != before).sum())
        expected = -np.expm1(-0.1 * 1.0)
        assert crashes / trials == pytest.approx(expected, rel=0.15)


class TestComponentLifetimes:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(Scenario(n=100, steps=20, warmup=5, speed=1.5,
                                     seed=8, max_levels=3))

    def test_lifetimes_positive(self, result):
        lifetimes = result.component_lifetimes()
        assert lifetimes
        assert all(t > 0 for t in lifetimes.values())

    def test_staleness_in_unit_interval(self, result):
        stale = result.staleness_fraction()
        assert all(0 <= v <= 1 for v in stale.values())

    def test_staleness_lag_validation(self, result):
        with pytest.raises(ValueError):
            result.staleness_fraction(update_lag=0.0)

    def test_stationary_infinite_lifetime(self):
        res = run_scenario(Scenario(n=60, steps=6, warmup=0,
                                    mobility="stationary", seed=9,
                                    max_levels=2))
        lifetimes = res.component_lifetimes()
        assert all(np.isinf(t) for t in lifetimes.values())
