"""Tests for failure injection and address-lifetime metrics."""

import numpy as np
import pytest

from repro.sim import Scenario, run_scenario


class TestFailureValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Scenario(failure_rate=-0.1)

    def test_zero_repair_rejected(self):
        with pytest.raises(ValueError):
            Scenario(repair_time=0.0)


class TestFailureInjection:
    def test_zero_rate_is_noop(self):
        a = run_scenario(Scenario(n=80, steps=8, warmup=2, speed=1.5,
                                  seed=4, max_levels=3, failure_rate=0.0))
        b = run_scenario(Scenario(n=80, steps=8, warmup=2, speed=1.5,
                                  seed=4, max_levels=3))
        assert a.phi == b.phi
        assert a.gamma == b.gamma

    def test_failures_change_dynamics(self):
        base = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=1.0,
                                     seed=5, max_levels=3))
        failing = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=1.0,
                                        seed=5, max_levels=3,
                                        failure_rate=0.02, repair_time=10.0))
        # Heavy failure rate measurably changes link dynamics.
        assert failing.f0 != pytest.approx(base.f0)

    def test_stationary_with_failures_has_events(self):
        """Even with zero mobility, crashes alone produce link events
        and handoff — the isolated effect of the excluded factor."""
        res = run_scenario(Scenario(n=100, steps=20, warmup=0,
                                    mobility="stationary", seed=6,
                                    max_levels=3, failure_rate=0.01,
                                    repair_time=5.0))
        assert res.f0 > 0
        assert res.handoff_rate > 0

    def test_determinism_with_failures(self):
        sc = Scenario(n=80, steps=10, warmup=2, speed=1.0, seed=7,
                      max_levels=3, failure_rate=0.01)
        assert run_scenario(sc).handoff_rate == pytest.approx(
            run_scenario(sc).handoff_rate
        )


class TestFailureMechanics:
    """White-box tests of the crash/repair model itself
    (``_advance_failures`` / ``_apply_failures``)."""

    @staticmethod
    def _sim(**kwargs):
        from repro.sim.engine import Simulator

        defaults = dict(n=50, steps=5, warmup=0, mobility="stationary",
                        seed=3, max_levels=2)
        defaults.update(kwargs)
        return Simulator(Scenario(**defaults))

    def test_crashed_node_loses_all_edges(self):
        sim = self._sim(failure_rate=0.05)
        sim._now = 10.0
        sim._down_until[7] = 99.0  # node 7 is down
        edges = np.array([[7, 1], [2, 7], [2, 3], [4, 5]])
        kept = sim._apply_failures(edges)
        assert 7 not in kept
        assert kept.tolist() == [[2, 3], [4, 5]]

    def test_recovery_after_repair_time(self):
        sim = self._sim(failure_rate=0.05, repair_time=5.0)
        sim._now = 10.0
        sim._down_until[7] = 12.0
        edges = np.array([[7, 1]])
        assert sim._apply_failures(edges).size == 0  # still down at t=10
        sim._now = 12.5  # repaired: down_until < now
        assert sim._apply_failures(edges).tolist() == [[7, 1]]

    def test_zero_rate_is_a_true_noop(self):
        """failure_rate=0 must neither draw RNG state nor copy edges."""
        sim = self._sim(failure_rate=0.0)
        state = sim._failure_rng.bit_generator.state
        sim._advance_failures(1.0)
        assert sim._failure_rng.bit_generator.state == state
        edges = np.array([[0, 1], [2, 3]])
        assert sim._apply_failures(edges) is edges
        assert np.all(np.isinf(-sim._down_until))  # nobody ever crashes

    def test_crash_schedule_seed_deterministic(self):
        def schedule(seed):
            sim = self._sim(failure_rate=0.2, repair_time=3.0, seed=seed)
            out = []
            for _ in range(20):
                sim._advance_failures(1.0)
                out.append(sim._down_until.copy())
            return np.stack(out)

        assert np.array_equal(schedule(5), schedule(5))
        assert not np.array_equal(schedule(5), schedule(6))

    def test_crash_rate_tracks_poisson_intensity(self):
        """Over many node-steps the empirical crash probability matches
        1 - exp(-rate * dt)."""
        sim = self._sim(n=2000, failure_rate=0.1, repair_time=0.5, seed=1)
        crashes = 0
        trials = 0
        for _ in range(30):
            up_before = sim._down_until < sim._now + 1.0
            trials += int(up_before.sum())
            before = sim._down_until.copy()
            sim._advance_failures(1.0)
            crashes += int((sim._down_until != before).sum())
        expected = -np.expm1(-0.1 * 1.0)
        assert crashes / trials == pytest.approx(expected, rel=0.15)


class TestComponentLifetimes:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(Scenario(n=100, steps=20, warmup=5, speed=1.5,
                                     seed=8, max_levels=3))

    def test_lifetimes_positive(self, result):
        lifetimes = result.component_lifetimes()
        assert lifetimes
        assert all(t > 0 for t in lifetimes.values())

    def test_staleness_in_unit_interval(self, result):
        stale = result.staleness_fraction()
        assert all(0 <= v <= 1 for v in stale.values())

    def test_staleness_lag_validation(self, result):
        with pytest.raises(ValueError):
            result.staleness_fraction(update_lag=0.0)

    def test_stationary_infinite_lifetime(self):
        res = run_scenario(Scenario(n=60, steps=6, warmup=0,
                                    mobility="stationary", seed=9,
                                    max_levels=2))
        lifetimes = res.component_lifetimes()
        assert all(np.isinf(t) for t in lifetimes.values())
