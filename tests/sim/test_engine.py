"""Integration-grade tests for the simulation engine."""

import numpy as np
import pytest

from repro.sim import Scenario, Simulator, run_scenario


@pytest.fixture(scope="module")
def small_result():
    sc = Scenario(n=100, steps=20, warmup=3, speed=3.0, seed=7)
    return run_scenario(sc, hop_sample_every=10)


class TestBasicRun:
    def test_runs_and_reports(self, small_result):
        res = small_result
        assert res.elapsed == pytest.approx(20.0)
        assert res.f0 > 0
        assert res.handoff_rate >= 0
        assert res.mean_degree > 3

    def test_levels_recorded(self, small_result):
        levels = small_result.level_series.levels()
        assert 0 in levels and 1 in levels
        assert small_result.level_series.mean_size(0) == 100

    def test_hop_samples_collected(self, small_result):
        assert small_result.h_network
        assert small_result.mean_h() > 1.0
        hks = small_result.mean_h_k()
        assert hks  # at least one level sampled

    def test_state_stats_present(self, small_result):
        assert 0 in small_result.state_stats
        s = small_result.state_stats[0]
        assert 0 < s.p_state1 < 1
        assert s.samples > 0

    def test_p_levels_vector(self, small_result):
        p = small_result.p_levels()
        assert p and all(0 <= x <= 1 for x in p)

    def test_g_prime_and_g_k(self, small_result):
        gp = small_result.g_prime_k()
        gk = small_result.g_k()
        assert all(v >= 0 for v in gp.values())
        assert all(v >= 0 for v in gk.values())


class TestDeterminism:
    def test_same_seed_same_result(self):
        sc = Scenario(n=60, steps=8, warmup=2, speed=4.0, seed=42)
        a = run_scenario(sc, hop_sample_every=4)
        b = run_scenario(sc, hop_sample_every=4)
        assert a.phi == pytest.approx(b.phi)
        assert a.gamma == pytest.approx(b.gamma)
        assert a.f0 == pytest.approx(b.f0)

    def test_different_seed_differs(self):
        a = run_scenario(Scenario(n=60, steps=8, warmup=2, speed=4.0, seed=1))
        b = run_scenario(Scenario(n=60, steps=8, warmup=2, speed=4.0, seed=2))
        assert a.f0 != pytest.approx(b.f0)


class TestStationaryControl:
    def test_zero_mobility_zero_overhead(self):
        """mu = 0: the paper's model predicts no handoff at all."""
        sc = Scenario(
            n=80, steps=10, warmup=0, mobility="stationary", seed=3
        )
        res = run_scenario(sc)
        assert res.phi == 0.0
        assert res.gamma == 0.0
        assert res.f0 == 0.0
        assert res.ledger.registration_rate == 0.0


class TestModesAndVariants:
    def test_euclidean_hop_mode(self):
        sc = Scenario(n=80, steps=8, warmup=2, speed=3.0, hop_mode="euclidean", seed=5)
        res = run_scenario(sc)
        assert res.handoff_rate > 0

    def test_maxmin_clustering(self):
        sc = Scenario(n=80, steps=8, warmup=2, speed=3.0, clustering="maxmin", seed=6)
        res = run_scenario(sc)
        assert res.level_series.mean_size(1) < 80

    def test_naive_hash(self):
        sc = Scenario(n=80, steps=8, warmup=2, speed=3.0, hash_fn="naive", seed=7)
        res = run_scenario(sc)
        assert res.handoff_rate >= 0

    def test_max_levels_cap(self):
        sc = Scenario(n=100, steps=6, warmup=2, speed=3.0, max_levels=2, seed=8)
        res = run_scenario(sc)
        assert max(res.level_series.levels()) <= 2

    def test_group_mobility(self):
        sc = Scenario(
            n=60, steps=8, warmup=2, speed=3.0, mobility="group",
            mobility_kwargs={"n_groups": 4, "group_radius": 20.0}, seed=9,
        )
        res = run_scenario(sc)
        assert res.f0 >= 0


class TestPhysicalSanity:
    def test_slower_nodes_less_churn(self):
        """f_0 = Theta(mu / R_tx): halving speed should roughly halve the
        link change frequency."""
        fast = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=4.0, seed=11))
        slow = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=1.0, seed=11))
        assert slow.f0 < fast.f0
        ratio = fast.f0 / slow.f0
        assert 2.0 < ratio < 8.0

    def test_handoff_increases_with_speed(self):
        fast = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=4.0, seed=12))
        slow = run_scenario(Scenario(n=100, steps=15, warmup=3, speed=0.5, seed=12))
        assert fast.handoff_rate > slow.handoff_rate
