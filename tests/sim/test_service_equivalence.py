"""Equivalence, determinism, and acceptance tests for service mode.

The service front-end's standing contract is stronger than the usual
"off means bit-identical": it is a *pure observer*, so even a run with
the service ON must leave every core metric series bit-identical to the
same run with the service off.  The tests here enforce both directions,
pin seed-determinism of the latency sample (however the dispatcher
threads interleave), exercise backpressure (admission shedding and
bounded-queue drops), prove checkpoint/resume replays the workload
exactly, and run the PR's acceptance load: 10k+ requests against a
500-node deployment with finite tail latencies.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.sim import Scenario, Simulator, run_scenario


def _fingerprint(res):
    """Every core metered series of a SimResult, for bit-identity."""
    return (
        res.phi, res.gamma, res.f0, res.handoff_rate, res.mean_degree,
        res.giant_fraction,
        dict(res.level_series.link_events),
        dict(res.level_series.address_changes),
        res.h_network, res.h_levels,
        res.ledger.phi_k(), res.ledger.gamma_k(), res.ledger.f_k(),
        res.ledger.retransmitted_packets, res.ledger.abandoned_entries,
        res.ledger.recovered_entries, list(res.ledger.stale_series),
    )


def _service_fingerprint(rep):
    """Everything deterministic in a ServiceReport (wall time excluded)."""
    return (
        rep.offered, rep.shed, rep.dropped, rep.lookups, rep.updates,
        rep.direct_hits, rep.fallback_hits, rep.failed, rep.packets,
        list(rep.latencies), list(rep.waits),
        list(rep.arrivals_series), list(rep.shed_series),
        list(rep.dropped_series), list(rep.queue_depth_series),
    )


def _scenario(**over):
    base = dict(n=80, steps=8, warmup=2, speed=1.5, seed=3,
                max_levels=3, hop_mode="euclidean")
    base.update(over)
    return Scenario(**base)


SERVED = _scenario(arrival_rate=40.0, admission_rate=25.0,
                   service_workers=3)


class TestPureObserver:
    def test_service_off_knobs_are_inert(self):
        """arrival_rate=0 with every other service knob cranked must
        replay the plain scenario exactly."""
        knobbed = _scenario(arrival_rate=0.0, admission_rate=99.0,
                            service_workers=9, service_queue_capacity=7,
                            service_hop_time=0.5,
                            service_update_fraction=0.9,
                            arrival_process="hotspot")
        a = run_scenario(_scenario(), hop_sample_every=4)
        b = run_scenario(knobbed, hop_sample_every=4)
        assert _fingerprint(a) == _fingerprint(b)
        assert "service" not in b.extras

    def test_service_on_leaves_core_metrics_bit_identical(self):
        """The strong contract: the front-end observes, never perturbs."""
        off = run_scenario(_scenario(), hop_sample_every=4)
        on = run_scenario(SERVED, hop_sample_every=4)
        assert _fingerprint(off) == _fingerprint(on)
        assert np.array_equal(off.final_positions, on.final_positions)
        assert on.extras["service"].offered > 0

    def test_service_composes_with_queries_and_loss(self):
        """Stacked on the lossy control plane and query sampling, the
        service still perturbs nothing — including the query ledger."""
        lossy = _scenario(loss_rate=0.08, retry_attempts=3,
                          queries_per_step=4)
        off = run_scenario(lossy, hop_sample_every=4)
        on = run_scenario(replace(lossy, arrival_rate=40.0),
                          hop_sample_every=4)
        assert _fingerprint(off) == _fingerprint(on)
        assert off.queries.success_series == on.queries.success_series
        assert on.extras["service"].offered > 0


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = run_scenario(SERVED, hop_sample_every=4).extras["service"]
        b = run_scenario(SERVED, hop_sample_every=4).extras["service"]
        assert _service_fingerprint(a) == _service_fingerprint(b)
        assert a.latency_histogram() == b.latency_histogram()

    def test_worker_count_does_not_change_arrivals(self):
        """Thread-pool width is wall-clock machinery: the workload and
        its resolution outcomes must not depend on it.  (Simulated
        queueing *does* depend on service_workers, so compare the
        arrival stream and resolution tallies, not latencies.)"""
        wide = replace(SERVED, service_workers=8)
        a = run_scenario(SERVED, hop_sample_every=4).extras["service"]
        b = run_scenario(wide, hop_sample_every=4).extras["service"]
        assert a.arrivals_series == b.arrivals_series
        assert a.offered == b.offered
        assert a.shed == b.shed

    def test_different_seed_different_workload(self):
        a = run_scenario(SERVED, hop_sample_every=4).extras["service"]
        b = run_scenario(replace(SERVED, seed=4),
                         hop_sample_every=4).extras["service"]
        assert _service_fingerprint(a) != _service_fingerprint(b)


class TestBackpressure:
    def test_admission_sheds_excess_load(self):
        rep = run_scenario(SERVED, hop_sample_every=4).extras["service"]
        assert rep.shed > 0
        assert rep.served + rep.shed + rep.dropped == rep.offered
        # ~40/s offered vs 25/s admitted over 8 metered seconds.
        assert rep.shed == sum(rep.shed_series)

    def test_admit_all_never_sheds(self):
        rep = run_scenario(replace(SERVED, admission_rate=0.0),
                           hop_sample_every=4).extras["service"]
        assert rep.shed == 0

    def test_bounded_queue_drops_under_overload(self):
        crushed = _scenario(arrival_rate=120.0, service_workers=1,
                            service_queue_capacity=2,
                            service_hop_time=0.05)
        rep = run_scenario(crushed, hop_sample_every=4).extras["service"]
        assert rep.dropped > 0
        assert rep.peak_queue_depth <= 2 + 1  # bound, +1 for the one in hand
        assert rep.served + rep.dropped == rep.offered

    def test_gls_scheme_serves(self):
        rep = run_scenario(replace(SERVED, service_scheme="gls"),
                           hop_sample_every=4).extras["service"]
        assert rep.served > 0
        assert rep.updates > 0
        assert rep.direct_hits + rep.fallback_hits + rep.failed == rep.lookups


class TestResume:
    def test_resumed_run_replays_service_exactly(self, tmp_path):
        sc = replace(SERVED, steps=12, warmup=3)
        baseline = Simulator(sc).run()

        path = tmp_path / "serve.ckpt"
        Simulator(sc).run(checkpoint_every=5, checkpoint_path=str(path))
        resumed_sim = Simulator.restore(str(path))
        assert 0 < resumed_sim.next_step < sc.steps
        resumed = resumed_sim.run()
        assert _service_fingerprint(baseline.extras["service"]) == \
            _service_fingerprint(resumed.extras["service"])
        assert _fingerprint(baseline) == _fingerprint(resumed)


class TestAcceptanceLoad:
    """The PR's acceptance bar: a 500-node run absorbing 10k+ requests
    with latency percentiles, throughput, and backpressure reported."""

    @pytest.fixture(scope="class")
    def report(self):
        sc = Scenario(n=500, steps=25, warmup=5, seed=0, max_levels=3,
                      hop_mode="euclidean", arrival_rate=500.0,
                      admission_rate=460.0, service_workers=16,
                      service_hop_time=0.001)
        return run_scenario(sc, hop_sample_every=10_000)

    def test_sustains_10k_requests(self, report):
        rep = report.extras["service"]
        assert rep.offered >= 10_000
        assert rep.served >= 8_000
        assert rep.shed > 0  # admission demonstrably shedding
        assert rep.served + rep.shed + rep.dropped == rep.offered
        assert np.isfinite(rep.p50) and rep.p50 > 0
        assert rep.p50 <= rep.p95 <= rep.p99
        assert rep.throughput > 300.0

    def test_manifest_carries_service_slos(self, report):
        from repro.obs import RunManifest

        metrics = RunManifest.from_result(
            report, hop_sample_every=10_000).metrics
        assert metrics["service_offered"] >= 10_000
        assert metrics["service_p99_latency"] >= metrics["service_p50_latency"]
        assert metrics["service_throughput"] > 0
        assert metrics["service_shed"] > 0
