"""Equivalence guards for the chaos engine.

The standing contract of every fault feature in this repo: switched
off, it must be *bit-identical* to an engine that never had it.  These
tests pin (1) empty schedules and invariant counting as pure observers,
(2) the legacy ``Scenario.failure_rate`` model riding the chaos engine
without changing a single draw (EXP-A3's numbers are frozen here), and
(3) the partition-heal acceptance scenario: finite time-to-reconverge
with zero invariant violations after convergence.
"""

import numpy as np
import pytest

from repro.faults import CrashEpisode
from repro.sim import Scenario, run_scenario
from repro.sim.engine import Simulator


def _same_run(a, b, queries=False):
    assert a.phi == b.phi
    assert a.gamma == b.gamma
    assert a.f0 == b.f0
    assert a.handoff_rate == b.handoff_rate
    assert a.ledger.stale_series == b.ledger.stale_series
    assert np.array_equal(a.final_positions, b.final_positions)
    if queries:
        assert a.queries.attempts == b.queries.attempts
        assert a.queries.success_series == b.queries.success_series


class TestEmptyScheduleEquivalence:
    def test_counting_collector_is_a_pure_observer(self):
        """invariant_mode="count" on a fault-free run must not perturb
        any series — the checker reads snapshots, draws nothing."""
        base = dict(n=100, steps=20, warmup=3, speed=3.0, seed=7)
        plain = run_scenario(Scenario(**base), hop_sample_every=10)
        counted = run_scenario(Scenario(**base, invariant_mode="count"),
                               hop_sample_every=10)
        _same_run(plain, counted)
        assert counted.extras["chaos"].total_violations >= 0
        assert "chaos" not in plain.extras  # auto mode: off without faults

    def test_counting_pure_observer_with_queries(self):
        base = dict(n=80, steps=12, warmup=3, speed=2.0, seed=7,
                    max_levels=3, loss_rate=0.15, retry_attempts=3,
                    queries_per_step=5)
        plain = run_scenario(Scenario(**base), hop_sample_every=25)
        counted = run_scenario(Scenario(**base, invariant_mode="count"),
                               hop_sample_every=25)
        _same_run(plain, counted, queries=True)

    def test_empty_schedule_builds_no_engine(self):
        sim = Simulator(Scenario(n=60, steps=4, warmup=1, seed=0,
                                 max_levels=2, chaos=()))
        assert sim._chaos is None

    def test_chaos_stream_leaves_other_streams_untouched(self):
        """A schedule draws only from the dedicated "chaos" stream:
        mobility (and hence final positions) must match the fault-free
        run exactly."""
        base = dict(n=80, steps=10, warmup=2, speed=2.0, seed=11,
                    max_levels=3)
        plain = run_scenario(Scenario(**base), hop_sample_every=25)
        chaotic = run_scenario(
            Scenario(**base, chaos=("crash:rate=0.02,repair=5",)),
            hop_sample_every=25)
        assert np.array_equal(plain.final_positions,
                              chaotic.final_positions)
        assert chaotic.extras["chaos"].peak_down > 0


class TestLegacyFailureEquivalence:
    BASE = dict(n=80, steps=15, warmup=3, speed=2.0, seed=3, max_levels=3)

    def test_failure_rate_equals_explicit_legacy_episode(self):
        """Scenario.failure_rate is exactly a whole-run CrashEpisode on
        the legacy "failures" stream — same draws, same numbers."""
        implicit = run_scenario(
            Scenario(**self.BASE, failure_rate=0.01, repair_time=10.0),
            hop_sample_every=25)
        explicit = run_scenario(
            Scenario(**self.BASE,
                     chaos=(CrashEpisode(rate=0.01, repair_time=10.0,
                                         stream="failures"),)),
            hop_sample_every=25)
        _same_run(implicit, explicit)

    def test_exp_a3_numbers_frozen(self):
        """The EXP-A3 crash model's output, pinned bit-for-bit across
        the port onto the chaos engine."""
        res = run_scenario(
            Scenario(**self.BASE, failure_rate=0.01, repair_time=10.0),
            hop_sample_every=25)
        assert res.phi == 0.5666666666666667
        assert res.gamma == 1.9858333333333333
        assert res.f0 == 3.135
        assert float(res.final_positions.sum()) == 55.38491027503877


class TestPartitionHealAcceptance:
    @pytest.fixture(scope="class")
    def report(self):
        sc = Scenario(n=100, steps=16, warmup=2, mobility="stationary",
                      seed=1, max_levels=3, target_degree=14.0,
                      chaos=("partition:start=4,duration=6,angle=0.3",))
        return run_scenario(sc, hop_sample_every=10_000).extras["chaos"]

    def test_violations_confined_to_the_cut_window(self, report):
        series = report.violations_series
        # Cut active at chaos clock t in [4, 10): metered steps 3..8.
        assert all(v == 0 for v in series[:3])
        assert all(v > 0 for v in series[3:9])
        assert all(v == 0 for v in series[9:])

    def test_time_to_reconverge_finite(self, report):
        slo = report.episodes[0]
        assert slo.kind == "partition"
        assert slo.recovered_step is not None
        assert slo.time_to_reconverge is not None
        assert np.isfinite(slo.time_to_reconverge)
        assert report.max_time_to_reconverge() == slo.time_to_reconverge

    def test_clusterhead_kill_recovery_tracks_repair(self):
        """A clusterhead decapitation stays broken until the repair
        window elapses: TTR > 0 but finite."""
        sc = Scenario(n=100, steps=18, warmup=2, mobility="stationary",
                      seed=1, max_levels=3, target_degree=14.0,
                      chaos=("crash:start=4,duration=1,count=3,"
                             "targets=clusterheads,repair=6",))
        rep = run_scenario(sc, hop_sample_every=10_000).extras["chaos"]
        slo = rep.episodes[0]
        assert rep.peak_down == 3
        assert slo.time_to_reconverge is not None
        assert 0 < slo.time_to_reconverge < sc.steps * sc.dt
        assert rep.violations_series[-1] == 0
