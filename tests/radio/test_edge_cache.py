"""Verlet edge cache: exactness fuzz and rebuild accounting.

The cache's output must be **bit-identical** to a fresh
:func:`unit_disk_edges` call on every step — same pairs, same order,
same dtype — no matter how positions drift.  The drift threshold
(rebuild when ``2 * max_drift > skin * r_tx``) is the documented
amortization knob; see docs/PERFORMANCE.md for when it pays.
"""

import numpy as np
import pytest

from repro.geometry import disc_for_density
from repro.radio import VerletEdgeCache, radius_for_degree, unit_disk_edges

DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


class TestExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_bit_identical_over_random_walk(self, seed):
        n = 120
        rng = np.random.default_rng(seed)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        cache = VerletEdgeCache(R_TX)
        for _ in range(30):
            got = cache.edges(pts)
            ref = unit_disk_edges(pts, R_TX)
            assert got.dtype == ref.dtype
            assert np.array_equal(got, ref)
            pts = pts + rng.normal(scale=0.5, size=pts.shape)
        # The walk drifts ~0.5/step against a ~2.4 rebuild margin: the
        # cache must have both rebuilt and reused at least once.
        assert 1 < cache.rebuilds < 30

    def test_teleport_forces_rebuild(self):
        rng = np.random.default_rng(7)
        pts = disc_for_density(80, DENSITY).sample(80, rng)
        cache = VerletEdgeCache(R_TX)
        cache.edges(pts)
        assert cache.rebuilds == 1
        moved = pts.copy()
        moved[0] += R_TX  # one node jumps a full radius
        assert np.array_equal(cache.edges(moved),
                              unit_disk_edges(moved, R_TX))
        assert cache.rebuilds == 2

    def test_static_positions_never_rebuild_again(self):
        rng = np.random.default_rng(2)
        pts = disc_for_density(60, DENSITY).sample(60, rng)
        cache = VerletEdgeCache(R_TX)
        for _ in range(5):
            cache.edges(pts)
        assert cache.rebuilds == 1

    def test_population_change_rebuilds(self):
        rng = np.random.default_rng(3)
        pts = disc_for_density(50, DENSITY).sample(50, rng)
        cache = VerletEdgeCache(R_TX)
        cache.edges(pts)
        grown = np.vstack([pts, pts[:5] + 0.1])
        assert np.array_equal(cache.edges(grown),
                              unit_disk_edges(grown, R_TX))
        assert cache.rebuilds == 2


class TestValidation:
    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError, match="r_tx"):
            VerletEdgeCache(0.0)

    def test_rejects_nonpositive_skin(self):
        with pytest.raises(ValueError, match="skin"):
            VerletEdgeCache(R_TX, skin=0.0)

    def test_empty_candidate_list(self):
        """Nodes too far apart: no candidates, still exact."""
        pts = np.array([[0.0, 0.0], [100.0 * R_TX, 0.0]])
        cache = VerletEdgeCache(R_TX)
        assert cache.edges(pts).shape == (0, 2)


class TestLinkDiffEmission:
    """edges_with_diff must report exactly the sorted set differences a
    re-diff of consecutive edge arrays would produce — in the same
    (ascending encoded-key) order — and None across rebuilds."""

    @staticmethod
    def _setdiff_oracle(prev, cur, n):
        from repro.radio.unit_disk import decode_edges, encode_edges

        pk, ck = encode_edges(prev, n), encode_edges(cur, n)
        ups = decode_edges(np.setdiff1d(ck, pk, assume_unique=True), n)
        downs = decode_edges(np.setdiff1d(pk, ck, assume_unique=True), n)
        return ups, downs

    @pytest.mark.parametrize("seed", range(4))
    def test_diff_matches_setdiff_oracle(self, seed):
        n = 100
        rng = np.random.default_rng(seed)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        cache = VerletEdgeCache(R_TX)
        prev = None
        rebuilds = 0
        diffs_checked = 0
        for _ in range(25):
            before = cache.rebuilds
            edges, diff = cache.edges_with_diff(pts)
            if cache.rebuilds > before:
                rebuilds += 1
                assert diff is None
            elif diff is not None:
                ups, downs = self._setdiff_oracle(prev, edges, n)
                assert np.array_equal(diff.ups, ups)
                assert np.array_equal(diff.downs, downs)
                diffs_checked += 1
            prev = edges
            pts = pts + rng.normal(scale=0.4, size=pts.shape)
        assert diffs_checked > 5  # the fuzz actually exercised the path

    def test_static_positions_emit_empty_diff(self):
        rng = np.random.default_rng(1)
        pts = disc_for_density(60, DENSITY).sample(60, rng)
        cache = VerletEdgeCache(R_TX)
        assert cache.edges_with_diff(pts)[1] is None  # first call
        _, diff = cache.edges_with_diff(pts)
        assert diff is not None and diff.n_events == 0

    def test_edges_and_edges_with_diff_interleave(self):
        """edges() is a view over the same state machine, so mixing the
        two entry points keeps diffs consistent."""
        rng = np.random.default_rng(5)
        pts = disc_for_density(60, DENSITY).sample(60, rng)
        cache = VerletEdgeCache(R_TX)
        e0 = cache.edges(pts)
        pts2 = pts + rng.normal(scale=0.2, size=pts.shape)
        e1, diff = cache.edges_with_diff(pts2)
        if diff is not None:
            ups, downs = self._setdiff_oracle(e0, e1, 60)
            assert np.array_equal(diff.ups, ups)
            assert np.array_equal(diff.downs, downs)
