"""Verlet edge cache: exactness fuzz and rebuild accounting.

The cache's output must be **bit-identical** to a fresh
:func:`unit_disk_edges` call on every step — same pairs, same order,
same dtype — no matter how positions drift.  The drift threshold
(rebuild when ``2 * max_drift > skin * r_tx``) is the documented
amortization knob; see docs/PERFORMANCE.md for when it pays.
"""

import numpy as np
import pytest

from repro.geometry import disc_for_density
from repro.radio import VerletEdgeCache, radius_for_degree, unit_disk_edges

DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


class TestExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_bit_identical_over_random_walk(self, seed):
        n = 120
        rng = np.random.default_rng(seed)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        cache = VerletEdgeCache(R_TX)
        for _ in range(30):
            got = cache.edges(pts)
            ref = unit_disk_edges(pts, R_TX)
            assert got.dtype == ref.dtype
            assert np.array_equal(got, ref)
            pts = pts + rng.normal(scale=0.5, size=pts.shape)
        # The walk drifts ~0.5/step against a ~2.4 rebuild margin: the
        # cache must have both rebuilt and reused at least once.
        assert 1 < cache.rebuilds < 30

    def test_teleport_forces_rebuild(self):
        rng = np.random.default_rng(7)
        pts = disc_for_density(80, DENSITY).sample(80, rng)
        cache = VerletEdgeCache(R_TX)
        cache.edges(pts)
        assert cache.rebuilds == 1
        moved = pts.copy()
        moved[0] += R_TX  # one node jumps a full radius
        assert np.array_equal(cache.edges(moved),
                              unit_disk_edges(moved, R_TX))
        assert cache.rebuilds == 2

    def test_static_positions_never_rebuild_again(self):
        rng = np.random.default_rng(2)
        pts = disc_for_density(60, DENSITY).sample(60, rng)
        cache = VerletEdgeCache(R_TX)
        for _ in range(5):
            cache.edges(pts)
        assert cache.rebuilds == 1

    def test_population_change_rebuilds(self):
        rng = np.random.default_rng(3)
        pts = disc_for_density(50, DENSITY).sample(50, rng)
        cache = VerletEdgeCache(R_TX)
        cache.edges(pts)
        grown = np.vstack([pts, pts[:5] + 0.1])
        assert np.array_equal(cache.edges(grown),
                              unit_disk_edges(grown, R_TX))
        assert cache.rebuilds == 2


class TestValidation:
    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError, match="r_tx"):
            VerletEdgeCache(0.0)

    def test_rejects_nonpositive_skin(self):
        with pytest.raises(ValueError, match="skin"):
            VerletEdgeCache(R_TX, skin=0.0)

    def test_empty_candidate_list(self):
        """Nodes too far apart: no candidates, still exact."""
        pts = np.array([[0.0, 0.0], [100.0 * R_TX, 0.0]])
        cache = VerletEdgeCache(R_TX)
        assert cache.edges(pts).shape == (0, 2)
