"""Tests for unit-disk graph construction and edge encoding."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DiscRegion, pairwise_distances
from repro.radio import (
    decode_edges,
    degree_counts,
    edges_to_graph,
    encode_edges,
    unit_disk_edges,
    unit_disk_graph,
)


class TestUnitDiskEdges:
    def test_simple_chain(self):
        pts = [[0, 0], [1, 0], [2, 0], [10, 0]]
        e = unit_disk_edges(pts, 1.5)
        assert e.tolist() == [[0, 1], [1, 2]]

    def test_canonical_form(self):
        rng = np.random.default_rng(0)
        pts = rng.random((50, 2)) * 10
        e = unit_disk_edges(pts, 2.0)
        assert (e[:, 0] < e[:, 1]).all()
        keys = e[:, 0] * 50 + e[:, 1]
        assert (np.diff(keys) > 0).all()  # strictly sorted, no duplicates

    def test_empty_cases(self):
        assert unit_disk_edges(np.empty((0, 2)), 1.0).shape == (0, 2)
        assert unit_disk_edges([[0.0, 0.0]], 1.0).shape == (0, 2)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            unit_disk_edges([[0, 0], [1, 1]], 0.0)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        pts = rng.random((40, 2)) * 5
        r = 1.2
        e = unit_disk_edges(pts, r)
        d = pairwise_distances(pts)
        expected = {(i, j) for i in range(40) for j in range(i + 1, 40) if d[i, j] <= r}
        assert set(map(tuple, e.tolist())) == expected


class TestGraphView:
    def test_preserves_isolated_nodes(self):
        g = edges_to_graph(5, np.array([[0, 1]]))
        assert g.number_of_nodes() == 5
        assert g.degree[4] == 0

    def test_positions_attached(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        g = unit_disk_graph(pts, 2.0)
        assert g.nodes[1]["pos"] == (1.0, 0.0)
        assert g.has_edge(0, 1)

    def test_position_length_mismatch(self):
        with pytest.raises(ValueError):
            edges_to_graph(3, np.empty((0, 2)), positions=np.zeros((2, 2)))

    def test_graph_equivalence_with_nx_rgg(self):
        """Cross-check against networkx's random geometric graph."""
        rng = np.random.default_rng(2)
        pts = rng.random((30, 2))
        r = 0.3
        ours = unit_disk_graph(pts, r)
        ref = nx.random_geometric_graph(30, r, pos={i: pts[i] for i in range(30)})
        assert set(ours.edges()) == {tuple(sorted(e)) for e in ref.edges()}


class TestDegreeCounts:
    def test_star(self):
        e = np.array([[0, 1], [0, 2], [0, 3]])
        deg = degree_counts(4, e)
        assert deg.tolist() == [3, 1, 1, 1]

    def test_empty(self):
        assert degree_counts(3, np.empty((0, 2), dtype=np.int64)).tolist() == [0, 0, 0]

    def test_matches_networkx(self):
        rng = np.random.default_rng(3)
        pts = rng.random((25, 2))
        e = unit_disk_edges(pts, 0.4)
        g = edges_to_graph(25, e)
        deg = degree_counts(25, e)
        assert deg.tolist() == [g.degree[i] for i in range(25)]


class TestEdgeEncoding:
    def test_roundtrip(self):
        e = np.array([[0, 1], [2, 7], [3, 4]], dtype=np.int64)
        keys = encode_edges(e, 10)
        assert np.array_equal(decode_edges(keys, 10), e)

    def test_empty_roundtrip(self):
        keys = encode_edges(np.empty((0, 2), dtype=np.int64), 10)
        assert keys.size == 0
        assert decode_edges(keys, 10).shape == (0, 2)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=1000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_roundtrip_property(self, n, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(0, 20))
        if m:
            a = rng.integers(0, n - 1, size=m)
            b = rng.integers(a + 1, n)
            e = np.sort(np.stack([a, b], axis=1), axis=1).astype(np.int64)
        else:
            e = np.empty((0, 2), dtype=np.int64)
        assert np.array_equal(decode_edges(encode_edges(e, n), n), e)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    r=st.floats(min_value=0.05, max_value=2.0),
)
def test_unit_disk_symmetry_property(seed, r):
    """Edge set must equal brute-force thresholding of the distance matrix."""
    rng = np.random.default_rng(seed)
    pts = DiscRegion(1.0).sample(20, rng)
    e = unit_disk_edges(pts, r)
    d = pairwise_distances(pts)
    brute = {(i, j) for i in range(20) for j in range(i + 1, 20) if d[i, j] <= r}
    assert set(map(tuple, e.tolist())) == brute
