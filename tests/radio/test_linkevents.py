"""Tests for link state change tracking (the measured f_0 of Eq. (4))."""

import numpy as np
import pytest

from repro.geometry import disc_for_density
from repro.mobility import RandomWaypoint
from repro.radio import LinkTracker, radius_for_degree, unit_disk_edges


def edges(pairs):
    return np.array(sorted(tuple(sorted(p)) for p in pairs), dtype=np.int64).reshape(
        -1, 2
    )


class TestLinkTracker:
    def test_first_observation_is_baseline(self):
        t = LinkTracker(n=5)
        diff = t.observe(edges([(0, 1), (1, 2)]))
        assert diff.n_events == 0
        assert t.steps == 0

    def test_detects_up_and_down(self):
        t = LinkTracker(n=5)
        t.observe(edges([(0, 1), (1, 2)]))
        diff = t.observe(edges([(1, 2), (2, 3)]))
        assert diff.ups.tolist() == [[2, 3]]
        assert diff.downs.tolist() == [[0, 1]]
        assert diff.n_events == 2
        assert t.total_ups == 1 and t.total_downs == 1

    def test_no_change(self):
        t = LinkTracker(n=4)
        e = edges([(0, 3)])
        t.observe(e)
        diff = t.observe(e)
        assert diff.n_events == 0

    def test_per_node_attribution(self):
        t = LinkTracker(n=4)
        t.observe(edges([(0, 1)]))
        t.observe(edges([(2, 3)]))  # 0-1 down, 2-3 up
        assert t.per_node_events.tolist() == [1, 1, 1, 1]

    def test_empty_snapshots(self):
        t = LinkTracker(n=3)
        empty = np.empty((0, 2), dtype=np.int64)
        t.observe(empty)
        diff = t.observe(empty)
        assert diff.n_events == 0

    def test_frequency_normalization(self):
        t = LinkTracker(n=2)
        t.observe(edges([(0, 1)]))
        t.observe(np.empty((0, 2), dtype=np.int64))
        assert t.events_per_node_per_second(2.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            t.events_per_node_per_second(0.0)

    def test_reset(self):
        t = LinkTracker(n=3)
        t.observe(edges([(0, 1)]))
        t.observe(edges([(1, 2)]))
        t.reset()
        assert t.total_ups == 0 and t.total_downs == 0
        assert t.per_node_events.sum() == 0
        # Next observe is a fresh baseline.
        assert t.observe(edges([(0, 2)])).n_events == 0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            LinkTracker(n=0)


class TestStationaryNetworkHasNoEvents:
    def test_static_deployment(self):
        rng = np.random.default_rng(0)
        region = disc_for_density(100, 0.01)
        pts = region.sample(100, rng)
        e = unit_disk_edges(pts, radius_for_degree(8.0, 0.01))
        t = LinkTracker(n=100)
        t.observe(e)
        for _ in range(5):
            assert t.observe(e).n_events == 0


class TestMobileNetworkHasEvents:
    def test_rwp_produces_link_churn(self):
        density = 0.005
        n = 150
        region = disc_for_density(n, density)
        rng = np.random.default_rng(1)
        model = RandomWaypoint(n, region, 10.0, rng)
        r = radius_for_degree(8.0, density)
        t = LinkTracker(n=n)
        t.observe(unit_disk_edges(model.positions, r))
        for _ in range(20):
            model.step(1.0)
            t.observe(unit_disk_edges(model.positions, r))
        assert t.total_ups > 0 and t.total_downs > 0
        # Over a long window ups ~ downs (stationarity).
        ratio = t.total_ups / max(t.total_downs, 1)
        assert 0.3 < ratio < 3.0
