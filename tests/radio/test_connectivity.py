"""Tests for connectivity sizing helpers."""

import numpy as np
import pytest

from repro.geometry import disc_for_density
from repro.radio import (
    expected_degree,
    giant_component_fraction,
    gupta_kumar_radius,
    is_connected,
    largest_component_nodes,
    radius_for_degree,
)


class TestRadiusForDegree:
    def test_inverse_of_expected_degree(self):
        r = radius_for_degree(8.0, density=0.01)
        assert expected_degree(r, 0.01) == pytest.approx(8.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            radius_for_degree(0, 1.0)
        with pytest.raises(ValueError):
            radius_for_degree(5, 0)
        with pytest.raises(ValueError):
            expected_degree(0, 1.0)

    def test_empirical_degree_matches(self):
        """Sampled mean degree should be close to the target."""
        density = 0.02
        n = 2000
        region = disc_for_density(n, density)
        rng = np.random.default_rng(0)
        pts = region.sample(n, rng)
        r = radius_for_degree(10.0, density)
        from repro.radio import degree_counts, unit_disk_edges

        deg = degree_counts(n, unit_disk_edges(pts, r))
        # Border effects pull the mean slightly below the Poisson value.
        assert 8.0 < deg.mean() < 10.5


class TestGuptaKumar:
    def test_scaling_shape(self):
        """r_c^2 * n / log n should be constant across n at fixed area."""
        area = 1.0
        vals = [gupta_kumar_radius(n, area) ** 2 * n / np.log(n) for n in (100, 1000, 10000)]
        assert max(vals) == pytest.approx(min(vals))

    def test_invalid(self):
        with pytest.raises(ValueError):
            gupta_kumar_radius(1, 1.0)
        with pytest.raises(ValueError):
            gupta_kumar_radius(10, 0.0)

    def test_supercritical_usually_connected(self):
        rng = np.random.default_rng(1)
        region = disc_for_density(300, 1.0)
        pts = region.sample(300, rng)
        r = gupta_kumar_radius(300, region.area, c=4.0)
        assert giant_component_fraction(pts, r) > 0.95


class TestComponents:
    def test_two_blobs_disconnected(self):
        pts = np.array([[0, 0], [1, 0], [100, 0], [101, 0]], dtype=float)
        assert not is_connected(pts, 2.0)
        assert giant_component_fraction(pts, 2.0) == pytest.approx(0.5)

    def test_connected_chain(self):
        pts = np.array([[i, 0] for i in range(10)], dtype=float)
        assert is_connected(pts, 1.5)
        assert giant_component_fraction(pts, 1.5) == 1.0

    def test_single_node_connected(self):
        assert is_connected(np.array([[0.0, 0.0]]), 1.0)

    def test_largest_component_nodes(self):
        pts = np.array([[0, 0], [1, 0], [2, 0], [50, 0], [51, 0]], dtype=float)
        assert largest_component_nodes(pts, 1.5).tolist() == [0, 1, 2]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            giant_component_fraction(np.empty((0, 2)), 1.0)
        with pytest.raises(ValueError):
            largest_component_nodes(np.empty((0, 2)), 1.0)
