"""Tests for CHLM hash functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import mix64, naive_circular_choice, rendezvous_choice
from repro.core.hashing import HASH_REGISTRY


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_distinct_inputs_distinct_outputs(self):
        vals = mix64(np.arange(1000))
        assert len(np.unique(vals)) == 1000

    def test_vectorized_matches_scalar(self):
        xs = np.array([0, 1, 2**32, 2**63], dtype=np.uint64)
        vec = mix64(xs)
        for i, x in enumerate(xs):
            assert vec[i] == mix64(int(x))

    def test_avalanche(self):
        """Single-bit input flips should flip ~half the output bits."""
        a = int(mix64(0x1234))
        b = int(mix64(0x1235))
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48


class TestRendezvousChoice:
    def test_deterministic_and_order_independent(self):
        cands = [5, 17, 99, 3]
        a = rendezvous_choice(42, 7, cands)
        b = rendezvous_choice(42, 7, list(reversed(cands)))
        assert a == b
        assert a in cands

    def test_empty(self):
        assert rendezvous_choice(1, 2, []) is None

    def test_single(self):
        assert rendezvous_choice(1, 2, [9]) == 9

    def test_salt_changes_choice_sometimes(self):
        cands = list(range(20))
        choices = {rendezvous_choice(7, salt, cands) for salt in range(50)}
        assert len(choices) > 5  # salts decorrelate stages

    def test_equitable_distribution(self):
        """Feature: each candidate wins ~uniformly over many subjects."""
        cands = [3, 17, 52, 80, 91]
        counts = {c: 0 for c in cands}
        n_subjects = 5000
        for v in range(n_subjects):
            counts[rendezvous_choice(v, 11, cands)] += 1
        expected = n_subjects / len(cands)
        for c, cnt in counts.items():
            assert abs(cnt - expected) < expected * 0.15, (c, cnt)

    def test_minimal_disruption(self):
        """Removing a non-chosen candidate must not change the winner —
        the rendezvous property that keeps handoff minimal."""
        cands = [3, 17, 52, 80, 91]
        for v in range(100):
            w = rendezvous_choice(v, 5, cands)
            rest = [c for c in cands if c != w]
            loser = rest[v % len(rest)]
            reduced = [c for c in cands if c != loser]
            assert rendezvous_choice(v, 5, reduced) == w


class TestNaiveChoice:
    def test_matches_eq5_semantics(self):
        assert naive_circular_choice(5, 0, [3, 7, 9]) == 7

    def test_skews_on_gappy_candidates(self):
        """The paper's warning: cluster IDs {45, 59, 68, 74, 75, 97} with
        Eq. (5) give cluster 45 a disproportionately large share of
        subjects (everything in the wraparound gap 98..44 hashes to 45).
        """
        cands = [45, 59, 68, 74, 75, 97]
        counts = {c: 0 for c in cands}
        modulus = 128
        for v in range(modulus):
            w = naive_circular_choice(v, 0, cands, modulus=modulus)
            counts[w] += 1
        # 45 absorbs the huge gap; uniform share would be ~21.
        assert counts[45] > 2 * (modulus / len(cands))

    def test_registry(self):
        assert set(HASH_REGISTRY) == {"rendezvous", "naive"}


@settings(max_examples=60, deadline=None)
@given(
    subject=st.integers(0, 10_000),
    salt=st.integers(0, 10_000),
    cands=st.lists(st.integers(0, 10_000), min_size=1, max_size=20, unique=True),
)
def test_rendezvous_membership_property(subject, salt, cands):
    w = rendezvous_choice(subject, salt, cands)
    assert w in cands
    # Stability: adding a new candidate either keeps the winner or the
    # new candidate wins.
    new = max(cands) + 1
    w2 = rendezvous_choice(subject, salt, cands + [new])
    assert w2 in (w, new)
