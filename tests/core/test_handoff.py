"""Tests for the handoff engine and overhead ledger."""

import numpy as np
import pytest

from repro.core import HandoffEngine, OverheadLedger
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges


def unit_hops(u, v):
    """Hop stub: every transfer costs 1 packet (u != v)."""
    return 0 if u == v else 1


def make_hierarchy(pts, r):
    edges = unit_disk_edges(pts, r)
    return build_hierarchy(np.arange(len(pts)), edges)


@pytest.fixture
def mobile_run():
    """A 120-node RWP run yielding a few hierarchy snapshots."""
    from repro.mobility import RandomWaypoint

    density = 0.02
    n = 120
    region = disc_for_density(n, density)
    rng = np.random.default_rng(0)
    model = RandomWaypoint(n, region, 8.0, rng)
    r = radius_for_degree(9.0, density)
    snaps = [make_hierarchy(model.positions.copy(), r)]
    for _ in range(6):
        model.step(1.0)
        snaps.append(make_hierarchy(model.positions.copy(), r))
    return snaps


class TestHandoffEngine:
    def test_first_observation_free(self, mobile_run):
        eng = HandoffEngine()
        rep = eng.observe(mobile_run[0], unit_hops)
        assert rep.total_handoff_packets == 0
        assert eng.assignment is not None

    def test_identical_snapshot_free(self, mobile_run):
        eng = HandoffEngine()
        eng.observe(mobile_run[0], unit_hops)
        rep = eng.observe(mobile_run[0], unit_hops)
        assert rep.total_handoff_packets == 0
        assert rep.registration_events == 0

    def test_mobility_produces_handoff(self, mobile_run):
        eng = HandoffEngine()
        total = 0
        for h in mobile_run:
            rep = eng.observe(h, unit_hops)
            total += rep.total_handoff_packets
        assert total > 0

    def test_entry_conservation(self, mobile_run):
        """Every metered entry transfer corresponds to an actual change
        in the assignment mapping."""
        eng = HandoffEngine()
        prev = None
        for h in mobile_run:
            rep = eng.observe(h, unit_hops)
            cur = eng.assignment.servers
            if prev is not None:
                changed = sum(
                    1
                    for k in set(prev) | set(cur)
                    if prev.get(k) != cur.get(k) and cur.get(k) is not None
                )
                metered = (
                    sum(rep.migration_entries.values())
                    + sum(rep.reorg_entries.values())
                )
                assert metered == changed
            prev = dict(cur)

    def test_migration_and_reorg_disjoint(self, mobile_run):
        """phi and gamma partition the handoff packets."""
        eng = HandoffEngine()
        for h in mobile_run:
            rep = eng.observe(h, unit_hops)
            assert rep.total_handoff_packets == rep.phi_packets + rep.gamma_packets

    def test_naive_hash_engine(self, mobile_run):
        eng = HandoffEngine(hash_fn="naive")
        for h in mobile_run[:3]:
            eng.observe(h, unit_hops)
        assert eng.assignment is not None


class TestStationaryControl:
    def test_static_network_zero_overhead(self):
        """The mu = 0 control: no motion, no handoff, no registration."""
        density = 0.02
        n = 100
        region = disc_for_density(n, density)
        rng = np.random.default_rng(1)
        pts = region.sample(n, rng)
        h = make_hierarchy(pts, radius_for_degree(9.0, density))
        eng = HandoffEngine()
        eng.observe(h, unit_hops)
        for _ in range(3):
            rep = eng.observe(h, unit_hops)
            assert rep.total_handoff_packets == 0
            assert sum(rep.registration_packets.values()) == 0


class TestOverheadLedger:
    def test_validation(self):
        with pytest.raises(ValueError):
            OverheadLedger(n_nodes=0)

    def test_rates(self, mobile_run):
        eng = HandoffEngine()
        ledger = OverheadLedger(n_nodes=120)
        for h in mobile_run:
            rep = eng.observe(h, unit_hops)
            ledger.record(rep, dt=1.0)
        assert ledger.elapsed == pytest.approx(7.0)
        assert ledger.handoff_rate == pytest.approx(ledger.phi + ledger.gamma)
        # Per-level rates sum to the total.
        assert sum(ledger.phi_k().values()) == pytest.approx(ledger.phi)
        assert sum(ledger.gamma_k().values()) == pytest.approx(ledger.gamma)

    def test_record_validation(self, mobile_run):
        ledger = OverheadLedger(n_nodes=10)
        eng = HandoffEngine()
        rep = eng.observe(mobile_run[0], unit_hops)
        with pytest.raises(ValueError):
            ledger.record(rep, dt=0.0)

    def test_event_rates_exposed(self, mobile_run):
        eng = HandoffEngine()
        ledger = OverheadLedger(n_nodes=120)
        for h in mobile_run:
            ledger.record(eng.observe(h, unit_hops), dt=1.0)
        fk = ledger.f_k()
        assert all(v >= 0 for v in fk.values())
        rates = ledger.reorg_event_rates()
        assert all(v >= 0 for v in rates.values())
