"""Tests for CHLM server selection (Section 3.2 descent)."""

import numpy as np
import pytest

from repro.core import full_assignment, lm_levels, select_server
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges


def make_hierarchy(n, seed=0, density=0.02, degree=9.0):
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    edges = unit_disk_edges(pts, radius_for_degree(degree, density))
    return build_hierarchy(np.arange(n), edges)


@pytest.fixture(scope="module")
def h300():
    h = make_hierarchy(300, seed=1)
    assert h.num_levels >= 2
    return h


class TestSelectServer:
    def test_server_inside_subjects_cluster(self, h300):
        """The level-k server must be a physical node of the subject's
        level-k cluster — that is the whole point of the placement."""
        for subject in range(0, 300, 29):
            for level in range(2, h300.num_levels + 1):
                srv = select_server(h300, subject, level)
                assert srv is not None
                members = h300.members0(level, h300.cluster_of(subject, level))
                assert srv in members.tolist()

    def test_global_level_server(self, h300):
        """The virtual global level (L+1) serves every subject from the
        whole network (the paper's single top cluster, capped-L form)."""
        top = lm_levels(h300)
        assert top == h300.num_levels + 1
        srv = select_server(h300, 0, top)
        assert srv is not None
        assert 0 <= srv < 300
        assert select_server(h300, 0, top + 1) is None

    def test_level_validation(self, h300):
        with pytest.raises(ValueError):
            select_server(h300, 0, 1)
        assert select_server(h300, 0, h300.num_levels + 2) is None

    def test_deterministic(self, h300):
        assert select_server(h300, 42, 2) == select_server(h300, 42, 2)

    def test_unknown_hash(self, h300):
        with pytest.raises(ValueError):
            select_server(h300, 0, 2, hash_fn="md5")

    def test_naive_hash_works(self, h300):
        srv = select_server(h300, 10, 2, hash_fn="naive")
        members = h300.members0(2, h300.cluster_of(10, 2))
        assert srv in members.tolist()


class TestFullAssignment:
    def test_matches_scalar_descent(self, h300):
        a = full_assignment(h300)
        for subject in range(0, 300, 41):
            for level in range(2, lm_levels(h300) + 1):
                assert a.servers[(subject, level)] == select_server(
                    h300, subject, level
                )

    def test_complete_coverage(self, h300):
        a = full_assignment(h300)
        # Levels 2..L plus the virtual global level: L entries each.
        expected = 300 * h300.num_levels
        assert len(a.servers) == expected

    def test_shallow_hierarchy_has_global_level_only(self):
        h = build_hierarchy([1, 2], [[1, 2]])
        assert h.num_levels == 1
        a = full_assignment(h)
        # Only the virtual global level (level 2) exists.
        assert set(lvl for _, lvl in a.servers) == {2}
        assert len(a.servers) == 2

    def test_load_is_logarithmic_scale(self, h300):
        """Each node serves Theta(log|V|) entries on average (Section
        3.2's closing observation): total entries = n*(L-1), so the mean
        over nodes is L-1; the max should stay within a small factor."""
        a = full_assignment(h300)
        load = a.load()
        total = sum(load.values())
        assert total == 300 * h300.num_levels
        mean = total / 300
        assert max(load.values()) < mean * 30

    def test_servers_of(self, h300):
        a = full_assignment(h300)
        per_level = a.servers_of(7)
        assert set(per_level) == set(range(2, lm_levels(h300) + 1))

    def test_entries_served_by(self, h300):
        a = full_assignment(h300)
        some_server = next(iter(a.servers.values()))
        entries = a.entries_served_by(some_server)
        assert all(a.servers[k] == some_server for k in entries)
        assert entries

    def test_naive_assignment_runs(self, h300):
        a = full_assignment(h300, hash_fn="naive")
        assert len(a.servers) == 300 * h300.num_levels


class TestLoadBalanceComparison:
    def test_rendezvous_beats_naive(self):
        """EXP-T7 kernel: rendezvous max-load should be well below the
        naive Eq. (5) hash's max-load on the same hierarchy."""
        h = make_hierarchy(500, seed=3)
        ren = full_assignment(h, "rendezvous").load()
        nai = full_assignment(h, "naive").load()
        assert max(ren.values()) < max(nai.values())


class TestChainedAssignment:
    """Incremental CHLM: chains + dirty-cluster patching.

    ``assignment_with_chains`` must reproduce ``full_assignment``'s
    rendezvous servers exactly, and ``patch_assignment`` must keep that
    equality over churn while only re-descending dirty keys."""

    def _snapshots(self, seed, steps=6, n=120, drift=0.6):
        from repro.geometry import disc_for_density

        rng = np.random.default_rng(seed)
        density = 0.02
        r_tx = radius_for_degree(9.0, density)
        pts = disc_for_density(n, density).sample(n, rng)
        out = []
        for _ in range(steps):
            edges = unit_disk_edges(pts, r_tx)
            out.append(build_hierarchy(np.arange(n), edges, max_levels=3,
                                       level_mode="radio", positions=pts,
                                       r0=r_tx))
            pts = pts + rng.normal(scale=drift, size=pts.shape)
        return out

    def test_chains_match_full_assignment(self):
        from repro.core import assignment_with_chains

        for h in self._snapshots(seed=0, steps=2):
            chained = assignment_with_chains(h)
            assert chained.servers == full_assignment(h, "rendezvous").servers

    @pytest.mark.parametrize("seed", [1, 4])
    def test_patching_matches_full_assignment_over_churn(self, seed):
        from repro.core import assignment_with_chains, patch_assignment
        from repro.hierarchy import compute_delta

        snaps = self._snapshots(seed=seed)
        prev_h = snaps[0]
        chained = assignment_with_chains(prev_h)
        for h in snaps[1:]:
            delta = compute_delta(prev_h, h)
            assert not delta.full
            chained, dirty_keys = patch_assignment(chained, h, delta)
            ref = full_assignment(h, "rendezvous").servers
            assert chained.servers == ref
            # Dirty keys are sound: every key that actually changed
            # server (or appeared/vanished) is flagged.
            prev_servers = assignment_with_chains(prev_h).servers
            changed = {k for k in set(ref) | set(prev_servers)
                       if prev_servers.get(k) != ref.get(k)}
            assert changed <= set(dirty_keys)
            prev_h = h

    def test_patch_rejects_full_delta(self):
        from repro.core import assignment_with_chains, patch_assignment
        from repro.hierarchy import compute_delta

        h = self._snapshots(seed=2, steps=1)[0]
        chained = assignment_with_chains(h)
        with pytest.raises(ValueError):
            patch_assignment(chained, h, compute_delta(None, h))
