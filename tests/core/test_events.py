"""Tests for handoff-trigger event detection (Sections 4, 5.2)."""

import numpy as np
import pytest

from repro.core import EventKind, diff_hierarchies
from repro.hierarchy import build_hierarchy


def H(ids, edges):
    return build_hierarchy(ids, np.asarray(edges, dtype=np.int64).reshape(-1, 2))


class TestMigrationDetection:
    def test_no_change_no_events(self):
        h = H([1, 2, 3], [[1, 2], [2, 3]])
        d = diff_hierarchies(h, h)
        assert not d.migrations
        assert not d.reorgs

    def test_pure_migration_between_persisting_clusters(self):
        """Node 1 moves from cluster 5's area to cluster 9's: both heads
        persist, so this is a pure level-1 migration (phi event).

        Before: 1-5 linked, 4-9 linked -> clusters {1,5},{4,9}.
        After:  1-9 linked, 4-5... keep 5 and 9 heads alive: 2-5, 4-9.
        """
        h0 = H([1, 2, 4, 5, 9], [[1, 5], [2, 5], [4, 9], [5, 9]])
        h1 = H([1, 2, 4, 5, 9], [[1, 9], [2, 5], [4, 9], [5, 9]])
        d = diff_hierarchies(h0, h1)
        lvl1 = [m for m in d.migrations if m.level == 1 and m.node == 1]
        assert len(lvl1) == 1
        ev = lvl1[0]
        assert ev.old_cluster == 5 and ev.new_cluster == 9
        assert ev.pure

    def test_impure_migration_when_cluster_dies(self):
        """If the old head loses clusterhead status the move is not a
        pure migration (it is reorganization fallout)."""
        # Before: clusters {1,5} and {4,9}; after: 5 loses head status
        # (its only elector 1 leaves; 5 now elects 9).
        h0 = H([1, 4, 5, 9], [[1, 5], [4, 9], [5, 9]])
        h1 = H([1, 4, 5, 9], [[1, 9], [4, 9], [5, 9]])
        d = diff_hierarchies(h0, h1)
        moved = [m for m in d.migrations if m.node in (1, 5) and m.level == 1]
        assert moved
        assert not any(m.pure for m in moved)
        # And 5's rejection shows up as a reorg event.
        kinds = {r.kind for r in d.reorgs if r.subject == 5}
        assert EventKind.REJECT_MIGRATION in kinds or EventKind.REJECT_RECURSIVE in kinds

    def test_node_set_mismatch(self):
        h0 = H([1, 2], [[1, 2]])
        h1 = H([1, 3], [[1, 3]])
        with pytest.raises(ValueError):
            diff_hierarchies(h0, h1)


class TestElectionRejection:
    def test_election_by_migration(self):
        """A node gains an elector that existed before -> kind (iii)."""
        # Before: 1 elects 5 (cluster {1,5}), 3 elects 4 ({3,4}).
        # After: 3 moves next to 5 region... make 4 lose and... simpler:
        # give 5 a new elector 3 that was already a level-0 node.
        h0 = H([1, 3, 4, 5], [[1, 5], [3, 4], [4, 5]])
        h1 = H([1, 3, 4, 5], [[1, 5], [3, 5], [4, 5]])
        d = diff_hierarchies(h0, h1)
        # 4 was a head (elected by 3), now loses status.
        rej = [r for r in d.reorgs if r.subject == 4 and r.level == 1]
        assert any(r.kind in (EventKind.REJECT_MIGRATION, EventKind.REJECT_RECURSIVE)
                   for r in rej)

    def test_new_head_elected(self):
        # Before: chain 1-9: head 9 only. After: 1-5 edge: 5 becomes head
        # of {1,5}? 1's closed nbhd {1,9,5}: max 9 still. Instead isolate:
        # Before: 1,5 isolated pair {1-9},{5}; after: 5-1 and 1 elects 9.
        h0 = H([1, 5, 9], [[1, 9]])
        h1 = H([1, 5, 9], [[1, 9], [5, 9]])
        d = diff_hierarchies(h0, h1)
        # 5 joins 9's cluster: migration at level 1 (cluster change 5->9).
        assert any(m.node == 5 for m in d.migrations)

    def test_link_events_at_level1(self):
        """Level-1 cluster link changes touching a level-2 node produce
        (i)/(ii) events."""
        # Two 2-node clusters linked -> level-1 edge appears/disappears.
        h0 = H([1, 5, 4, 9], [[1, 5], [4, 9], [5, 9]])
        h1 = H([1, 5, 4, 9], [[1, 5], [4, 9]])
        d = diff_hierarchies(h0, h1)
        downs = [r for r in d.reorgs if r.kind is EventKind.LINK_DOWN and r.level == 1]
        assert downs
        assert {downs[0].subject, downs[0].other} == {5, 9}

    def test_link_up_event(self):
        h0 = H([1, 5, 4, 9], [[1, 5], [4, 9]])
        h1 = H([1, 5, 4, 9], [[1, 5], [4, 9], [5, 9]])
        d = diff_hierarchies(h0, h1)
        ups = [r for r in d.reorgs if r.kind is EventKind.LINK_UP and r.level == 1]
        assert ups


class TestEventCounts:
    def test_count_helpers(self):
        h0 = H([1, 5, 4, 9], [[1, 5], [4, 9], [5, 9]])
        h1 = H([1, 5, 4, 9], [[1, 5], [4, 9]])
        d = diff_hierarchies(h0, h1)
        counts = d.reorg_counts()
        assert sum(counts.values()) == len(d.reorgs)
        mig = d.migration_counts()
        assert all(isinstance(k, int) for k in mig)
