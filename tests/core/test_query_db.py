"""Tests for CHLM queries and the materialized LM database."""

import numpy as np
import pytest

from repro.core import LMDatabase, full_assignment, resolve
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import FlatRouter


@pytest.fixture(scope="module")
def net():
    density = 0.02
    n = 250
    region = disc_for_density(n, density)
    rng = np.random.default_rng(2)
    pts = region.sample(n, rng)
    edges = unit_disk_edges(pts, radius_for_degree(9.0, density))
    h = build_hierarchy(np.arange(n), edges)
    assert h.num_levels >= 2
    g = CompactGraph(np.arange(n), edges)
    return h, g, full_assignment(h)


class TestLMDatabase:
    def test_total_entries(self, net):
        h, g, a = net
        db = LMDatabase(h, a)
        assert db.total_entries == len(a.servers)

    def test_tables_match_assignment(self, net):
        h, g, a = net
        db = LMDatabase(h, a)
        for (subject, level), server in list(a.servers.items())[:50]:
            rec = db.table_of(server).get((subject, level))
            assert rec is not None
            assert rec.address == h.address(subject)

    def test_lookup_returns_highest_level(self, net):
        h, g, a = net
        db = LMDatabase(h, a)
        # Find a server holding >= 2 levels of the same subject, if any.
        for server, table in db._tables.items():
            subjects = {}
            for (subj, level) in table:
                subjects.setdefault(subj, []).append(level)
            for subj, levels in subjects.items():
                rec = db.lookup(server, subj)
                assert rec.level == max(levels)
                return

    def test_entries_per_node_mean(self, net):
        h, g, a = net
        db = LMDatabase(h, a)
        per_node = db.entries_per_node()
        assert per_node.sum() == db.total_entries
        # Levels 2..L plus the virtual global level: L entries/subject.
        assert per_node.mean() == pytest.approx(h.num_levels, abs=1e-9)


class TestResolve:
    def test_self_query(self, net):
        h, g, a = net
        fr = FlatRouter(g)
        res = resolve(h, a, 5, 5, fr.hop_count)
        assert res.hit_level == 0
        assert res.packets == 0
        assert res.address == h.address(5)

    def test_random_pairs_resolve(self, net):
        h, g, a = net
        fr = FlatRouter(g)
        rng = np.random.default_rng(3)
        resolved = 0
        for _ in range(40):
            s, d = (int(x) for x in rng.integers(0, 250, size=2))
            if fr.hop_count(s, d) < 0:
                continue  # different components: legitimately unresolvable
            res = resolve(h, a, s, d, fr.hop_count)
            assert res.hit_level >= 0, (s, d)
            assert res.address == h.address(d)
            resolved += 1
        assert resolved > 20

    def test_hit_level_is_lowest_common(self, net):
        h, g, a = net
        fr = FlatRouter(g)
        rng = np.random.default_rng(4)
        for _ in range(20):
            s, d = (int(x) for x in rng.integers(0, 250, size=2))
            if s == d or fr.hop_count(s, d) < 0:
                continue
            res = resolve(h, a, s, d, fr.hop_count)
            if res.hit_level <= 1:
                assert h.cluster_of(s, max(res.hit_level, 1)) == h.cluster_of(
                    d, max(res.hit_level, 1)
                )
            else:
                m = res.hit_level
                assert h.cluster_of(s, m) == h.cluster_of(d, m)
                assert h.cluster_of(s, m - 1) != h.cluster_of(d, m - 1)

    def test_query_cost_scales_with_distance(self, net):
        """Probe cost should be bounded and related to the s-d distance
        scale (the paper: absorbed in the session)."""
        h, g, a = net
        fr = FlatRouter(g)
        rng = np.random.default_rng(5)
        ratios = []
        for _ in range(40):
            s, d = (int(x) for x in rng.integers(0, 250, size=2))
            hops = fr.hop_count(s, d)
            if s == d or hops <= 0:
                continue
            res = resolve(h, a, s, d, fr.hop_count)
            if res.hit_level >= 2:
                ratios.append(res.packets / hops)
        assert ratios
        assert np.median(ratios) < 12.0
