"""Batch query engine vs the scalar oracle — bit-identical, always.

`repro.core.batch_query` re-implements CHLM resolution with array ops;
these tests fuzz it against `repro.core.query.resolve` over randomized
hierarchies, stale/patched assignments, missing-server entries, and the
lossy per-request replay path.  Equality is exact (`QueryResult ==`),
never approximate.
"""

import numpy as np
import pytest

from repro.core import (
    BatchResolver,
    full_assignment,
    lm_levels,
    resolve,
    resolve_batch,
)
from repro.core.batch_query import batch_hops
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy, compute_delta
from repro.radio import radius_for_degree, unit_disk_edges
from repro.sim.hops import BfsHops, EuclideanHops

DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


def deployment(n, seed, max_levels=None, drift_steps=0, drift=0.6):
    """(hierarchy, positions, edges) after `drift_steps` mobility steps."""
    rng = np.random.default_rng(seed)
    pts = disc_for_density(n, DENSITY).sample(n, rng)
    for _ in range(drift_steps):
        pts = pts + rng.normal(scale=drift, size=pts.shape)
    edges = unit_disk_edges(pts, R_TX)
    h = build_hierarchy(np.arange(n), edges, max_levels=max_levels)
    return h, pts, edges


def random_pairs(n, q, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=q)
    dst = rng.integers(0, n, size=q)
    dst[: q // 10] = src[: q // 10]  # force some trivial self-queries
    return src.astype(np.int64), dst.astype(np.int64)


def assert_batch_matches_scalar(h, assignment, src, dst, hop_fn, hash_fn="rendezvous"):
    out = resolve_batch(h, assignment, src, dst, hop_fn, hash_fn=hash_fn)
    for i in range(len(out)):
        ref = resolve(h, assignment, int(src[i]), int(dst[i]), hop_fn,
                      hash_fn=hash_fn)
        assert out.result(i) == ref, (i, int(src[i]), int(dst[i]))
    return out


class TestLosslessEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("n", [40, 150])
    def test_fuzz_euclidean(self, n, seed):
        h, pts, _ = deployment(n, seed)
        assignment = full_assignment(h)
        src, dst = random_pairs(n, 200, seed + 100)
        out = assert_batch_matches_scalar(
            h, assignment, src, dst, EuclideanHops(pts, R_TX))
        assert out.hits.all()  # fresh assignment: every query resolves

    @pytest.mark.parametrize("seed", [0, 5])
    def test_fuzz_bfs(self, seed):
        h, _, edges = deployment(100, seed)
        assignment = full_assignment(h)
        src, dst = random_pairs(100, 120, seed + 7)
        hop_fn = BfsHops(CompactGraph(np.arange(100), edges))
        assert_batch_matches_scalar(h, assignment, src, dst, hop_fn)

    def test_capped_hierarchy(self):
        """max_levels forces the virtual global level to carry load."""
        h, pts, _ = deployment(150, 9, max_levels=2)
        assignment = full_assignment(h)
        src, dst = random_pairs(150, 150, 42)
        assert_batch_matches_scalar(
            h, assignment, src, dst, EuclideanHops(pts, R_TX))

    def test_stale_assignment_misses(self):
        """Queries against an assignment from an older topology — the
        handoff engine's effective-assignment situation — must miss at
        exactly the same levels as the scalar path."""
        h_old, _, _ = deployment(120, 3)
        stale = full_assignment(h_old)
        h_new, pts, _ = deployment(120, 3, drift_steps=3)
        src, dst = random_pairs(120, 200, 11)
        out = assert_batch_matches_scalar(
            h_new, stale, src, dst, EuclideanHops(pts, R_TX))
        assert not out.hits.all()  # staleness visibly degrades

    def test_missing_server_entries(self):
        """Deleted (subject, level) entries — abandoned transfers leave
        holes — can never satisfy the hit test."""
        h, pts, _ = deployment(100, 4)
        assignment = full_assignment(h)
        rng = np.random.default_rng(0)
        keys = list(assignment.servers)
        for k in rng.choice(len(keys), size=len(keys) // 3, replace=False):
            del assignment.servers[keys[int(k)]]
        src, dst = random_pairs(100, 200, 13)
        assert_batch_matches_scalar(
            h, assignment, src, dst, EuclideanHops(pts, R_TX))

    def test_chain_rehash_assignment(self):
        """The incremental plane's patched ChainedAssignment (dirty-chain
        re-hash) resolves identically to the scalar oracle."""
        from repro.core import assignment_with_chains, patch_assignment

        rng = np.random.default_rng(6)
        n = 120
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        h = build_hierarchy(np.arange(n), unit_disk_edges(pts, R_TX),
                            max_levels=3, level_mode="radio",
                            positions=pts, r0=R_TX)
        chained = assignment_with_chains(h)
        for _ in range(3):
            pts = pts + rng.normal(scale=0.6, size=pts.shape)
            h_next = build_hierarchy(np.arange(n), unit_disk_edges(pts, R_TX),
                                     max_levels=3, level_mode="radio",
                                     positions=pts, r0=R_TX)
            delta = compute_delta(h, h_next)
            chained, _ = patch_assignment(chained, h_next, delta)
            h = h_next
            src, dst = random_pairs(n, 150, 21)
            assert_batch_matches_scalar(
                h, chained.as_assignment(), src, dst,
                EuclideanHops(pts, R_TX))

    def test_naive_hash_fallback(self):
        """Non-rendezvous hashes take the scalar fallback — same API,
        same results."""
        h, pts, _ = deployment(80, 2)
        assignment = full_assignment(h, "naive")
        src, dst = random_pairs(80, 80, 3)
        assert_batch_matches_scalar(
            h, assignment, src, dst, EuclideanHops(pts, R_TX),
            hash_fn="naive")

    def test_resolver_reuse_and_validation(self):
        h, pts, _ = deployment(60, 1)
        resolver = BatchResolver(h, full_assignment(h), EuclideanHops(pts, R_TX))
        a = resolver.resolve(np.array([0, 1]), np.array([2, 3]))
        b = resolver.resolve(np.array([0, 1]), np.array([2, 3]))
        assert np.array_equal(a.packets, b.packets)
        with pytest.raises(ValueError):
            resolver.resolve(np.array([0, 1]), np.array([2]))
        with pytest.raises(KeyError):
            resolver.resolve(np.array([0]), np.array([999]))


class TestLossyPlans:
    def _delivery(self, seed):
        from repro.faults import DeliveryEngine, LossModel, RetryPolicy

        return DeliveryEngine(
            loss=LossModel(rate=0.25),
            retry=RetryPolicy(max_attempts=3),
            rng=np.random.default_rng(seed),
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_walk_matches_scalar_per_request(self, seed):
        """Per-request engines (the service front-end pattern): walking
        a precomputed plan consumes the request RNG exactly like the
        scalar resolve, so packets/outcomes match bit-for-bit."""
        h, pts, _ = deployment(100, seed)
        assignment = full_assignment(h)
        hop_fn = EuclideanHops(pts, R_TX)
        src, dst = random_pairs(100, 150, seed + 50)
        plans = BatchResolver(h, assignment, hop_fn).plans(src, dst)
        for i in range(len(plans)):
            packets, hit_level, server, probes = plans.walk(
                i, self._delivery(seed * 1000 + i))
            ref = resolve(h, assignment, int(src[i]), int(dst[i]), hop_fn,
                          delivery=self._delivery(seed * 1000 + i))
            assert (packets, hit_level, probes) == (
                ref.packets, ref.hit_level, ref.probes)
            assert server == (-1 if ref.server is None else ref.server)

    def test_walk_matches_scalar_shared_engine(self):
        """One shared sequential engine (the query collector pattern):
        walking plans in query order replays the exact same RNG draw
        sequence as the scalar loop."""
        h, pts, _ = deployment(100, 7)
        assignment = full_assignment(h)
        hop_fn = EuclideanHops(pts, R_TX)
        src, dst = random_pairs(100, 120, 77)
        shared_a = self._delivery(123)
        shared_b = self._delivery(123)
        plans = BatchResolver(h, assignment, hop_fn).plans(src, dst)
        for i in range(len(plans)):
            packets, hit_level, _, probes = plans.walk(i, shared_a)
            ref = resolve(h, assignment, int(src[i]), int(dst[i]), hop_fn,
                          delivery=shared_b)
            assert (packets, hit_level, probes) == (
                ref.packets, ref.hit_level, ref.probes)

    def test_lossless_walk_matches_resolve(self):
        """delivery=None walks reduce to the lossless result."""
        h, pts, _ = deployment(80, 3)
        assignment = full_assignment(h)
        hop_fn = EuclideanHops(pts, R_TX)
        src, dst = random_pairs(80, 100, 5)
        resolver = BatchResolver(h, assignment, hop_fn)
        out = resolver.resolve(src, dst)
        plans = resolver.plans(src, dst)
        for i in range(len(plans)):
            packets, hit_level, server, probes = plans.walk(i, None)
            assert packets == out.packets[i]
            assert hit_level == out.hit_level[i]
            assert server == out.server[i]
            assert probes == out.probes[i]


class TestUpdatePlans:
    def _scalar_update(self, h, assignment, d, hop_fn, delivery=None):
        """The front-end's `_update_packets` semantics, inlined."""
        packets = 0
        for level in range(2, lm_levels(h) + 1):
            srv = assignment.servers.get((d, level))
            if srv is None:
                continue
            hops = max(hop_fn(d, srv), 0)
            if delivery is None:
                packets += hops
            else:
                packets += delivery.send(hops, level=level).packets
        return packets

    def test_costs_match_scalar(self):
        h, pts, _ = deployment(100, 8)
        assignment = full_assignment(h)
        # knock out some entries so `present` does real work
        rng = np.random.default_rng(1)
        keys = list(assignment.servers)
        for k in rng.choice(len(keys), size=20, replace=False):
            del assignment.servers[keys[int(k)]]
        hop_fn = EuclideanHops(pts, R_TX)
        targets = rng.integers(0, 100, size=60).astype(np.int64)
        plans = BatchResolver(h, assignment, hop_fn).update_plans(targets)
        costs = plans.costs()
        for i, d in enumerate(targets.tolist()):
            assert costs[i] == self._scalar_update(h, assignment, d, hop_fn)

    def test_lossy_walk_matches_scalar(self):
        from repro.faults import DeliveryEngine, LossModel, RetryPolicy

        h, pts, _ = deployment(100, 9)
        assignment = full_assignment(h)
        hop_fn = EuclideanHops(pts, R_TX)
        targets = np.arange(40, dtype=np.int64)
        plans = BatchResolver(h, assignment, hop_fn).update_plans(targets)

        def eng(seed):
            return DeliveryEngine(loss=LossModel(rate=0.3),
                                  retry=RetryPolicy(max_attempts=2),
                                  rng=np.random.default_rng(seed))

        for i, d in enumerate(targets.tolist()):
            assert plans.walk(i, eng(i)) == self._scalar_update(
                h, assignment, d, hop_fn, delivery=eng(i))


class TestBatchHops:
    def test_euclidean_bit_identical(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 50, size=(300, 2))
        hop_fn = EuclideanHops(pts, 2.5, detour=1.3)
        us = rng.integers(0, 300, size=500)
        vs = rng.integers(0, 300, size=500)
        vs[:50] = us[:50]
        got = hop_fn.batch(us, vs)
        for i in range(500):
            assert got[i] == hop_fn(int(us[i]), int(vs[i]))

    def test_bfs_matches_and_flags_unreachable(self):
        # two disconnected components -> -1 across the cut
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        hop_fn = BfsHops(CompactGraph(np.arange(5), edges))
        us = np.array([0, 0, 2, 3, 4, 1])
        vs = np.array([2, 3, 2, 4, 0, 1])
        got = hop_fn.batch(us, vs)
        assert got.tolist() == [hop_fn(int(u), int(v))
                                for u, v in zip(us, vs)]
        assert got[1] == -1 and got[4] == -1

    def test_generic_fallback(self):
        got = batch_hops(lambda u, v: abs(u - v), np.array([5, 2]),
                         np.array([1, 9]))
        assert got.tolist() == [4, 7]
