"""Tests for the sweep harness."""

import pytest

from repro.analysis import sweep
from repro.sim import Scenario


@pytest.fixture(scope="module")
def tiny_sweep():
    base = Scenario(n=60, steps=6, warmup=2, speed=2.0, hop_mode="euclidean")
    return sweep(
        [60, 120],
        base,
        metrics={"handoff": lambda r: r.handoff_rate, "f0": lambda r: r.f0},
        seeds=(0, 1),
        keep_results=True,
    )


class TestSweep:
    def test_points_per_n(self, tiny_sweep):
        assert [p.n for p in tiny_sweep] == [60, 120]
        for p in tiny_sweep:
            assert p.seeds == 2
            assert set(p.values) == {"handoff", "f0"}
            assert p["f0"] > 0
            assert p.stds["f0"] >= 0

    def test_results_kept(self, tiny_sweep):
        assert all(len(p.results) == 2 for p in tiny_sweep)

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            sweep([10], Scenario(), metrics={})

    def test_scenario_hook(self):
        seen = []

        def hook(sc, n):
            seen.append(n)
            return sc

        sweep(
            [60],
            Scenario(n=60, steps=3, warmup=1, hop_mode="euclidean"),
            metrics={"f0": lambda r: r.f0},
            seeds=(0,),
            scenario_for=hook,
        )
        assert seen == [60]
