"""Tests for the closed-form theory functions (Eqs. 3-14)."""

import numpy as np
import pytest

from repro.analysis import (
    edges_per_node_prediction,
    expected_levels,
    f0_prediction,
    f_k_prediction,
    g_prime_k_prediction,
    gamma_k_prediction,
    hop_count_level,
    hop_count_network,
    levels_for,
    migration_distance,
    phi_k_prediction,
    phi_total_prediction,
)


class TestHopCounts:
    def test_network_sqrt_scaling(self):
        h = hop_count_network([100, 400])
        assert h[1] == pytest.approx(2 * h[0])

    def test_level_sqrt_scaling(self):
        h = hop_count_level([4, 16])
        assert h.tolist() == [2.0, 4.0]


class TestFrequencies:
    def test_f0_independent_of_n(self):
        """Eq. (4): f_0 depends only on mu / R_tx."""
        assert f0_prediction(2.0, 10.0) == pytest.approx(0.2)

    def test_f0_validation(self):
        with pytest.raises(ValueError):
            f0_prediction(-1.0, 10.0)
        with pytest.raises(ValueError):
            f0_prediction(1.0, 0.0)

    def test_f_k_inverse_h(self):
        f = f_k_prediction(1.0, [1.0, 2.0, 4.0])
        assert f.tolist() == [1.0, 0.5, 0.25]

    def test_f_k_validation(self):
        with pytest.raises(ValueError):
            f_k_prediction(1.0, [0.0])

    def test_g_prime_inverse_h(self):
        g = g_prime_k_prediction([2.0, 4.0])
        assert g.tolist() == [0.5, 0.25]


class TestOverheadPredictions:
    def test_phi_k_collapses_to_log(self):
        """With f_k = f0/h_k, phi_k = f0 * log n regardless of level."""
        n = 1000
        h_k = np.array([2.0, 5.0, 12.0])
        f_k = f_k_prediction(1.0, h_k)
        phi = phi_k_prediction(f_k, h_k, n)
        assert np.allclose(phi, np.log(n))

    def test_phi_total_log2(self):
        v = phi_total_prediction([np.e**2])
        assert v[0] == pytest.approx(4.0)

    def test_gamma_k_formula(self):
        # Eq. (10a) with g_k = 1/(c_k h_k): gamma_k = log n.
        n = 500
        c_k = np.array([4.0, 16.0])
        h_k = np.sqrt(c_k)
        g_k = 1.0 / (c_k * h_k)
        gamma = gamma_k_prediction(g_k, c_k, h_k, n)
        assert np.allclose(gamma, np.log(n))

    def test_validation(self):
        with pytest.raises(ValueError):
            phi_k_prediction([1.0], [1.0], 1)
        with pytest.raises(ValueError):
            gamma_k_prediction([1.0], [1.0], [1.0], 0)


class TestStructure:
    def test_edges_per_node(self):
        # Eq. (13b): d_k / (2 c_k).
        v = edges_per_node_prediction([6.0], [3.0])
        assert v[0] == pytest.approx(1.0)

    def test_migration_distance(self):
        d = migration_distance(10.0, [4.0])
        assert d[0] == pytest.approx(20.0)
        with pytest.raises(ValueError):
            migration_distance(0.0, [4.0])

    def test_expected_levels(self):
        assert expected_levels(216, 6.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            expected_levels(216, 1.0)

    def test_levels_for(self):
        assert levels_for(216, alpha=6.0) == 3
        assert levels_for(10, alpha=6.0) == 2  # floor at minimum
        assert levels_for(10, alpha=6.0, minimum=1) == 1
