"""Tests for process-parallel sweeps."""

import pytest

from repro.analysis import parallel_sweep, sweep
from repro.sim import Scenario


BASE = Scenario(n=60, steps=5, warmup=1, speed=1.5, hop_mode="euclidean",
                max_levels=2)
METRICS = {"total": lambda r: r.handoff_rate, "f0": lambda r: r.f0}


class TestParallelSweep:
    def test_matches_serial_exactly(self):
        serial = sweep([60, 90], BASE, METRICS, seeds=(0, 1))
        parallel = parallel_sweep([60, 90], BASE, METRICS, seeds=(0, 1),
                                  max_workers=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.n == b.n
            assert a.values == b.values
            assert a.stds == b.stds

    def test_empty_metrics_rejected(self):
        with pytest.raises(ValueError):
            parallel_sweep([60], BASE, {}, seeds=(0,))

    def test_scenario_hook_applied(self):
        from dataclasses import replace

        pts = parallel_sweep(
            [60], BASE, {"f0": lambda r: r.f0}, seeds=(0,),
            scenario_for=lambda sc, n: replace(sc, max_levels=1),
            max_workers=1,
        )
        assert pts[0]["f0"] >= 0

    def test_single_worker(self):
        pts = parallel_sweep([60], BASE, METRICS, seeds=(0,), max_workers=1)
        assert pts[0].seeds == 1
