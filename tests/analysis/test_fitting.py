"""Tests for shape fitting and model comparison."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import compare_shapes, fit_power, fit_shape


class TestFitShape:
    def test_exact_log2(self):
        x = np.array([100, 200, 400, 800, 1600], dtype=float)
        y = 3.0 * np.log(x) ** 2 + 1.5
        f = fit_shape(x, y, "log2")
        assert f.a == pytest.approx(3.0)
        assert f.b == pytest.approx(1.5)
        assert f.r2 == pytest.approx(1.0)

    def test_exact_sqrt(self):
        x = np.array([4, 16, 64, 256], dtype=float)
        y = 2.0 * np.sqrt(x)
        f = fit_shape(x, y, "sqrt")
        assert f.a == pytest.approx(2.0)
        assert f.b == pytest.approx(0.0, abs=1e-9)

    def test_const(self):
        x = np.array([1, 2, 3], dtype=float)
        y = np.array([5.0, 5.2, 4.8])
        f = fit_shape(x, y, "const")
        assert f.b == pytest.approx(5.0)
        assert f.a == 0.0

    def test_inv_sqrt(self):
        x = np.array([1, 4, 16], dtype=float)
        y = 8.0 / np.sqrt(x)
        f = fit_shape(x, y, "inv_sqrt")
        assert f.a == pytest.approx(8.0)

    def test_predict_roundtrip(self):
        x = np.array([10, 100, 1000], dtype=float)
        y = np.log(x)
        f = fit_shape(x, y, "log")
        assert np.allclose(f.predict(x), y)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_shape([1, 2], [1, 2], "log2")  # too few points
        with pytest.raises(ValueError):
            fit_shape([0, 1, 2], [1, 2, 3], "log")  # non-positive x
        with pytest.raises(ValueError):
            fit_shape([1, 2, 3], [1, 2, 3], "cubic")  # unknown shape
        with pytest.raises(ValueError):
            fit_shape([1, 2, 3], [1, 2], "log")  # shape mismatch


class TestCompareShapes:
    def test_log2_data_prefers_log2(self):
        x = np.array([100, 200, 400, 800, 1600, 3200], dtype=float)
        rng = np.random.default_rng(0)
        y = 2.0 * np.log(x) ** 2 + rng.normal(scale=0.5, size=x.size)
        best = compare_shapes(x, y)[0]
        assert best.shape == "log2"

    def test_sqrt_data_prefers_sqrt(self):
        x = np.array([100, 200, 400, 800, 1600, 3200], dtype=float)
        rng = np.random.default_rng(1)
        y = 0.9 * np.sqrt(x) + rng.normal(scale=0.5, size=x.size)
        best = compare_shapes(x, y)[0]
        assert best.shape == "sqrt"

    def test_sorted_by_aic(self):
        x = np.array([10, 100, 1000, 10000], dtype=float)
        y = np.log(x) ** 2
        fits = compare_shapes(x, y)
        aics = [f.aic for f in fits]
        assert aics == sorted(aics)


class TestFitPower:
    def test_exact_power(self):
        x = np.array([1, 2, 4, 8], dtype=float)
        p, c = fit_power(x, 3.0 * x**0.5)
        assert p == pytest.approx(0.5)
        assert c == pytest.approx(3.0)

    def test_polylog_has_small_exponent(self):
        x = np.array([100, 400, 1600, 6400], dtype=float)
        p, _ = fit_power(x, np.log(x) ** 2)
        assert 0 < p < 0.4  # far below sqrt's 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power([1, -2], [1, 2])
        with pytest.raises(ValueError):
            fit_power([1], [1])


@settings(max_examples=30, deadline=None)
@given(
    a=st.floats(min_value=0.1, max_value=10),
    b=st.floats(min_value=-5, max_value=5),
    shape=st.sampled_from(["log2", "log", "sqrt", "linear"]),
)
def test_fit_recovers_exact_coefficients_property(a, b, shape):
    from repro.analysis import SHAPES

    x = np.array([50, 100, 300, 900, 2700], dtype=float)
    y = a * SHAPES[shape](x) + b
    f = fit_shape(x, y, shape)
    assert f.a == pytest.approx(a, rel=1e-6)
    assert f.b == pytest.approx(b, abs=1e-6 * max(1, abs(b)) + 1e-6)
