"""Tests for the markdown report generator."""

import pytest

from repro.analysis import generate_report


class TestGenerateReport:
    def test_subset_renders_tables(self):
        text = generate_report(exp_ids=["EXP-F1"], seeds=(0,))
        assert "# Reproduction report" in text
        assert "## EXP-F1" in text
        assert "| level |" in text
        assert "- L = " in text  # notes rendered as bullets

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            generate_report(exp_ids=["EXP-Z1"])

    def test_writes_file(self, tmp_path):
        out = tmp_path / "sub" / "report.md"
        text = generate_report(exp_ids=["EXP-F2"], seeds=(0,), out_path=out)
        assert out.exists()
        assert out.read_text() == text

    def test_multiple_experiments_ordered(self):
        text = generate_report(exp_ids=["EXP-F2", "EXP-F1"], seeds=(0,))
        assert text.index("EXP-F2") < text.index("EXP-F1")
