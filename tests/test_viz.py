"""Tests for the SVG renderer."""

import re
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.viz import SvgCanvas, render_network_svg
from repro.viz.svg import _convex_hull


@pytest.fixture(scope="module")
def network():
    n, density = 80, 0.02
    region = disc_for_density(n, density)
    rng = np.random.default_rng(0)
    pts = region.sample(n, rng)
    r_tx = radius_for_degree(9.0, density)
    edges = unit_disk_edges(pts, r_tx)
    h = build_hierarchy(np.arange(n), edges, max_levels=2,
                        level_mode="radio", positions=pts, r0=r_tx)
    return pts, edges, h


class TestSvgCanvas:
    def test_requires_points(self):
        with pytest.raises(ValueError):
            SvgCanvas(np.empty((0, 2)))
        with pytest.raises(ValueError):
            SvgCanvas(np.zeros((3, 3)))

    def test_mapping_preserves_order(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        c = SvgCanvas(pts, width=100, padding=10)
        x0, y0 = c.xy(pts[0])
        x1, y1 = c.xy(pts[1])
        assert x1 > x0
        assert y1 < y0  # y axis flipped

    def test_primitives_emitted(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        c = SvgCanvas(pts)
        c.line(pts[0], pts[1])
        c.circle(pts[0], title="node")
        c.polygon(pts.tolist() + [[0.0, 1.0]])
        c.text(pts[1], "hello")
        svg = c.to_svg()
        for tag in ("<line", "<circle", "<polygon", "<text", "<title>"):
            assert tag in svg

    def test_save(self, tmp_path):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        c = SvgCanvas(pts)
        p = c.save(tmp_path / "a" / "x.svg")
        assert p.exists()


class TestConvexHull:
    def test_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5]], dtype=float)
        hull = _convex_hull(pts)
        assert len(hull) == 4
        assert [0.5, 0.5] not in hull.tolist()

    def test_degenerate(self):
        assert len(_convex_hull(np.array([[0.0, 0.0]]))) == 1
        assert len(_convex_hull(np.array([[0.0, 0.0], [1.0, 1.0]]))) == 2

    def test_matches_scipy(self):
        from scipy.spatial import ConvexHull

        rng = np.random.default_rng(1)
        pts = rng.random((50, 2))
        ours = {tuple(p) for p in _convex_hull(pts).tolist()}
        ref = {tuple(pts[i]) for i in ConvexHull(pts).vertices}
        assert ours == ref


class TestRenderNetwork:
    def test_valid_xml(self, network):
        pts, edges, h = network
        svg = render_network_svg(pts, edges, hierarchy=h)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_plain_mode(self, network):
        pts, edges, _ = network
        svg = render_network_svg(pts, edges)
        assert svg.count("<circle") == len(pts)

    def test_hierarchy_mode_draws_hulls_and_heads(self, network):
        pts, edges, h = network
        svg = render_network_svg(pts, edges, hierarchy=h, hull_level=1)
        assert "<polygon" in svg
        assert "head " in svg  # head titles

    def test_route_highlighted(self, network):
        pts, edges, h = network
        svg = render_network_svg(pts, edges, hierarchy=h, route=[0, 1, 2])
        assert "source" in svg and "destination" in svg
        assert re.search(r'stroke="#e15759" stroke-width="2.2"', svg)

    def test_writes_file(self, network, tmp_path):
        pts, edges, h = network
        out = tmp_path / "net.svg"
        render_network_svg(pts, edges, hierarchy=h, path=out)
        assert out.exists()
        ET.fromstring(out.read_text())
