"""Unit tests for the StepTimings accumulator."""

import pytest

from repro.obs import PHASES, StepTimings


class TestAccumulation:
    def test_add_accumulates_per_phase(self):
        t = StepTimings()
        t.add("mobility", 0.5)
        t.add("mobility", 0.25)
        t.add("handoff", 1.0)
        assert t.totals == {"mobility": 0.75, "handoff": 1.0}
        assert t.phase_seconds == pytest.approx(1.75)

    def test_fractions_sum_to_one(self):
        t = StepTimings()
        for i, phase in enumerate(PHASES):
            t.add(phase, float(i + 1))
        fracs = t.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["setup"] < fracs["sampling"]

    def test_empty_views_are_empty(self):
        t = StepTimings()
        assert t.fractions() == {}
        assert t.mean_per_step() == {}
        assert t.phase_seconds == 0.0

    def test_mean_per_step_excludes_setup(self):
        t = StepTimings()
        t.add("setup", 9.0)
        t.add("mobility", 2.0)
        t.tick_step()
        t.tick_step()
        assert t.mean_per_step() == {"mobility": 1.0}

    def test_merge_folds_totals_steps_and_wall(self):
        a = StepTimings(totals={"mobility": 1.0}, steps=2, wall_seconds=3.0)
        b = StepTimings(totals={"mobility": 0.5, "diff": 0.1}, steps=1,
                        wall_seconds=1.0)
        a.merge(b)
        assert a.totals == {"mobility": 1.5, "diff": 0.1}
        assert a.steps == 3
        assert a.wall_seconds == pytest.approx(4.0)


class TestSerialization:
    def test_dict_round_trip(self):
        t = StepTimings(totals={"mobility": 1.25, "handoff": 0.5},
                        steps=7, wall_seconds=2.5)
        again = StepTimings.from_dict(t.to_dict())
        assert again == t

    def test_from_dict_defaults(self):
        assert StepTimings.from_dict({}) == StepTimings()

    def test_to_lines_orders_by_pipeline(self):
        t = StepTimings(totals={"sampling": 1.0, "setup": 2.0}, steps=1)
        lines = t.to_lines()
        assert lines[0].startswith("setup")
        assert lines[1].startswith("sampling")
        assert "1 steps" in lines[-1]
