"""SweepReport aggregation tests (synthetic events + a real sweep)."""

import pytest

from repro.obs import SweepReport
from repro.sim import (
    Scenario,
    SweepProgress,
    TaskError,
    expand_grid,
    run_sweep_detailed,
)

BASE = Scenario(n=60, steps=4, warmup=1, speed=1.5, hop_mode="euclidean",
                max_levels=2)


def _event(done, total, *, cached=0, from_cache=False, elapsed=1.0,
           task_seconds=0.5, worker=None, attempts=1, ser_seconds=0.0):
    return SweepProgress(
        done=done, total=total, cached=cached, scenario=BASE,
        elapsed=elapsed, from_cache=from_cache, task_seconds=task_seconds,
        worker=worker, attempts=attempts, ser_seconds=ser_seconds,
    )


class TestSyntheticAggregation:
    def test_throughput_and_eta(self):
        rep = SweepReport()
        rep.record(_event(1, 4, elapsed=30.0, task_seconds=30.0))
        rep.record(_event(2, 4, elapsed=60.0, task_seconds=30.0))
        assert rep.throughput_per_min == pytest.approx(2.0)
        assert rep.mean_task_seconds == pytest.approx(30.0)
        # 2 tasks remain at 30 s mean on one lane.
        assert rep.eta_seconds == pytest.approx(60.0)
        rep.record(_event(3, 4))
        rep.record(_event(4, 4))
        assert rep.eta_seconds == 0.0

    def test_eta_divides_across_workers(self):
        rep = SweepReport()
        rep.record(_event(1, 5, task_seconds=10.0, worker=101))
        rep.record(_event(2, 5, task_seconds=10.0, worker=102))
        assert len(rep.workers_seen) == 2
        assert rep.eta_seconds == pytest.approx(3 * 10.0 / 2)

    def test_cache_hits_excluded_from_task_stats(self):
        rep = SweepReport()
        rep.record(_event(1, 2, cached=1, from_cache=True, task_seconds=0.001))
        rep.record(_event(2, 2, cached=1, task_seconds=8.0))
        assert rep.cache_hit_rate == pytest.approx(0.5)
        assert rep.task_seconds == [8.0]

    def test_retries_and_errors_counted(self):
        rep = SweepReport()
        rep.record(_event(1, 3, attempts=3))

        class _Run:
            results = [object(), None, None]
            errors = [
                TaskError(index=1, kind="timeout", message="m", attempts=2),
                TaskError(index=2, kind="crash", message="m", attempts=2),
            ]

        rep.finish(_Run())
        assert rep.retries == 2
        assert rep.error_counts() == {"crash": 1, "timeout": 1}
        assert rep.failed_attempts == 4
        assert "timeout=1" in rep.render()

    def test_callable_as_progress_callback(self):
        rep = SweepReport()
        rep(_event(1, 1))
        assert rep.done == rep.total == 1

    def test_cache_hits_excluded_from_throughput(self):
        """A warm sweep replaying 3 cached tasks and executing 1 must
        report the throughput of that 1, not a 4-task fiction."""
        rep = SweepReport()
        for i in range(1, 4):
            rep.record(_event(i, 4, cached=i, from_cache=True,
                              elapsed=float(i), task_seconds=1.0))
        rep.record(_event(4, 4, cached=3, elapsed=33.0, task_seconds=30.0))
        assert rep.executed == 1
        # 33 s wall minus 3 s of cache loading = 30 s execution clock.
        assert rep.run_seconds == pytest.approx(30.0)
        assert rep.throughput_per_min == pytest.approx(2.0)

    def test_eta_unknown_until_a_task_executes(self):
        """An all-cache-hits prefix predicts nothing about pending
        simulations: eta must read unknown (NaN), not 0."""
        rep = SweepReport()
        rep.record(_event(1, 3, cached=1, from_cache=True, task_seconds=0.1))
        assert rep.eta_seconds != rep.eta_seconds  # NaN
        assert "eta        unknown" in rep.render()
        rep.record(_event(2, 3, cached=1, task_seconds=12.0))
        assert rep.eta_seconds == pytest.approx(12.0)
        assert "eta        12.0 s" in rep.render()

    def test_serialization_stats(self):
        rep = SweepReport()
        rep.record(_event(1, 2, task_seconds=5.0, ser_seconds=0.25))
        rep.record(_event(2, 2, cached=1, from_cache=True, task_seconds=0.1))
        assert rep.ser_seconds == [0.25]
        assert rep.mean_ser_seconds == pytest.approx(0.25)
        assert "transport  0.25 s serializing results" in rep.render()

    def test_no_transport_line_for_serial_sweeps(self):
        rep = SweepReport()
        rep.record(_event(1, 1, task_seconds=5.0))
        assert "transport" not in rep.render()


class TestRealSweep:
    @pytest.fixture(scope="class")
    def report(self):
        rep = SweepReport()
        run = run_sweep_detailed(
            expand_grid(BASE, [60, 90], seeds=(0, 1)),
            hop_sample_every=4, profile=True, progress=rep,
        )
        rep.finish(run)
        return rep

    def test_counts(self, report):
        assert report.done == report.total == 4
        assert report.cached == 0
        assert len(report.task_seconds) == 4
        assert report.errors == []

    def test_per_n_phase_breakdown(self, report):
        phases = report.per_n_phases()
        assert sorted(phases) == [60, 90]
        for d in phases.values():
            assert {"mobility", "rebuild", "hierarchy", "handoff",
                    "diff", "sampling"} <= set(d)
            assert all(v >= 0 for v in d.values())

    def test_render_mentions_phases_and_rates(self, report):
        text = report.render()
        assert "4/4 done" in text
        assert "tasks/min" in text
        assert "phase mean ms/step" in text
        assert "hierarchy" in text

    def test_invariant_summary_flags_broken_runs(self):
        class _Chaos:
            def __init__(self, total):
                self.total_violations = total

        def res(chaos=None):
            extras = {} if chaos is None else {"chaos": chaos}
            return type("R", (), {"extras": extras})()

        rep = SweepReport()
        clean, broken = res(_Chaos(0)), res(_Chaos(7))
        rep.results = [res(), clean, broken, res(_Chaos(3))]
        assert rep.invariant_summary() == {
            "checked": 3, "flagged": 2, "violations": 10}
        assert rep.flagged_results() == [broken, rep.results[3]]
        assert "invariants 2/3 checked runs" in rep.render()
        assert "(10 total)" in rep.render()

    def test_invariant_line_absent_without_chaos_runs(self):
        rep = SweepReport()
        rep.results = [type("R", (), {"extras": {}})()]
        assert rep.invariant_summary()["checked"] == 0
        assert "invariants" not in rep.render()

    def test_real_chaotic_sweep_surfaces_violations(self):
        from repro.sim import run_sweep_detailed as _rsd

        sc = Scenario(
            n=60, steps=6, warmup=1, speed=1.5, hop_mode="euclidean",
            max_levels=2,
            chaos=("crash:start=1,duration=2,count=10,repair=4",),
        )
        rep = SweepReport()
        run = _rsd([sc], hop_sample_every=4, progress=rep)
        rep.finish(run)
        summary = rep.invariant_summary()
        assert summary["checked"] == 1
        assert summary["violations"] >= 0

    def test_unprofiled_results_skipped(self):
        rep = SweepReport()
        run = run_sweep_detailed(
            expand_grid(BASE, [60], seeds=(0,)), hop_sample_every=4,
            progress=rep,
        )
        rep.finish(run)
        assert rep.per_n_phases() == {}
        assert "phase mean" not in rep.render()


class TestReorgEventSummary:
    def test_sums_ledgers_and_renders(self):
        from dataclasses import replace

        from repro.sim import run_scenario

        r1 = run_scenario(BASE, hop_sample_every=4)
        r2 = run_scenario(replace(BASE, seed=5), hop_sample_every=4)
        rep = SweepReport()
        rep.results = [r1, r2]
        summary = rep.reorg_event_summary()
        b1 = r1.ledger.reorg_event_breakdown()
        b2 = r2.ledger.reorg_event_breakdown()
        for kind in set(b1) | set(b2):
            expect = (b1.get(kind, {}).get("count", 0)
                      + b2.get(kind, {}).get("count", 0))
            assert summary[kind] == expect
        line = [l for l in rep.to_lines() if l.startswith("reorg")]
        assert len(line) == 1 and "dominates gamma" in line[0]

    def test_empty_results_render_no_reorg_line(self):
        rep = SweepReport()
        assert rep.reorg_event_summary() == {}
        assert not [l for l in rep.to_lines() if l.startswith("reorg")]
