"""Manifest and JSONL round-trip tests."""

import numpy as np
import pytest

from repro.obs import (
    RunManifest,
    read_jsonl,
    result_counters,
    trace_from_records,
    trace_records,
    write_jsonl,
)
from repro.sim import Scenario, Simulator, run_scenario, scenario_key
from repro.sim.sweep import CODE_VERSION

SC = Scenario(n=60, steps=5, warmup=1, speed=1.5, seed=2,
              max_levels=2, hop_mode="euclidean")


@pytest.fixture(scope="module")
def profiled_result():
    return run_scenario(SC, hop_sample_every=4, profile=True)


class TestRunManifest:
    def test_from_result_provenance(self, profiled_result):
        man = RunManifest.from_result(profiled_result, hop_sample_every=4)
        assert man.scenario_key == scenario_key(SC, 4)
        assert man.code_version == CODE_VERSION
        assert man.scenario["n"] == 60
        assert man.platform["python"]
        assert man.platform["numpy"] == np.__version__

    def test_from_result_cost_and_metrics(self, profiled_result):
        man = RunManifest.from_result(profiled_result, hop_sample_every=4)
        assert man.wall_seconds > 0
        assert man.phases == profiled_result.timings.totals
        assert man.metrics["phi"] == profiled_result.phi
        assert man.metrics["elapsed_sim_seconds"] == profiled_result.elapsed

    def test_unprofiled_result_gives_empty_cost(self):
        res = run_scenario(SC, hop_sample_every=4)
        man = RunManifest.from_result(res, hop_sample_every=4)
        assert man.wall_seconds == 0.0
        assert man.phases == {}

    def test_json_round_trip(self, profiled_result):
        man = RunManifest.from_result(profiled_result, hop_sample_every=4)
        assert RunManifest.from_json(man.to_json()) == man

    def test_file_round_trip(self, profiled_result, tmp_path):
        man = RunManifest.from_result(profiled_result, hop_sample_every=4)
        path = man.write(tmp_path / "nested" / "run.json")
        assert RunManifest.read(path) == man

    def test_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            RunManifest.from_dict({"schema": "repro.manifest/v999",
                                   "scenario_key": "x", "code_version": "1"})


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        records = [{"a": 1}, {"b": [1.5, "x"]}, {"c": {"d": None}}]
        path = tmp_path / "out.jsonl"
        assert write_jsonl(path, records) == 3
        assert read_jsonl(path) == records

    def test_numpy_values_coerced(self, tmp_path):
        path = tmp_path / "np.jsonl"
        write_jsonl(path, [{"n": np.int64(7), "x": np.float64(1.5)}])
        assert read_jsonl(path) == [{"n": 7, "x": 1.5}]

    def test_manifest_stream(self, profiled_result, tmp_path):
        man = RunManifest.from_result(profiled_result, hop_sample_every=4)
        path = tmp_path / "runs.jsonl"
        write_jsonl(path, [man.to_dict(), man.to_dict()])
        back = [RunManifest.from_dict(d) for d in read_jsonl(path)]
        assert back == [man, man]

    def test_result_counters_record(self, profiled_result):
        rec = result_counters(profiled_result)
        assert rec["n"] == 60 and rec["seed"] == 2
        assert rec["phi"] == profiled_result.phi
        assert rec["wall_seconds"] > 0
        assert set(rec["phases"]) == set(profiled_result.timings.totals)


class TestTraceRoundTrip:
    @pytest.fixture(scope="class")
    def trace(self):
        res = Simulator(SC, hop_sample_every=4, trace=True).run()
        assert len(res.trace) > 0
        return res.trace

    def test_records_round_trip(self, trace):
        again = trace_from_records(trace_records(trace))
        assert again.events == trace.events
        assert again.capacity == trace.capacity
        assert again.dropped == trace.dropped

    def test_jsonl_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = trace.to_jsonl(path)
        assert count == len(trace.events) + 1  # header record
        again = type(trace).from_jsonl(path)
        assert again.summary() == trace.summary()
        assert [e.t for e in again] == [e.t for e in trace]

    def test_open_file_handles(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as fh:
            trace.to_jsonl(fh)
        with path.open() as fh:
            again = type(trace).from_jsonl(fh)
        assert again.events == trace.events

    def test_reader_rejects_headerless_stream(self, tmp_path):
        from repro.sim.trace import EventTrace

        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0, "kind": "x", "payload": {}}\n')
        with pytest.raises(ValueError, match="header"):
            EventTrace.from_jsonl(path)


class TestReorgBreakdown:
    def test_manifest_carries_event_taxonomy(self, profiled_result):
        """(i)-(vii) counts and rates surface as JSON-safe metrics, and
        agree with the ledger's own breakdown."""
        m = RunManifest.from_result(profiled_result, hop_sample_every=4)
        bd = profiled_result.ledger.reorg_event_breakdown()
        assert bd  # a mobile run produces reorg events
        for kind, entry in bd.items():
            assert m.metrics[f"reorg_{kind}_count"] == entry["count"]
            assert m.metrics[f"reorg_{kind}_rate"] == entry["rate"]
        # Round-trips through JSON untouched.
        import json

        back = RunManifest.from_dict(json.loads(m.to_json()))
        for kind in bd:
            assert back.metrics[f"reorg_{kind}_count"] == bd[kind]["count"]

    def test_breakdown_sums_levels(self, profiled_result):
        lg = profiled_result.ledger
        bd = lg.reorg_event_breakdown()
        for kind, entry in bd.items():
            expect = sum(v for (k, _lvl), v in lg.reorg_event_counts.items()
                         if k.value == kind)
            assert entry["count"] == expect
        assert sum(e["count"] for e in bd.values()) == \
            sum(lg.reorg_event_counts.values())
