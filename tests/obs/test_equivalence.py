"""Telemetry must be pure observation.

The acceptance bar mirrors ``tests/sim/test_lossy_equivalence.py``:
with phase timers (and trace + JSONL export) enabled, every metered
series in the SimResult must be bit-identical to an uninstrumented run
of the same scenario — profiling may only *watch* the pipeline, never
consume an RNG draw or reorder a phase.
"""

from repro.obs import PHASES
from repro.sim import Scenario, Simulator, run_scenario

SC = Scenario(n=80, steps=8, warmup=2, speed=1.5, seed=3,
              max_levels=3, hop_mode="euclidean")

LOSSY = Scenario(n=80, steps=8, warmup=2, speed=1.5, seed=3,
                 max_levels=3, hop_mode="euclidean",
                 loss_rate=0.08, retry_attempts=3, queries_per_step=3)


def _fingerprint(res):
    """Every metered series of a SimResult, for bit-identity checks."""
    return (
        res.phi, res.gamma, res.f0, res.handoff_rate, res.mean_degree,
        res.giant_fraction, res.elapsed,
        dict(res.level_series.link_events),
        dict(res.level_series.drift_link_events),
        dict(res.level_series.address_changes),
        res.h_network, res.h_levels,
        res.ledger.phi_k(), res.ledger.gamma_k(), res.ledger.f_k(),
        res.ledger.retransmitted_packets, res.ledger.abandoned_entries,
    )


class TestBitIdentity:
    def test_profiled_run_matches_plain_run(self):
        plain = run_scenario(SC, hop_sample_every=4)
        profiled = run_scenario(SC, hop_sample_every=4, profile=True)
        assert _fingerprint(plain) == _fingerprint(profiled)
        assert plain.timings is None
        assert profiled.timings is not None

    def test_profiled_lossy_run_matches_plain_run(self):
        """The fault path draws from RNG streams every step; profiling
        must not perturb a single draw."""
        plain = run_scenario(LOSSY, hop_sample_every=4)
        profiled = run_scenario(LOSSY, hop_sample_every=4, profile=True)
        assert _fingerprint(plain) == _fingerprint(profiled)
        assert plain.queries.success_series == profiled.queries.success_series

    def test_profile_plus_trace_matches_plain_run(self):
        plain = Simulator(SC, hop_sample_every=4).run()
        instrumented = Simulator(SC, hop_sample_every=4, trace=True,
                                 profile=True).run()
        assert _fingerprint(plain) == _fingerprint(instrumented)
        assert instrumented.trace is not None


class TestTimingsContent:
    def test_every_pipeline_phase_metered(self):
        res = run_scenario(SC, hop_sample_every=4, profile=True)
        assert set(res.timings.totals) == set(PHASES)
        assert all(v >= 0 for v in res.timings.totals.values())
        assert res.timings.steps == SC.steps
        assert res.timings.wall_seconds >= res.timings.phase_seconds

    def test_sampling_phase_respects_cadence(self):
        """With a cadence wider than the run, sampling is metered only
        once (step 0)."""
        res = run_scenario(SC, hop_sample_every=1000, profile=True)
        assert "sampling" in res.timings.totals

    def test_unprofiled_run_carries_no_timings(self):
        assert run_scenario(SC, hop_sample_every=4).timings is None
