"""Tests for random-direction, group, and stationary mobility models."""

import numpy as np
import pytest

from repro.geometry import DiscRegion, SquareRegion
from repro.mobility import (
    MODEL_REGISTRY,
    RandomDirection,
    ReferencePointGroup,
    Stationary,
    make_model,
)


class TestRandomDirection:
    @pytest.mark.parametrize("region", [DiscRegion(50.0), SquareRegion(100.0)])
    def test_stays_inside(self, region):
        m = RandomDirection(40, region, 8.0, np.random.default_rng(0))
        for _ in range(200):
            assert region.contains(m.step(1.0)).all()

    def test_headings_unit_norm(self):
        m = RandomDirection(30, DiscRegion(50.0), 5.0, np.random.default_rng(1))
        for _ in range(50):
            m.step(1.0)
        norms = np.linalg.norm(m.headings, axis=1)
        assert np.allclose(norms, 1.0)

    def test_turn_rate_changes_headings(self):
        m = RandomDirection(
            200, DiscRegion(1e6), 1.0, np.random.default_rng(2), turn_rate=5.0
        )
        before = m.headings.copy()
        m.step(1.0)
        # Huge region: no wall reflections, so any change is from turning.
        changed = ~np.all(np.isclose(before, m.headings), axis=1)
        assert changed.mean() > 0.9

    def test_zero_turn_rate_straight_line(self):
        m = RandomDirection(
            10, DiscRegion(1e6), 1.0, np.random.default_rng(3), turn_rate=0.0
        )
        h = m.headings.copy()
        m.step(1.0)
        assert np.allclose(h, m.headings)

    def test_invalid_turn_rate(self):
        with pytest.raises(ValueError):
            RandomDirection(5, DiscRegion(10.0), 1.0, np.random.default_rng(0), turn_rate=-1)

    def test_uniformity_preserved(self):
        """Random-direction keeps the spatial distribution near uniform:
        the fraction inside radius r/sqrt(2) stays near 1/2."""
        region = DiscRegion(100.0)
        m = RandomDirection(400, region, 15.0, np.random.default_rng(4))
        count = total = 0
        for _ in range(100):
            pts = m.step(1.0)
            r = np.linalg.norm(pts, axis=1)
            count += int((r <= 100.0 / np.sqrt(2)).sum())
            total += len(pts)
        assert count / total == pytest.approx(0.5, abs=0.07)


class TestGroupMobility:
    def test_stays_inside(self):
        region = DiscRegion(200.0)
        m = ReferencePointGroup(
            60, region, 10.0, np.random.default_rng(0), n_groups=5, group_radius=30.0
        )
        for _ in range(100):
            assert region.contains(m.step(1.0)).all()

    def test_groups_cohere(self):
        region = DiscRegion(500.0)
        m = ReferencePointGroup(
            40, region, 10.0, np.random.default_rng(1), n_groups=4, group_radius=20.0
        )
        for _ in range(50):
            m.step(1.0)
        for g in range(4):
            members = m.positions[m.group_of == g]
            center = m._centers.positions[g]
            d = np.linalg.norm(members - center, axis=1)
            # Offsets bounded by group radius (clamping at the region
            # boundary can only pull members closer to the interior).
            assert (d <= 20.0 + 1e-6).all() or region.contains(members).all()

    def test_more_groups_than_nodes_clipped(self):
        m = ReferencePointGroup(
            3, DiscRegion(100.0), 5.0, np.random.default_rng(2), n_groups=10
        )
        assert m.n_groups == 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReferencePointGroup(5, DiscRegion(10.0), 1.0, np.random.default_rng(0), n_groups=0)
        with pytest.raises(ValueError):
            ReferencePointGroup(
                5, DiscRegion(10.0), 1.0, np.random.default_rng(0), group_radius=0.0
            )


class TestStationary:
    def test_never_moves(self):
        m = Stationary(25, DiscRegion(50.0), np.random.default_rng(0))
        before = m.positions.copy()
        for _ in range(10):
            m.step(1.0)
        assert np.array_equal(before, m.positions)
        assert m.time == pytest.approx(10.0)

    def test_speeds_zero(self):
        m = Stationary(5, DiscRegion(50.0), np.random.default_rng(0))
        assert (m.speeds == 0).all()


class TestRegistry:
    def test_registry_complete(self):
        assert set(MODEL_REGISTRY) == {
            "random_waypoint",
            "gauss_markov",
            "random_direction",
            "group",
            "stationary",
        }

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_make_model(self, name):
        m = make_model(name, 10, DiscRegion(50.0), 5.0, np.random.default_rng(0))
        assert m.n == 10
        m.step(1.0)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            make_model("teleport", 10, DiscRegion(50.0), 5.0, np.random.default_rng(0))

    def test_kwargs_forwarded(self):
        m = make_model(
            "group",
            12,
            DiscRegion(100.0),
            5.0,
            np.random.default_rng(0),
            n_groups=3,
        )
        assert m.n_groups == 3
