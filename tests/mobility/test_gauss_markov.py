"""Tests for the Gauss-Markov mobility model."""

import numpy as np
import pytest

from repro.geometry import DiscRegion
from repro.mobility import GaussMarkov


def make(n=50, radius=100.0, speed=2.0, seed=0, **kw):
    return GaussMarkov(n, DiscRegion(radius), speed,
                       np.random.default_rng(seed), **kw)


class TestConstruction:
    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            make(memory=1.0)
        with pytest.raises(ValueError):
            make(memory=-0.1)

    def test_invalid_heading_sigma(self):
        with pytest.raises(ValueError):
            make(heading_sigma=0.0)


class TestDynamics:
    def test_stays_inside(self):
        m = make(n=80, speed=5.0)
        for _ in range(300):
            assert m.region.contains(m.step(1.0)).all()

    def test_mean_speed_stationary(self):
        """The AR(1) speed process keeps its configured mean."""
        m = make(n=200, speed=3.0, seed=1)
        samples = []
        for _ in range(150):
            m.step(1.0)
            samples.append(m.speeds.mean())
        assert np.mean(samples[50:]) == pytest.approx(3.0, rel=0.15)

    def test_memory_smooths_headings(self):
        """High memory -> small per-step heading change."""
        turns = {}
        for mem in (0.3, 0.95):
            m = make(n=100, speed=2.0, seed=2, memory=mem)
            m.step(1.0)
            before = m._heading.copy()
            m.step(1.0)
            d = np.angle(np.exp(1j * (m._heading - before)))
            turns[mem] = np.abs(d).mean()
        assert turns[0.95] < turns[0.3]

    def test_deterministic(self):
        a = make(seed=5)
        b = make(seed=5)
        for _ in range(10):
            a.step(1.0)
            b.step(1.0)
        assert np.allclose(a.positions, b.positions)

    def test_no_teleporting(self):
        m = make(n=60, speed=2.0, seed=3)
        prev = m.positions.copy()
        for _ in range(50):
            cur = m.step(1.0)
            moved = np.linalg.norm(cur - prev, axis=1)
            # Speed excursions are bounded by mean + a few sigma.
            assert (moved <= 2.0 + 5 * m.speed_sigma + 1e-9).all()
            prev = cur.copy()
