"""Tests for the random-waypoint model (the paper's mobility model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DiscRegion, SquareRegion
from repro.mobility import RandomWaypoint


def make_rwp(n=20, radius=100.0, speed=5.0, seed=0, **kw):
    region = DiscRegion(radius)
    return RandomWaypoint(n, region, speed, np.random.default_rng(seed), **kw)


class TestConstruction:
    def test_initial_positions_inside(self):
        m = make_rwp()
        assert m.region.contains(m.positions).all()
        assert m.region.contains(m.waypoints).all()

    def test_invalid_pause(self):
        with pytest.raises(ValueError):
            make_rwp(pause=-1.0)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            make_rwp(speed=0.0)

    def test_speed_range(self):
        m = make_rwp(speed=(1.0, 3.0), n=200)
        assert (m.speeds >= 1.0).all() and (m.speeds <= 3.0).all()
        assert m.speeds.std() > 0

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            make_rwp(n=0)


class TestStepping:
    def test_positions_stay_inside(self):
        m = make_rwp(n=50, speed=10.0)
        for _ in range(100):
            pts = m.step(1.0)
            assert m.region.contains(pts).all()

    def test_displacement_bounded_by_speed(self):
        m = make_rwp(n=100, speed=7.0)
        before = m.positions.copy()
        m.step(2.0)
        moved = np.linalg.norm(m.positions - before, axis=1)
        # Straight-line displacement can't exceed speed * dt (waypoint
        # turns only shorten it).
        assert (moved <= 7.0 * 2.0 + 1e-9).all()

    def test_zero_pause_nodes_keep_moving(self):
        """With zero pause every node moves every step (paper's setting)."""
        m = make_rwp(n=50, speed=5.0)
        before = m.positions.copy()
        m.step(0.5)
        moved = np.linalg.norm(m.positions - before, axis=1)
        assert (moved > 0).all()

    def test_invalid_dt(self):
        m = make_rwp()
        with pytest.raises(ValueError):
            m.step(0.0)
        with pytest.raises(ValueError):
            m.step(-1.0)

    def test_clock_advances(self):
        m = make_rwp()
        m.step(0.25)
        m.step(0.75)
        assert m.time == pytest.approx(1.0)

    def test_arrival_redraws_waypoint(self):
        m = make_rwp(n=1, radius=10.0, speed=1000.0, seed=3)
        wp_before = m.waypoints.copy()
        m.step(1.0)  # speed >> diameter: certainly arrives at least once
        assert not np.allclose(wp_before, m.waypoints)

    def test_deterministic_under_seed(self):
        a = make_rwp(n=30, seed=42)
        b = make_rwp(n=30, seed=42)
        for _ in range(20):
            a.step(1.0)
            b.step(1.0)
        assert np.allclose(a.positions, b.positions)

    def test_different_seeds_differ(self):
        a = make_rwp(n=30, seed=1)
        b = make_rwp(n=30, seed=2)
        assert not np.allclose(a.positions, b.positions)


class TestPause:
    def test_paused_node_holds_position(self):
        m = make_rwp(n=1, radius=10.0, speed=1000.0, pause=100.0, seed=5)
        m.step(1.0)  # arrive somewhere and start pausing
        pos = m.positions.copy()
        m.step(1.0)
        assert np.allclose(m.positions, pos)

    def test_pause_expires(self):
        m = make_rwp(n=1, radius=10.0, speed=5.0, pause=0.5, seed=7)
        # Run long enough to guarantee several legs complete.
        for _ in range(200):
            m.step(1.0)
        assert m.region.contains(m.positions).all()


class TestSpatialDistribution:
    def test_mean_near_center_long_run(self):
        """RWP concentrates mass toward the center; the time-averaged mean
        position should be near the region center."""
        m = make_rwp(n=200, radius=100.0, speed=20.0, seed=11)
        acc = np.zeros(2)
        steps = 200
        for _ in range(steps):
            acc += m.step(1.0).mean(axis=0)
        assert np.linalg.norm(acc / steps) < 10.0


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    speed=st.floats(min_value=0.1, max_value=50.0),
    dt=st.floats(min_value=0.01, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_rwp_invariants_property(n, speed, dt, seed):
    region = SquareRegion(100.0)
    m = RandomWaypoint(n, region, speed, np.random.default_rng(seed))
    for _ in range(5):
        before = m.positions.copy()
        pts = m.step(dt)
        assert region.contains(pts).all()
        moved = np.linalg.norm(pts - before, axis=1)
        assert (moved <= speed * dt * (1 + 1e-9) + 1e-9).all()
