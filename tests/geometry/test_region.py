"""Unit and property tests for deployment regions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    DiscRegion,
    SquareRegion,
    disc_for_density,
    square_for_density,
)


class TestDiscRegion:
    def test_area(self):
        disc = DiscRegion(2.0)
        assert disc.area == pytest.approx(np.pi * 4.0)

    def test_diameter(self):
        assert DiscRegion(3.0).diameter == pytest.approx(6.0)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            DiscRegion(0.0)
        with pytest.raises(ValueError):
            DiscRegion(-1.0)

    def test_samples_inside(self):
        disc = DiscRegion(10.0, center=(5.0, -3.0))
        pts = disc.sample(500, np.random.default_rng(0))
        assert pts.shape == (500, 2)
        assert disc.contains(pts).all()

    def test_sample_negative_raises(self):
        with pytest.raises(ValueError):
            DiscRegion(1.0).sample(-1, np.random.default_rng(0))

    def test_uniform_in_area_not_radius(self):
        """Half the samples should fall within radius r/sqrt(2)."""
        disc = DiscRegion(1.0)
        pts = disc.sample(20000, np.random.default_rng(1))
        r = np.linalg.norm(pts, axis=1)
        frac_inner = np.mean(r <= 1.0 / np.sqrt(2.0))
        assert frac_inner == pytest.approx(0.5, abs=0.02)

    def test_contains_boundary(self):
        disc = DiscRegion(1.0)
        assert disc.contains([[1.0, 0.0]]).all()
        assert not disc.contains([[1.01, 0.0]]).any()

    def test_clamp_projects_outside_points(self):
        disc = DiscRegion(2.0, center=(1.0, 1.0))
        clamped = disc.clamp([[10.0, 1.0], [1.0, 1.5]])
        assert np.allclose(clamped[0], [3.0, 1.0])
        assert np.allclose(clamped[1], [1.0, 1.5])  # interior untouched
        assert disc.contains(clamped).all()

    def test_density_for(self):
        disc = DiscRegion(1.0)
        assert disc.density_for(314) == pytest.approx(314 / disc.area)
        with pytest.raises(ValueError):
            disc.density_for(-1)


class TestSquareRegion:
    def test_area_and_diameter(self):
        sq = SquareRegion(4.0)
        assert sq.area == pytest.approx(16.0)
        assert sq.diameter == pytest.approx(4.0 * np.sqrt(2.0))

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            SquareRegion(0.0)

    def test_samples_inside(self):
        sq = SquareRegion(7.0, origin=(-1.0, 2.0))
        pts = sq.sample(300, np.random.default_rng(0))
        assert sq.contains(pts).all()

    def test_center(self):
        sq = SquareRegion(2.0, origin=(1.0, 1.0))
        assert np.allclose(sq.center, [2.0, 2.0])

    def test_clamp(self):
        sq = SquareRegion(1.0)
        out = sq.clamp([[2.0, 0.5], [-1.0, -1.0], [0.3, 0.3]])
        assert np.allclose(out, [[1.0, 0.5], [0.0, 0.0], [0.3, 0.3]])


class TestFactories:
    def test_disc_for_density_fixed_density(self):
        """Doubling n at fixed density doubles the area (paper Sec 1.2)."""
        d1 = disc_for_density(100, 0.5)
        d2 = disc_for_density(200, 0.5)
        assert d2.area == pytest.approx(2 * d1.area)
        assert d1.density_for(100) == pytest.approx(0.5)

    def test_square_for_density(self):
        sq = square_for_density(400, 4.0)
        assert sq.area == pytest.approx(100.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            disc_for_density(0, 1.0)
        with pytest.raises(ValueError):
            disc_for_density(10, 0.0)
        with pytest.raises(ValueError):
            square_for_density(10, -1.0)


@settings(max_examples=50, deadline=None)
@given(
    radius=st.floats(min_value=0.1, max_value=1e4),
    cx=st.floats(min_value=-1e3, max_value=1e3),
    cy=st.floats(min_value=-1e3, max_value=1e3),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_disc_sample_contains_property(radius, cx, cy, seed):
    disc = DiscRegion(radius, center=(cx, cy))
    pts = disc.sample(64, np.random.default_rng(seed))
    assert disc.contains(pts).all()


@settings(max_examples=50, deadline=None)
@given(
    side=st.floats(min_value=0.1, max_value=1e4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_square_clamp_idempotent_property(side, seed):
    sq = SquareRegion(side)
    rng = np.random.default_rng(seed)
    pts = rng.normal(scale=side, size=(32, 2))
    clamped = sq.clamp(pts)
    assert sq.contains(clamped).all()
    assert np.allclose(sq.clamp(clamped), clamped)
