"""Unit tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry import (
    as_points,
    bounding_box,
    centroid,
    displacement,
    distances_to,
    pairwise_distances,
    path_length,
)


class TestAsPoints:
    def test_promotes_single_point(self):
        pts = as_points([1.0, 2.0])
        assert pts.shape == (1, 2)
        assert pts.dtype == np.float64

    def test_accepts_n_by_2(self):
        pts = as_points([[0, 0], [1, 1], [2, 2]])
        assert pts.shape == (3, 2)

    def test_rejects_bad_vector(self):
        with pytest.raises(ValueError):
            as_points([1.0, 2.0, 3.0])

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            as_points([[1.0, 2.0, 3.0]])

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            as_points(np.zeros((2, 2, 2)))


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        pts = rng.random((10, 2))
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_known_values(self):
        d = pairwise_distances([[0, 0], [3, 4]])
        assert d[0, 1] == pytest.approx(5.0)

    def test_matches_norm(self):
        rng = np.random.default_rng(1)
        pts = rng.random((6, 2)) * 10
        d = pairwise_distances(pts)
        ref = np.linalg.norm(pts[:, None, :] - pts[None, :, :], axis=-1)
        assert np.allclose(d, ref)


class TestDistancesTo:
    def test_single_target(self):
        d = distances_to([[0, 0], [0, 2], [1, 0]], (0, 0))
        assert np.allclose(d, [0.0, 2.0, 1.0])

    def test_matches_pairwise(self):
        rng = np.random.default_rng(2)
        pts = rng.random((8, 2))
        assert np.allclose(distances_to(pts, pts[3]), pairwise_distances(pts)[3])


class TestDisplacement:
    def test_zero_for_identical(self):
        pts = np.ones((5, 2))
        assert np.allclose(displacement(pts, pts), 0.0)

    def test_known_shift(self):
        a = np.zeros((3, 2))
        b = np.full((3, 2), [3.0, 4.0])
        assert np.allclose(displacement(a, b), 5.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            displacement(np.zeros((3, 2)), np.zeros((4, 2)))


class TestCentroidAndBox:
    def test_centroid(self):
        c = centroid([[0, 0], [2, 0], [0, 2], [2, 2]])
        assert np.allclose(c, [1.0, 1.0])

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid(np.empty((0, 2)))

    def test_bounding_box(self):
        lo, hi = bounding_box([[1, 5], [-2, 3], [0, 7]])
        assert np.allclose(lo, [-2, 3])
        assert np.allclose(hi, [1, 7])

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box(np.empty((0, 2)))


class TestPathLength:
    def test_empty_and_single(self):
        assert path_length(np.empty((0, 2))) == 0.0
        assert path_length([[1.0, 1.0]]) == 0.0

    def test_l_shape(self):
        assert path_length([[0, 0], [3, 0], [3, 4]]) == pytest.approx(7.0)
