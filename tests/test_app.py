"""Tests for the end-to-end messaging service."""

import numpy as np
import pytest

from repro.app import MessagingService, SessionResult
from repro.geometry import disc_for_density
from repro.mobility import RandomWaypoint, Stationary
from repro.radio import radius_for_degree
from repro.sim.hops import EuclideanHops

DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


def make_service(n=150, speed=1.0, seed=0, warm_steps=2):
    region = disc_for_density(n, DENSITY)
    rng = np.random.default_rng(seed)
    model = (Stationary(n, region, rng) if speed == 0
             else RandomWaypoint(n, region, speed, rng))
    svc = MessagingService(n, R_TX, max_levels=3)
    for _ in range(warm_steps):
        model.step(1.0)
        pts = model.positions.copy()
        svc.observe(pts, EuclideanHops(pts, R_TX))
    return svc, model, rng


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MessagingService(1, R_TX)
        with pytest.raises(ValueError):
            MessagingService(10, 0.0)

    def test_not_ready_before_two_observations(self):
        svc, model, _ = make_service(warm_steps=0)
        pts = model.positions.copy()
        hop = EuclideanHops(pts, R_TX)
        with pytest.raises(RuntimeError):
            svc.send(0, 1, hop)
        svc.observe(pts, hop)
        assert not svc.ready  # database still empty (needs a lag round)
        svc.observe(pts, hop)
        assert svc.ready


class TestSessions:
    def test_self_session_trivial(self):
        svc, model, _ = make_service()
        hop = EuclideanHops(model.positions, R_TX)
        r = svc.send(3, 3, hop)
        assert r.delivered and r.data_hops == 0 and r.query_packets == 0

    def test_static_network_all_deliver_exact(self):
        """With zero mobility the database is never stale and every
        connected pair delivers."""
        svc, model, rng = make_service(speed=0, warm_steps=3)
        pts = model.positions.copy()
        hop = EuclideanHops(pts, R_TX)
        from repro.graphs import CompactGraph
        from repro.radio import unit_disk_edges
        from repro.routing import FlatRouter

        flat = FlatRouter(CompactGraph(np.arange(150), unit_disk_edges(pts, R_TX)))
        checked = 0
        for _ in range(40):
            s, d = (int(x) for x in rng.integers(0, 150, size=2))
            if s == d or flat.hop_count(s, d) < 0:
                continue
            r = svc.send(s, d, hop)
            assert r.resolved and r.delivered, (s, d)
            assert not r.stale_address
            checked += 1
        assert checked > 20

    def test_mobile_network_mostly_delivers(self):
        svc, model, rng = make_service(speed=1.0, warm_steps=3)
        delivered = total = 0
        for _ in range(8):
            model.step(1.0)
            pts = model.positions.copy()
            hop = EuclideanHops(pts, R_TX)
            svc.observe(pts, hop)
            for _ in range(10):
                s, d = (int(x) for x in rng.integers(0, 150, size=2))
                if s == d:
                    continue
                r = svc.send(s, d, hop)
                total += 1
                delivered += int(r.delivered)
        assert delivered / total > 0.6

    def test_result_fields_consistent(self):
        svc, model, rng = make_service(speed=1.0, warm_steps=3)
        pts = model.positions.copy()
        hop = EuclideanHops(pts, R_TX)
        r = svc.send(0, 100, hop)
        assert isinstance(r, SessionResult)
        if not r.resolved:
            assert not r.delivered
        if r.delivered:
            assert r.data_hops >= 0
        assert r.query_packets >= 0


class TestStaleAddressForwarding:
    def test_stale_address_alignment(self):
        """forward() accepts addresses from a shallower/deeper snapshot."""
        svc, model, _ = make_service(warm_steps=3)
        fab = svc._fabric
        h = svc._hierarchy
        d = 40
        addr = h.address(d)
        # Truncated and extended variants must not crash.
        short = addr[1:]
        long = (addr[0],) + addr
        for variant in (short, long):
            res = fab.forward(0, d, address=tuple(variant))
            assert res.path[0] == 0

    def test_wrong_terminal_rejected(self):
        svc, model, _ = make_service(warm_steps=3)
        fab = svc._fabric
        with pytest.raises(ValueError):
            fab.forward(0, 40, address=(1, 2, 3))
