"""Functional tests for the fast (static-snapshot) experiments.

The heavy sweeps are exercised by the benchmarks; here we run the cheap
experiments end to end and assert their *claims*, not just that they
produce rows.
"""

import pytest

from repro.experiments import (
    e_f1_hierarchy,
    e_f2_gls_grid,
    e_t7_load_balance,
    e_t9_table_size,
)


class TestF1:
    @pytest.fixture(scope="class")
    def result(self):
        return e_f1_hierarchy.run(n=100, seed=7)

    def test_levels_shrink(self, result):
        sizes = [row[1] for row in result.rows]
        assert sizes[0] == 100
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_c_k_consistent(self, result):
        for row in result.rows:
            level, n_k, _, _, c_k, _ = row
            assert c_k == pytest.approx(100 / n_k, rel=0.02)

    def test_addresses_noted(self, result):
        assert any("address(" in n for n in result.notes)

    def test_node68_case_found(self, result):
        assert any("node 68" in n for n in result.notes)


class TestF2:
    @pytest.fixture(scope="class")
    def result(self):
        return e_f2_gls_grid.run(n=256, seed=5)

    def test_one_row_per_level(self, result):
        levels = [row[0] for row in result.rows]
        assert levels == sorted(levels)
        assert levels[0] == 1

    def test_three_siblings_each(self, result):
        for row in result.rows:
            sibs = eval(row[2])
            assert len(sibs) == 3


class TestT7:
    @pytest.fixture(scope="class")
    def result(self):
        return e_t7_load_balance.run(quick=True, seeds=(0,))

    def test_naive_worse_at_every_size(self, result):
        by_n = {}
        for n, hash_name, _mean, mx, *_ in result.rows:
            by_n.setdefault(n, {})[hash_name] = mx
        for n, loads in by_n.items():
            assert loads["naive"] > loads["rendezvous"], n

    def test_skew_notes(self, result):
        assert any("naive max-load" in n for n in result.notes)


class TestT9:
    @pytest.fixture(scope="class")
    def result(self):
        return e_t9_table_size.run(quick=True, seeds=(0,))

    def test_hier_below_flat(self, result):
        for row in result.rows:
            n, flat, hier_mean, *_ = row
            assert hier_mean < flat

    def test_reduction_grows_with_n(self, result):
        fractions = [row[4] for row in result.rows]  # hier/flat
        assert fractions[-1] < fractions[0]
