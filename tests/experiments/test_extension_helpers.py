"""Functional tests for extension-experiment internals (small configs)."""

import pytest

from repro.experiments.e_a6_query_staleness import _one_run as staleness_run
from repro.experiments.e_a7_state_stretch import _measure as stretch_measure
from repro.experiments.e_a7_state_stretch import _measure_steady as steady_measure
from repro.experiments.e_t8_gls_vs_chlm import _one_run as gls_run


class TestStalenessHelper:
    def test_rates_are_distribution(self):
        rates = staleness_run(n=100, speed=1.0, steps=4, seed=0)
        assert set(rates) == {"exact", "routable", "stale", "unresolved"}
        assert sum(rates.values()) == pytest.approx(1.0, abs=1e-9)
        assert all(0 <= v <= 1 for v in rates.values())

    def test_slower_is_more_exact(self):
        slow = staleness_run(n=100, speed=0.5, steps=6, seed=1)
        fast = staleness_run(n=100, speed=4.0, steps=6, seed=1)
        assert slow["exact"] > fast["exact"]


class TestStretchHelper:
    def test_measures(self):
        m = stretch_measure(n=120, L=3, seed=0, pairs=60)
        assert m["delivery"] > 0.9
        assert 1.0 <= m["stretch_mean"] < 2.5
        assert m["state"] < 120 - 1

    def test_shallower_hierarchy_more_state_less_stretch(self):
        deep = stretch_measure(n=150, L=4, seed=1, pairs=60)
        shallow = stretch_measure(n=150, L=1, seed=1, pairs=60)
        assert shallow["state"] > deep["state"]

    def test_steady_state_measures(self):
        m = steady_measure(n=120, L=3, seed=0, steps=4, pairs=30)
        assert m["delivery"] > 0.85
        assert 1.0 <= m["stretch_mean"] < 2.5
        assert 0 < m["state"] < 120 - 1
        # Only the baseline snapshot builds from scratch; later steps
        # reuse at least some flood rows.
        assert m["full_rebuilds"] == 1
        assert m["rows_reused_frac"] > 0


class TestGlsComparisonHelper:
    def test_rates_nonnegative(self):
        rates = gls_run(n=100, steps=5, warmup=3, seed=0)
        assert set(rates) == {
            "gls_handoff", "gls_update", "chlm_handoff", "chlm_reg"
        }
        assert all(v >= 0 for v in rates.values())

    def test_mobility_produces_traffic(self):
        rates = gls_run(n=100, steps=8, warmup=3, seed=1)
        assert rates["chlm_handoff"] > 0
        assert rates["gls_handoff"] + rates["gls_update"] > 0
