"""Tests for the experiment result container."""

import pytest

from repro.experiments import ExperimentResult


@pytest.fixture
def result():
    r = ExperimentResult(
        exp_id="EXP-X", title="demo", columns=["n", "value"]
    )
    r.add_row(100, 1.2345)
    r.add_row(200, 0.0001234)
    r.add_note("a note")
    return r


class TestExperimentResult:
    def test_row_arity_checked(self, result):
        with pytest.raises(ValueError):
            result.add_row(1, 2, 3)

    def test_to_text_contains_everything(self, result):
        text = result.to_text()
        assert "EXP-X" in text
        assert "demo" in text
        assert "100" in text
        assert "a note" in text

    def test_alignment(self, result):
        lines = result.to_text().splitlines()
        header = lines[1]
        assert header.startswith("n")
        # All data lines at least as wide as their content columns.
        assert len(lines) >= 5

    def test_small_floats_compact(self, result):
        text = result.to_text()
        assert "0.000123" in text  # 3 significant digits

    def test_empty_table_renders(self):
        r = ExperimentResult(exp_id="E", title="t", columns=["a"])
        text = r.to_text()
        assert "a" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        from repro.experiments import ALL_EXPERIMENTS

        expected = (
            {f"EXP-F{i}" for i in range(1, 4)}
            | {f"EXP-T{i}" for i in range(1, 11)}
            | {f"EXP-A{i}" for i in range(1, 13)}
            | {"EXP-S1"}
        )
        assert set(ALL_EXPERIMENTS) == expected
        assert all(callable(fn) for fn in ALL_EXPERIMENTS.values())
