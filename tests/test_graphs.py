"""Tests for the compact graph kernels."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DiscRegion
from repro.graphs import CompactGraph, bfs_distances, bfs_path
from repro.radio import unit_disk_edges


class TestCompactGraph:
    def test_neighbors(self):
        g = CompactGraph([1, 2, 3], [[1, 2], [2, 3]])
        assert sorted(g.neighbors(2).tolist()) == [1, 3]
        assert g.degree(2) == 2
        assert g.degree(1) == 1

    def test_arbitrary_ids(self):
        g = CompactGraph([10, 500, 77], [[10, 500]])
        assert g.neighbors(10).tolist() == [500]
        assert g.degree(77) == 0

    def test_unknown_id(self):
        g = CompactGraph([1, 2], [[1, 2]])
        with pytest.raises(KeyError):
            g.neighbors(9)

    def test_bad_edges(self):
        with pytest.raises(ValueError):
            CompactGraph([1, 2], [[1, 5]])

    def test_empty_graph(self):
        g = CompactGraph([1, 2, 3], np.empty((0, 2)))
        assert g.n == 3
        assert g.degree(1) == 0


class TestBFS:
    def test_distances_chain(self):
        g = CompactGraph(range(5), [[0, 1], [1, 2], [2, 3], [3, 4]])
        d = bfs_distances(g, 0)
        assert d.tolist() == [0, 1, 2, 3, 4]

    def test_unreachable(self):
        g = CompactGraph(range(4), [[0, 1], [2, 3]])
        d = bfs_distances(g, 0)
        assert d.tolist() == [0, 1, -1, -1]

    def test_path_exact(self):
        g = CompactGraph(range(5), [[0, 1], [1, 2], [2, 3], [3, 4], [0, 4]])
        p = bfs_path(g, 0, 3)
        assert p in ([0, 1, 2, 3], [0, 4, 3])
        assert len(p) == 4 or len(p) == 3
        assert bfs_path(g, 0, 3) == p  # deterministic

    def test_path_same_node(self):
        g = CompactGraph([1, 2], [[1, 2]])
        assert bfs_path(g, 1, 1) == [1]

    def test_path_unreachable(self):
        g = CompactGraph(range(4), [[0, 1], [2, 3]])
        assert bfs_path(g, 0, 3) is None

    def test_restricted_bfs(self):
        # 0-1-2 and 0-3-2: forbid node 1, path must go through 3.
        g = CompactGraph(range(4), [[0, 1], [1, 2], [0, 3], [3, 2]])
        allowed = np.array([True, False, True, True])
        p = bfs_path(g, 0, 2, restrict_idx=allowed)
        assert p == [0, 3, 2]
        d = bfs_distances(g, 0, restrict_idx=allowed)
        assert d[1] == -1
        assert d[2] == 2

    def test_restricted_source_blocked(self):
        g = CompactGraph(range(2), [[0, 1]])
        allowed = np.array([False, True])
        assert bfs_path(g, 0, 1, restrict_idx=allowed) is None
        assert (bfs_distances(g, 0, restrict_idx=allowed) == -1).all()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), n=st.integers(2, 60))
def test_bfs_matches_networkx_property(seed, n):
    rng = np.random.default_rng(seed)
    pts = DiscRegion(1.0).sample(n, rng)
    edges = unit_disk_edges(pts, 0.4)
    g = CompactGraph(np.arange(n), edges)
    nxg = nx.Graph()
    nxg.add_nodes_from(range(n))
    nxg.add_edges_from(map(tuple, edges.tolist()))
    src = int(rng.integers(n))
    ref = nx.single_source_shortest_path_length(nxg, src)
    ours = bfs_distances(g, src)
    for v in range(n):
        assert ours[v] == ref.get(v, -1)
    # Path length agrees with distance for a random reachable target.
    reach = [v for v in range(n) if v != src and ours[v] > 0]
    if reach:
        t = reach[int(rng.integers(len(reach)))]
        p = bfs_path(g, src, t)
        assert p[0] == src and p[-1] == t
        assert len(p) - 1 == ours[t]
        for a, b in zip(p, p[1:]):
            assert nxg.has_edge(a, b)
