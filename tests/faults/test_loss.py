"""Tests for the per-hop lossy-channel model."""

import numpy as np
import pytest

from repro.faults import MAX_HOP_LOSS, LossModel


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5, float("nan"), float("inf")])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            LossModel(rate=rate)

    @pytest.mark.parametrize("coeff", [-0.5, float("nan")])
    def test_bad_level_coeff_rejected(self, coeff):
        with pytest.raises(ValueError):
            LossModel(rate=0.1, level_coeff=coeff)


class TestHopLoss:
    def test_zero_rate_level_blind(self):
        m = LossModel(rate=0.0, level_coeff=5.0)
        assert m.hop_loss(0) == 0.0
        assert m.hop_loss(4) == 0.0

    def test_level_grading(self):
        m = LossModel(rate=0.05, level_coeff=0.5)
        assert m.hop_loss(0) == pytest.approx(0.05)
        assert m.hop_loss(2) == pytest.approx(0.05 * 2.0)
        assert m.hop_loss(-3) == pytest.approx(0.05)  # clamped at level 0

    def test_capped_at_max(self):
        m = LossModel(rate=0.5, level_coeff=10.0)
        assert m.hop_loss(100) == MAX_HOP_LOSS


class TestAttempt:
    def test_zero_rate_draws_nothing(self):
        """The lossless channel must not consume RNG state — that is
        what keeps loss_rate=0 runs bit-identical to the old engine."""
        m = LossModel(rate=0.0)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        ok, tx = m.attempt(7, 0, rng)
        assert (ok, tx) == (True, 7)
        assert rng.bit_generator.state == before

    def test_zero_hops_trivial(self):
        m = LossModel(rate=0.9)
        rng = np.random.default_rng(0)
        assert m.attempt(0, 0, rng) == (True, 0)

    def test_failure_charges_partial_route(self):
        """A lost packet at hop i costs i transmissions, never more."""
        m = LossModel(rate=0.7)
        rng = np.random.default_rng(3)
        for _ in range(200):
            ok, tx = m.attempt(10, 0, rng)
            if ok:
                assert tx == 10
            else:
                assert 1 <= tx <= 10

    def test_deterministic_under_seed(self):
        m = LossModel(rate=0.3)
        a = [m.attempt(5, 0, np.random.default_rng(9)) for _ in range(1)]
        b = [m.attempt(5, 0, np.random.default_rng(9)) for _ in range(1)]
        assert a == b

    def test_success_probability_matches_empirics(self):
        m = LossModel(rate=0.2)
        rng = np.random.default_rng(1)
        n = 4000
        hits = sum(m.attempt(4, 0, rng)[0] for _ in range(n))
        assert hits / n == pytest.approx(m.attempt_success_probability(4), abs=0.03)

    def test_success_probability_edges(self):
        assert LossModel(rate=0.5).attempt_success_probability(0) == 1.0
        assert LossModel(rate=0.0).attempt_success_probability(50) == 1.0
