"""Tests for the chaos engine: episode validation, the CLI episode
grammar, and the crash/partition/burst mechanics."""

import math
import pickle

import numpy as np
import pytest

from repro.faults import (
    ChaosEngine,
    CrashEpisode,
    FaultSchedule,
    LossBurstEpisode,
    PartitionEpisode,
    parse_episode,
)
from repro.faults.loss import LossModel


def engine(n=20, episodes=(), seed=0):
    return ChaosEngine(n, FaultSchedule(tuple(episodes)),
                       np.random.default_rng(seed))


class TestEpisodeValidation:
    @pytest.mark.parametrize("kwargs", [
        {"start": -1.0, "rate": 0.1},
        {"start": float("nan"), "rate": 0.1},
        {"start": float("inf"), "rate": 0.1},
        {"duration": 0.0, "rate": 0.1},
        {"duration": -5.0, "rate": 0.1},
        {"duration": float("nan"), "rate": 0.1},
        {"rate": -0.1},
        {"rate": float("inf")},
        {"rate": 0.1, "repair_time": 0.0},
        {"rate": 0.1, "repair_time": float("inf")},
        {"rate": 0.1, "targets": "everyone"},
        {"rate": 0.1, "stream": "mobility"},
        {"count": -2},
        {"nodes": (3, -1)},
        {},  # no rate, nodes, or count: can never crash anything
    ])
    def test_crash_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            CrashEpisode(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"start": float("nan")},
        {"duration": 0.0},
        {"angle": float("inf")},
        {"offset": float("nan")},
    ])
    def test_partition_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            PartitionEpisode(**kwargs)

    @pytest.mark.parametrize("rate", [0.0, 1.0, -0.2, float("nan")])
    def test_burst_rejects_bad_rates(self, rate):
        with pytest.raises(ValueError):
            LossBurstEpisode(rate=rate)

    def test_error_messages_are_actionable(self):
        with pytest.raises(ValueError, match="duration must be positive"):
            CrashEpisode(duration=-1.0, rate=0.1)
        with pytest.raises(ValueError, match="rate > 0, nodes, or count"):
            CrashEpisode()

    def test_window_and_activity(self):
        ep = CrashEpisode(start=5.0, duration=3.0, rate=0.1)
        assert ep.end == 8.0
        assert not ep.active(4.9)
        assert ep.active(5.0)
        assert ep.active(7.9)
        assert not ep.active(8.0)  # half-open window

    def test_schedule_rejects_non_episodes(self):
        with pytest.raises(TypeError, match="episodes"):
            FaultSchedule(("crash:rate=0.1",))

    def test_schedule_properties(self):
        crash = CrashEpisode(rate=0.1)
        cut = PartitionEpisode(duration=5.0)
        burst = LossBurstEpisode(rate=0.3)
        sched = FaultSchedule((crash, cut, burst))
        assert bool(sched) and len(sched) == 3
        assert sched.crash_episodes == (crash,)
        assert sched.partition_episodes == (cut,)
        assert sched.burst_episodes == (burst,)
        assert sched.needs_delivery
        assert not FaultSchedule((crash,)).needs_delivery
        assert not FaultSchedule()


class TestParseEpisode:
    def test_crash_spec(self):
        ep = parse_episode("crash:start=10,duration=5,rate=0.02,repair=15")
        assert ep == CrashEpisode(start=10.0, duration=5.0, rate=0.02,
                                  repair_time=15.0)

    def test_targeted_and_scripted_specs(self):
        ep = parse_episode("crash:start=20,duration=1,count=3,"
                           "targets=clusterheads")
        assert ep.count == 3 and ep.targets == "clusterheads"
        ep = parse_episode("crash:start=20,duration=1,nodes=4+17+32")
        assert ep.nodes == (4, 17, 32)

    def test_partition_and_burst_specs(self):
        ep = parse_episode("partition:start=30,duration=20,angle=1.57")
        assert isinstance(ep, PartitionEpisode) and ep.angle == 1.57
        ep = parse_episode("burst:start=5,duration=10,rate=0.3")
        assert isinstance(ep, LossBurstEpisode) and ep.rate == 0.3

    @pytest.mark.parametrize("spec", [
        "meteor:start=1,duration=2",          # unknown kind
        "crash:angle=0.5,rate=0.1",           # key not valid for kind
        "crash:start",                        # missing =value
        "burst:start=1,duration=2,rate=zed",  # unparseable value
        "partition:start=1,duration=-2",      # validated after parse
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_episode(spec)

    def test_from_specs_round_trip(self):
        sched = FaultSchedule.from_specs(
            ["crash:rate=0.1", "burst:rate=0.5,start=3,duration=2"])
        assert len(sched) == 2 and sched.needs_delivery


class TestCrashMechanics:
    def test_poisson_rate_matches_intensity(self):
        eng = engine(n=4000, episodes=[CrashEpisode(rate=0.1,
                                                    repair_time=0.5)])
        crashes = trials = 0
        for _ in range(25):
            before = eng.down_until.copy()
            trials += int((eng.down_until < eng.now + 1.0).sum())
            eng.advance(1.0)
            crashes += int((eng.down_until != before).sum())
        assert crashes / trials == pytest.approx(-np.expm1(-0.1), rel=0.1)

    def test_inactive_window_draws_nothing(self):
        eng = engine(episodes=[CrashEpisode(start=100.0, duration=1.0,
                                            rate=5.0)])
        for _ in range(10):
            eng.advance(1.0)
        assert not eng.down_mask().any()

    def test_scripted_kill_fires_once(self):
        eng = engine(episodes=[CrashEpisode(start=2.0, duration=10.0,
                                            nodes=(3, 7), repair_time=4.0)])
        eng.advance(1.0)
        assert not eng.down_mask().any()
        eng.advance(1.0)  # t=2: episode opens, nodes killed
        assert set(np.flatnonzero(eng.down_mask())) == {3, 7}
        assert eng.down_until[3] == 2.0 + 4.0
        eng.advance(1.0)  # one-shot: deadlines must not be re-extended
        assert eng.down_until[3] == 6.0

    def test_count_kill_draws_from_pool(self):
        eng = engine(n=30, episodes=[CrashEpisode(start=1.0, duration=5.0,
                                                  count=6, repair_time=9.0)])
        eng.advance(1.0)
        assert int(eng.down_mask().sum()) == 6

    def test_clusterhead_targeting_uses_hierarchy(self):
        class FakeLevel:
            node_ids = np.array([2, 5, 11])

        class FakeHierarchy:
            num_levels = 1
            levels = {1: FakeLevel()}

        eng = engine(n=20, episodes=[CrashEpisode(start=1.0, duration=2.0,
                                                  count=10,
                                                  targets="clusterheads")])
        eng.advance(1.0, hierarchy=FakeHierarchy())
        assert set(np.flatnonzero(eng.down_mask())) == {2, 5, 11}

    def test_recovery_after_repair_window(self):
        eng = engine(episodes=[CrashEpisode(start=1.0, duration=1.0,
                                            nodes=(4,), repair_time=2.5)])
        eng.advance(1.0)
        assert eng.down_mask()[4]
        eng.advance(1.0)
        assert eng.down_mask()[4]  # down_until=3.5 >= now=2
        eng.advance(1.0)
        assert eng.down_mask()[4]  # 3.5 >= 3
        eng.advance(1.0)
        assert not eng.down_mask()[4]

    def test_engine_pickles_mid_episode(self):
        eng = engine(episodes=[CrashEpisode(rate=0.3, repair_time=2.0)])
        for _ in range(3):
            eng.advance(1.0)
        clone = pickle.loads(pickle.dumps(eng))
        eng.advance(1.0)
        clone.advance(1.0)
        assert np.array_equal(eng.down_until, clone.down_until)
        assert eng.now == clone.now


class TestPartitionMechanics:
    def test_cut_severs_only_crossing_links(self):
        eng = engine(n=4, episodes=[PartitionEpisode(start=1.0,
                                                     duration=2.0)])
        pos = np.array([[-1.0, 0.0], [-2.0, 1.0], [1.0, 0.0], [2.0, 1.0]])
        edges = np.array([[0, 1], [2, 3], [0, 2], [1, 3]])
        eng.advance(1.0)
        assert eng.partition_active()
        kept = eng.filter_edges(edges, pos)
        assert kept.tolist() == [[0, 1], [2, 3]]

    def test_cut_heals_when_window_closes(self):
        eng = engine(n=2, episodes=[PartitionEpisode(start=1.0,
                                                     duration=1.0)])
        pos = np.array([[-1.0, 0.0], [1.0, 0.0]])
        edges = np.array([[0, 1]])
        eng.advance(1.0)
        assert eng.filter_edges(edges, pos).size == 0
        assert eng.partition_changed
        eng.advance(1.0)
        assert not eng.partition_active()
        assert eng.partition_changed  # the heal is a change too
        assert eng.filter_edges(edges, pos).tolist() == [[0, 1]]
        eng.advance(1.0)
        assert not eng.partition_changed

    def test_offset_and_angle_shift_the_cut(self):
        ep = PartitionEpisode(start=0.0, angle=math.pi / 2, offset=3.0)
        eng = engine(n=3, episodes=[ep])
        eng.advance(1.0)
        # Cut at y=3: nodes 0,1 below, node 2 above.
        pos = np.array([[0.0, 0.0], [5.0, 1.0], [0.0, 5.0]])
        kept = eng.filter_edges(np.array([[0, 1], [1, 2]]), pos)
        assert kept.tolist() == [[0, 1]]


class TestBurstLoss:
    def test_inactive_burst_returns_base_object(self):
        base = LossModel(rate=0.1)
        eng = engine(episodes=[LossBurstEpisode(start=5.0, duration=1.0,
                                                rate=0.4)])
        eng.advance(1.0)
        assert eng.loss_model(base) is base
        assert eng.loss_model(None) is None

    def test_active_burst_adds_to_base_rate(self):
        base = LossModel(rate=0.1, level_coeff=0.02)
        eng = engine(episodes=[LossBurstEpisode(start=1.0, duration=3.0,
                                                rate=0.4)])
        eng.advance(1.0)
        eff = eng.loss_model(base)
        assert eff.rate == pytest.approx(0.5)
        assert eff.level_coeff == pytest.approx(0.02)
        assert eng.loss_model(None).rate == pytest.approx(0.4)

    def test_overlapping_bursts_cap(self):
        eng = engine(episodes=[
            LossBurstEpisode(start=0.0, duration=10.0, rate=0.7),
            LossBurstEpisode(start=0.0, duration=10.0, rate=0.7),
        ])
        eng.advance(1.0)
        assert eng.loss_model(LossModel(rate=0.5)).rate == pytest.approx(0.999)
