"""Tests for the expanding-ring fallback and query metering."""

import math

import pytest

from repro.faults import QueryLedger, expanding_ring_cost


def _ring(radius, n=10_000, density=0.02, r_tx=10.0):
    """Nodes inside one ring under the fixed-density geometry."""
    return min(n, math.ceil(density * math.pi * (radius * r_tx) ** 2))


class TestExpandingRingCost:
    def test_zero_hops_free(self):
        assert expanding_ring_cost(0, 100, 0.02, 10.0) == 0
        assert expanding_ring_cost(-3, 100, 0.02, 10.0) == 0

    def test_rejects_degenerate_geometry(self):
        for bad in [dict(n=0), dict(density=0.0), dict(r_tx=0.0)]:
            kwargs = dict(target_hops=3, n=100, density=0.02, r_tx=10.0)
            kwargs.update(bad)
            with pytest.raises(ValueError):
                expanding_ring_cost(**kwargs)

    def test_monotone_in_target_distance(self):
        costs = [expanding_ring_cost(h, 500, 0.02, 10.0) for h in (1, 3, 9, 27)]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]

    def test_each_round_capped_at_n(self):
        # Tiny network, far target: every doubling round costs <= n.
        n = 20
        cost = expanding_ring_cost(64, n, 0.02, 10.0)
        rounds = 8  # TTL 1, 2, 4, ..., 64 -> ceil(log2 64) + 1 rounds
        assert cost <= rounds * n

    def test_rejects_degenerate_geometry_even_for_zero_hops(self):
        # Regression: the zero-hop early return used to preempt
        # validation, silently metering degenerate sweep cells at 0.
        for hops in (0, -3):
            with pytest.raises(ValueError):
                expanding_ring_cost(hops, 0, 0.02, 10.0)
            with pytest.raises(ValueError):
                expanding_ring_cost(hops, 100, -1.0, 10.0)

    def test_final_ring_clamped_to_target(self):
        # Regression: target 5 floods TTL 1, 2, 4, then a final ring
        # clamped to radius 5 — not the unclamped doubling to 8.
        assert expanding_ring_cost(5, 10_000, 0.02, 10.0) == (
            _ring(1) + _ring(2) + _ring(4) + _ring(5))
        # Power-of-two targets need no clamp and are unchanged.
        assert expanding_ring_cost(8, 10_000, 0.02, 10.0) == (
            _ring(1) + _ring(2) + _ring(4) + _ring(8))
        # The clamp only ever removes cost.
        assert (expanding_ring_cost(5, 10_000, 0.02, 10.0)
                < expanding_ring_cost(8, 10_000, 0.02, 10.0))

    def test_far_target_costs_more_than_one_flood(self):
        # The restart-per-round semantics: reaching hop 8 pays rings
        # 1 + 2 + 4 + 8, strictly more than the final ring alone.
        one_shot = expanding_ring_cost(1, 10_000, 0.02, 10.0)
        far = expanding_ring_cost(8, 10_000, 0.02, 10.0)
        assert far > one_shot


class TestQueryLedger:
    def test_empty_ledger_defaults(self):
        q = QueryLedger()
        assert q.success_rate == 1.0
        assert q.degraded_fraction == 0.0
        assert q.total_packets == 0

    def test_mixed_accounting(self):
        q = QueryLedger()
        q.record_direct(4)
        q.record_fallback(6, 50)
        q.record_failure(2)
        assert q.attempts == 3
        assert q.successes == 2
        assert q.success_rate == pytest.approx(2 / 3)
        assert q.degraded_fraction == pytest.approx(1 / 2)
        assert q.probe_packets == 12
        assert q.fallback_packets == 50
        assert q.total_packets == 62

    def test_step_series(self):
        q = QueryLedger()
        q.record_direct(1)
        q.record_failure(1)
        q.close_step()
        q.record_direct(1)
        q.close_step()
        q.close_step()  # no samples: no entry
        assert q.success_series == [0.5, 1.0]
