"""Tests for per-step hierarchy invariant checking."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.faults import (
    InvariantReport,
    InvariantViolationError,
    check_invariants,
)
from repro.hierarchy import build_hierarchy

TRIANGLES = np.array([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]])


def two_triangles():
    """Two disconnected triangles {0,1,2} and {3,4,5}; heads 2 and 5."""
    return build_hierarchy(np.arange(6), TRIANGLES, max_levels=2)


def assignment(pairs):
    """Duck-typed ServerAssignment: {(subject, ...): server}."""
    return SimpleNamespace(servers={(s, 0): srv for s, srv in pairs})


class TestReport:
    def test_violations_exclude_orphans(self):
        rep = InvariantReport(step=3, head_unreachable=2, broken_chain=1,
                              dead_servers=4, unreachable_servers=5,
                              orphaned=9)
        assert rep.violations == 12
        assert not rep.ok
        assert "12 invariant violation" in rep.describe()
        assert InvariantReport(step=0, orphaned=3).ok

    def test_strict_mode_raises_with_description(self):
        h = two_triangles()
        alive = np.ones(6, dtype=bool)
        alive[2] = False  # head of the first triangle is down
        with pytest.raises(InvariantViolationError, match="clusterhead"):
            check_invariants(h, TRIANGLES, alive=alive, strict=True)


class TestHealthyTopology:
    def test_connected_graph_is_clean(self):
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0]])
        h = build_hierarchy(np.arange(6), edges, max_levels=3)
        rep = check_invariants(h, edges)
        assert rep.ok and rep.orphaned == 0

    def test_disconnected_clusters_are_still_coherent(self):
        # Each triangle's head is alive inside its own component: the
        # graph is split, but no *hierarchy* invariant is violated.
        rep = check_invariants(two_triangles(), TRIANGLES)
        assert rep.ok

    def test_alive_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="alive mask"):
            check_invariants(two_triangles(), TRIANGLES,
                             alive=np.ones(4, dtype=bool))


class TestHeadReachability:
    def test_dead_head_counts_members(self):
        alive = np.ones(6, dtype=bool)
        alive[5] = False  # second triangle loses its head
        rep = check_invariants(two_triangles(), TRIANGLES, alive=alive)
        # 3 and 4 point at a dead head (5 itself is not alive).
        assert rep.head_unreachable == 2

    def test_cross_component_head_counts(self):
        # Sever head 2 from its triangle: members 0 and 1 stay linked
        # to each other but lose their (alive) head to another
        # component.
        h = two_triangles()
        assert h.ancestry(1).tolist()[:3] == [2, 2, 2]
        cut = np.array([[0, 1], [3, 4], [4, 5], [3, 5]])
        rep = check_invariants(h, cut)
        assert rep.head_unreachable == 2
        assert rep.orphaned == 1  # head 2 itself is now linkless

    def test_orphans_reported_not_violating(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])  # nodes 3-5 isolated
        h = build_hierarchy(np.arange(6), edges, max_levels=2)
        rep = check_invariants(h, edges)
        assert rep.orphaned == 3
        # Isolated nodes become their own heads: no head violation.
        assert rep.ok


class TestServerInvariants:
    def test_dead_server_pointer_counts(self):
        alive = np.ones(6, dtype=bool)
        alive[4] = False
        rep = check_invariants(two_triangles(), TRIANGLES,
                               assignment=assignment([(0, 4), (1, 2)]),
                               alive=alive)
        assert rep.dead_servers == 1

    def test_unknown_server_id_counts_as_dead(self):
        rep = check_invariants(two_triangles(), TRIANGLES,
                               assignment=assignment([(0, 99)]))
        assert rep.dead_servers == 1

    def test_cross_partition_pointer_counts(self):
        # Subject 0 (first triangle) served by 5 (second): unreachable.
        rep = check_invariants(two_triangles(), TRIANGLES,
                               assignment=assignment([(0, 5), (3, 5)]))
        assert rep.unreachable_servers == 1
        assert rep.dead_servers == 0

    def test_dead_subject_not_counted(self):
        alive = np.ones(6, dtype=bool)
        alive[0] = False  # the stranded subject itself is down
        rep = check_invariants(two_triangles(), TRIANGLES,
                               assignment=assignment([(0, 5)]),
                               alive=alive)
        assert rep.unreachable_servers == 0


class TestPersistentCids:
    def test_synthetic_cid_cluster_coherence(self):
        """Persistent hierarchies use synthetic cluster ids that name no
        base node; the head check degrades to cluster coherence."""
        from repro.sim import Scenario
        from repro.sim.engine import Simulator

        sc = Scenario(n=60, steps=4, warmup=2, speed=1.0, seed=3,
                      max_levels=2, election_mode="persistent")
        sim = Simulator(sc)
        res = sim.run()
        h = sim._prev_hierarchy
        anc1 = h.ancestry(1)
        assert anc1.max() >= 10_000_000  # synthetic ids in play
        edges = np.empty((0, 2), dtype=np.int64)
        rep = check_invariants(h, edges)
        # With every link severed, any cluster of >= 2 members loses
        # coherence; total incoherent members = sum over clusters of
        # (size - 1).
        sizes = np.unique(anc1, return_counts=True)[1]
        assert rep.head_unreachable == int((sizes - 1).sum())
        assert res.phi >= 0.0
