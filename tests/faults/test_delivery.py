"""Tests for retry policy and attempt-level delivery accounting."""

import numpy as np
import pytest

from repro.faults import DeliveryEngine, LossModel, RetryPolicy


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff": -0.1},
            {"base_backoff": float("nan")},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
            {"timeout": 0.0},
            {"timeout": float("inf")},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_retries_enabled(self):
        assert not RetryPolicy(max_attempts=1).retries_enabled
        assert RetryPolicy(max_attempts=2).retries_enabled


class TestBackoff:
    def test_exponential_without_jitter(self):
        p = RetryPolicy(max_attempts=5, base_backoff=0.1, backoff_factor=2.0,
                        jitter=0.0)
        rng = np.random.default_rng(0)
        assert p.backoff(1, rng) == pytest.approx(0.1)
        assert p.backoff(2, rng) == pytest.approx(0.2)
        assert p.backoff(3, rng) == pytest.approx(0.4)

    def test_no_jitter_no_rng_draw(self):
        p = RetryPolicy(max_attempts=2, jitter=0.0)
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        p.backoff(1, rng)
        assert rng.bit_generator.state == before

    def test_jitter_bounded(self):
        p = RetryPolicy(max_attempts=2, base_backoff=1.0, jitter=0.25)
        rng = np.random.default_rng(4)
        for _ in range(100):
            d = p.backoff(1, rng)
            assert 1.0 <= d < 1.25

    def test_attempt_index_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0, np.random.default_rng(0))


def _engine(rate, seed=0, **retry_kwargs):
    return DeliveryEngine(
        loss=LossModel(rate=rate),
        retry=RetryPolicy(**retry_kwargs),
        rng=np.random.default_rng(seed),
    )


class TestDeliveryEngine:
    def test_lossless_is_passthrough(self):
        eng = _engine(0.0, max_attempts=4)
        out = eng.send(9)
        assert out.delivered and out.attempts == 1
        assert out.packets == out.hops == 9
        assert out.retransmitted == 0 and out.latency == 0.0

    def test_zero_hop_message_is_free(self):
        out = _engine(0.5, max_attempts=3).send(0)
        assert out.delivered and out.packets == 0

    def test_retries_bounded_by_max_attempts(self):
        eng = _engine(0.95, max_attempts=3, timeout=1e9, base_backoff=0.0,
                      jitter=0.0)
        for _ in range(50):
            out = eng.send(20)
            assert out.attempts <= 3
            if not out.delivered:
                # Every transmission of an abandoned message is waste.
                assert out.retransmitted == out.packets > 0

    def test_timeout_abandons_before_max_attempts(self):
        # First backoff alone (1.0s+) blows the 0.5s budget, so the
        # engine abandons after a single attempt despite max_attempts=10.
        eng = _engine(0.999, max_attempts=10, base_backoff=1.0, jitter=0.0,
                      timeout=0.5)
        out = eng.send(30)
        assert not out.delivered
        assert out.attempts == 1

    def test_retransmitted_counts_extra_packets_only(self):
        eng = _engine(0.4, seed=2, max_attempts=8, timeout=1e9)
        for _ in range(100):
            out = eng.send(6)
            if out.delivered and out.attempts > 1:
                assert out.retransmitted == out.packets - 6 > 0
                return
        pytest.fail("no multi-attempt delivery observed")

    def test_stats_accumulate(self):
        eng = _engine(0.5, seed=7, max_attempts=2)
        for _ in range(40):
            eng.send(5)
        s = eng.stats
        assert s.messages == 40
        assert s.delivered + s.abandoned == 40
        assert 0.0 < s.delivery_ratio < 1.0
        assert s.packets >= s.retransmitted_packets

    def test_seed_deterministic(self):
        a = [_engine(0.3, seed=5, max_attempts=4).send(7) for _ in range(1)]
        b = [_engine(0.3, seed=5, max_attempts=4).send(7) for _ in range(1)]
        assert a == b
