"""Tests for result persistence."""

import json

import pytest

from repro.analysis import sweep
from repro.persist import (
    SCHEMA_VERSION,
    load_result_dict,
    load_sweep,
    result_to_dict,
    save_result,
    save_sweep,
)
from repro.sim import Scenario, run_scenario


@pytest.fixture(scope="module")
def result():
    return run_scenario(Scenario(n=70, steps=6, warmup=2, speed=1.5, seed=4,
                                 max_levels=2, hop_mode="euclidean"))


class TestResultRoundtrip:
    def test_dict_is_json_safe(self, result):
        d = result_to_dict(result)
        json.dumps(d)  # must not raise
        assert d["schema"] == SCHEMA_VERSION
        assert d["scenario"]["n"] == 70
        assert d["phi"] == result.phi

    def test_save_and_load(self, result, tmp_path):
        p = save_result(result, tmp_path / "runs" / "r1.json")
        assert p.exists()
        loaded = load_result_dict(p)
        assert loaded["gamma"] == result.gamma
        assert loaded["f_k"] == {str(k): v for k, v in result.ledger.f_k().items()}

    def test_stale_schema_rejected(self, result, tmp_path):
        p = save_result(result, tmp_path / "r.json")
        data = json.loads(p.read_text())
        data["schema"] = 99
        p.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema"):
            load_result_dict(p)

    def test_event_rates_serialized(self, result):
        d = result_to_dict(result)
        for key in d["reorg_event_rates"]:
            kind, level = key.split("@")
            assert kind and int(level) >= 1


class TestSweepRoundtrip:
    @pytest.fixture(scope="class")
    def points(self):
        base = Scenario(n=60, steps=4, warmup=1, speed=1.5,
                        hop_mode="euclidean", max_levels=2)
        return sweep([60, 90], base, {"f0": lambda r: r.f0}, seeds=(0,))

    def test_roundtrip(self, points, tmp_path):
        p = save_sweep(points, tmp_path / "sweep.json", meta={"exp": "T1"})
        loaded = load_sweep(p)
        assert [q.n for q in loaded] == [60, 90]
        for a, b in zip(points, loaded):
            assert a.values == b.values
            assert a.stds == b.stds
            assert a.seeds == b.seeds

    def test_meta_preserved(self, points, tmp_path):
        p = save_sweep(points, tmp_path / "s.json", meta={"exp": "T4"})
        assert json.loads(p.read_text())["meta"]["exp"] == "T4"

    def test_stale_schema_rejected(self, points, tmp_path):
        p = save_sweep(points, tmp_path / "s.json")
        data = json.loads(p.read_text())
        data["schema"] = 0
        p.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_sweep(p)
