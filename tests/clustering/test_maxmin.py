"""Tests for max-min d-cluster formation (Amis et al. baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import maxmin_cluster
from repro.geometry import DiscRegion
from repro.graphs import CompactGraph, bfs_distances
from repro.radio import unit_disk_edges


class TestBasics:
    def test_single_node(self):
        r = maxmin_cluster([3], np.empty((0, 2)), d=1)
        assert r.clusterheads.tolist() == [3]
        assert r.head_choice.tolist() == [3]

    def test_pair_d1(self):
        r = maxmin_cluster([1, 2], [[1, 2]], d=1)
        # floodmax: both see 2. floodmin: both see 2.  Node 2 heard its
        # own id -> head; node 1 pairs on {2} -> head 2.
        assert r.clusterheads.tolist() == [2]
        assert r.head_choice.tolist() == [2, 2]

    def test_chain_d2(self):
        ids = [1, 2, 3, 4, 5]
        edges = [[1, 2], [2, 3], [3, 4], [4, 5]]
        r = maxmin_cluster(ids, edges, d=2)
        # Node 5 must be a head (global max); every node within 2 hops of
        # its chosen head.
        assert 5 in r.clusterheads.tolist()
        g = CompactGraph(ids, edges)
        for i, v in enumerate(r.node_ids.tolist()):
            dist = bfs_distances(g, v)
            head_idx = int(np.searchsorted(g.node_ids, r.head_choice[i]))
            assert 0 <= dist[head_idx] <= 2

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            maxmin_cluster([1, 2], [[1, 2]], d=0)

    def test_invalid_edges(self):
        with pytest.raises(ValueError):
            maxmin_cluster([1, 2], [[1, 1]])
        with pytest.raises(ValueError):
            maxmin_cluster([1, 2], [[1, 9]])

    def test_empty_nodes(self):
        with pytest.raises(ValueError):
            maxmin_cluster([], np.empty((0, 2)))

    def test_clusters_partition(self):
        ids = list(range(10))
        edges = [[i, i + 1] for i in range(9)]
        r = maxmin_cluster(ids, edges, d=2)
        clusters = r.clusters()
        members = sorted(int(m) for ms in clusters.values() for m in ms)
        assert members == ids

    def test_round_logs_shape(self):
        r = maxmin_cluster([1, 2, 3], [[1, 2], [2, 3]], d=3)
        assert r.floodmax.shape == (3, 3)
        assert r.floodmin.shape == (3, 3)
        # floodmax values are non-decreasing across rounds.
        assert (np.diff(r.floodmax, axis=1) >= 0).all()
        # floodmin values are non-increasing across rounds.
        assert (np.diff(r.floodmin, axis=1) <= 0).all()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(2, 50),
    d=st.integers(1, 3),
)
def test_maxmin_invariants_property(seed, n, d):
    """Every node's chosen head lies within d hops (or the node is in a
    component whose head is itself); the global max of each connected
    component is always a clusterhead."""
    rng = np.random.default_rng(seed)
    pts = DiscRegion(1.0).sample(n, rng)
    edges = unit_disk_edges(pts, 0.5)
    ids = np.arange(n)
    r = maxmin_cluster(ids, edges, d=d)
    g = CompactGraph(ids, edges)

    for i in range(n):
        dist = bfs_distances(g, i)
        head = int(r.head_choice[i])
        assert dist[head] != -1, "head must be reachable"
        assert dist[head] <= d, f"head {head} is {dist[head]} hops from {i}"

    # Component maxima are heads: the max's floodmax value stays its own
    # id, so rule 1 applies.
    seen = set()
    for i in range(n):
        if i in seen:
            continue
        dist = bfs_distances(g, i)
        comp = [j for j in range(n) if dist[j] >= 0]
        seen.update(comp)
        comp_max = max(comp)
        assert comp_max in r.clusterheads.tolist()
