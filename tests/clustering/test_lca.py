"""Tests for LCA election (Section 2.2 semantics, Fig. 1 cases)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import elect
from repro.geometry import DiscRegion
from repro.radio import unit_disk_edges


class TestBasicElection:
    def test_single_node(self):
        r = elect([5], np.empty((0, 2)))
        assert r.clusterheads.tolist() == [5]
        assert r.head_of(5) == 5
        assert r.state_of(5) == 0

    def test_pair(self):
        r = elect([1, 2], [[1, 2]])
        assert r.clusterheads.tolist() == [2]
        assert r.head_of(1) == 2
        assert r.head_of(2) == 2
        # Node 1 elects 2; 2 also elects itself but self-election is not
        # counted in the ALCA state.
        assert r.state_of(2) == 1
        assert r.state_of(1) == 0

    def test_triangle(self):
        r = elect([1, 2, 3], [[1, 2], [2, 3], [1, 3]])
        assert r.clusterheads.tolist() == [3]
        assert r.state_of(3) == 2

    def test_chain_fig1_style(self):
        """Path 5-9-3-7: 9 is head (max in closed nbhd of 5, 9, 3); 7 is
        elected by 3 even though 7 < 9 — the 'node 68' case of Fig. 1?
        No: 3's closed neighborhood is {9, 3, 7}, max is 9, so 3 elects 9.
        7's closed nbhd is {3, 7} -> 7 elects itself."""
        r = elect([5, 9, 3, 7], [[5, 9], [9, 3], [3, 7]])
        assert r.head_of(5) == 9
        assert r.head_of(3) == 9
        assert r.head_of(9) == 9
        assert r.head_of(7) == 7
        assert set(r.clusterheads.tolist()) == {9, 7}

    def test_elected_by_neighbor_but_not_own_max(self):
        """The Fig. 1 'node 68' case: a node can be a clusterhead while a
        larger node sits in its own neighborhood.

        Topology: 63-68, 68-97.  68's closed nbhd max is 97, so 68 elects
        97 and *belongs* to 97's cluster... but 63's closed nbhd is
        {63, 68}, max 68 -> 63 elects 68.  So 68 is simultaneously a
        clusterhead (of 63's cluster) and affiliated with itself (heads
        anchor their own cluster).
        """
        r = elect([63, 68, 97], [[63, 68], [68, 97]])
        assert set(r.clusterheads.tolist()) == {68, 97}
        assert r.head_of(63) == 68
        assert r.head_of(68) == 68  # heads anchor their own cluster
        assert r.head_of(97) == 97
        assert r.elected_head[r.index_of([68])[0]] == 97  # raw election
        assert r.state_of(68) == 1  # elected by 63 only
        assert r.state_of(97) == 1  # elected by 68

    def test_clusters_partition(self):
        r = elect([63, 68, 97], [[63, 68], [68, 97]])
        clusters = r.clusters()
        assert sorted(clusters) == [68, 97]
        assert clusters[68].tolist() == [63, 68]
        assert clusters[97].tolist() == [97]


class TestValidation:
    def test_empty_nodes(self):
        with pytest.raises(ValueError):
            elect([], np.empty((0, 2)))

    def test_self_loop(self):
        with pytest.raises(ValueError):
            elect([1, 2], [[1, 1]])

    def test_unknown_edge_endpoint(self):
        with pytest.raises(ValueError):
            elect([1, 2], [[1, 3]])

    def test_index_of_unknown(self):
        r = elect([1, 2], [[1, 2]])
        with pytest.raises(KeyError):
            r.index_of([7])

    def test_duplicate_ids_deduped(self):
        r = elect([1, 1, 2], [[1, 2]])
        assert r.node_ids.tolist() == [1, 2]


class TestArbitraryIds:
    def test_noncontiguous_ids(self):
        r = elect([100, 7, 5000], [[100, 7], [100, 5000]])
        assert r.head_of(7) == 100
        # 100 is itself a head (elected by 7), so it anchors its own
        # cluster even though it elected 5000.
        assert r.head_of(100) == 100
        assert r.elected_head[r.index_of([100])[0]] == 5000
        assert r.head_of(5000) == 5000
        assert set(r.clusterheads.tolist()) == {100, 5000}


def _closed_nbhd_max(n_ids, adj, u):
    return max([u] + list(adj[u]))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), n=st.integers(2, 60))
def test_election_invariants_property(seed, n):
    """On random geometric graphs the election must satisfy:

    1. elected_head(u) = max of u's closed neighborhood,
    2. every head is within 1 hop of all its members,
    3. member_of is a partition with heads anchoring their own cluster,
    4. clusterheads = image of elected_head.
    """
    rng = np.random.default_rng(seed)
    pts = DiscRegion(1.0).sample(n, rng)
    edges = unit_disk_edges(pts, 0.4)
    ids = np.arange(n)
    r = elect(ids, edges)

    adj = {int(i): set() for i in ids}
    for a, b in edges.tolist():
        adj[a].add(b)
        adj[b].add(a)

    for u in range(n):
        expected = _closed_nbhd_max(ids, adj, u)
        assert r.elected_head[u] == expected

    assert set(r.clusterheads.tolist()) == set(r.elected_head.tolist())

    clusters = r.clusters()
    all_members = sorted(int(m) for ms in clusters.values() for m in ms)
    assert all_members == list(range(n))
    for head, members in clusters.items():
        assert head in members
        for m in members.tolist():
            assert m == head or head in adj[m]

    # State = number of neighbors electing the node.
    for v in range(n):
        count = sum(1 for u in adj[v] if r.elected_head[u] == v)
        assert r.elector_count[v] == count
