"""Tests for event-driven ALCA maintenance (LCC hysteresis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import AlcaMaintainer, elect
from repro.geometry import DiscRegion
from repro.radio import unit_disk_edges


def E(pairs):
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


def check_valid_clustering(snapshot, edges):
    """Every member must be adjacent to its head; heads anchor self."""
    adj = {int(v): set() for v in snapshot.node_ids}
    for a, b in np.asarray(edges).reshape(-1, 2).tolist():
        adj[a].add(b)
        adj[b].add(a)
    for i, v in enumerate(snapshot.node_ids.tolist()):
        h = int(snapshot.member_of[i])
        assert h == v or h in adj[v], f"{v} not adjacent to head {h}"
    for h in snapshot.clusterheads.tolist():
        j = int(np.searchsorted(snapshot.node_ids, h))
        assert snapshot.member_of[j] == h, "head must anchor its own cluster"


class TestFirstUpdate:
    def test_matches_lca_on_fresh_state(self):
        """With no prior state, maintenance elects like the one-shot LCA
        in simple topologies."""
        m = AlcaMaintainer()
        snap = m.update([1, 2, 3], E([[1, 2], [2, 3]]))
        check_valid_clustering(snap, E([[1, 2], [2, 3]]))
        assert 3 in snap.clusterheads.tolist()

    def test_single_node(self):
        m = AlcaMaintainer()
        snap = m.update([7], np.empty((0, 2), dtype=np.int64))
        assert snap.clusterheads.tolist() == [7]

    def test_validation(self):
        m = AlcaMaintainer()
        with pytest.raises(ValueError):
            m.update([], np.empty((0, 2)))
        with pytest.raises(ValueError):
            m.update([1, 2], E([[1, 1]]))
        with pytest.raises(ValueError):
            m.update([1, 2], E([[1, 9]]))


class TestStickiness:
    def test_member_keeps_head_in_range(self):
        """The hysteresis property: a valid affiliation never changes,
        even if a larger node enters the neighborhood."""
        m = AlcaMaintainer()
        m.update([1, 5], E([[1, 5]]))  # 1 joins head 5
        assert m.head_map[1] == 5
        # Node 9 appears adjacent to 1 — memoryless LCA would re-elect 9.
        snap = m.update([1, 5, 9], E([[1, 5], [1, 9]]))
        assert m.head_map[1] == 5  # sticky: 5 still in range and a head
        check_valid_clustering(snap, E([[1, 5], [1, 9]]))

    def test_forced_reelection_on_head_loss(self):
        m = AlcaMaintainer()
        m.update([1, 5], E([[1, 5]]))
        # Link 1-5 breaks; 1 is alone -> becomes own head.
        snap = m.update([1, 5], np.empty((0, 2), dtype=np.int64))
        assert m.head_map[1] == 1
        check_valid_clustering(snap, np.empty((0, 2)))

    def test_joins_existing_head_first(self):
        m = AlcaMaintainer()
        m.update([1, 5, 9], E([[1, 5], [9, 5]]))  # both join 5? 9>5...
        # Whatever the initial state, move 1 next to an existing head and
        # break its current link: it must join that head, not elect anew.
        m2 = AlcaMaintainer()
        m2.update([1, 2, 9], E([[1, 2], [2, 9]]))
        # initial: 2 joins 9; 1's closed nbhd {1,2}: if no head in range,
        # promotes 2? 2 is not a head (member of 9)... fresh election
        # promotes max(1,2)=2, but rule 2 prefers in-range heads (none).
        heads = {v for v, h in m2.head_map.items() if v == h}
        assert heads  # some valid head structure exists
        snap = m2.update([1, 2, 9], E([[1, 9], [2, 9]]))
        assert m2.head_map[1] == 9 or m2.head_map[1] in heads
        check_valid_clustering(snap, E([[1, 9], [2, 9]]))

    def test_head_contention_lower_abdicates_when_covered(self):
        m = AlcaMaintainer()
        m.update([1, 5, 2, 9], E([[1, 5], [2, 9]]))  # heads 5 and 9
        assert m.head_map[5] == 5 and m.head_map[9] == 9
        # Heads meet AND 5's member can reach 9: 5 must abdicate.
        edges = E([[1, 5], [2, 9], [5, 9], [1, 9]])
        snap = m.update([1, 5, 2, 9], edges)
        assert m.head_map[9] == 9
        assert m.head_map[5] == 9
        assert m.head_map[1] == 9
        check_valid_clustering(snap, edges)

    def test_head_contention_kept_when_member_uncovered(self):
        """Least-cluster-change: a head whose member has no alternative
        coverage keeps its role even next to a bigger head."""
        m = AlcaMaintainer()
        m.update([1, 5, 2, 9], E([[1, 5], [2, 9]]))
        edges = E([[1, 5], [2, 9], [5, 9]])  # 1 can only reach 5
        snap = m.update([1, 5, 2, 9], edges)
        assert m.head_map[5] == 5
        assert m.head_map[1] == 5
        check_valid_clustering(snap, edges)

    def test_node_churn_tolerated(self):
        m = AlcaMaintainer()
        m.update([1, 5], E([[1, 5]]))
        snap = m.update([5, 9], E([[5, 9]]))  # 1 left, 9 arrived
        assert set(snap.node_ids.tolist()) == {5, 9}
        check_valid_clustering(snap, E([[5, 9]]))


class TestStabilityVsMemoryless:
    def test_fewer_head_changes_under_jitter(self):
        """Small positional jitter should flip far fewer heads under
        sticky maintenance than under per-snapshot re-election."""
        rng = np.random.default_rng(0)
        region = DiscRegion(60.0)
        pts = region.sample(150, rng)
        maintainer = AlcaMaintainer()
        sticky_changes = memoryless_changes = 0
        prev_sticky = prev_memoryless = None
        for _ in range(20):
            pts = region.clamp(pts + rng.normal(scale=0.8, size=pts.shape))
            edges = unit_disk_edges(pts, 12.0)
            snap_s = maintainer.update(np.arange(150), edges)
            snap_m = elect(np.arange(150), edges)
            heads_s = set(snap_s.clusterheads.tolist())
            heads_m = set(snap_m.clusterheads.tolist())
            if prev_sticky is not None:
                sticky_changes += len(heads_s ^ prev_sticky)
                memoryless_changes += len(heads_m ^ prev_memoryless)
            prev_sticky, prev_memoryless = heads_s, heads_m
        assert sticky_changes < memoryless_changes


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_maintenance_invariants_property(seed):
    """Across random mobile sequences the clustering stays valid."""
    rng = np.random.default_rng(seed)
    region = DiscRegion(30.0)
    pts = region.sample(40, rng)
    m = AlcaMaintainer()
    for _ in range(6):
        pts = region.clamp(pts + rng.normal(scale=2.0, size=pts.shape))
        edges = unit_disk_edges(pts, 12.0)
        snap = m.update(np.arange(40), edges)
        check_valid_clustering(snap, edges)
        # Partition covers all nodes.
        members = sorted(
            int(x) for ms in snap.clusters().values() for x in ms
        )
        assert members == list(range(40))
