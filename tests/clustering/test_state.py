"""Tests for the ALCA state machine tracker and Eq. (15)-(21) quantities."""

import numpy as np
import pytest

from repro.clustering import StateTracker, elect, recursion_quantities


def snapshot(ids, edges):
    return elect(ids, np.asarray(edges).reshape(-1, 2))


class TestStateTracker:
    def test_requires_observations(self):
        with pytest.raises(ValueError):
            StateTracker().stats()

    def test_occupancy_single_snapshot(self):
        t = StateTracker()
        # Pair 1-2: node 2 in state 1, node 1 in state 0.
        t.observe(snapshot([1, 2], [[1, 2]]))
        s = t.stats()
        assert s.occupancy[0] == pytest.approx(0.5)
        assert s.occupancy[1] == pytest.approx(0.5)
        assert s.p_state1 == pytest.approx(0.5)
        assert s.samples == 2

    def test_transition_detection(self):
        t = StateTracker()
        # Step 1: 1-9 linked; state(9) = 1.
        t.observe(snapshot([1, 2, 9], [[1, 9]]))
        # Step 2: both 1 and 2 elect 9; state(9) = 2 (one +1 transition).
        t.observe(snapshot([1, 2, 9], [[1, 9], [2, 9]]))
        s = t.stats()
        assert s.transition_histogram.get(1, 0) >= 1

    def test_critical_crossing_counted(self):
        t = StateTracker()
        t.observe(snapshot([1, 2, 3], [[1, 3]]))  # 2 isolated: state(3)=1
        t.observe(snapshot([1, 2, 3], [[1, 2]]))  # now 3 isolated: 3 drops to 0
        s = t.stats()
        # 3 crossed 1 -> 0 and 2 crossed 0 -> 1.
        assert s.critical_crossings == 2

    def test_node_churn_tolerated(self):
        t = StateTracker()
        t.observe(snapshot([1, 2], [[1, 2]]))
        t.observe(snapshot([2, 3], [[2, 3]]))  # node 1 left, node 3 joined
        s = t.stats()
        assert s.samples == 4

    def test_series_recording(self):
        t = StateTracker(record_series=True)
        t.observe(snapshot([1, 2], [[1, 2]]))
        t.observe(snapshot([1, 2], [[1, 2]]))
        assert len(t.series) == 2

    def test_p_state1_heads(self):
        t = StateTracker()
        # Star 1,2,3 -> 9: state(9) = 3; others 0.
        t.observe(snapshot([1, 2, 3, 9], [[1, 9], [2, 9], [3, 9]]))
        s = t.stats()
        assert s.p_state1_heads == 0.0  # the only head is in state 3
        assert s.occupancy[3] == pytest.approx(0.25)


class TestRecursionQuantities:
    def test_uniform_p(self):
        """With p_j = p for all j, Eq. (15a) gives q_1 = (1-p)*p and
        Q = sum; the q1/Q lower bound must hold."""
        p = 0.3
        k = 5
        rq = recursion_quantities([p] * k, k)
        assert rq.p == pytest.approx(p)
        assert rq.q[0] == pytest.approx((1 - p) * p)
        # q_{k-1} has no (1-p) factor.
        assert rq.q[-1] == pytest.approx(p ** (k - 1))
        assert rq.Q <= rq.P + 1e-12  # Eq. (21a): P >= Q
        assert rq.q1_over_Q >= rq.q1_over_Q_lower_bound - 1e-12  # Eq. (21b)

    def test_k2_single_stage(self):
        rq = recursion_quantities([0.5, 0.4], 2)
        # k=2: only j=1 = k-1 -> q_1 = p_{k-1} = p_1 with no (1-p) factor.
        assert rq.q.shape == (1,)
        assert rq.q[0] == pytest.approx(0.4)
        assert rq.Q == pytest.approx(0.4)

    def test_q_sums_to_valid_probability_mass(self):
        rq = recursion_quantities([0.2, 0.5, 0.3, 0.4, 0.25], 5)
        assert 0 <= rq.Q <= 1 + 1e-12
        assert (rq.q >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            recursion_quantities([0.5, 0.5], 1)
        with pytest.raises(ValueError):
            recursion_quantities([0.5], 2)
        with pytest.raises(ValueError):
            recursion_quantities([0.5, 1.5], 2)

    def test_eq22_positive_q1(self):
        """Eq. (22): q_1 bounded away from 0 when the p_j are moderate."""
        for k in range(2, 8):
            rq = recursion_quantities([0.35] * k, k)
            assert rq.q[0] > 0.2  # (1-0.35)*0.35 = 0.2275 for k > 2
