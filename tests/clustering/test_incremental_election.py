"""Fuzz harness for the incremental LCA election.

The contract under test is absolute: after *any* sequence of link-event
batches, :meth:`IncrementalElection.snapshot` must be bit-identical —
every field — to a from-scratch :func:`elect` on the current edge set.
The churn generator mixes random add/remove bursts with the two fault
shapes the simulator's chaos engine produces: **crashes** (one node
loses every incident link at once) and **partitions** (every edge
crossing a geometric cut goes down, then heals).
"""

import numpy as np
import pytest

from repro.clustering import IncrementalElection, elect


def _edge_array(edge_set):
    if not edge_set:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(edge_set), dtype=np.int64)


def _assert_matches_oracle(inc, edge_set, node_ids):
    snap = inc.snapshot()
    ref = elect(node_ids, _edge_array(edge_set))
    assert np.array_equal(snap.node_ids, ref.node_ids)
    assert np.array_equal(snap.elected_head, ref.elected_head)
    assert np.array_equal(snap.member_of, ref.member_of)
    assert np.array_equal(snap.elector_count, ref.elector_count)
    assert np.array_equal(snap.clusterheads, ref.clusterheads)


def _random_batch(rng, edge_set, node_ids, size):
    """Random ups/downs: removals from the live set, additions of fresh
    pairs (never overlapping, as a LinkDiff never reports both)."""
    n_down = min(int(rng.integers(0, size + 1)), len(edge_set))
    downs = []
    if n_down:
        live = sorted(edge_set)
        pick = rng.choice(len(live), size=n_down, replace=False)
        downs = [live[i] for i in pick]
        edge_set.difference_update(downs)
    ups = set()
    for _ in range(int(rng.integers(0, size + 1))):
        u, v = rng.choice(node_ids, size=2, replace=False)
        e = (min(int(u), int(v)), max(int(u), int(v)))
        if e not in edge_set:
            ups.add(e)
    edge_set.update(ups)
    return np.array(sorted(ups) or [], dtype=np.int64).reshape(-1, 2), \
        np.array(sorted(downs) or [], dtype=np.int64).reshape(-1, 2)


class TestRandomChurn:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_over_churn(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 60))
        node_ids = np.arange(n, dtype=np.int64)
        edge_set = set()
        for _ in range(n):
            u, v = rng.choice(node_ids, size=2, replace=False)
            edge_set.add((min(int(u), int(v)), max(int(u), int(v))))
        inc = IncrementalElection(node_ids, _edge_array(edge_set))
        _assert_matches_oracle(inc, edge_set, node_ids)
        for _ in range(25):
            ups, downs = _random_batch(rng, edge_set, node_ids, size=6)
            inc.apply(ups, downs)
            _assert_matches_oracle(inc, edge_set, node_ids)

    def test_sparse_ids_and_empty_batches(self):
        """Non-contiguous IDs (upper hierarchy levels) and no-op events."""
        node_ids = np.array([3, 17, 42, 99, 1000], dtype=np.int64)
        edge_set = {(3, 42), (17, 99)}
        inc = IncrementalElection(node_ids, _edge_array(edge_set))
        inc.apply(np.empty((0, 2), dtype=np.int64),
                  np.empty((0, 2), dtype=np.int64))
        _assert_matches_oracle(inc, edge_set, node_ids)
        inc.apply(np.array([[42, 1000]]), np.array([[3, 42]]))
        edge_set.discard((3, 42))
        edge_set.add((42, 1000))
        _assert_matches_oracle(inc, edge_set, node_ids)


class TestFaultBursts:
    def test_crash_burst(self):
        """A crash removes every incident link of a node in one batch."""
        rng = np.random.default_rng(11)
        n = 40
        node_ids = np.arange(n, dtype=np.int64)
        edge_set = set()
        for _ in range(3 * n):
            u, v = rng.choice(node_ids, size=2, replace=False)
            edge_set.add((min(int(u), int(v)), max(int(u), int(v))))
        inc = IncrementalElection(node_ids, _edge_array(edge_set))
        for victim in (n - 1, 0, 17):  # includes the globally max ID
            downs = [e for e in edge_set if victim in e]
            edge_set.difference_update(downs)
            inc.apply(np.empty((0, 2), dtype=np.int64),
                      np.array(sorted(downs), dtype=np.int64).reshape(-1, 2))
            _assert_matches_oracle(inc, edge_set, node_ids)

    def test_partition_and_heal(self):
        """Sever every cut-crossing edge at once, then restore them."""
        rng = np.random.default_rng(5)
        n = 50
        node_ids = np.arange(n, dtype=np.int64)
        edge_set = set()
        for _ in range(4 * n):
            u, v = rng.choice(node_ids, size=2, replace=False)
            edge_set.add((min(int(u), int(v)), max(int(u), int(v))))
        inc = IncrementalElection(node_ids, _edge_array(edge_set))
        cut = [e for e in edge_set if (e[0] < n // 2) != (e[1] < n // 2)]
        assert cut  # the partition must actually sever something
        downs = np.array(sorted(cut), dtype=np.int64)
        edge_set.difference_update(cut)
        inc.apply(np.empty((0, 2), dtype=np.int64), downs)
        _assert_matches_oracle(inc, edge_set, node_ids)
        edge_set.update(cut)
        inc.apply(downs, np.empty((0, 2), dtype=np.int64))
        _assert_matches_oracle(inc, edge_set, node_ids)


class TestSnapshotSafety:
    def test_snapshots_are_independent(self):
        """Consecutive snapshots must be diffable: later apply() calls
        may not mutate an earlier snapshot's arrays."""
        node_ids = np.arange(10, dtype=np.int64)
        edges = np.array([[0, 1], [2, 3], [4, 9]], dtype=np.int64)
        inc = IncrementalElection(node_ids, edges)
        before = inc.snapshot()
        frozen = (before.elected_head.copy(), before.member_of.copy(),
                  before.elector_count.copy(), before.clusterheads.copy())
        inc.apply(np.array([[1, 9], [5, 6]]), np.array([[4, 9]]))
        assert np.array_equal(before.elected_head, frozen[0])
        assert np.array_equal(before.member_of, frozen[1])
        assert np.array_equal(before.elector_count, frozen[2])
        assert np.array_equal(before.clusterheads, frozen[3])

    def test_edgeless_graph(self):
        node_ids = np.arange(6, dtype=np.int64)
        inc = IncrementalElection(node_ids, np.empty((0, 2), dtype=np.int64))
        _assert_matches_oracle(inc, set(), node_ids)
