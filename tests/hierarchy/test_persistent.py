"""Tests for cluster-identity persistence (EXP-A5 substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DiscRegion, disc_for_density
from repro.hierarchy import (
    PersistentHierarchyMaintainer,
    PersistentLevelMaintainer,
)
from repro.radio import radius_for_degree, unit_disk_edges

DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


def E(pairs):
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


class TestLevelMaintainer:
    def test_formation(self):
        m = PersistentLevelMaintainer(cid_start=1000)
        snap = m.update([1, 2, 3], E([[1, 2], [2, 3]]))
        # Everyone belongs to some cluster; cids in the allocated range.
        assert (snap.member_of >= 1000).all()
        members = sorted(x for ms in snap.clusters().values() for x in ms)
        assert members == [1, 2, 3]

    def test_cid_survives_head_handover(self):
        """THE property: the head leaves the level, the cid persists."""
        m = PersistentLevelMaintainer(cid_start=1000)
        m.update([1, 2, 9], E([[1, 9], [2, 9], [1, 2]]))
        cid_before = m._m2c[1]
        assert m._m2c[2] == cid_before and m._m2c[9] == cid_before
        # Node 9 (whatever role it has) leaves the level entirely.
        m.update([1, 2], E([[1, 2]]))
        assert m._m2c[1] == cid_before
        assert m._m2c[2] == cid_before
        # A member took over the head role.
        assert m._head[cid_before] in (1, 2)

    def test_cluster_death_on_empty(self):
        m = PersistentLevelMaintainer(cid_start=1000)
        m.update([1], np.empty((0, 2), dtype=np.int64))
        cid = m._m2c[1]
        # Node 1 leaves; new node 2 arrives isolated: old cid must die.
        m.update([2], np.empty((0, 2), dtype=np.int64))
        assert cid not in m._head
        assert m._m2c[2] != cid

    def test_member_rehomes_to_senior_cluster(self):
        m = PersistentLevelMaintainer(cid_start=1000)
        # Two separate clusters.
        m.update([1, 5, 2, 9], E([[1, 5], [2, 9]]))
        cid_a = m._m2c[5]
        cid_b = m._m2c[9]
        senior = min(cid_a, cid_b)
        # 1 loses its head, lands next to the other head.
        if m._head[cid_a] == 5:
            snap = m.update([1, 5, 2, 9], E([[2, 9], [1, 9]]))
            assert m._m2c[1] in (cid_b, cid_a)
        # Whatever the topology details, every member has a live cluster.
        for v, c in m._m2c.items():
            assert c in m._head

    def test_merge_retires_younger_cid(self):
        m = PersistentLevelMaintainer(cid_start=1000)
        m.update([5], np.empty((0, 2), dtype=np.int64))
        old_cid = m._m2c[5]
        m.update([5, 9], np.empty((0, 2), dtype=np.int64))
        young_cid = m._m2c[9]
        assert young_cid > old_cid
        # Heads meet: the younger cluster dissolves into the senior one.
        m.update([5, 9], E([[5, 9]]))
        assert m._m2c[9] == old_cid
        assert young_cid not in m._head

    def test_validation(self):
        m = PersistentLevelMaintainer(cid_start=1000)
        with pytest.raises(ValueError):
            m.update([], np.empty((0, 2)))
        with pytest.raises(ValueError):
            m.update([1, 2], E([[1, 1]]))
        with pytest.raises(ValueError):
            m.update([1, 2], E([[1, 7]]))


class TestHierarchyMaintainer:
    def test_requires_r0(self):
        with pytest.raises(ValueError):
            PersistentHierarchyMaintainer(r0=None)

    def test_node_ids_must_be_below_block(self):
        m = PersistentHierarchyMaintainer(max_levels=2, r0=R_TX)
        big = PersistentHierarchyMaintainer.CID_BLOCK + 1
        with pytest.raises(ValueError):
            m.update([1, big], E([[1, big]]), positions=np.zeros((2, 2)))

    def test_produces_consistent_hierarchy(self):
        n = 120
        region = disc_for_density(n, DENSITY)
        rng = np.random.default_rng(0)
        pts = region.sample(n, rng)
        m = PersistentHierarchyMaintainer(max_levels=3, r0=R_TX)
        edges = unit_disk_edges(pts, R_TX)
        h = m.update(np.arange(n), edges, positions=pts)
        assert h.num_levels >= 1
        # Refinement invariant.
        for k in range(h.num_levels):
            a_k, a_k1 = h.ancestry(k), h.ancestry(k + 1)
            for cid in np.unique(a_k)[:10]:
                assert np.unique(a_k1[a_k == cid]).size == 1
        # Addresses terminate in the node itself.
        assert h.address(7)[-1] == 7

    def test_identity_stability_vs_head_naming(self):
        """Level-1 identities flip far less often than under memoryless
        head naming on the same jittered trajectory."""
        from repro.hierarchy import build_hierarchy

        n = 150
        region = disc_for_density(n, DENSITY)
        rng = np.random.default_rng(1)
        pts = region.sample(n, rng)
        m = PersistentHierarchyMaintainer(max_levels=3, r0=R_TX)
        flips_persistent = flips_named = 0
        prev_p = prev_n = None
        for _ in range(15):
            pts = region.clamp(pts + rng.normal(scale=0.8, size=pts.shape))
            edges = unit_disk_edges(pts, R_TX)
            hp = m.update(np.arange(n), edges, positions=pts)
            hn = build_hierarchy(np.arange(n), edges, max_levels=3,
                                 level_mode="radio", positions=pts, r0=R_TX)
            ids_p = set(np.unique(hp.ancestry(2)).tolist())
            ids_n = set(np.unique(hn.ancestry(2)).tolist())
            if prev_p is not None:
                flips_persistent += len(ids_p ^ prev_p)
                flips_named += len(ids_n ^ prev_n)
            prev_p, prev_n = ids_p, ids_n
        assert flips_persistent < flips_named

    def test_lm_stack_runs_on_persistent_ids(self):
        """full_assignment / handoff work unchanged on cid hierarchies."""
        from repro.core import HandoffEngine, full_assignment, lm_levels

        n = 100
        region = disc_for_density(n, DENSITY)
        rng = np.random.default_rng(2)
        pts = region.sample(n, rng)
        m = PersistentHierarchyMaintainer(max_levels=3, r0=R_TX)
        engine = HandoffEngine()

        def hop(u, v):
            return 0 if u == v else 1

        for _ in range(4):
            pts = region.clamp(pts + rng.normal(scale=1.0, size=pts.shape))
            edges = unit_disk_edges(pts, R_TX)
            h = m.update(np.arange(n), edges, positions=pts)
            a = full_assignment(h)
            # Servers are physical nodes, never cids.
            assert all(0 <= srv < n for srv in a.servers.values())
            assert len(a.servers) == n * (lm_levels(h) - 1)
            engine.observe(h, hop)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_persistent_partition_property(seed):
    """Across random mobile sequences, the level maintainer keeps a
    valid partition: every id belongs to a live cluster whose head is in
    the id's closed neighborhood."""
    rng = np.random.default_rng(seed)
    region = DiscRegion(30.0)
    pts = region.sample(40, rng)
    m = PersistentLevelMaintainer(cid_start=10_000)
    for _ in range(6):
        pts = region.clamp(pts + rng.normal(scale=2.0, size=pts.shape))
        edges = unit_disk_edges(pts, 12.0)
        snap = m.update(np.arange(40), edges)
        adj = {v: set() for v in range(40)}
        for a, b in edges.tolist():
            adj[a].add(b)
            adj[b].add(a)
        for v in range(40):
            cid = m._m2c[v]
            assert cid in m._head
            h = m._head[cid]
            assert h == v or h in adj[v]
        members = sorted(x for ms in snap.clusters().values() for x in ms)
        assert members == list(range(40))
