"""Tests for recursive hierarchy construction (Fig. 1 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import DiscRegion, disc_for_density
from repro.hierarchy import build_hierarchy, canonical_edges, contract_edges
from repro.radio import radius_for_degree, unit_disk_edges


class TestCanonicalEdges:
    def test_dedup_and_sort(self):
        e = canonical_edges([[2, 1], [1, 2], [3, 1], [4, 4]])
        assert e.tolist() == [[1, 2], [1, 3]]

    def test_empty(self):
        assert canonical_edges(np.empty((0, 2))).shape == (0, 2)


class TestContractEdges:
    def test_basic_contraction(self):
        # Nodes 1..4; clusters {1,2}->2 and {3,4}->4; edge 2-3 crosses.
        node_ids = np.array([1, 2, 3, 4])
        member_of = np.array([2, 2, 4, 4])
        e = contract_edges([[1, 2], [2, 3], [3, 4]], node_ids, member_of)
        assert e.tolist() == [[2, 4]]

    def test_all_internal(self):
        node_ids = np.array([1, 2])
        member_of = np.array([2, 2])
        e = contract_edges([[1, 2]], node_ids, member_of)
        assert e.shape == (0, 2)

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError):
            contract_edges([[1, 5]], np.array([1, 2]), np.array([2, 2]))


class TestBuildHierarchy:
    def test_single_node(self):
        h = build_hierarchy([7], np.empty((0, 2)))
        assert h.num_levels == 0
        assert h.level_sizes() == [1]
        assert h.address(7) == (7,)

    def test_pair_two_levels(self):
        h = build_hierarchy([1, 2], [[1, 2]])
        assert h.num_levels == 1
        assert h.level_sizes() == [2, 1]
        assert h.cluster_of(1, 1) == 2
        assert h.address(1) == (2, 1)
        assert h.address(2) == (2, 2)

    def test_level_sizes_strictly_decrease(self):
        rng = np.random.default_rng(0)
        pts = DiscRegion(10.0).sample(200, rng)
        edges = unit_disk_edges(pts, 1.5)
        h = build_hierarchy(np.arange(200), edges)
        sizes = h.level_sizes()
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_max_levels_cap(self):
        rng = np.random.default_rng(1)
        pts = DiscRegion(10.0).sample(300, rng)
        edges = unit_disk_edges(pts, 1.2)
        h = build_hierarchy(np.arange(300), edges, max_levels=2)
        assert h.num_levels <= 2

    def test_three_level_hierarchy_like_fig1(self):
        """A dense-enough 100-node network should produce >= 2 levels,
        with every address consistent with cluster_of."""
        density = 0.02
        region = disc_for_density(100, density)
        rng = np.random.default_rng(7)
        pts = region.sample(100, rng)
        edges = unit_disk_edges(pts, radius_for_degree(9.0, density))
        h = build_hierarchy(np.arange(100), edges)
        assert h.num_levels >= 2
        for v in range(0, 100, 7):
            addr = h.address(v)
            assert addr[-1] == v
            for k in range(h.num_levels + 1):
                assert addr[h.num_levels - k] == h.cluster_of(v, k)

    def test_ancestry_vectorized_matches_scalar(self):
        rng = np.random.default_rng(3)
        pts = DiscRegion(8.0).sample(60, rng)
        edges = unit_disk_edges(pts, 2.0)
        h = build_hierarchy(np.arange(60), edges)
        for k in range(h.num_levels + 1):
            anc = h.ancestry(k)
            for v in range(0, 60, 11):
                assert anc[v] == h.cluster_of(v, k)

    def test_members0_roundtrip(self):
        rng = np.random.default_rng(4)
        pts = DiscRegion(8.0).sample(80, rng)
        edges = unit_disk_edges(pts, 2.0)
        h = build_hierarchy(np.arange(80), edges)
        k = h.num_levels
        total = 0
        for cid in np.unique(h.ancestry(k)):
            members = h.members0(k, int(cid))
            total += members.size
            assert all(h.cluster_of(int(m), k) == cid for m in members[:5])
        assert total == 80

    def test_highest_level_of(self):
        h = build_hierarchy([1, 2, 3], [[1, 2], [2, 3]])
        # 3 is the unique head -> appears at every level.
        assert h.highest_level_of(3) == h.num_levels
        assert h.highest_level_of(1) == 0

    def test_clusters_view(self):
        h = build_hierarchy([1, 2, 3], [[1, 2], [2, 3]])
        clusters = h.clusters(1)
        assert 3 in clusters
        members = sorted(int(x) for ms in clusters.values() for x in ms)
        assert members == [1, 2, 3]

    def test_bad_level_queries(self):
        h = build_hierarchy([1, 2], [[1, 2]])
        with pytest.raises(ValueError):
            h.cluster_of(1, 5)
        with pytest.raises(ValueError):
            h.clusters(0)
        with pytest.raises(KeyError):
            h.address(99)

    def test_maxmin_algorithm(self):
        rng = np.random.default_rng(5)
        pts = DiscRegion(8.0).sample(100, rng)
        edges = unit_disk_edges(pts, 2.0)
        h = build_hierarchy(np.arange(100), edges, algorithm="maxmin", maxmin_d=2)
        assert h.num_levels >= 1
        sizes = h.level_sizes()
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            build_hierarchy([1, 2], [[1, 2]], algorithm="kmeans")

    def test_disconnected_components(self):
        h = build_hierarchy([1, 2, 10, 11], [[1, 2], [10, 11]])
        assert h.cluster_of(1, 1) == 2
        assert h.cluster_of(10, 1) == 11
        # Top level: two isolated heads, no further aggregation.
        assert h.levels[-1].n_edges == 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), n=st.integers(2, 80))
def test_hierarchy_invariants_property(seed, n):
    """Partition, containment, and nesting invariants on random graphs."""
    rng = np.random.default_rng(seed)
    pts = DiscRegion(1.0).sample(n, rng)
    edges = unit_disk_edges(pts, 0.35)
    h = build_hierarchy(np.arange(n), edges)

    sizes = h.level_sizes()
    assert sizes[0] == n
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    # Nesting: V_{k+1} subset of V_k.
    for k in range(h.num_levels):
        upper = set(h.levels[k + 1].node_ids.tolist())
        lower = set(h.levels[k].node_ids.tolist())
        assert upper <= lower

    # Ancestry refinement: same level-k cluster implies same level-(k+1)
    # cluster.
    for k in range(h.num_levels):
        a_k = h.ancestry(k)
        a_k1 = h.ancestry(k + 1)
        for cid in np.unique(a_k):
            ups = np.unique(a_k1[a_k == cid])
            assert ups.size == 1

    # Every node's top ancestor is a top-level node.
    top_ids = set(h.levels[-1].node_ids.tolist())
    assert set(np.unique(h.ancestry(h.num_levels)).tolist()) <= top_ids
