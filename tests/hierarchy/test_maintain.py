"""Tests for stateful hierarchy maintenance (sticky elections)."""

import numpy as np
import pytest

from repro.geometry import DiscRegion, disc_for_density
from repro.hierarchy import HierarchyMaintainer, build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges


DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchyMaintainer(level_mode="quantum")
        with pytest.raises(ValueError):
            HierarchyMaintainer(level_mode="radio", r0=None)

    def test_radio_requires_positions(self):
        m = HierarchyMaintainer(level_mode="radio", r0=R_TX)
        with pytest.raises(ValueError):
            m.update([1, 2], [[1, 2]], positions=None)

    def test_positions_alignment(self):
        m = HierarchyMaintainer(level_mode="radio", r0=R_TX)
        with pytest.raises(ValueError):
            m.update([1, 2], [[1, 2]], positions=np.zeros((3, 2)))


class TestSnapshots:
    @pytest.fixture
    def deployment(self):
        n = 150
        region = disc_for_density(n, DENSITY)
        rng = np.random.default_rng(0)
        pts = region.sample(n, rng)
        return n, region, rng, pts

    def test_produces_valid_hierarchy(self, deployment):
        n, region, rng, pts = deployment
        m = HierarchyMaintainer(max_levels=3, level_mode="radio", r0=R_TX)
        edges = unit_disk_edges(pts, R_TX)
        h = m.update(np.arange(n), edges, positions=pts)
        assert h.num_levels >= 1
        sizes = h.level_sizes()
        assert sizes[0] == n
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        # Ancestry refinement holds.
        for k in range(h.num_levels):
            a_k = h.ancestry(k)
            a_k1 = h.ancestry(k + 1)
            for cid in np.unique(a_k)[:10]:
                assert np.unique(a_k1[a_k == cid]).size == 1

    def test_stability_across_small_motion(self, deployment):
        """Under jitter, sticky maintenance changes fewer level-1
        clusterheads than from-scratch rebuilding."""
        n, region, rng, pts = deployment
        m = HierarchyMaintainer(max_levels=3, level_mode="radio", r0=R_TX)
        sticky_flips = scratch_flips = 0
        prev_s = prev_b = None
        for _ in range(15):
            pts = region.clamp(pts + rng.normal(scale=0.5, size=pts.shape))
            edges = unit_disk_edges(pts, R_TX)
            hs = m.update(np.arange(n), edges, positions=pts)
            hb = build_hierarchy(np.arange(n), edges, max_levels=3,
                                 level_mode="radio", positions=pts, r0=R_TX)
            heads_s = set(hs.levels[1].node_ids.tolist())
            heads_b = set(hb.levels[1].node_ids.tolist())
            if prev_s is not None:
                sticky_flips += len(heads_s ^ prev_s)
                scratch_flips += len(heads_b ^ prev_b)
            prev_s, prev_b = heads_s, heads_b
        assert sticky_flips < scratch_flips

    def test_contraction_mode(self, deployment):
        n, region, rng, pts = deployment
        m = HierarchyMaintainer(max_levels=2, level_mode="contraction")
        edges = unit_disk_edges(pts, R_TX)
        h = m.update(np.arange(n), edges)
        assert h.num_levels >= 1

    def test_static_topology_fixed_point(self, deployment):
        """On a static topology the maintenance converges: the first
        update seeds pure-LCA heads, the second applies LCC contention
        pruning (adjacent heads merge), and from then on nothing changes
        — like a real asynchronous protocol stabilizing."""
        n, region, rng, pts = deployment
        m = HierarchyMaintainer(max_levels=3, level_mode="radio", r0=R_TX)
        edges = unit_disk_edges(pts, R_TX)
        m.update(np.arange(n), edges, positions=pts)
        h2 = m.update(np.arange(n), edges, positions=pts)
        h3 = m.update(np.arange(n), edges, positions=pts)
        assert h2.num_levels == h3.num_levels
        for k in range(h2.num_levels + 1):
            assert np.array_equal(h2.ancestry(k), h3.ancestry(k))
