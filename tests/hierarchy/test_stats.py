"""Tests for hierarchy statistics (Eqs. 1-3 bookkeeping and h_k)."""

import numpy as np
import pytest

from repro.clustering import aggregation_factors, arity, cluster_size_stats
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import (
    build_hierarchy,
    hierarchy_stats,
    level_hop_counts,
    mean_hop_count,
)
from repro.radio import radius_for_degree, unit_disk_edges


def make(n, seed=0, density=0.02, degree=9.0):
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    edges = unit_disk_edges(pts, radius_for_degree(degree, density))
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges)
    return g, h


class TestClusterMetrics:
    def test_cluster_size_stats(self):
        stats = cluster_size_stats({1: np.array([1, 2, 3]), 9: np.array([9])})
        assert stats.n_nodes == 4
        assert stats.n_clusters == 2
        assert stats.mean_size == pytest.approx(2.0)
        assert stats.max_size == 3
        assert stats.min_size == 1
        assert stats.arity == pytest.approx(2.0)

    def test_empty_partition(self):
        with pytest.raises(ValueError):
            cluster_size_stats({})

    def test_arity(self):
        assert arity(100, 25) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            arity(0, 5)

    def test_aggregation_factors(self):
        c = aggregation_factors([100, 25, 5])
        assert c.tolist() == [1.0, 4.0, 20.0]

    def test_aggregation_validation(self):
        with pytest.raises(ValueError):
            aggregation_factors([])
        with pytest.raises(ValueError):
            aggregation_factors([10, 20])  # increasing


class TestHierarchyStats:
    def test_bookkeeping_identities(self):
        g, h = make(200, seed=1)
        stats = hierarchy_stats(h)
        assert stats[0].k == 0
        assert stats[0].n_nodes == 200
        assert stats[0].c == pytest.approx(1.0)
        assert stats[0].alpha == pytest.approx(1.0)
        # Eq. (2a): c_k = prod alpha_j.
        prod = 1.0
        for s in stats[1:]:
            prod *= s.alpha
            assert s.c == pytest.approx(prod)
        # Eq. (1a): d_k = 2|E_k| / |V_k|.
        for s, lvl in zip(stats, h.levels):
            assert s.mean_degree == pytest.approx(
                2 * lvl.n_edges / lvl.n_nodes if lvl.n_nodes else 0.0
            )

    def test_levels_shrink_network(self):
        g, h = make(300, seed=2)
        stats = hierarchy_stats(h)
        assert stats[-1].n_nodes < stats[0].n_nodes


class TestHopCounts:
    def test_mean_hop_count_chain(self):
        g = CompactGraph(range(4), [[0, 1], [1, 2], [2, 3]])
        # Exhaustive: all sources sampled.
        val = mean_hop_count(g, np.random.default_rng(0), n_sources=4)
        # All pairs distances: mean = (1+2+3 + 1+1+2 + ...) -> exactly
        # (2*(1+2+3) + 2*(1+1+2)) / 12 = (12 + 8)/12
        assert val == pytest.approx(20 / 12)

    def test_mean_hop_count_trivial(self):
        g = CompactGraph([1], np.empty((0, 2)))
        assert mean_hop_count(g, np.random.default_rng(0)) == 0.0

    def test_level_hop_counts_increase_with_level(self):
        g, h = make(400, seed=3)
        rng = np.random.default_rng(4)
        hks = level_hop_counts(h, g, rng, clusters_per_level=10, sources_per_cluster=3)
        assert set(hks) == set(range(1, h.num_levels + 1))
        vals = [hks[k] for k in sorted(hks) if hks[k] > 0]
        # h_k grows with k (clusters get geographically larger).
        assert vals == sorted(vals)

    def test_h1_close_to_small_constant(self):
        """Level-1 clusters are 1-hop: intra-cluster distances ~1-2."""
        g, h = make(300, seed=5)
        rng = np.random.default_rng(6)
        hks = level_hop_counts(h, g, rng)
        assert 0 < hks[1] < 3.0
