"""Event-driven hierarchy plane: bit-identity against the full rebuild.

:class:`DeltaPlane` claims the strongest possible contract: the
hierarchy it patches from link deltas is **bit-identical** — every
level's node set, edge array, and all five election fields — to a
from-scratch :func:`build_hierarchy` on the same topology.  The fuzz
harnesses here drive it with drifting positions, crash bursts, and
partitions; the delta tests pin :class:`HierarchyDelta`'s exactness
claims (dirty cells = exactly the clusters whose member lists changed).
"""

import numpy as np
import pytest

from repro.clustering import elect
from repro.geometry import disc_for_density
from repro.hierarchy import (
    DeltaPlane,
    LazyClusters,
    build_hierarchy,
    compute_delta,
)
from repro.radio import radius_for_degree, unit_disk_edges

DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


def assert_hierarchies_identical(a, b):
    assert a.num_levels == b.num_levels
    for la, lb in zip(a.levels, b.levels):
        assert la.k == lb.k
        assert np.array_equal(la.node_ids, lb.node_ids)
        assert np.array_equal(la.edges, lb.edges)
        ea, eb = la.election, lb.election
        assert (ea is None) == (eb is None)
        if ea is not None:
            assert np.array_equal(ea.node_ids, eb.node_ids)
            assert np.array_equal(ea.elected_head, eb.elected_head)
            assert np.array_equal(ea.member_of, eb.member_of)
            assert np.array_equal(ea.elector_count, eb.elector_count)
            assert np.array_equal(ea.clusterheads, eb.clusterheads)


class TestBuildModeBitIdentity:
    @pytest.mark.parametrize("seed,drift", [(0, 0.3), (3, 0.8), (9, 2.0)])
    def test_radio_mode_matches_full_rebuild(self, seed, drift):
        n = 130
        rng = np.random.default_rng(seed)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        plane = DeltaPlane(n, max_levels=3, level_mode="radio", r0=R_TX)
        for _ in range(12):
            edges = unit_disk_edges(pts, R_TX)
            h = plane.advance(edges, pts)
            ref = build_hierarchy(np.arange(n), edges, max_levels=3,
                                  level_mode="radio", positions=pts,
                                  r0=R_TX)
            assert_hierarchies_identical(h, ref)
            pts = pts + rng.normal(scale=drift, size=pts.shape)

    def test_contraction_mode_matches_full_rebuild(self):
        n = 100
        rng = np.random.default_rng(4)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        plane = DeltaPlane(n, max_levels=3, level_mode="contraction")
        for _ in range(8):
            edges = unit_disk_edges(pts, R_TX)
            h = plane.advance(edges, pts)
            ref = build_hierarchy(np.arange(n), edges, max_levels=3,
                                  level_mode="contraction")
            assert_hierarchies_identical(h, ref)
            pts = pts + rng.normal(scale=0.6, size=pts.shape)

    def test_crash_and_partition_bursts(self):
        """Chaos-shaped topology changes: edges filtered by crashed
        nodes and a severed half-plane, exactly what the simulator's
        chaos engine feeds the plane."""
        n = 110
        rng = np.random.default_rng(7)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        plane = DeltaPlane(n, max_levels=3, level_mode="radio", r0=R_TX)
        down = np.zeros(n, dtype=bool)
        for step in range(10):
            edges = unit_disk_edges(pts, R_TX)
            if step == 3:  # crash burst
                down[rng.choice(n, size=12, replace=False)] = True
            if step == 6:  # repair + partition along x=median
                down[:] = False
                cut = pts[:, 0] < np.median(pts[:, 0])
                keep = cut[edges[:, 0]] == cut[edges[:, 1]]
                edges = edges[keep]
            if down.any():
                keep = ~(down[edges[:, 0]] | down[edges[:, 1]])
                edges = edges[keep]
            h = plane.advance(edges, pts)
            ref = build_hierarchy(np.arange(n), edges, max_levels=3,
                                  level_mode="radio", positions=pts,
                                  r0=R_TX)
            assert_hierarchies_identical(h, ref)
            pts = pts + rng.normal(scale=0.4, size=pts.shape)


class TestHierarchyDelta:
    def _two_snapshots(self, seed=1, drift=0.5, n=120):
        rng = np.random.default_rng(seed)
        pts0 = disc_for_density(n, DENSITY).sample(n, rng)
        pts1 = pts0 + rng.normal(scale=drift, size=pts0.shape)
        mk = lambda p: build_hierarchy(
            np.arange(n), unit_disk_edges(p, R_TX), max_levels=3,
            level_mode="radio", positions=p, r0=R_TX)
        return mk(pts0), mk(pts1)

    def test_full_flag_cases(self):
        h0, h1 = self._two_snapshots()
        assert compute_delta(None, h1).full
        assert compute_delta(h0, None).full
        assert not compute_delta(h0, h1).full
        with pytest.raises(ValueError):
            compute_delta(None, h1).dirty_sets()

    def test_level_changed_masks_are_exact(self):
        h0, h1 = self._two_snapshots(seed=2)
        d = compute_delta(h0, h1)
        assert not d.level_changed[0].any()
        for k in range(1, h1.num_levels + 1):
            assert np.array_equal(d.level_changed[k],
                                  h0.ancestry(k) != h1.ancestry(k))
        assert d.n_changed >= 0

    def test_dirty_cells_are_exactly_changed_member_lists(self):
        """A level-d cell is dirty iff its member list (as a set of
        level-(d-1) IDs) differs between the snapshots — no more, no
        less.  This is the exactness the chain patcher relies on."""
        h0, h1 = self._two_snapshots(seed=5, drift=1.0)
        d = compute_delta(h0, h1)
        for lvl in range(1, h1.num_levels + 1):
            c0 = h0.levels[lvl - 1].election.clusters()
            c1 = h1.levels[lvl - 1].election.clusters()
            expect = sorted(
                cid for cid in set(c0) | set(c1)
                if not np.array_equal(c0.get(cid, np.empty(0)),
                                      c1.get(cid, np.empty(0)))
            )
            assert d.dirty_cells[lvl].tolist() == expect

    def test_dirty_sets_match_fabric_cache_format(self):
        h0, h1 = self._two_snapshots(seed=8)
        sets = compute_delta(h0, h1).dirty_sets()
        assert len(sets) == h1.num_levels + 1
        for k in range(1, h1.num_levels + 1):
            moved = h0.ancestry(k) != h1.ancestry(k)
            expect = set()
            if moved.any():
                expect = set(np.unique(h0.ancestry(k)[moved]).tolist())
                expect |= set(np.unique(h1.ancestry(k)[moved]).tolist())
            assert sets[k] == expect

    def test_identical_snapshots_have_empty_delta(self):
        h0, _ = self._two_snapshots(seed=3)
        d = compute_delta(h0, h0)
        assert not d.full and d.n_changed == 0 and not d.top_changed
        for cells in d.dirty_cells:
            assert cells.size == 0


class TestLazyClusters:
    def test_matches_eager_clusters(self):
        rng = np.random.default_rng(6)
        n = 90
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        el = elect(np.arange(n), unit_disk_edges(pts, R_TX))
        lazy = LazyClusters(el)
        for cid, members in el.clusters().items():
            assert np.array_equal(lazy[int(cid)], members)
        with pytest.raises(KeyError):
            lazy[-1]


class TestModesAndValidation:
    def test_adopt_mode_rejects_advance(self):
        plane = DeltaPlane(10, level_mode="contraction", build=False)
        with pytest.raises(RuntimeError, match="adopt"):
            plane.advance(np.empty((0, 2), dtype=np.int64))

    def test_adopt_tracks_deltas(self):
        h0, h1 = TestHierarchyDelta()._two_snapshots(seed=12)
        plane = DeltaPlane(h0.n, level_mode="radio", build=False)
        plane.adopt(h0)
        assert plane.delta().full  # no predecessor yet
        plane.adopt(h1)
        d = plane.delta()
        assert not d.full and d.h0 is h0 and d.h1 is h1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="level_mode"):
            DeltaPlane(10, level_mode="bogus")
        with pytest.raises(ValueError, match="r0"):
            DeltaPlane(10, level_mode="radio")  # build mode needs r0
        with pytest.raises(ValueError, match="two nodes"):
            DeltaPlane(1, level_mode="contraction")

    def test_radio_advance_requires_positions(self):
        plane = DeltaPlane(10, level_mode="radio", r0=1.0)
        with pytest.raises(ValueError, match="positions"):
            plane.advance(np.array([[0, 1]], dtype=np.int64))


class TestSuppliedLinkDiff:
    """advance(diff=...) with the Verlet cache's free diff must produce
    the same hierarchy as re-deriving the diff from edge keys."""

    @pytest.mark.parametrize("seed", [0, 4])
    def test_diff_fed_plane_bit_identical(self, seed):
        from repro.radio import VerletEdgeCache

        n = 110
        rng = np.random.default_rng(seed)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        cache = VerletEdgeCache(R_TX)
        with_diff = DeltaPlane(n, max_levels=3, r0=R_TX)
        without = DeltaPlane(n, max_levels=3, r0=R_TX)
        fed = 0
        for _ in range(20):
            edges, diff = cache.edges_with_diff(pts)
            ha = with_diff.advance(edges, pts, diff=diff)
            hb = without.advance(edges, pts)
            assert_hierarchies_identical(ha, hb)
            href = build_hierarchy(np.arange(n), edges, max_levels=3,
                                   level_mode="radio", positions=pts,
                                   r0=R_TX)
            assert_hierarchies_identical(ha, href)
            if diff is not None and diff.n_events:
                fed += 1
            pts = pts + rng.normal(scale=0.4, size=pts.shape)
        assert fed > 5  # the diff path actually ran

    def test_stale_level0_ignores_supplied_diff(self):
        """If a step never elects level 0 (empty edge array), the next
        step's one-step diff is against the wrong baseline and must be
        dropped rather than applied."""
        n = 40
        rng = np.random.default_rng(2)
        pts = disc_for_density(n, DENSITY).sample(n, rng)
        edges = unit_disk_edges(pts, R_TX)
        plane = DeltaPlane(n, max_levels=2, r0=R_TX)
        plane.advance(edges, pts)
        # Empty step: level 0 never elects, state[0] goes stale.
        empty = np.empty((0, 2), dtype=np.int64)
        plane.advance(empty, pts)
        # Supply a bogus "diff" (old edges as ups): a correct plane
        # ignores it and rebuilds from the real edge array.
        from repro.radio.linkevents import LinkDiff

        bogus = LinkDiff(ups=edges[:1], downs=np.empty((0, 2), np.int64))
        h = plane.advance(edges, pts, diff=bogus)
        href = build_hierarchy(np.arange(n), edges, max_levels=2,
                               level_mode="radio", positions=pts, r0=R_TX)
        assert_hierarchies_identical(h, href)
