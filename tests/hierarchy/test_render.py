"""Tests for the text hierarchy renderer."""

import numpy as np
import pytest

from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy, render_hierarchy, render_summary
from repro.radio import radius_for_degree, unit_disk_edges


@pytest.fixture(scope="module")
def hierarchy():
    n = 80
    density = 0.02
    region = disc_for_density(n, density)
    rng = np.random.default_rng(3)
    pts = region.sample(n, rng)
    r = radius_for_degree(9.0, density)
    return build_hierarchy(np.arange(n), unit_disk_edges(pts, r),
                           level_mode="radio", positions=pts, r0=r)


class TestRenderSummary:
    def test_one_line_per_level(self, hierarchy):
        text = render_summary(hierarchy)
        assert len(text.splitlines()) == hierarchy.num_levels + 1
        assert "level 0" in text
        assert "80 nodes" in text

    def test_arities_shown(self, hierarchy):
        assert "arity" in render_summary(hierarchy)


class TestRenderHierarchy:
    def test_contains_all_top_clusters(self, hierarchy):
        text = render_hierarchy(hierarchy)
        for cid in hierarchy.levels[-1].node_ids.tolist():
            assert f"cluster {cid} " in text

    def test_leaves_shown(self, hierarchy):
        text = render_hierarchy(hierarchy, max_children=100)
        # Every level-0 node appears as a leaf when nothing is elided.
        leaves = [ln for ln in text.splitlines() if ln.strip().startswith("* ")]
        assert len(leaves) == 80

    def test_elision(self, hierarchy):
        text = render_hierarchy(hierarchy, max_children=1)
        assert "more)" in text

    def test_no_level0(self, hierarchy):
        text = render_hierarchy(hierarchy, show_level0=False)
        assert "* " not in text

    def test_invalid_max_children(self, hierarchy):
        with pytest.raises(ValueError):
            render_hierarchy(hierarchy, max_children=0)

    def test_trivial_hierarchy(self):
        h = build_hierarchy([3], np.empty((0, 2)))
        assert render_hierarchy(h) == "* 3"
