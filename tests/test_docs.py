"""Documentation executability: the tutorial's Python snippets must run.

Parses ``docs/TUTORIAL.md``, concatenates its python code fences, and
executes them in one namespace — so the tutorial can never drift from
the API.
"""

import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"


def python_blocks(path: Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestTutorial:
    def test_tutorial_exists(self):
        assert (DOCS / "TUTORIAL.md").exists()

    def test_python_snippets_execute(self):
        blocks = python_blocks(DOCS / "TUTORIAL.md")
        assert len(blocks) >= 5
        namespace: dict = {}
        for i, block in enumerate(blocks):
            # Shrink the expensive steps so the doc test stays fast.
            block = block.replace("steps=60", "steps=8")
            block = block.replace("steps=40", "steps=6")
            block = block.replace("[100, 200, 400, 800]", "[100, 200, 400]")
            try:
                exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure detail
                pytest.fail(f"tutorial block {i} failed: {exc}\n{block}")

    def test_mentions_core_documents(self):
        text = (DOCS / "TUTORIAL.md").read_text()
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "PAPER_MAP.md"):
            assert doc in text


class TestPaperMap:
    def test_exists_and_covers_sections(self):
        text = (DOCS / "PAPER_MAP.md").read_text()
        for section in ("Section 1.1", "Section 2", "Section 3",
                        "Section 4", "Section 5", "Section 6"):
            assert section in text

    def test_referenced_symbols_importable(self):
        """Spot-check that code references in the map resolve."""
        import repro.analysis
        import repro.clustering
        import repro.core
        import repro.gls
        import repro.radio

        for symbol in ("recursion_quantities", "StateTracker"):
            assert hasattr(repro.clustering, symbol)
        for symbol in ("rendezvous_choice", "lm_levels", "resolve"):
            assert hasattr(repro.core, symbol)
        assert hasattr(repro.radio, "gupta_kumar_radius")
        assert hasattr(repro.gls, "GridHierarchy")
