"""Edge-case and validation-branch tests across modules.

Collected from a manual review of code paths not exercised elsewhere.
"""

import numpy as np
import pytest

from repro.geometry import DiscRegion, SquareRegion, disc_for_density
from repro.hierarchy import build_hierarchy
from repro.mobility.base import resolve_speeds
from repro.radio import radius_for_degree, unit_disk_edges
from repro.sim.hops import BfsHops, EuclideanHops


class TestResolveSpeeds:
    def test_scalar(self):
        s = resolve_speeds(3.0, 5, np.random.default_rng(0))
        assert (s == 3.0).all()

    def test_range(self):
        s = resolve_speeds((1.0, 2.0), 100, np.random.default_rng(0))
        assert (s >= 1.0).all() and (s <= 2.0).all()

    def test_degenerate_range(self):
        s = resolve_speeds((2.0, 2.0), 10, np.random.default_rng(0))
        assert np.allclose(s, 2.0)

    def test_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            resolve_speeds(0.0, 5, rng)
        with pytest.raises(ValueError):
            resolve_speeds((0.0, 1.0), 5, rng)
        with pytest.raises(ValueError):
            resolve_speeds((3.0, 1.0), 5, rng)


class TestHopProviders:
    def test_euclidean_validation(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError):
            EuclideanHops(pts, r_tx=0.0)
        with pytest.raises(ValueError):
            EuclideanHops(pts, r_tx=1.0, detour=0.9)

    def test_euclidean_values(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 0.1]])
        hop = EuclideanHops(pts, r_tx=5.0, detour=1.0)
        assert hop(0, 0) == 0
        assert hop(0, 1) == 2  # ceil(10/5)
        assert hop(0, 2) == 1  # minimum one transmission

    def test_bfs_hops(self):
        from repro.graphs import CompactGraph

        g = CompactGraph(range(3), [[0, 1], [1, 2]])
        hop = BfsHops(g)
        assert hop(0, 2) == 2
        assert hop(0, 0) == 0


class TestRadioModeValidation:
    def test_requires_positions_and_r0(self):
        with pytest.raises(ValueError):
            build_hierarchy([1, 2], [[1, 2]], level_mode="radio")
        with pytest.raises(ValueError):
            build_hierarchy([1, 2], [[1, 2]], level_mode="radio",
                            positions=np.zeros((2, 2)))

    def test_positions_alignment(self):
        with pytest.raises(ValueError):
            build_hierarchy([1, 2], [[1, 2]], level_mode="radio",
                            positions=np.zeros((3, 2)), r0=1.0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            build_hierarchy([1, 2], [[1, 2]], level_mode="warp")

    def test_radio_vs_contraction_same_level1(self):
        """Both modes share level-0 election; only level-k links differ."""
        n = 120
        density = 0.02
        region = disc_for_density(n, density)
        rng = np.random.default_rng(5)
        pts = region.sample(n, rng)
        r = radius_for_degree(9.0, density)
        edges = unit_disk_edges(pts, r)
        h_radio = build_hierarchy(np.arange(n), edges, level_mode="radio",
                                  positions=pts, r0=r, max_levels=2)
        h_contr = build_hierarchy(np.arange(n), edges,
                                  level_mode="contraction", max_levels=2)
        assert np.array_equal(h_radio.levels[1].node_ids,
                              h_contr.levels[1].node_ids)
        assert np.array_equal(h_radio.ancestry(1), h_contr.ancestry(1))


class TestGLSUpdateThreshold:
    def test_small_motion_no_updates(self):
        """Feature (c): motion below the level-i threshold triggers no
        update to level-i servers."""
        from repro.gls import GridHierarchy, GridLocationService

        grid = GridHierarchy((0.0, 0.0), l=10.0, L=3)
        svc = GridLocationService(grid=grid, node_ids=np.arange(20),
                                  update_fraction=0.5)
        rng = np.random.default_rng(0)
        pts = SquareRegion(40.0).sample(20, rng)

        def hop(u, v):
            return 0 if u == v else 1

        svc.observe(pts, hop)
        # Tiny jitter: far below 0.5 * 10 m.
        rep = svc.observe(pts + 0.01, hop)
        assert rep.update_events == 0

    def test_large_motion_triggers_updates(self):
        from repro.gls import GridHierarchy, GridLocationService

        grid = GridHierarchy((0.0, 0.0), l=10.0, L=3)
        svc = GridLocationService(grid=grid, node_ids=np.arange(20),
                                  update_fraction=0.5)
        rng = np.random.default_rng(1)
        pts = SquareRegion(40.0).sample(20, rng)

        def hop(u, v):
            return 0 if u == v else 1

        svc.observe(pts, hop)
        moved = SquareRegion(40.0).clamp(pts + np.array([8.0, 0.0]))
        rep = svc.observe(moved, hop)
        assert rep.update_events > 0


class TestRegionEdgeCases:
    def test_disc_sample_zero(self):
        assert DiscRegion(1.0).sample(0, np.random.default_rng(0)).shape == (0, 2)

    def test_square_sample_zero(self):
        assert SquareRegion(1.0).sample(0, np.random.default_rng(0)).shape == (0, 2)

    def test_contains_empty(self):
        assert DiscRegion(1.0).contains(np.empty((0, 2))).shape == (0,)
