"""System-level invariants under mobility (property-style integration).

These assert the structural promises the analysis leans on, across
whole simulated runs rather than single snapshots.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HandoffEngine, full_assignment, lm_levels
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.mobility import RandomWaypoint
from repro.radio import radius_for_degree, unit_disk_edges

DENSITY = 0.02
R_TX = radius_for_degree(9.0, DENSITY)


def trajectory(n, seed, steps, speed=2.0):
    """Yield hierarchy snapshots along one RWP run."""
    region = disc_for_density(n, DENSITY)
    rng = np.random.default_rng(seed)
    model = RandomWaypoint(n, region, speed, rng)
    for _ in range(steps):
        model.step(1.0)
        pts = model.positions.copy()
        edges = unit_disk_edges(pts, R_TX)
        yield build_hierarchy(np.arange(n), edges, max_levels=3,
                              level_mode="radio", positions=pts, r0=R_TX)


class TestServerPlacementInvariant:
    def test_server_stays_in_subject_cluster_under_mobility(self):
        """At every step, every real-level server lives inside its
        subject's cluster — the property queries depend on."""
        for h in trajectory(100, seed=11, steps=6):
            a = full_assignment(h)
            for (subject, level), server in a.servers.items():
                if level > h.num_levels:
                    continue  # global level: whole network
                members = h.members0(level, h.cluster_of(subject, level))
                assert server in members.tolist(), (subject, level, server)

    def test_every_subject_covered_every_step(self):
        for h in trajectory(80, seed=12, steps=5):
            a = full_assignment(h)
            expected_levels = set(range(2, lm_levels(h) + 1))
            per_subject: dict[int, set[int]] = {}
            for (subject, level) in a.servers:
                per_subject.setdefault(subject, set()).add(level)
            for v in range(80):
                assert per_subject.get(v, set()) == expected_levels


class TestHandoffAccountingInvariants:
    def test_packets_nonnegative_and_bounded(self):
        """Per-step handoff packets can never exceed (entries changed) x
        (graph diameter bound)."""
        engine = HandoffEngine()
        n = 100
        diameter_bound = 4 * int(np.sqrt(n)) + 20

        def hop(u, v):
            return 0 if u == v else 1  # unit cost: packets == entries

        prev_entries = None
        for h in trajectory(n, seed=13, steps=6):
            rep = engine.observe(h, hop)
            total_entries = (
                sum(rep.migration_entries.values())
                + sum(rep.reorg_entries.values())
            )
            assert rep.total_handoff_packets == total_entries  # unit hops
            assert rep.total_handoff_packets >= 0

    def test_migration_events_monotone_levels(self):
        """A pure level-k migration implies ancestry change at level k
        (consistency between the event stream and the ancestry diff)."""
        engine = HandoffEngine()

        def hop(u, v):
            return 0 if u == v else 1

        prev_h = None
        for h in trajectory(90, seed=14, steps=6):
            rep = engine.observe(h, hop)
            if prev_h is not None:
                for ev in rep.diff.migrations:
                    if ev.level <= min(prev_h.num_levels, h.num_levels):
                        i = int(np.searchsorted(h.levels[0].node_ids, ev.node))
                        assert prev_h.ancestry(ev.level)[i] != h.ancestry(ev.level)[i]
            prev_h = h


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_assignment_pure_function_property(seed):
    """full_assignment is a pure function of the hierarchy: recomputing
    on the same snapshot gives identical servers (no hidden state)."""
    rng = np.random.default_rng(seed)
    n = 60
    region = disc_for_density(n, DENSITY)
    pts = region.sample(n, rng)
    edges = unit_disk_edges(pts, R_TX)
    h = build_hierarchy(np.arange(n), edges, max_levels=2,
                        level_mode="radio", positions=pts, r0=R_TX)
    a = full_assignment(h)
    b = full_assignment(h)
    assert a.servers == b.servers
