"""Cross-module integration tests: the whole pipeline, end to end."""

import numpy as np
import pytest

from repro.core import (
    HandoffEngine,
    LMDatabase,
    full_assignment,
    lm_levels,
    resolve,
)
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.mobility import RandomWaypoint
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import FlatRouter, HierarchicalRouter
from repro.sim import Scenario, run_scenario


DENSITY = 0.02
DEGREE = 9.0


def deploy(n, seed):
    region = disc_for_density(n, DENSITY)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    r_tx = radius_for_degree(DEGREE, DENSITY)
    edges = unit_disk_edges(pts, r_tx)
    h = build_hierarchy(np.arange(n), edges, max_levels=3,
                        level_mode="radio", positions=pts, r0=r_tx)
    return pts, r_tx, edges, h


class TestStaticPipeline:
    @pytest.fixture(scope="class")
    def net(self):
        return deploy(250, seed=0)

    def test_every_connected_pair_queryable(self, net):
        """Any node can resolve any reachable node: query -> address ->
        hierarchical route, end to end."""
        pts, r_tx, edges, h = net
        g = CompactGraph(np.arange(250), edges)
        flat = FlatRouter(g)
        hier = HierarchicalRouter(h, g)
        assignment = full_assignment(h)
        rng = np.random.default_rng(1)
        done = 0
        for _ in range(30):
            s, d = (int(x) for x in rng.integers(0, 250, size=2))
            if s == d or flat.hop_count(s, d) < 0:
                continue
            q = resolve(h, assignment, s, d, flat.hop_count)
            assert q.hit_level >= 1, (s, d)
            assert q.address == h.address(d)
            # The resolved address suffices to route: last element is d.
            assert q.address[-1] == d
            path = hier.path(s, d)
            assert path is not None and path[-1] == d
            done += 1
        assert done > 15

    def test_database_and_assignment_agree(self, net):
        *_, h = net
        a = full_assignment(h)
        db = LMDatabase(h, a)
        assert db.total_entries == len(a.servers)
        assert db.total_entries == 250 * (lm_levels(h) - 1)

    def test_server_load_balance(self, net):
        *_, h = net
        load = full_assignment(h).load()
        values = np.zeros(250)
        for node, count in load.items():
            values[node] = count
        # Theta(log n) duty: bounded skew.
        assert values.max() <= 25 * max(values.mean(), 1)


class TestMobilePipeline:
    def test_consistency_of_meters(self):
        """phi + gamma from the ledger equals the sum of step reports."""
        n = 120
        region = disc_for_density(n, DENSITY)
        rng = np.random.default_rng(2)
        model = RandomWaypoint(n, region, 1.5, rng)
        r_tx = radius_for_degree(DEGREE, DENSITY)
        engine = HandoffEngine()

        def build(pts):
            edges = unit_disk_edges(pts, r_tx)
            return build_hierarchy(np.arange(n), edges, max_levels=3,
                                   level_mode="radio", positions=pts, r0=r_tx)

        def hop(u, v):
            return 0 if u == v else 1

        engine.observe(build(model.positions.copy()), hop)
        total_phi = total_gamma = 0
        for _ in range(10):
            model.step(1.0)
            rep = engine.observe(build(model.positions.copy()), hop)
            total_phi += rep.phi_packets
            total_gamma += rep.gamma_packets
            # Per-report consistency.
            assert rep.phi_packets == sum(rep.migration_packets.values())
            assert rep.gamma_packets == sum(rep.reorg_packets.values())
        assert total_phi + total_gamma > 0

    def test_simulator_matches_manual_loop(self):
        """run_scenario is a faithful wrapper: same seed, same phi."""
        sc = Scenario(n=80, steps=10, warmup=3, speed=2.0, seed=9,
                      max_levels=3)
        a = run_scenario(sc)
        b = run_scenario(sc)
        assert a.phi == b.phi
        assert a.ledger.migration_packets == b.ledger.migration_packets

    def test_hop_modes_agree_in_shape(self):
        """Euclidean metering should track BFS metering within a small
        constant factor (it estimates the same distances)."""
        bfs = run_scenario(Scenario(n=100, steps=15, warmup=5, speed=1.5,
                                    seed=4, hop_mode="bfs", max_levels=3))
        euc = run_scenario(Scenario(n=100, steps=15, warmup=5, speed=1.5,
                                    seed=4, hop_mode="euclidean", max_levels=3))
        total_b = bfs.handoff_rate
        total_e = euc.handoff_rate
        assert total_b > 0 and total_e > 0
        assert 0.4 < total_e / total_b < 2.5


class TestScaleSanity:
    def test_deeper_hierarchy_more_lm_levels(self):
        pts1, r1, e1, h_small = deploy(80, seed=5)
        assert lm_levels(h_small) >= 2
        a = full_assignment(h_small)
        subjects = {s for s, _ in a.servers}
        assert subjects == set(range(80))
