"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 200
        assert args.mobility == "random_waypoint"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "EXP-T9", "--full"])
        assert args.exp_id == "EXP-T9"
        assert args.full


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T4" in out
        assert "EXP-A2" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.core" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "EXP-Z9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "exp-f1"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F1" in out
        assert "level" in out

    def test_simulate_runs(self, capsys):
        assert main([
            "simulate", "--n", "60", "--steps", "5", "--warmup", "1",
            "--seed", "3", "--hops", "euclidean",
        ]) == 0
        out = capsys.readouterr().out
        assert "phi" in out
        assert "gamma_k" in out

    def test_simulate_with_trace(self, capsys):
        assert main([
            "simulate", "--n", "60", "--steps", "5", "--warmup", "1",
            "--seed", "3", "--hops", "euclidean", "--trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "event trace" in out

    def test_hierarchy(self, capsys):
        assert main(["hierarchy", "--n", "50", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "level 0:" in out

    def test_hierarchy_tree(self, capsys):
        assert main(["hierarchy", "--n", "50", "--seed", "2", "--tree"]) == 0
        out = capsys.readouterr().out
        assert "cluster" in out


class TestSweepCommand:
    def test_sweep_runs_and_caches(self, tmp_path, capsys):
        args = ["sweep", "--ns", "60,90", "--seeds", "0", "--steps", "4",
                "--warmup", "1", "--cache-dir", str(tmp_path), "--quiet"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "total/log^2n" in first
        assert len(list(tmp_path.glob("*.pkl"))) == 2
        # Second invocation replays from the cache, identical table.
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_sweep_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "points.json"
        assert main(["sweep", "--ns", "60", "--seeds", "0", "--steps", "4",
                     "--warmup", "1", "--no-cache", "--quiet",
                     "--json", str(out_file)]) == 0
        assert "points written" in capsys.readouterr().out
        from repro.persist import load_sweep

        points = load_sweep(out_file)
        assert points[0].n == 60
        assert set(points[0].values) == {"phi", "gamma", "total"}

    def test_sweep_rejects_empty_grid(self, capsys):
        assert main(["sweep", "--ns", "", "--seeds", "0"]) == 2
        assert "at least one size" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_prints_breakdown_and_stats(self, tmp_path, capsys):
        assert main(["profile", "--ns", "60,90", "--seeds", "0", "--steps",
                     "4", "--warmup", "1", "--cache-dir", str(tmp_path),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "tasks/min" in out
        assert "phase mean ms/step" in out
        for phase in ("mobility", "rebuild", "hierarchy", "handoff",
                      "sampling"):
            assert phase in out

    def test_profile_second_run_hits_cache(self, tmp_path, capsys):
        args = ["profile", "--ns", "60", "--seeds", "0", "--steps", "4",
                "--warmup", "1", "--cache-dir", str(tmp_path), "--quiet"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 cached, 100% hit rate" in out
        # Cached profiled results still carry timings for the breakdown.
        assert "phase mean ms/step" in out

    def test_profile_writes_manifests(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        assert main(["profile", "--ns", "60", "--seeds", "0,1", "--steps",
                     "4", "--warmup", "1", "--no-cache", "--quiet",
                     "--manifest", str(path)]) == 0
        assert "2 manifests written" in capsys.readouterr().out
        from repro.obs import RunManifest, read_jsonl

        manifests = [RunManifest.from_dict(d) for d in read_jsonl(path)]
        assert len(manifests) == 2
        assert all(m.phases for m in manifests)
        assert {m.scenario["seed"] for m in manifests} == {0, 1}

    def test_profile_rejects_empty_grid(self, capsys):
        assert main(["profile", "--ns", "", "--seeds", "0"]) == 2
        assert "at least one size" in capsys.readouterr().err

    def test_simulate_profile_flag(self, capsys):
        assert main([
            "simulate", "--n", "60", "--steps", "5", "--warmup", "1",
            "--seed", "3", "--hops", "euclidean", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "per step" in out

    def test_simulate_manifest_and_trace_jsonl(self, tmp_path, capsys):
        man = tmp_path / "run.json"
        trc = tmp_path / "trace.jsonl"
        assert main([
            "simulate", "--n", "60", "--steps", "5", "--warmup", "1",
            "--seed", "3", "--hops", "euclidean", "--trace", "--profile",
            "--manifest", str(man), "--trace-jsonl", str(trc),
        ]) == 0
        out = capsys.readouterr().out
        assert "manifest written" in out
        from repro.obs import RunManifest
        from repro.sim import EventTrace

        loaded = RunManifest.read(man)
        assert loaded.scenario["n"] == 60
        assert loaded.wall_seconds > 0
        assert len(EventTrace.from_jsonl(trc)) >= 0


class TestReportCommand:
    def test_report_stdout(self, capsys):
        assert main(["report", "--experiments", "EXP-F1", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "EXP-F1" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "r.md"
        assert main(["report", "--experiments", "EXP-F2", "--seeds", "0",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "EXP-F2" in out_file.read_text()
        assert "report written" in capsys.readouterr().out

    def test_simulate_persistent_mode(self, capsys):
        assert main([
            "simulate", "--n", "60", "--steps", "4", "--warmup", "1",
            "--seed", "3", "--hops", "euclidean", "--election", "persistent",
        ]) == 0
        assert "phi" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_prints_slos(self, capsys):
        assert main([
            "serve", "--n", "60", "--steps", "5", "--warmup", "1",
            "--seed", "3", "--arrival-rate", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "workload" in out
        assert "p50" in out and "p99" in out
        assert "throughput" in out

    def test_serve_rejects_zero_rate(self, capsys):
        assert main(["serve", "--n", "60", "--arrival-rate", "0"]) == 2
        assert "--arrival-rate" in capsys.readouterr().err

    def test_serve_writes_slo_report_and_manifest(self, tmp_path, capsys):
        import json

        slo = tmp_path / "slo.json"
        man = tmp_path / "serve.json"
        assert main([
            "serve", "--n", "60", "--steps", "5", "--warmup", "1",
            "--seed", "3", "--arrival-rate", "40",
            "--admission-rate", "20",
            "--slo-report", str(slo), "--manifest", str(man),
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO report written" in out
        metrics = json.loads(slo.read_text())
        assert metrics["service_offered"] > 0
        assert metrics["service_shed"] > 0
        assert "service_p99_latency" in metrics
        from repro.obs import RunManifest

        loaded = RunManifest.read(man)
        assert loaded.metrics["service_offered"] == metrics["service_offered"]

    def test_serve_gls_scheme(self, capsys):
        assert main([
            "serve", "--n", "60", "--steps", "4", "--warmup", "1",
            "--seed", "3", "--arrival-rate", "25", "--scheme", "gls",
            "--arrival-process", "hotspot",
        ]) == 0
        assert "gls" in capsys.readouterr().out
