"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 200
        assert args.mobility == "random_waypoint"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "EXP-T9", "--full"])
        assert args.exp_id == "EXP-T9"
        assert args.full


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T4" in out
        assert "EXP-A2" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.core" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "EXP-Z9"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "exp-f1"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F1" in out
        assert "level" in out

    def test_simulate_runs(self, capsys):
        assert main([
            "simulate", "--n", "60", "--steps", "5", "--warmup", "1",
            "--seed", "3", "--hops", "euclidean",
        ]) == 0
        out = capsys.readouterr().out
        assert "phi" in out
        assert "gamma_k" in out

    def test_simulate_with_trace(self, capsys):
        assert main([
            "simulate", "--n", "60", "--steps", "5", "--warmup", "1",
            "--seed", "3", "--hops", "euclidean", "--trace",
        ]) == 0
        out = capsys.readouterr().out
        assert "event trace" in out

    def test_hierarchy(self, capsys):
        assert main(["hierarchy", "--n", "50", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "level 0:" in out

    def test_hierarchy_tree(self, capsys):
        assert main(["hierarchy", "--n", "50", "--seed", "2", "--tree"]) == 0
        out = capsys.readouterr().out
        assert "cluster" in out


class TestSweepCommand:
    def test_sweep_runs_and_caches(self, tmp_path, capsys):
        args = ["sweep", "--ns", "60,90", "--seeds", "0", "--steps", "4",
                "--warmup", "1", "--cache-dir", str(tmp_path), "--quiet"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "total/log^2n" in first
        assert len(list(tmp_path.glob("*.pkl"))) == 2
        # Second invocation replays from the cache, identical table.
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_sweep_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "points.json"
        assert main(["sweep", "--ns", "60", "--seeds", "0", "--steps", "4",
                     "--warmup", "1", "--no-cache", "--quiet",
                     "--json", str(out_file)]) == 0
        assert "points written" in capsys.readouterr().out
        from repro.persist import load_sweep

        points = load_sweep(out_file)
        assert points[0].n == 60
        assert set(points[0].values) == {"phi", "gamma", "total"}

    def test_sweep_rejects_empty_grid(self, capsys):
        assert main(["sweep", "--ns", "", "--seeds", "0"]) == 2
        assert "at least one size" in capsys.readouterr().err


class TestReportCommand:
    def test_report_stdout(self, capsys):
        assert main(["report", "--experiments", "EXP-F1", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "EXP-F1" in out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "r.md"
        assert main(["report", "--experiments", "EXP-F2", "--seeds", "0",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "EXP-F2" in out_file.read_text()
        assert "report written" in capsys.readouterr().out

    def test_simulate_persistent_mode(self, capsys):
        assert main([
            "simulate", "--n", "60", "--steps", "4", "--warmup", "1",
            "--seed", "3", "--hops", "euclidean", "--election", "persistent",
        ]) == 0
        assert "phi" in capsys.readouterr().out
