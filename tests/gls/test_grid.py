"""Tests for the GLS grid hierarchy (Fig. 2 structure)."""

import numpy as np
import pytest

from repro.geometry import SquareRegion
from repro.gls import GridHierarchy


@pytest.fixture
def grid():
    # 4-level grid: level-1 side 1, total side 8.
    return GridHierarchy(origin=(0.0, 0.0), l=1.0, L=4)


class TestConstruction:
    def test_side(self, grid):
        assert grid.side == 8.0
        assert grid.square_side(1) == 1.0
        assert grid.square_side(4) == 8.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            GridHierarchy((0, 0), l=0.0, L=2)
        with pytest.raises(ValueError):
            GridHierarchy((0, 0), l=1.0, L=0)

    def test_for_region(self):
        g = GridHierarchy.for_region(SquareRegion(10.0), l=2.0)
        assert g.side >= 10.0
        assert g.l == 2.0

    def test_for_region_exact_power(self):
        g = GridHierarchy.for_region(SquareRegion(8.0), l=1.0)
        assert g.L == 4
        assert g.side == 8.0

    def test_level_bounds(self, grid):
        with pytest.raises(ValueError):
            grid.square_side(0)
        with pytest.raises(ValueError):
            grid.square_side(5)


class TestSquareAddressing:
    def test_square_of_levels(self, grid):
        pt = [[2.5, 5.5]]
        assert grid.square_of(pt, 1).tolist() == [[2, 5]]
        assert grid.square_of(pt, 2).tolist() == [[1, 2]]
        assert grid.square_of(pt, 3).tolist() == [[0, 1]]
        assert grid.square_of(pt, 4).tolist() == [[0, 0]]

    def test_clamping_outside(self, grid):
        assert grid.square_of([[9.0, -1.0]], 1).tolist() == [[7, 0]]

    def test_parent_consistency(self, grid):
        pts = np.random.default_rng(0).random((50, 2)) * 8
        for level in range(1, 4):
            c = grid.square_of(pts, level)
            p = grid.square_of(pts, level + 1)
            assert np.array_equal(c // 2, p)

    def test_square_key_unique_per_square(self, grid):
        pts = [[0.5, 0.5], [0.7, 0.2], [1.5, 0.5]]
        keys = grid.square_key(pts, 1)
        assert keys[0] == keys[1]
        assert keys[0] != keys[2]

    def test_top_has_no_parent(self, grid):
        with pytest.raises(ValueError):
            grid.parent([[0, 0]], 4)

    def test_children(self, grid):
        kids = grid.children([1, 1], 2)
        assert sorted(map(tuple, kids.tolist())) == [(2, 2), (2, 3), (3, 2), (3, 3)]
        with pytest.raises(ValueError):
            grid.children([0, 0], 1)


class TestSiblings:
    def test_three_siblings(self, grid):
        sibs = grid.siblings_of([0.5, 0.5], 1)
        assert sibs.shape == (3, 2)
        own = (0, 0)
        assert own not in set(map(tuple, sibs.tolist()))
        # All siblings share the parent square (0,0) at level 2.
        assert all(tuple(s // 2) == (0, 0) for s in sibs)

    def test_top_level_raises(self, grid):
        with pytest.raises(ValueError):
            grid.siblings_of([0.5, 0.5], 4)

    def test_all_levels_covered(self, grid):
        """A node has 3 sibling squares at each level 1..L-1: the nested
        structure of Fig. 2."""
        pt = [3.3, 6.7]
        for level in range(1, 4):
            assert grid.siblings_of(pt, level).shape == (3, 2)


class TestSquareCenter:
    def test_center(self, grid):
        c = grid.square_center([[0, 0]], 1)
        assert np.allclose(c, [[0.5, 0.5]])
        c = grid.square_center([[1, 1]], 3)
        assert np.allclose(c, [[6.0, 6.0]])
