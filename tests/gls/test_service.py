"""Tests for the GLS service: assignment, handoff metering, queries."""

import numpy as np
import pytest

from repro.geometry import SquareRegion
from repro.gls import GridHierarchy, GridLocationService


def euclidean_hops(pts, scale=1.0):
    """Hop estimator from node positions (for tests: straight-line)."""

    def hop_fn(u, v):
        return int(np.ceil(np.linalg.norm(pts[u] - pts[v]) / scale)) if u != v else 0

    return hop_fn


@pytest.fixture
def small_service():
    grid = GridHierarchy(origin=(0.0, 0.0), l=1.0, L=3)
    ids = np.arange(8)
    return GridLocationService(grid=grid, node_ids=ids)


class TestAssignment:
    def test_servers_in_sibling_squares(self, small_service):
        rng = np.random.default_rng(0)
        pts = SquareRegion(4.0).sample(8, rng)
        a = small_service.compute_assignment(pts)
        grid = small_service.grid
        for (subj, level), servers in a.servers.items():
            own_sq = grid.square_of(pts[subj], level)[0]
            sibs = {tuple(s) for s in grid.siblings_of(pts[subj], level)}
            for srv in servers:
                srv_sq = tuple(grid.square_of(pts[srv], level)[0])
                assert srv_sq in sibs, "server must sit in a sibling square"
                assert not np.array_equal(srv_sq, own_sq)

    def test_at_most_three_servers_per_level(self, small_service):
        rng = np.random.default_rng(1)
        pts = SquareRegion(4.0).sample(8, rng)
        a = small_service.compute_assignment(pts)
        assert all(len(srv) <= 3 for srv in a.servers.values())

    def test_load_counts(self, small_service):
        rng = np.random.default_rng(2)
        pts = SquareRegion(4.0).sample(8, rng)
        a = small_service.compute_assignment(pts)
        load = a.load()
        total_entries = sum(len(s) for s in a.servers.values())
        assert sum(load.values()) == total_entries

    def test_misaligned_positions(self, small_service):
        with pytest.raises(ValueError):
            small_service.compute_assignment(np.zeros((3, 2)))

    def test_validation(self):
        grid = GridHierarchy((0, 0), l=1.0, L=2)
        with pytest.raises(ValueError):
            GridLocationService(grid=grid, node_ids=np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            GridLocationService(grid=grid, node_ids=np.arange(3), update_fraction=0)


class TestObserve:
    def test_baseline_step_free(self, small_service):
        rng = np.random.default_rng(3)
        pts = SquareRegion(4.0).sample(8, rng)
        rep = small_service.observe(pts, euclidean_hops(pts))
        assert rep.total_packets == 0

    def test_static_network_no_overhead(self, small_service):
        rng = np.random.default_rng(4)
        pts = SquareRegion(4.0).sample(8, rng)
        small_service.observe(pts, euclidean_hops(pts))
        for _ in range(3):
            rep = small_service.observe(pts, euclidean_hops(pts))
            assert rep.total_packets == 0
            assert rep.handoff_events == 0
            assert rep.update_events == 0

    def test_motion_triggers_overhead(self):
        grid = GridHierarchy((0.0, 0.0), l=1.0, L=4)
        ids = np.arange(30)
        svc = GridLocationService(grid=grid, node_ids=ids)
        rng = np.random.default_rng(5)
        pts = SquareRegion(8.0).sample(30, rng)
        svc.observe(pts, euclidean_hops(pts))
        total = 0
        for _ in range(10):
            pts = pts + rng.normal(scale=0.6, size=pts.shape)
            pts = SquareRegion(8.0).clamp(pts)
            rep = svc.observe(pts, euclidean_hops(pts))
            total += rep.total_packets
        assert total > 0

    def test_queries_require_observation(self, small_service):
        rng = np.random.default_rng(6)
        pts = SquareRegion(4.0).sample(8, rng)
        with pytest.raises(RuntimeError):
            small_service.query_cost(0, 1, pts, euclidean_hops(pts))


class TestQuery:
    def test_query_resolves(self):
        grid = GridHierarchy((0.0, 0.0), l=2.0, L=3)
        ids = np.arange(40)
        svc = GridLocationService(grid=grid, node_ids=ids)
        rng = np.random.default_rng(7)
        pts = SquareRegion(8.0).sample(40, rng)
        svc.observe(pts, euclidean_hops(pts))
        hop_fn = euclidean_hops(pts)
        costs = [svc.query_cost(int(s), int(d), pts, hop_fn)
                 for s, d in rng.integers(0, 40, size=(20, 2))]
        assert all(c >= 0 for c in costs)

    def test_query_self_free(self):
        grid = GridHierarchy((0.0, 0.0), l=2.0, L=2)
        svc = GridLocationService(grid=grid, node_ids=np.arange(5))
        pts = SquareRegion(4.0).sample(5, np.random.default_rng(8))
        svc.observe(pts, euclidean_hops(pts))
        assert svc.query_cost(2, 2, pts, euclidean_hops(pts)) == 0

    def test_unknown_node(self):
        grid = GridHierarchy((0.0, 0.0), l=2.0, L=2)
        svc = GridLocationService(grid=grid, node_ids=np.arange(5))
        pts = SquareRegion(4.0).sample(5, np.random.default_rng(9))
        svc.observe(pts, euclidean_hops(pts))
        with pytest.raises(KeyError):
            svc.query_cost(0, 99, pts, euclidean_hops(pts))
