"""Tests for Eq. (5) server selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gls import circular_distance, select_server, select_server_sorted


class TestCircularDistance:
    def test_basic(self):
        assert circular_distance(5, [6], 100)[0] == 1
        assert circular_distance(5, [4], 100)[0] == 99
        assert circular_distance(5, [5], 100)[0] == 100  # self is worst

    def test_wraparound(self):
        assert circular_distance(99, [0], 100)[0] == 1

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            circular_distance(1, [2], 0)


class TestSelectServer:
    def test_least_greater(self):
        assert select_server(5, [3, 7, 9], 100) == 7

    def test_wraps(self):
        assert select_server(9, [3, 7], 100) == 3

    def test_self_excluded(self):
        assert select_server(5, [5, 8], 100) == 8
        assert select_server(5, [5], 100) is None

    def test_empty(self):
        assert select_server(5, [], 100) is None

    def test_deterministic_unambiguous(self):
        """Feature (a): selection depends only on the candidate set."""
        cands = [12, 44, 3, 91]
        assert select_server(50, cands, 100) == select_server(50, sorted(cands), 100)


@settings(max_examples=100, deadline=None)
@given(
    v=st.integers(0, 999),
    cands=st.lists(st.integers(0, 999), min_size=0, max_size=30, unique=True),
)
def test_sorted_matches_linear_property(v, cands):
    arr = np.sort(np.array(cands, dtype=np.int64)) if cands else np.empty(0, np.int64)
    assert select_server_sorted(v, arr, 1000) == select_server(v, cands, 1000)


@settings(max_examples=50, deadline=None)
@given(
    v=st.integers(0, 999),
    cands=st.lists(st.integers(0, 999), min_size=2, max_size=30, unique=True),
)
def test_selection_is_circular_successor_property(v, cands):
    srv = select_server(v, cands, 1000)
    others = [c for c in cands if c != v]
    if not others:
        assert srv is None
        return
    assert srv in others
    d_srv = (srv - v) % 1000
    for c in others:
        assert d_srv <= (c - v) % 1000
