"""Property-based tests for the GLS substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SquareRegion
from repro.gls import GridHierarchy, GridLocationService


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    L=st.integers(min_value=2, max_value=5),
)
def test_grid_nesting_property(seed, L):
    """Every point's level-i square is contained in its level-(i+1)
    square (coordinates halve), at every level, for random points."""
    grid = GridHierarchy(origin=(0.0, 0.0), l=1.0, L=L)
    rng = np.random.default_rng(seed)
    pts = rng.random((32, 2)) * grid.side
    for level in range(1, L):
        child = grid.square_of(pts, level)
        parent = grid.square_of(pts, level + 1)
        assert np.array_equal(child // 2, parent)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_assignment_servers_never_self_unless_alone_property(seed):
    """A GLS server never sits in the subject's own square (servers live
    in sibling squares by construction)."""
    grid = GridHierarchy(origin=(0.0, 0.0), l=2.0, L=3)
    n = 24
    svc = GridLocationService(grid=grid, node_ids=np.arange(n))
    rng = np.random.default_rng(seed)
    pts = SquareRegion(grid.side).sample(n, rng)
    a = svc.compute_assignment(pts)
    for (subj, level), servers in a.servers.items():
        own = grid.square_of(pts[subj], level)[0]
        for srv in servers:
            srv_sq = grid.square_of(pts[srv], level)[0]
            assert not np.array_equal(own, srv_sq)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_assignment_deterministic_property(seed):
    """The assignment is a pure function of positions."""
    grid = GridHierarchy(origin=(0.0, 0.0), l=2.0, L=3)
    n = 20
    rng = np.random.default_rng(seed)
    pts = SquareRegion(grid.side).sample(n, rng)
    a = GridLocationService(grid=grid, node_ids=np.arange(n)).compute_assignment(pts)
    b = GridLocationService(grid=grid, node_ids=np.arange(n)).compute_assignment(pts)
    assert a.servers == b.servers


class TestGlsLoadDistribution:
    def test_load_spreads_with_uniform_ids(self):
        """On uniform deployments the Eq. (5) hash spreads duty over many
        nodes (its pathology only bites on small gappy candidate sets)."""
        grid = GridHierarchy(origin=(0.0, 0.0), l=10.0, L=4)
        n = 200
        svc = GridLocationService(grid=grid, node_ids=np.arange(n))
        rng = np.random.default_rng(3)
        pts = SquareRegion(grid.side).sample(n, rng)
        load = svc.compute_assignment(pts).load()
        assert len(load) > n / 3  # duty touches a third of the population
        total = sum(load.values())
        assert max(load.values()) < total * 0.1
