"""Graceful degradation: expanding-ring flood fallback and query metering.

When the hierarchical query fails — a probe abandoned by the channel, or
a hit on a server whose entry transfer was itself abandoned (stale
state) — the requester falls back to an expanding-ring flood: broadcast
with TTL 1, then 2, 4, ... until the ring covers the target.  Every node
inside a ring rebroadcasts once, so the flood finds any reachable target
at a cost that grows with the ring area.  That cost is the price of
graceful degradation, and :func:`expanding_ring_cost` meters it under
the same fixed-density geometry the rest of the reproduction uses
(nodes within ``r`` hops ~ density * pi * (r * R_tx)^2).

:class:`QueryLedger` accumulates the resulting success/cost series for
:class:`~repro.sim.metrics.SimResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["expanding_ring_cost", "QueryLedger"]


def expanding_ring_cost(
    target_hops: int, n: int, density: float, r_tx: float
) -> int:
    """Packet cost of an expanding-ring flood that reaches ``target_hops``.

    TTL doubles each round (1, 2, 4, ...) until the ring radius covers
    the target; each round re-floods from scratch, charging one
    rebroadcast per node inside the ring (capped at ``n``).  The final
    ring is clamped to ``target_hops`` — a TTL past the target buys
    nothing, so nodes beyond it are never charged.  Returns 0 for a
    zero-hop "flood" (the target is the requester itself); raises
    ``ValueError`` on non-physical geometry regardless of
    ``target_hops``, so degenerate sweep cells fail loudly instead of
    silently metering the flood at zero cost.
    """
    if n <= 0 or density <= 0 or r_tx <= 0:
        raise ValueError("need positive n, density, and r_tx")
    if target_hops <= 0:
        return 0
    cost = 0
    ttl = 1
    while True:
        radius = min(ttl, target_hops)
        reach = min(n, int(math.ceil(density * math.pi * (radius * r_tx) ** 2)))
        cost += max(reach, 1)
        if radius >= target_hops:
            return cost
        ttl *= 2


@dataclass
class QueryLedger:
    """Running totals over sampled location queries in one run."""

    attempts: int = 0
    direct_hits: int = 0
    fallback_hits: int = 0
    failures: int = 0
    probe_packets: int = 0
    """Packets spent on hierarchical probes (lossy round trips included)."""
    fallback_packets: int = 0
    """Packets spent on expanding-ring floods after probe failure."""
    success_series: list[float] = field(default_factory=list)
    """Per-step query success rate (direct + fallback)."""
    self_pairs: int = 0
    """Discarded s == d draws (a node "querying" its own location would
    resolve trivially and inflate the hit rate; the sampler redraws)."""
    _step_attempts: int = field(default=0, repr=False)
    _step_successes: int = field(default=0, repr=False)

    def record_direct(self, packets: int) -> None:
        """Count a query resolved by the hierarchical probe path."""
        self.attempts += 1
        self.direct_hits += 1
        self.probe_packets += packets
        self._step_attempts += 1
        self._step_successes += 1

    def record_fallback(self, probe_packets: int, flood_packets: int) -> None:
        """Count a query rescued by the expanding-ring flood."""
        self.attempts += 1
        self.fallback_hits += 1
        self.probe_packets += probe_packets
        self.fallback_packets += flood_packets
        self._step_attempts += 1
        self._step_successes += 1

    def record_failure(self, probe_packets: int) -> None:
        """Count a query that failed outright (unreachable target)."""
        self.attempts += 1
        self.failures += 1
        self.probe_packets += probe_packets
        self._step_attempts += 1

    def close_step(self) -> None:
        """Finish one simulation step's sample batch."""
        if self._step_attempts:
            self.success_series.append(self._step_successes / self._step_attempts)
            self._step_attempts = 0
            self._step_successes = 0

    @property
    def successes(self) -> int:
        return self.direct_hits + self.fallback_hits

    @property
    def success_rate(self) -> float:
        """Fraction of queries resolved (directly or via flood)."""
        return self.successes / self.attempts if self.attempts else 1.0

    @property
    def degraded_fraction(self) -> float:
        """Fraction of *resolved* queries that needed the flood."""
        return self.fallback_hits / self.successes if self.successes else 0.0

    @property
    def total_packets(self) -> int:
        return self.probe_packets + self.fallback_packets
