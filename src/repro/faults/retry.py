"""Bounded retry with exponential backoff and jitter.

The policy is deliberately small: it answers two questions the delivery
engine asks — "may I try again?" (bounded by ``max_attempts`` and the
per-message ``timeout``) and "how long do I wait first?" (exponential
backoff with multiplicative jitter).  Jitter draws from the caller's
RNG stream only when enabled, so a jitter-free policy is deterministic
per attempt index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission policy for one control message.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``1`` disables retries).
    base_backoff:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier per further retry (exponential backoff).
    jitter:
        Uniform multiplicative jitter: each delay is scaled by
        ``1 + jitter * U[0, 1)``.  ``0`` disables jitter (and the RNG
        draw).
    timeout:
        Per-message give-up budget, in seconds: once accumulated backoff
        would exceed it, the message is abandoned.
    """

    max_attempts: int = 1
    base_backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1
    timeout: float = 1.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        for name in ("base_backoff", "backoff_factor", "jitter", "timeout"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValueError(f"{name} must be finite, got {value!r}")
        if self.base_backoff < 0:
            raise ValueError(f"base_backoff must be >= 0, got {self.base_backoff!r}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter!r}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")

    @property
    def retries_enabled(self) -> bool:
        return self.max_attempts > 1

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt index is 1-based")
        delay = self.base_backoff * self.backoff_factor ** (attempt - 1)
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay
