"""Per-hop lossy-channel model.

A control message routed over ``h`` hops is ``h`` independent packet
transmissions; each is lost with a Bernoulli probability.  Route-length
dependence therefore falls out for free — a transfer across the network
(many hops) fails far more often than one inside a level-1 cluster —
and an optional level coefficient adds the paper-motivated effect that
high-level control traffic (between distant clusterheads, relayed over
contended links) sees a worse effective channel than local traffic.

The zero-rate model is an exact no-op: it draws nothing from the RNG
and reports full delivery, so a lossless configuration is bit-identical
to the pre-fault engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["LossModel", "MAX_HOP_LOSS"]

MAX_HOP_LOSS = 0.999
"""Per-hop loss probability ceiling; keeps expected attempt counts finite."""


@dataclass(frozen=True)
class LossModel:
    """Seeded Bernoulli per-hop loss, optionally level-graded.

    Parameters
    ----------
    rate:
        Base per-hop loss probability in ``[0, 1)``.
    level_coeff:
        Per-level inflation: a message at hierarchy level ``k`` sees an
        effective per-hop rate ``rate * (1 + level_coeff * k)``, capped
        at :data:`MAX_HOP_LOSS`.  ``0`` (default) makes the channel
        level-blind.
    """

    rate: float = 0.0
    level_coeff: float = 0.0

    def __post_init__(self):
        if not math.isfinite(self.rate) or not (0.0 <= self.rate < 1.0):
            raise ValueError(
                f"loss rate must be a finite probability in [0, 1), got {self.rate!r}"
            )
        if not math.isfinite(self.level_coeff) or self.level_coeff < 0:
            raise ValueError(
                f"level_coeff must be finite and non-negative, got {self.level_coeff!r}"
            )

    def hop_loss(self, level: int = 0) -> float:
        """Effective per-hop loss probability for a level-``level`` message."""
        if self.rate <= 0.0:
            return 0.0
        return min(self.rate * (1.0 + self.level_coeff * max(level, 0)), MAX_HOP_LOSS)

    def attempt(
        self, hops: int, level: int, rng: np.random.Generator
    ) -> tuple[bool, int]:
        """Simulate one end-to-end attempt over ``hops`` hops.

        Returns ``(delivered, transmissions)``: the number of packet
        transmissions actually spent — the full ``hops`` on success, or
        the hops up to and including the lost one on failure.  A
        zero-rate model returns ``(True, hops)`` without consuming RNG
        state.
        """
        if hops <= 0:
            return True, 0
        p = self.hop_loss(level)
        if p <= 0.0:
            return True, hops
        lost = rng.random(hops) < p
        hit = np.flatnonzero(lost)
        if hit.size == 0:
            return True, hops
        return False, int(hit[0]) + 1

    def attempt_success_probability(self, hops: int, level: int = 0) -> float:
        """Closed-form P(one attempt delivers) — for tests and analysis."""
        if hops <= 0:
            return 1.0
        return (1.0 - self.hop_loss(level)) ** hops
