"""Fault injection: lossy control plane, retry/backoff, degradation metering.

The paper's Theta(log^2 |V|) handoff bound assumes every LM control
packet is delivered.  This package drops that assumption:

* :class:`LossModel` — seeded Bernoulli per-hop loss (route length and,
  optionally, hierarchy level grade the effective channel),
* :class:`RetryPolicy` — bounded retransmission with exponential
  backoff, jitter, and a per-message timeout,
* :class:`DeliveryEngine` — attempt-level accounting (delivered /
  retransmitted / abandoned packets) replacing the lossless
  ``charge = hops`` rule,
* :func:`expanding_ring_cost` / :class:`QueryLedger` — the metered
  fallback path for queries that hit stale or abandoned state.

The chaos layer builds on that plane:

* :mod:`repro.faults.chaos` — a declarative, seed-deterministic
  :class:`FaultSchedule` of timed episodes (crash/recover, targeted
  clusterhead kills, geographic partitions, burst-loss windows) and the
  :class:`ChaosEngine` that injects them into the simulator pipeline,
* :mod:`repro.faults.invariants` — per-step hierarchy invariant
  checking (:func:`check_invariants`), feeding the recovery-SLO layer
  (:class:`repro.sim.collectors.ChaosCollector`).

Zero loss with retries disabled is an exact no-op: every meter then
produces bit-identical numbers to the pre-fault engine (tested by
``tests/sim/test_lossy_equivalence.py``); likewise an empty fault
schedule is bit-identical to a chaos-free run
(``tests/sim/test_chaos_equivalence.py``).  See ``docs/ROBUSTNESS.md``.
"""

from repro.faults.chaos import (
    ChaosEngine,
    CrashEpisode,
    FaultSchedule,
    LossBurstEpisode,
    PartitionEpisode,
    parse_episode,
)
from repro.faults.delivery import Delivery, DeliveryEngine, FaultStats
from repro.faults.fallback import QueryLedger, expanding_ring_cost
from repro.faults.invariants import (
    InvariantReport,
    InvariantViolationError,
    check_invariants,
)
from repro.faults.loss import MAX_HOP_LOSS, LossModel
from repro.faults.retry import RetryPolicy

__all__ = [
    "ChaosEngine",
    "CrashEpisode",
    "Delivery",
    "DeliveryEngine",
    "FaultSchedule",
    "FaultStats",
    "InvariantReport",
    "InvariantViolationError",
    "LossBurstEpisode",
    "LossModel",
    "MAX_HOP_LOSS",
    "PartitionEpisode",
    "QueryLedger",
    "RetryPolicy",
    "check_invariants",
    "expanding_ring_cost",
    "parse_episode",
]
