"""Fault injection: lossy control plane, retry/backoff, degradation metering.

The paper's Theta(log^2 |V|) handoff bound assumes every LM control
packet is delivered.  This package drops that assumption:

* :class:`LossModel` — seeded Bernoulli per-hop loss (route length and,
  optionally, hierarchy level grade the effective channel),
* :class:`RetryPolicy` — bounded retransmission with exponential
  backoff, jitter, and a per-message timeout,
* :class:`DeliveryEngine` — attempt-level accounting (delivered /
  retransmitted / abandoned packets) replacing the lossless
  ``charge = hops`` rule,
* :func:`expanding_ring_cost` / :class:`QueryLedger` — the metered
  fallback path for queries that hit stale or abandoned state.

Zero loss with retries disabled is an exact no-op: every meter then
produces bit-identical numbers to the pre-fault engine (tested by
``tests/sim/test_lossy_equivalence.py``).  See ``docs/ROBUSTNESS.md``.
"""

from repro.faults.delivery import Delivery, DeliveryEngine, FaultStats
from repro.faults.fallback import QueryLedger, expanding_ring_cost
from repro.faults.loss import MAX_HOP_LOSS, LossModel
from repro.faults.retry import RetryPolicy

__all__ = [
    "Delivery",
    "DeliveryEngine",
    "FaultStats",
    "LossModel",
    "MAX_HOP_LOSS",
    "QueryLedger",
    "RetryPolicy",
    "expanding_ring_cost",
]
