"""Deterministic chaos engine: scheduled fault episodes.

The paper excludes node birth/death ("assumed here to be extremely
rare") and never models partitions; EXP-A3 poked at crashes with inline
logic.  This module makes fault injection a first-class, *declarative*
layer: a :class:`FaultSchedule` of timed episodes —

* :class:`CrashEpisode` — Poisson crash/recover, scripted node kills,
  or targeted clusterhead kills, each with its own repair time;
* :class:`PartitionEpisode` — a geographic cut that severs every
  unit-disk link crossing a line through the deployment region, healed
  when the episode window closes;
* :class:`LossBurstEpisode` — a window during which the control
  channel's per-hop loss rate is ramped on top of the scenario's base
  :class:`~repro.faults.loss.LossModel`.

All randomness is drawn from a dedicated ``"chaos"`` RNG stream
(appended after the existing streams, so schedules leave every other
stream untouched: an *empty* schedule is bit-identical to the
pre-chaos engine).  The legacy ``Scenario.failure_rate`` crash model is
expressed as a whole-run :class:`CrashEpisode` with
``stream="failures"``, which replays the historical draw order exactly
(EXP-A3 numbers are preserved; see ``tests/sim/test_chaos_equivalence``).

Episode timing convention: an episode is *active* during simulated time
``start <= t < start + duration``, where ``t`` is the chaos clock
*after* the step's advance — the same "clock first, then sample"
ordering the legacy failure path used.  See docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.faults.loss import LossModel

__all__ = [
    "CrashEpisode",
    "PartitionEpisode",
    "LossBurstEpisode",
    "FaultSchedule",
    "ChaosEngine",
    "parse_episode",
]

#: Effective per-hop loss is capped just below certain loss, matching
#: repro.faults.loss.MAX_HOP_LOSS's "never fully opaque" convention.
MAX_BURST_RATE = 0.999


def _check_window(kind: str, start: float, duration: float) -> None:
    """Shared episode-window validation (PR-2 style: NaN screened first,
    then ranges, with actionable messages)."""
    if not np.isfinite(start):
        raise ValueError(
            f"{kind} start must be a finite time, got {start!r} "
            "(NaN/inf would silently disable the episode)"
        )
    if start < 0:
        raise ValueError(
            f"{kind} start must be non-negative, got {start!r} "
            "(episode windows are simulated seconds from t=0)"
        )
    if math.isnan(duration) or duration <= 0:
        raise ValueError(
            f"{kind} duration must be positive (inf = whole run), got "
            f"{duration!r} — a zero/negative window never activates"
        )


@dataclass(frozen=True)
class CrashEpisode:
    """Node crash/recover during one time window.

    Three targeting modes, combinable with the window:

    * ``rate > 0`` — every eligible up-node crashes per step with
      probability ``1 - exp(-rate * dt)`` (the EXP-A3 Poisson model);
    * ``nodes`` — these exact nodes are killed once, on the episode's
      first active step (scripted kills);
    * ``count > 0`` — ``count`` eligible nodes are drawn (without
      replacement) and killed once, on the first active step.

    ``targets="clusterheads"`` restricts eligibility to the previous
    step's level-1 clusterheads — the paper's most disruptive single
    failure, forcing a reorganization handoff per kill.  Crashed nodes
    keep their identity but lose all links until ``repair_time`` has
    elapsed.  ``stream="failures"`` replays the legacy
    ``Scenario.failure_rate`` draw order (internal; new schedules keep
    the default ``"chaos"`` stream).
    """

    start: float = 0.0
    duration: float = math.inf
    rate: float = 0.0
    nodes: tuple[int, ...] = ()
    count: int = 0
    repair_time: float = 20.0
    targets: str = "any"
    stream: str = "chaos"

    def __post_init__(self):
        _check_window("CrashEpisode", self.start, self.duration)
        if not np.isfinite(self.rate) or self.rate < 0:
            raise ValueError(
                f"CrashEpisode rate must be a finite non-negative crash "
                f"rate (1/s), got {self.rate!r}"
            )
        if not np.isfinite(self.repair_time) or self.repair_time <= 0:
            raise ValueError(
                f"CrashEpisode repair_time must be positive, got "
                f"{self.repair_time!r} (a crashed node needs a finite "
                "downtime to recover from)"
            )
        if self.targets not in ("any", "clusterheads"):
            raise ValueError(
                f"CrashEpisode targets must be 'any' or 'clusterheads', "
                f"got {self.targets!r}"
            )
        if self.stream not in ("chaos", "failures"):
            raise ValueError(
                f"CrashEpisode stream must be 'chaos' or 'failures', "
                f"got {self.stream!r}"
            )
        if self.count < 0:
            raise ValueError(
                f"CrashEpisode count must be non-negative, got {self.count!r}"
            )
        if any((not isinstance(v, (int, np.integer))) or v < 0
               for v in self.nodes):
            raise ValueError(
                f"CrashEpisode nodes must be non-negative node ids, got "
                f"{self.nodes!r}"
            )
        if self.rate == 0 and not self.nodes and self.count == 0:
            raise ValueError(
                "CrashEpisode needs rate > 0, nodes, or count > 0 — "
                "otherwise it never crashes anything"
            )

    @property
    def end(self) -> float:
        """Episode close time (``start + duration``)."""
        return self.start + self.duration

    def active(self, t: float) -> bool:
        """Whether crashes sample at chaos-clock time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class PartitionEpisode:
    """Geographic partition: sever every link crossing a cut line.

    The cut is the line ``{p : p . (cos angle, sin angle) = offset}``
    through the (origin-centred) deployment disc; while active, links
    whose endpoints fall on opposite sides are removed from the
    unit-disk graph, splitting the network into two halves.  The cut
    heals (links return) the step the window closes.  ``offset`` is in
    meters along the cut normal; 0 bisects the disc.
    """

    start: float = 0.0
    duration: float = math.inf
    angle: float = 0.0
    offset: float = 0.0

    def __post_init__(self):
        _check_window("PartitionEpisode", self.start, self.duration)
        if not np.isfinite(self.angle):
            raise ValueError(
                f"PartitionEpisode angle must be finite radians, got "
                f"{self.angle!r}"
            )
        if not np.isfinite(self.offset):
            raise ValueError(
                f"PartitionEpisode offset must be finite meters, got "
                f"{self.offset!r} (0 bisects the deployment disc)"
            )

    @property
    def end(self) -> float:
        """Episode close time (``start + duration``)."""
        return self.start + self.duration

    def active(self, t: float) -> bool:
        """Whether the cut is severing links at chaos-clock time ``t``."""
        return self.start <= t < self.end

    def normal(self) -> np.ndarray:
        """Unit normal of the cut line."""
        return np.array([math.cos(self.angle), math.sin(self.angle)])


@dataclass(frozen=True)
class LossBurstEpisode:
    """Burst-loss window: ramp the control channel's per-hop loss.

    While active, ``rate`` is *added* to the scenario's base
    ``loss_rate`` (the sum capped at :data:`MAX_BURST_RATE`), degrading
    every handoff transfer and query probe through the existing
    :class:`~repro.faults.DeliveryEngine` path.  Works with a lossless
    base scenario too — the delivery engine is then built solely for
    the burst windows.
    """

    start: float = 0.0
    duration: float = math.inf
    rate: float = 0.0

    def __post_init__(self):
        _check_window("LossBurstEpisode", self.start, self.duration)
        if not np.isfinite(self.rate) or not 0.0 < self.rate < 1.0:
            raise ValueError(
                f"LossBurstEpisode rate must be an added per-hop loss "
                f"probability in (0, 1), got {self.rate!r}"
            )

    @property
    def end(self) -> float:
        """Episode close time (``start + duration``)."""
        return self.start + self.duration

    def active(self, t: float) -> bool:
        """Whether the burst is ramping loss at chaos-clock time ``t``."""
        return self.start <= t < self.end


Episode = CrashEpisode | PartitionEpisode | LossBurstEpisode


@dataclass(frozen=True)
class FaultSchedule:
    """A declarative, validated sequence of fault episodes.

    Purely descriptive (hashable, picklable, sweep-cache-key friendly);
    the per-run mutable state lives in :class:`ChaosEngine`.  An empty
    schedule injects nothing and is guaranteed bit-identical to a run
    without any chaos machinery.
    """

    episodes: tuple[Episode, ...] = ()

    def __post_init__(self):
        for ep in self.episodes:
            if not isinstance(
                ep, (CrashEpisode, PartitionEpisode, LossBurstEpisode)
            ):
                raise TypeError(
                    f"FaultSchedule episodes must be Crash/Partition/"
                    f"LossBurst episodes, got {type(ep).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.episodes)

    def __len__(self) -> int:
        return len(self.episodes)

    @property
    def needs_delivery(self) -> bool:
        """True when some episode modulates the lossy control plane
        (the simulator then builds a DeliveryEngine even at base
        loss_rate 0)."""
        return any(isinstance(ep, LossBurstEpisode) for ep in self.episodes)

    @property
    def crash_episodes(self) -> tuple[CrashEpisode, ...]:
        return tuple(e for e in self.episodes if isinstance(e, CrashEpisode))

    @property
    def partition_episodes(self) -> tuple[PartitionEpisode, ...]:
        return tuple(
            e for e in self.episodes if isinstance(e, PartitionEpisode)
        )

    @property
    def burst_episodes(self) -> tuple[LossBurstEpisode, ...]:
        return tuple(
            e for e in self.episodes if isinstance(e, LossBurstEpisode)
        )

    @classmethod
    def from_specs(cls, specs) -> "FaultSchedule":
        """Build a schedule from CLI episode spec strings
        (see :func:`parse_episode`)."""
        return cls(episodes=tuple(parse_episode(s) for s in specs))


class ChaosEngine:
    """Per-run mutable state of one :class:`FaultSchedule`.

    Owned by the simulator; advanced once per step *before* the
    unit-disk rebuild (clock first, then sampling — the legacy failure
    ordering).  Picklable wholesale, so checkpoint/resume mid-episode
    is bit-identical to an uninterrupted run.
    """

    def __init__(self, n: int, schedule: FaultSchedule,
                 rng: np.random.Generator,
                 legacy_rng: np.random.Generator | None = None):
        self.n = int(n)
        self.schedule = schedule
        self._rng = rng
        self._legacy_rng = legacy_rng
        self.now = 0.0
        self.down_until = np.full(self.n, -math.inf)
        self._fired: set[int] = set()   # episode idx of one-shot kills done
        self._active_cuts: tuple[int, ...] = ()
        self.partition_changed = False

    # -- stepping -----------------------------------------------------------

    def advance(self, dt: float, hierarchy=None) -> None:
        """Advance the chaos clock by one step and apply every active
        episode's crash sampling.  ``hierarchy`` is the *previous*
        step's hierarchy — clusterhead targeting kills the heads the
        network currently depends on."""
        self.now += dt
        for idx, ep in enumerate(self.schedule.episodes):
            if not isinstance(ep, CrashEpisode) or not ep.active(self.now):
                continue
            rng = self._legacy_rng if ep.stream == "failures" else self._rng
            up = self.down_until < self.now
            eligible = up
            if ep.targets == "clusterheads":
                eligible = up & self._head_mask(hierarchy)
            if ep.rate > 0:
                # One full-length draw per active step, independent of
                # the eligible count — the draw order then never depends
                # on network state (and matches the legacy path exactly).
                p = -np.expm1(-ep.rate * dt)
                crashing = eligible & (rng.random(self.n) < p)
                if np.any(crashing):
                    self.down_until[crashing] = self.now + ep.repair_time
            if idx not in self._fired and (ep.nodes or ep.count > 0):
                self._fired.add(idx)
                kill = np.zeros(self.n, dtype=bool)
                for v in ep.nodes:
                    if 0 <= v < self.n and up[v]:
                        kill[v] = True
                if ep.count > 0:
                    # count kills draw from the eligible pool (so
                    # targets="clusterheads" + count=k beheads k live
                    # heads); scripted ids bypass the targeting filter.
                    pool = np.flatnonzero(eligible)
                    take = min(ep.count, pool.size)
                    if take > 0:
                        kill[rng.permutation(pool)[:take]] = True
                if np.any(kill):
                    self.down_until[kill] = self.now + ep.repair_time
        cuts = tuple(
            i for i, ep in enumerate(self.schedule.episodes)
            if isinstance(ep, PartitionEpisode) and ep.active(self.now)
        )
        self.partition_changed = cuts != self._active_cuts
        self._active_cuts = cuts

    def _head_mask(self, hierarchy) -> np.ndarray:
        """Boolean mask of current level-1 clusterheads (all-True when
        no hierarchy is available yet, e.g. the first metered step of a
        run without a baseline)."""
        mask = np.zeros(self.n, dtype=bool)
        if hierarchy is None or hierarchy.num_levels < 1:
            mask[:] = True
            return mask
        heads = hierarchy.levels[1].node_ids
        heads = heads[(heads >= 0) & (heads < self.n)]
        mask[heads] = True
        return mask

    # -- per-step views ------------------------------------------------------

    def down_mask(self) -> np.ndarray:
        """Boolean mask of nodes currently crashed."""
        return self.down_until >= self.now

    def filter_edges(self, edges: np.ndarray,
                     positions: np.ndarray) -> np.ndarray:
        """Remove links touching down nodes or crossing an active cut."""
        if edges.size:
            down = self.down_mask()
            if np.any(down):
                edges = edges[~(down[edges[:, 0]] | down[edges[:, 1]])]
        for i in self._active_cuts:
            if edges.size == 0:
                break
            ep = self.schedule.episodes[i]
            side = positions @ ep.normal() > ep.offset
            edges = edges[side[edges[:, 0]] == side[edges[:, 1]]]
        return edges

    def partition_active(self) -> bool:
        """Whether any geographic cut is currently severing links."""
        return bool(self._active_cuts)

    def loss_model(self, base: LossModel | None) -> LossModel | None:
        """The effective loss model for the current step: the base rate
        plus every active burst's added rate (capped)."""
        extra = sum(
            ep.rate for ep in self.schedule.burst_episodes
            if ep.active(self.now)
        )
        if extra <= 0:
            return base
        rate = min((base.rate if base is not None else 0.0) + extra,
                   MAX_BURST_RATE)
        coeff = base.level_coeff if base is not None else 0.0
        return LossModel(rate=rate, level_coeff=coeff)


# -- CLI episode grammar -----------------------------------------------------

_EPISODE_KEYS = {
    "crash": {"start", "duration", "rate", "nodes", "count", "repair",
              "targets"},
    "partition": {"start", "duration", "angle", "offset"},
    "burst": {"start", "duration", "rate"},
}


def parse_episode(spec: str) -> Episode:
    """Parse one ``kind:key=value,...`` episode spec (the ``--chaos``
    CLI grammar; see docs/ROBUSTNESS.md).

    Examples::

        crash:start=10,duration=5,rate=0.02,repair=15
        crash:start=20,duration=1,count=3,targets=clusterheads
        crash:start=20,duration=1,nodes=4+17+32
        partition:start=30,duration=20,angle=1.57,offset=0
        burst:start=5,duration=10,rate=0.3
    """
    kind, _, body = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in _EPISODE_KEYS:
        raise ValueError(
            f"unknown episode kind {kind!r} in {spec!r} — expected "
            "crash:, partition:, or burst:"
        )
    kwargs: dict = {}
    for item in filter(None, (s.strip() for s in body.split(","))):
        key, sep, value = item.partition("=")
        key = key.strip().lower()
        if not sep or key not in _EPISODE_KEYS[kind]:
            allowed = ", ".join(sorted(_EPISODE_KEYS[kind]))
            raise ValueError(
                f"bad {kind} episode field {item!r} in {spec!r} — "
                f"expected key=value with key in: {allowed}"
            )
        try:
            if key == "nodes":
                kwargs["nodes"] = tuple(
                    int(v) for v in value.split("+") if v
                )
            elif key == "count":
                kwargs["count"] = int(value)
            elif key == "targets":
                kwargs["targets"] = value
            elif key == "repair":
                kwargs["repair_time"] = float(value)
            else:
                kwargs[key] = float(value)
        except ValueError as exc:
            raise ValueError(
                f"bad value for {key!r} in episode spec {spec!r}: {exc}"
            ) from None
    cls = {
        "crash": CrashEpisode,
        "partition": PartitionEpisode,
        "burst": LossBurstEpisode,
    }[kind]
    return cls(**kwargs)
