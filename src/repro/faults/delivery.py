"""Attempt-level delivery accounting over a lossy control plane.

The pre-fault meters charge every LM transfer as ``charge = hops``:
delivery is assumed.  :class:`DeliveryEngine` replaces that rule with
attempt-level accounting: a message is attempted over its route, each
failed attempt is retried under a :class:`~repro.faults.retry.RetryPolicy`,
and the caller receives a :class:`Delivery` stating what the channel
actually cost — packets transmitted (including retransmissions and the
partial route of lost attempts), whether the message ultimately arrived,
and how much backoff latency it accrued.

With a zero-rate :class:`~repro.faults.loss.LossModel` the engine is an
exact pass-through (one attempt, ``packets == hops``, no RNG draws), so
lossless runs stay bit-identical to the pre-fault engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.loss import LossModel
from repro.faults.retry import RetryPolicy

__all__ = ["Delivery", "FaultStats", "DeliveryEngine"]


@dataclass(frozen=True)
class Delivery:
    """Outcome of sending one control message."""

    delivered: bool
    attempts: int
    packets: int
    """Total packet transmissions spent across all attempts."""
    latency: float
    """Backoff time accrued before the final attempt, in seconds."""
    hops: int
    """Route length — what a lossless channel would have charged."""

    @property
    def retransmitted(self) -> int:
        """Transmissions beyond the lossless single-attempt cost.

        For an abandoned message every transmission was wasted, so the
        whole spend counts as retransmission overhead.
        """
        if self.delivered:
            return max(self.packets - self.hops, 0)
        return self.packets


@dataclass
class FaultStats:
    """Running totals across every message an engine has sent."""

    messages: int = 0
    delivered: int = 0
    abandoned: int = 0
    attempts: int = 0
    packets: int = 0
    retransmitted_packets: int = 0
    backoff_time: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.messages if self.messages else 1.0

    def observe(self, d: Delivery) -> None:
        """Fold one delivery outcome into the totals."""
        self.messages += 1
        self.attempts += d.attempts
        self.packets += d.packets
        self.retransmitted_packets += d.retransmitted
        self.backoff_time += d.latency
        if d.delivered:
            self.delivered += 1
        else:
            self.abandoned += 1


@dataclass
class DeliveryEngine:
    """Stateful lossy-channel sender shared by all LM meters in a run.

    Parameters
    ----------
    loss:
        The per-hop channel model.
    retry:
        Retransmission policy applied to every message.
    rng:
        Dedicated generator (spawn it from the scenario seed so fault
        injection never perturbs the placement/mobility streams).
    """

    loss: LossModel
    retry: RetryPolicy
    rng: np.random.Generator
    stats: FaultStats = field(default_factory=FaultStats)

    def send(self, hops: int, level: int = 0) -> Delivery:
        """Deliver one message over ``hops`` hops, retrying per policy."""
        hops = max(int(hops), 0)
        if hops == 0:
            out = Delivery(True, 1, 0, 0.0, 0)
            self.stats.observe(out)
            return out
        packets = 0
        latency = 0.0
        attempt = 0
        delivered = False
        while True:
            attempt += 1
            ok, tx = self.loss.attempt(hops, level, self.rng)
            packets += tx
            if ok:
                delivered = True
                break
            if attempt >= self.retry.max_attempts:
                break
            delay = self.retry.backoff(attempt, self.rng)
            if latency + delay > self.retry.timeout:
                break
            latency += delay
        out = Delivery(delivered, attempt, packets, latency, hops)
        self.stats.observe(out)
        return out
