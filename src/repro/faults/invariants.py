"""Per-step hierarchy invariant checking.

Under chaos (crashes, partitions, burst loss) the hierarchical location
management structure can silently break in ways no overhead meter
notices: a node's elected clusterhead ends up across a partition, a
maintainer emits a membership chain pointing at a node that left the
level, a location-DB entry names a server that is down.  This module
states those structural invariants explicitly and counts violations per
step:

* **head reachability** — every alive node's level-1 clusterhead is
  alive and in the node's connected component (for persistent
  hierarchies, whose cluster ids are synthetic, the check degrades to
  cluster coherence: a cluster's alive members must share a component);
* **chain well-foundedness** — every level's membership map points into
  the next level's node set (guards maintainer state against drift);
* **server liveness** — every location-DB pointer names an alive server;
* **server reachability** — an alive subject's (alive) server is in the
  subject's connected component: the check that *sees* a geographic
  partition, where every cross-cut pointer silently stops serving
  registrations and queries until the cut heals.

Violations are *counted*, never repaired: the reproduction measures how
the protocol degrades, and the recovery-SLO layer
(:class:`~repro.sim.collectors.chaos.ChaosCollector`) turns the count
series into time-to-reconverge.  ``strict=True`` turns any violation
into an :class:`InvariantViolationError` for debugging runs.  Orphan
counts (alive nodes with zero alive links) are reported alongside but
are *not* violations — sparse deployments isolate nodes naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InvariantReport", "InvariantViolationError", "check_invariants"]


class InvariantViolationError(RuntimeError):
    """Raised by strict-mode checking when any invariant is violated."""


@dataclass(frozen=True)
class InvariantReport:
    """Violation counts for one step's snapshot."""

    step: int
    head_unreachable: int = 0
    """Alive nodes whose level-1 clusterhead is dead or unreachable
    (persistent mode: alive nodes outside their cluster's main
    component)."""
    broken_chain: int = 0
    """Membership entries pointing outside the next level's node set."""
    dead_servers: int = 0
    """Location-DB entries whose server node is down."""
    unreachable_servers: int = 0
    """Location-DB entries whose (alive) server sits in a different
    connected component than its (alive) subject — cross-partition
    pointers."""
    orphaned: int = 0
    """Alive nodes with no alive link (reported, not a violation)."""

    @property
    def violations(self) -> int:
        """Total structural violations (orphans excluded)."""
        return (self.head_unreachable + self.broken_chain
                + self.dead_servers + self.unreachable_servers)

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def describe(self) -> str:
        """One-line human-readable violation summary."""
        return (
            f"step {self.step}: {self.violations} invariant violation(s) — "
            f"{self.head_unreachable} unreachable clusterhead(s), "
            f"{self.broken_chain} broken chain entr(ies), "
            f"{self.dead_servers} dead server pointer(s), "
            f"{self.unreachable_servers} cross-partition server pointer(s) "
            f"[{self.orphaned} orphaned node(s)]"
        )


def _components(ids: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Connected-component label per node (aligned with ``ids``)."""
    from scipy.sparse.csgraph import connected_components

    from repro.graphs import CompactGraph

    if edges.size == 0:
        return np.arange(ids.size)
    _, labels = connected_components(
        CompactGraph(ids, edges).sparse(), directed=False
    )
    return labels


def check_invariants(
    hierarchy,
    edges: np.ndarray,
    assignment=None,
    alive: np.ndarray | None = None,
    step: int = -1,
    strict: bool = False,
) -> InvariantReport:
    """Check the hierarchy invariants on one step's topology.

    Parameters
    ----------
    hierarchy:
        The step's :class:`~repro.hierarchy.levels.ClusteredHierarchy`.
    edges:
        The *filtered* level-0 link list the hierarchy was elected on
        (down nodes and severed cut links already removed).
    assignment:
        The effective :class:`~repro.core.servers.ServerAssignment`
        (None skips the server-liveness check).
    alive:
        Boolean per-node up mask aligned with the base node ids (None
        means every node is up).
    strict:
        Raise :class:`InvariantViolationError` on any violation instead
        of returning a nonzero report.
    """
    ids = hierarchy.levels[0].node_ids
    n = ids.size
    if alive is None:
        alive = np.ones(n, dtype=bool)
    else:
        alive = np.asarray(alive, dtype=bool)
        if alive.size != n:
            raise ValueError(
                f"alive mask has {alive.size} entries for {n} nodes"
            )

    degree = np.zeros(n, dtype=np.int64)
    if edges.size:
        idx = np.searchsorted(ids, edges.reshape(-1))
        degree = np.bincount(idx, minlength=n)
    orphaned = int((alive & (degree == 0)).sum())
    labels = _components(ids, edges)

    head_unreachable = 0
    if hierarchy.num_levels >= 1:
        anc1 = hierarchy.ancestry(1)
        pos = np.searchsorted(ids, anc1)
        pos_c = np.minimum(pos, n - 1)
        head_is_node = ids[pos_c] == anc1
        direct = alive & head_is_node
        if direct.any():
            head_idx = pos_c[direct]
            bad = ~alive[head_idx] | (labels[head_idx] != labels[direct])
            head_unreachable += int(bad.sum())
        # Synthetic cluster ids (persistent hierarchies) name no base
        # node; degrade to cluster coherence — alive members of one
        # cluster must share a connected component.
        synth = alive & ~head_is_node
        if synth.any():
            cids = anc1[synth]
            comps = labels[synth]
            pairs, counts = np.unique(
                np.stack([cids, comps], axis=1), axis=0, return_counts=True
            )
            totals: dict[int, int] = {}
            biggest: dict[int, int] = {}
            for (cid, _), c in zip(pairs.tolist(), counts.tolist()):
                totals[cid] = totals.get(cid, 0) + c
                biggest[cid] = max(biggest.get(cid, 0), c)
            head_unreachable += sum(
                totals[c] - biggest[c] for c in totals
            )

    broken_chain = 0
    for k in range(hierarchy.num_levels):
        election = hierarchy.levels[k].election
        if election is None:
            continue
        nxt = hierarchy.levels[k + 1].node_ids
        broken_chain += int((~np.isin(election.member_of, nxt)).sum())

    dead_servers = 0
    unreachable_servers = 0
    if assignment is not None and assignment.servers:
        count = len(assignment.servers)
        subjects = np.fromiter(
            (k[0] for k in assignment.servers), dtype=np.int64, count=count
        )
        servers = np.fromiter(
            assignment.servers.values(), dtype=np.int64, count=count
        )
        spos = np.minimum(np.searchsorted(ids, servers), n - 1)
        upos = np.minimum(np.searchsorted(ids, subjects), n - 1)
        valid = (ids[spos] == servers) & (ids[upos] == subjects)
        dead_servers = int((~valid).sum())
        dead_servers += int((valid & ~alive[spos]).sum())
        both_up = valid & alive[spos] & alive[upos]
        unreachable_servers = int(
            (labels[spos[both_up]] != labels[upos[both_up]]).sum()
        )

    report = InvariantReport(
        step=step,
        head_unreachable=head_unreachable,
        broken_chain=broken_chain,
        dead_servers=dead_servers,
        unreachable_servers=unreachable_servers,
        orphaned=orphaned,
    )
    if strict and not report.ok:
        raise InvariantViolationError(report.describe())
    return report
