"""Routing substrate: strict hierarchical routing and the flat baseline."""

from repro.routing.flat import FlatRouter
from repro.routing.forwarding import ForwardingFabric, ForwardingTable, ForwardResult
from repro.routing.strict import HierarchicalRouter
from repro.routing.tables import (
    flat_table_size,
    hierarchical_table_size,
    hierarchical_table_sizes,
)

__all__ = [
    "FlatRouter",
    "ForwardingFabric",
    "ForwardingTable",
    "ForwardResult",
    "HierarchicalRouter",
    "flat_table_size",
    "hierarchical_table_size",
    "hierarchical_table_sizes",
]
