"""Routing substrate: strict hierarchical routing and the flat baseline."""

from repro.routing.bfs_kernels import (
    deque_next_hop,
    flood_rows_safe,
    labeled_next_hop,
    single_next_hop,
)
from repro.routing.fabric_cache import FabricCache, FabricCacheStats
from repro.routing.flat import FlatRouter
from repro.routing.forwarding import ForwardingFabric, ForwardingTable, ForwardResult
from repro.routing.strict import HierarchicalRouter
from repro.routing.tables import (
    flat_table_size,
    hierarchical_table_size,
    hierarchical_table_sizes,
)

__all__ = [
    "FabricCache",
    "FabricCacheStats",
    "FlatRouter",
    "ForwardingFabric",
    "ForwardingTable",
    "ForwardResult",
    "HierarchicalRouter",
    "deque_next_hop",
    "flood_rows_safe",
    "labeled_next_hop",
    "single_next_hop",
    "flat_table_size",
    "hierarchical_table_size",
    "hierarchical_table_sizes",
]
