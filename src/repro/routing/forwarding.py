"""Distributed hop-by-hop forwarding with per-node hierarchical maps.

Section 2.1 of the paper: "packet forwarding decisions are made solely
on the hierarchical address of the destination node and every node has a
O(log|V|) hierarchical map".  The :class:`HierarchicalRouter` computes
whole paths centrally; this module instead *builds each node's map* and
forwards packets one hop at a time, each node consulting only

* its routes to the level-0 members of its level-1 cluster, and
* for each level k, its next hop toward every sibling level-k cluster
  of its level-(k+1) cluster,

which is exactly the O(alpha * L) state EXP-T9 counts.  The tests check
that hop-by-hop forwarding terminates without livelock and delivers
wherever the centralized router does — the operational proof that the
hierarchical address alone suffices.

Construction strategy
---------------------
Every next hop comes from a multi-source BFS flood per routing target
set.  Two implementations share the public API:

* ``mode="vectorized"`` (default) — floods run through the batched CSR
  kernels (:mod:`repro.routing.bfs_kernels`), one *labeled* flood per
  cluster instead of one Python BFS per member, and tables materialize
  **lazily per node**: ``forward()`` only ever touches the
  ``_flood_toward`` arrays, so delivery-only workloads never pay full
  table construction; ``table()`` assembles one node's map on demand;
  ``table_sizes()`` forces everything (batching all remaining floods).
* ``mode="reference"`` — the original eager deque-BFS build, kept as
  the oracle the equivalence suite compares against.

Both modes produce bit-identical :class:`ForwardingTable` contents and
:class:`ForwardResult` paths (``tests/routing/test_bfs_kernels.py``).
Cross-step reuse of flood records lives in
:class:`~repro.routing.fabric_cache.FabricCache`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.graphs import CompactGraph
from repro.hierarchy.levels import ClusteredHierarchy
from repro.routing.bfs_kernels import deque_next_hop, labeled_next_hop, single_next_hop

__all__ = [
    "ForwardingTable",
    "ForwardingFabric",
    "ForwardResult",
    "FloodRecord",
    "L0_CACHE_ENTRIES",
    "NH_CACHE_ENTRIES",
]

L0_CACHE_ENTRIES = 256
"""Default bound on cached level-0 per-destination floods (LRU)."""

NH_CACHE_ENTRIES = 256
"""Default bound on cached cluster-level unrestricted floods (LRU)."""


@dataclass(frozen=True)
class ForwardingTable:
    """One node's hierarchical map.

    ``intra[dest_id]`` — next hop toward a level-0 member of the node's
    level-1 cluster.
    ``clusters[(k, cluster_id)]`` — next hop toward a sibling level-k
    cluster (an adjacent physical node on a shortest path to the nearest
    member of that cluster).
    """

    node: int
    intra: dict[int, int]
    clusters: dict[tuple[int, int], int]

    @property
    def size(self) -> int:
        """Number of entries (the EXP-T9 quantity)."""
        return len(self.intra) + len(self.clusters)


@dataclass(frozen=True)
class ForwardResult:
    """Outcome of one hop-by-hop delivery attempt."""

    delivered: bool
    path: list[int]
    reason: str = ""

    @property
    def hops(self) -> int:
        return len(self.path) - 1


@dataclass
class FloodRecord:
    """One batched flood: a labeled next-hop/dist row per target set.

    Three kinds, keyed in ``ForwardingFabric._records``:

    * ``("intra", c1)`` — label per level-0 member of level-1 cluster
      ``c1`` (single-source rows, unrestricted).
    * ``("sib", k, parent)`` — label per level-k child cluster of
      ``parent``, sources = the child's members, confined to the
      parent's membership mask.
    * ``("top",)`` — label per top-level cluster, unrestricted.

    ``stale`` marks rows :class:`FabricCache` invalidated; they are
    recomputed (and the flag cleared) the first time the record is used.
    """

    label_ids: np.ndarray  # (rows,) member IDs (intra) or cluster IDs
    next_hop: np.ndarray  # (rows, n) neighbor index or -1
    dist: np.ndarray  # (rows, n) hop distance or -1
    mask: np.ndarray | None = None  # (n,) bool confinement (sib only)
    stale: np.ndarray | None = None  # (rows,) bool, set by FabricCache


class ForwardingFabric:
    """Builds all nodes' tables for one hierarchy snapshot and forwards
    packets across them.

    Next hops are derived from per-target-set BFS trees: for every
    routing target (a level-1 peer, or a sibling cluster's member set) a
    multi-source BFS labels each node's neighbor toward the target —
    equivalent to each node learning distances from a link-state flood
    scoped to its cluster, as hierarchical link-state protocols do.

    Parameters
    ----------
    mode:
        ``"vectorized"`` (lazy batched kernels, default) or
        ``"reference"`` (eager deque-BFS oracle).
    l0_cache_entries:
        LRU bound on cached level-0 per-destination floods, so long
        message workloads keep O(bound · n) flood state.
    nh_cache_entries:
        LRU bound on cached cluster-level (k >= 1) unrestricted floods.
        Distinct (level, cluster-id) targets accumulate across a long
        mixed-level message stream — and across steps via
        :class:`~repro.routing.fabric_cache.FabricCache` carry as
        cluster IDs churn — so these need the same bound as level 0.
    """

    def __init__(self, h: ClusteredHierarchy, g0: CompactGraph,
                 mode: str = "vectorized",
                 l0_cache_entries: int = L0_CACHE_ENTRIES,
                 nh_cache_entries: int = NH_CACHE_ENTRIES,
                 _inherited: dict | None = None):
        if not np.array_equal(h.levels[0].node_ids, g0.node_ids):
            raise ValueError("hierarchy and graph node sets differ")
        if mode not in ("vectorized", "reference"):
            raise ValueError(f"unknown fabric mode {mode!r}")
        self.h = h
        self.g0 = g0
        self.mode = mode
        self._ids = g0.node_ids
        # id -> compact index, built once; forward() and the kernels use
        # it instead of per-hop searchsorted lookups.
        self._id2idx = {int(v): i for i, v in enumerate(self._ids)}
        self._anc = [h.ancestry(k) for k in range(h.num_levels + 1)]
        self._tables: dict[int, ForwardingTable] = {}
        self._records: dict[tuple, FloodRecord] = {}
        self._inherited: dict = dict(_inherited) if _inherited else {}
        # Unrestricted next-hop floods consulted by forward() (and the
        # disconnected-parent fallback): cluster-level entries are
        # bounded by the cluster count; level-0 per-destination entries
        # live in a separate LRU so message workloads stay bounded.
        self._nh_cache: OrderedDict[
            tuple[int, int], tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._l0_cache: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._l0_cache_entries = int(l0_cache_entries)
        self._nh_cache_entries = int(nh_cache_entries)
        inherited_l0 = self._inherited.pop(("l0",), None)
        if inherited_l0:
            self._l0_cache.update(inherited_l0)
            while len(self._l0_cache) > self._l0_cache_entries:
                self._l0_cache.popitem(last=False)
        inherited_nh = self._inherited.pop(("nh",), None)
        if inherited_nh:
            self._nh_cache.update(inherited_nh)
            self._trim_nh_cache()
        if mode == "reference":
            self._build_reference()

    # -- construction: reference (deque oracle) -----------------------------------

    def _multi_source_next_hop(self, targets: np.ndarray,
                               restrict_mask: np.ndarray | None = None) -> np.ndarray:
        """Reference flood (see :func:`repro.routing.bfs_kernels.deque_next_hop`)."""
        next_hop, _ = deque_next_hop(self.g0, targets, restrict_mask)
        return next_hop

    def _build_reference(self) -> None:
        h, g = self.h, self.g0
        ids = g.node_ids
        intra: dict[int, dict[int, int]] = {int(v): {} for v in ids}
        clusters: dict[int, dict[tuple[int, int], int]] = {int(v): {} for v in ids}

        # Intra level-1 routes: per member target, next hops for its
        # cluster peers.
        if h.num_levels >= 1:
            anc1 = h.ancestry(1)
            for c1 in np.unique(anc1):
                members = ids[anc1 == c1]
                for target in members.tolist():
                    nh = self._multi_source_next_hop(np.array([target]))
                    for m in members.tolist():
                        if m == target:
                            continue
                        mi = self._id2idx[m]
                        if nh[mi] >= 0:
                            intra[m][target] = int(ids[nh[mi]])

        # Sibling cluster routes at each level.
        for k in range(1, h.num_levels + 1):
            anck = h.ancestry(k)
            parent_level = min(k + 1, h.num_levels)
            anc_parent = h.ancestry(parent_level) if k < h.num_levels else None
            for ck in np.unique(anck):
                target_members = ids[anck == ck]
                # Confine routes toward a sibling cluster to the shared
                # parent's membership; fall back to unrestricted routes
                # for carriers the confined flood missed (parent subgraph
                # disconnected).
                if k < h.num_levels:
                    some_member = int(target_members[0])
                    parent = h.cluster_of(some_member, parent_level)
                    parent_mask = anc_parent == parent
                    carriers = ids[parent_mask & (anck != ck)]
                    nh = self._multi_source_next_hop(target_members,
                                                     restrict_mask=parent_mask)
                    nh_fallback = None
                else:
                    carriers = ids[anck != ck]
                    nh = self._multi_source_next_hop(target_members)
                    nh_fallback = nh
                for v in carriers.tolist():
                    vi = self._id2idx[v]
                    hop = nh[vi]
                    if hop < 0 and nh_fallback is None:
                        hop = self._flood_toward(k, int(ck))[vi]
                    if hop >= 0:
                        clusters[v][(k, int(ck))] = int(ids[hop])

        self._tables = {
            int(v): ForwardingTable(node=int(v), intra=intra[int(v)],
                                    clusters=clusters[int(v)])
            for v in ids
        }

    # -- construction: vectorized lazy records -------------------------------------

    def _members_idx(self, k: int, ck: int) -> np.ndarray:
        """Indices of physical nodes whose level-k ancestor is ``ck``."""
        return np.flatnonzero(self._anc[k] == ck)

    def _flood_record(self, key: tuple) -> FloodRecord:
        rec = self._records.get(key)
        if rec is not None:
            return rec
        rec = self._inherited.pop(key, None)
        if rec is not None and rec.stale is not None and rec.stale.any():
            rows = np.flatnonzero(rec.stale)
            nh, dist = self._flood_rows(key, rec.label_ids[rows], rec.mask)
            rec.next_hop[rows] = nh
            rec.dist[rows] = dist
        if rec is None:
            rec = self._build_record(key)
        rec.stale = None
        self._records[key] = rec
        return rec

    def _build_record(self, key: tuple) -> FloodRecord:
        if key[0] == "intra":
            label_ids = self._ids[self._members_idx(1, key[1])]
            mask = None
        elif key[0] == "sib":
            k, parent = key[1], key[2]
            mask = self._anc[k + 1] == parent
            label_ids = np.unique(self._anc[k][mask])
        else:  # ("top",)
            label_ids = np.unique(self._anc[self.h.num_levels])
            mask = None
        nh, dist = self._flood_rows(key, label_ids, mask)
        return FloodRecord(label_ids=label_ids, next_hop=nh, dist=dist, mask=mask)

    def _flood_rows(self, key: tuple, label_ids: np.ndarray,
                    mask: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
        """Run the floods for a subset of a record's labels (one labeled
        kernel call), returning ``(rows, n)`` next-hop/dist arrays."""
        if key[0] == "intra":
            sources = np.searchsorted(self._ids, label_ids)
            labels = np.arange(label_ids.size, dtype=np.int64)
            # Scoped flood: only cluster peers ever read these rows, so
            # each flood stops once its whole member set is discovered.
            members = self._members_idx(1, key[1])
            needed = np.zeros(label_ids.size * self.g0.n, dtype=bool)
            needed[(labels[:, None] * self.g0.n + members[None, :]).ravel()] = True
            return labeled_next_hop(self.g0, sources, labels, label_ids.size,
                                    needed=needed)
        else:
            k = key[1] if key[0] == "sib" else self.h.num_levels
            anck = self._anc[k]
            sources_per = [np.flatnonzero(anck == ck) for ck in label_ids]
            sources = (np.concatenate(sources_per) if sources_per
                       else np.empty(0, dtype=np.int64))
            labels = np.repeat(np.arange(label_ids.size, dtype=np.int64),
                               [s.size for s in sources_per])
        return labeled_next_hop(self.g0, sources, labels, label_ids.size,
                                restrict_mask=mask)

    def _assemble(self, v: int) -> ForwardingTable:
        h, ids = self.h, self._ids
        vi = self._id2idx[v]
        num_levels = h.num_levels
        intra: dict[int, int] = {}
        if num_levels >= 1:
            rec = self._flood_record(("intra", int(self._anc[1][vi])))
            hops = rec.next_hop[:, vi]
            for j, t in enumerate(rec.label_ids.tolist()):
                if t != v and hops[j] >= 0:
                    intra[t] = int(ids[hops[j]])
        clusters: dict[tuple[int, int], int] = {}
        for k in range(1, num_levels + 1):
            own = int(self._anc[k][vi])
            if k < num_levels:
                rec = self._flood_record(("sib", k, int(self._anc[k + 1][vi])))
                confined = True
            else:
                rec = self._flood_record(("top",))
                confined = False
            hops = rec.next_hop[:, vi]
            for j, ck in enumerate(rec.label_ids.tolist()):
                if ck == own:
                    continue
                hop = int(hops[j])
                if hop < 0 and confined:
                    # Parent subgraph disconnected at v: fall back to the
                    # unrestricted flood toward the sibling cluster.
                    hop = int(self._flood_toward(k, ck)[vi])
                if hop >= 0:
                    clusters[(k, ck)] = int(ids[hop])
        return ForwardingTable(node=int(v), intra=intra, clusters=clusters)

    def _force_all(self) -> None:
        """Materialize every flood record (batched per kind/level).

        Records already built — or inherited from a previous step via
        :class:`FabricCache` — are not recomputed; freshly needed ones
        are folded into one labeled kernel call per kind/level.
        """
        if self.mode == "reference" or self.h.num_levels == 0:
            return
        intra_keys = [("intra", int(c)) for c in np.unique(self._anc[1]).tolist()]
        missing = [k for k in intra_keys
                   if k not in self._records and k not in self._inherited]
        if missing:
            groups = [self._members_idx(1, key[1]) for key in missing]
            sources = np.concatenate(groups)
            n = self.g0.n
            needed = np.zeros(sources.size * n, dtype=bool)
            start = 0
            for idx in groups:
                labs = np.arange(start, start + idx.size, dtype=np.int64)
                needed[(labs[:, None] * n + idx[None, :]).ravel()] = True
                start += idx.size
            nh, dist = labeled_next_hop(
                self.g0, sources, np.arange(sources.size, dtype=np.int64),
                sources.size, needed=needed)
            start = 0
            for key, idx in zip(missing, groups):
                end = start + idx.size
                self._records[key] = FloodRecord(
                    label_ids=self._ids[idx], next_hop=nh[start:end],
                    dist=dist[start:end])
                start = end
        for key in intra_keys:
            self._flood_record(key)
        for k in range(1, self.h.num_levels):
            sib_keys = [("sib", k, int(p))
                        for p in np.unique(self._anc[k + 1]).tolist()]
            missing = [key for key in sib_keys
                       if key not in self._records and key not in self._inherited]
            if missing:
                self._batch_sibs(k, missing)
            for key in sib_keys:
                self._flood_record(key)
        self._flood_record(("top",))
        self._batch_fallbacks()

    def _batch_sibs(self, k: int, keys: list[tuple]) -> None:
        """Build several parents' sibling records in one labeled flood,
        confining each label to its own parent via a per-label mask."""
        anck, ancp = self._anc[k], self._anc[k + 1]
        per_parent: list[tuple[tuple, np.ndarray, np.ndarray]] = []
        sources, labels, masks = [], [], []
        lab = 0
        for key in keys:
            pmask = ancp == key[2]
            label_ids = np.unique(anck[pmask])
            per_parent.append((key, label_ids, pmask))
            for ck in label_ids.tolist():
                idx = np.flatnonzero(anck == ck)
                sources.append(idx)
                labels.append(np.full(idx.size, lab, dtype=np.int64))
                masks.append(pmask)
                lab += 1
        nh, dist = labeled_next_hop(
            self.g0, np.concatenate(sources), np.concatenate(labels), lab,
            restrict_mask=np.array(masks))
        start = 0
        for key, label_ids, pmask in per_parent:
            end = start + label_ids.size
            self._records[key] = FloodRecord(
                label_ids=label_ids, next_hop=nh[start:end],
                dist=dist[start:end], mask=pmask)
            start = end

    def _batch_fallbacks(self) -> None:
        """Precompute (in one labeled flood per level) the unrestricted
        floods that sibling-record assembly will fall back to wherever a
        confined flood missed carriers (disconnected parent subgraphs)."""
        need: dict[int, list[int]] = {}
        for key, rec in self._records.items():
            if key[0] != "sib":
                continue
            k = key[1]
            anck = self._anc[k]
            for j, ck in enumerate(rec.label_ids.tolist()):
                if (k, ck) in self._nh_cache:
                    continue
                carriers = rec.mask & (anck != ck)
                if np.any(rec.next_hop[j][carriers] < 0):
                    need.setdefault(k, []).append(ck)
        for k, cks in need.items():
            groups = [self._members_idx(k, ck) for ck in cks]
            sources = np.concatenate(groups)
            labels = np.repeat(np.arange(len(cks), dtype=np.int64),
                               [g.size for g in groups])
            nh, dist = labeled_next_hop(self.g0, sources, labels, len(cks))
            for j, ck in enumerate(cks):
                self._nh_cache[(k, ck)] = (nh[j], dist[j])
        self._trim_nh_cache()

    # -- queries --------------------------------------------------------------------

    def table(self, v: int) -> ForwardingTable:
        """The hierarchical map of node ``v`` (built on first use in
        vectorized mode)."""
        v = int(v)
        t = self._tables.get(v)
        if t is None:
            if self.mode == "reference":
                raise KeyError(v)
            if v not in self._id2idx:
                raise KeyError(v)
            t = self._assemble(v)
            self._tables[v] = t
        return t

    def table_sizes(self) -> np.ndarray:
        """Per-node map sizes (the EXP-T9 distribution); forces full
        construction."""
        self._force_all()
        if self.mode == "reference":
            return np.array([self._tables[int(v)].size for v in self._ids])
        # Count entries straight off the flood records — no per-node
        # dict assembly (tables themselves stay lazy).
        sizes = np.zeros(self._ids.size, dtype=np.int64)
        num_levels = self.h.num_levels
        if num_levels == 0:
            return sizes
        for key, rec in self._records.items():
            if key[0] == "intra":
                cols = np.searchsorted(self._ids, rec.label_ids)
                # Source rows are -1 at their own column, so a member's
                # self-target never counts.
                sizes[cols] += (rec.next_hop[:, cols] >= 0).sum(axis=0)
            elif key[0] == "sib":
                k = key[1]
                anck = self._anc[k]
                cols = np.flatnonzero(rec.mask)
                eff = rec.next_hop[:, cols]
                for j, ck in enumerate(rec.label_ids.tolist()):
                    # Same predicate as _batch_fallbacks; the LRU may
                    # have evicted the entry, so recompute on miss.
                    carriers = rec.mask & (anck != ck)
                    if np.any(rec.next_hop[j][carriers] < 0):
                        entry = self._nh_lookup(k, ck)
                        eff[j] = np.where(eff[j] < 0, entry[0][cols], eff[j])
                own = rec.label_ids[:, None] == self._anc[k][cols][None, :]
                sizes[cols] += ((eff >= 0) & ~own).sum(axis=0)
            else:  # top
                own = rec.label_ids[:, None] == self._anc[num_levels][None, :]
                sizes += ((rec.next_hop >= 0) & ~own).sum(axis=0)
        return sizes

    # -- forwarding -----------------------------------------------------------------

    def _single_flood(self, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.mode == "reference":
            return deque_next_hop(self.g0, targets)
        return single_next_hop(self.g0, targets)

    def _flood_toward(self, k: int, ck: int) -> np.ndarray:
        """Unrestricted next-hop array toward the members of cluster
        (k, ck) — or toward node ``ck`` itself for k=0 — cached per
        target set (level 0 in a bounded LRU)."""
        k, ck = int(k), int(ck)
        if k == 0:
            entry = self._l0_cache.get(ck)
            if entry is None:
                entry = self._single_flood(np.array([ck], dtype=np.int64))
                self._l0_cache[ck] = entry
                while len(self._l0_cache) > self._l0_cache_entries:
                    self._l0_cache.popitem(last=False)
            else:
                self._l0_cache.move_to_end(ck)
            return entry[0]
        return self._nh_lookup(k, ck)[0]

    def _trim_nh_cache(self) -> None:
        while len(self._nh_cache) > self._nh_cache_entries:
            self._nh_cache.popitem(last=False)

    def _nh_lookup(self, k: int, ck: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached unrestricted flood toward cluster (k, ck), recomputed
        on an LRU miss — eviction is a cost, never a behavior change."""
        entry = self._nh_cache.get((k, ck))
        if entry is None:
            entry = self._single_flood(self.h.members0(k, ck))
            self._nh_cache[(k, ck)] = entry
            self._trim_nh_cache()
        else:
            self._nh_cache.move_to_end((k, ck))
        return entry

    def _target(self, at_idx: int, address: tuple[int, ...]) -> tuple[int, int]:
        """Current routing target from the destination address: the
        highest diverging cluster component, or (0, dest) for intra
        level-1 delivery."""
        num_levels = self.h.num_levels
        for k in range(num_levels, 0, -1):
            dest_ck = address[num_levels - k]
            if self._anc[k][at_idx] != dest_ck:
                return (k, int(dest_ck))
        return (0, int(address[-1]))

    def forward(self, s: int, d: int, ttl: int | None = None,
                address: tuple[int, ...] | None = None) -> ForwardResult:
        """Deliver a packet from ``s`` to ``d`` hop by hop.

        The packet header carries the destination's hierarchical address
        plus the *current segment target* (k, ck) — the cluster the
        packet is descending into.  The target is chosen from the
        current node's map (highest diverging address component) and
        stays in the header until the packet enters that cluster; relay
        nodes outside the target's carrier set forward using the
        target-cluster flood state (gateway cooperation).  Within a
        segment the BFS distance to the target strictly decreases, and
        across segments the divergence level strictly decreases, so
        delivery provably terminates wherever the graph is connected (segments
        are individually loop-free; descent may re-cross a relay between
        segments).
        """
        h = self.h
        if address is None:
            address = h.address(d)
        else:
            if address[-1] != d:
                raise ValueError("address must terminate in the destination id")
            # A supplied (possibly stale) address may disagree with the
            # current hierarchy depth; align it at the bottom, padding the
            # top with its highest component.
            want = h.num_levels + 1
            if len(address) > want:
                address = address[-want:]
            elif len(address) < want:
                address = (address[0],) * (want - len(address)) + tuple(address)
        limit = ttl if ttl is not None else 4 * self.g0.n
        ids = self._ids
        d = int(d)
        at = int(s)
        at_idx = self._id2idx[at]
        path = [at]
        hops = 0
        while hops < limit:
            if at == d:
                return ForwardResult(delivered=True, path=path)
            k, ck = self._target(at_idx, address)
            if k == 0:
                # Final segment: same level-1 cluster as the destination.
                # Sticky like every other segment — the shortest path may
                # briefly exit the cluster (clusters need not be
                # geographically contiguous), and relays honor the
                # packet's target instead of re-deriving their own.
                nh = self._flood_toward(0, d)
                while hops < limit and at != d:
                    hop_idx = nh[at_idx]
                    if hop_idx < 0:
                        return ForwardResult(delivered=False, path=path,
                                             reason=f"no route at {at}")
                    at_idx = int(hop_idx)
                    at = int(ids[at_idx])
                    path.append(at)
                    hops += 1
                continue
            # Descend into cluster (k, ck): sticky segment.  All hops in
            # a segment follow one flood's next-hop field, so the BFS
            # distance to the target set strictly decreases (mixing the
            # confined per-node routes in would break the monotonicity
            # argument when parent clusters are not contiguous).
            nh = self._flood_toward(k, ck)
            anck = self._anc[k]
            while hops < limit and anck[at_idx] != ck:
                hop_idx = nh[at_idx]
                if hop_idx < 0:
                    return ForwardResult(delivered=False, path=path,
                                         reason=f"no route at {at}")
                at_idx = int(hop_idx)
                at = int(ids[at_idx])
                path.append(at)
                hops += 1
        return ForwardResult(delivered=(at == d), path=path, reason="ttl")
