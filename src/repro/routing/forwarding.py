"""Distributed hop-by-hop forwarding with per-node hierarchical maps.

Section 2.1 of the paper: "packet forwarding decisions are made solely
on the hierarchical address of the destination node and every node has a
O(log|V|) hierarchical map".  The :class:`HierarchicalRouter` computes
whole paths centrally; this module instead *builds each node's map* and
forwards packets one hop at a time, each node consulting only

* its routes to the level-0 members of its level-1 cluster, and
* for each level k, its next hop toward every sibling level-k cluster
  of its level-(k+1) cluster,

which is exactly the O(alpha * L) state EXP-T9 counts.  The tests check
that hop-by-hop forwarding terminates without livelock and delivers
wherever the centralized router does — the operational proof that the
hierarchical address alone suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs import CompactGraph, bfs_distances
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["ForwardingTable", "ForwardingFabric", "ForwardResult"]


@dataclass(frozen=True)
class ForwardingTable:
    """One node's hierarchical map.

    ``intra[dest_id]`` — next hop toward a level-0 member of the node's
    level-1 cluster.
    ``clusters[(k, cluster_id)]`` — next hop toward a sibling level-k
    cluster (an adjacent physical node on a shortest path to the nearest
    member of that cluster).
    """

    node: int
    intra: dict[int, int]
    clusters: dict[tuple[int, int], int]

    @property
    def size(self) -> int:
        """Number of entries (the EXP-T9 quantity)."""
        return len(self.intra) + len(self.clusters)


@dataclass(frozen=True)
class ForwardResult:
    """Outcome of one hop-by-hop delivery attempt."""

    delivered: bool
    path: list[int]
    reason: str = ""

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class ForwardingFabric:
    """Builds all nodes' tables for one hierarchy snapshot and forwards
    packets across them.

    Next hops are derived from per-target-set BFS trees: for every
    routing target (a level-1 peer, or a sibling cluster's member set) a
    multi-source BFS labels each node's neighbor toward the target —
    equivalent to each node learning distances from a link-state flood
    scoped to its cluster, as hierarchical link-state protocols do.
    """

    def __init__(self, h: ClusteredHierarchy, g0: CompactGraph):
        if not np.array_equal(h.levels[0].node_ids, g0.node_ids):
            raise ValueError("hierarchy and graph node sets differ")
        self.h = h
        self.g0 = g0
        self._tables: dict[int, ForwardingTable] = {}
        self._build()

    # -- construction -------------------------------------------------------------

    def _multi_source_next_hop(self, targets: np.ndarray,
                               restrict_mask: np.ndarray | None = None) -> np.ndarray:
        """For every node index: neighbor index on a shortest path toward
        the nearest target (or -1 for targets themselves / unreachable).

        One BFS from the target set, recording parents away from it; the
        next hop toward the set is the BFS parent.  With
        ``restrict_mask`` the flood stays inside the allowed node set —
        used to confine sibling-cluster routes to the shared parent
        cluster so descent is monotone (no exit/re-enter ping-pong).
        """
        from collections import deque

        g = self.g0
        next_hop = np.full(g.n, -1, dtype=np.int64)
        dist = np.full(g.n, -1, dtype=np.int64)
        q = deque()
        for t in targets:
            ti = int(np.searchsorted(g.node_ids, t))
            dist[ti] = 0
            q.append(ti)
        while q:
            u = q.popleft()
            for w in g.neighbors_idx(u):
                if dist[w] < 0 and (restrict_mask is None or restrict_mask[w]):
                    dist[w] = dist[u] + 1
                    next_hop[w] = u
                    q.append(w)
        return next_hop

    def _build(self) -> None:
        h, g = self.h, self.g0
        ids = g.node_ids
        intra: dict[int, dict[int, int]] = {int(v): {} for v in ids}
        clusters: dict[int, dict[tuple[int, int], int]] = {int(v): {} for v in ids}

        # Intra level-1 routes: per member target, next hops for its
        # cluster peers.
        if h.num_levels >= 1:
            anc1 = h.ancestry(1)
            for c1 in np.unique(anc1):
                members = ids[anc1 == c1]
                for target in members.tolist():
                    nh = self._multi_source_next_hop(np.array([target]))
                    for m in members.tolist():
                        if m == target:
                            continue
                        mi = int(np.searchsorted(ids, m))
                        if nh[mi] >= 0:
                            intra[m][target] = int(ids[nh[mi]])

        # Sibling cluster routes at each level.
        for k in range(1, h.num_levels + 1):
            anck = h.ancestry(k)
            parent_level = min(k + 1, h.num_levels)
            anc_parent = h.ancestry(parent_level) if k < h.num_levels else None
            for ck in np.unique(anck):
                target_members = ids[anck == ck]
                # Confine routes toward a sibling cluster to the shared
                # parent's membership; fall back to unrestricted routes
                # for carriers the confined flood missed (parent subgraph
                # disconnected).
                if k < h.num_levels:
                    some_member = int(target_members[0])
                    parent = h.cluster_of(some_member, parent_level)
                    parent_mask = anc_parent == parent
                    carriers = ids[parent_mask & (anck != ck)]
                    nh = self._multi_source_next_hop(target_members,
                                                     restrict_mask=parent_mask)
                    nh_fallback = None
                else:
                    carriers = ids[anck != ck]
                    nh = self._multi_source_next_hop(target_members)
                    nh_fallback = nh
                for v in carriers.tolist():
                    vi = int(np.searchsorted(ids, v))
                    hop = nh[vi]
                    if hop < 0 and nh_fallback is None:
                        if not hasattr(self, "_nh_cache"):
                            self._nh_cache = {}
                        key = (k, int(ck))
                        cached = self._nh_cache.get(key)
                        if cached is None:
                            cached = self._multi_source_next_hop(target_members)
                            self._nh_cache[key] = cached
                        hop = cached[vi]
                    if hop >= 0:
                        clusters[v][(k, int(ck))] = int(ids[hop])

        self._tables = {
            int(v): ForwardingTable(node=int(v), intra=intra[int(v)],
                                    clusters=clusters[int(v)])
            for v in ids
        }

    # -- queries --------------------------------------------------------------------

    def table(self, v: int) -> ForwardingTable:
        """The hierarchical map of node ``v``."""
        return self._tables[int(v)]

    def table_sizes(self) -> np.ndarray:
        """Per-node map sizes (the EXP-T9 distribution)."""
        return np.array([self._tables[int(v)].size for v in self.g0.node_ids])

    # -- forwarding -----------------------------------------------------------------

    def _flood_toward(self, k: int, ck: int) -> np.ndarray:
        """Unrestricted next-hop array toward the members of cluster
        (k, ck), cached per target set."""
        if not hasattr(self, "_nh_cache"):
            self._nh_cache = {}
        key = (k, int(ck))
        cached = self._nh_cache.get(key)
        if cached is None:
            targets = self.h.members0(k, int(ck)) if k >= 1 else np.array([ck])
            cached = self._multi_source_next_hop(targets)
            self._nh_cache[key] = cached
        return cached

    def _target(self, at: int, address: tuple[int, ...]) -> tuple[int, int]:
        """Current routing target from the destination address: the
        highest diverging cluster component, or (0, dest) for intra
        level-1 delivery."""
        h = self.h
        for k in range(h.num_levels, 0, -1):
            dest_ck = address[h.num_levels - k]
            if h.cluster_of(at, k) != dest_ck:
                return (k, int(dest_ck))
        return (0, int(address[-1]))

    def forward(self, s: int, d: int, ttl: int | None = None,
                address: tuple[int, ...] | None = None) -> ForwardResult:
        """Deliver a packet from ``s`` to ``d`` hop by hop.

        The packet header carries the destination's hierarchical address
        plus the *current segment target* (k, ck) — the cluster the
        packet is descending into.  The target is chosen from the
        current node's map (highest diverging address component) and
        stays in the header until the packet enters that cluster; relay
        nodes outside the target's carrier set forward using the
        target-cluster flood state (gateway cooperation).  Within a
        segment the BFS distance to the target strictly decreases, and
        across segments the divergence level strictly decreases, so
        delivery provably terminates wherever the graph is connected (segments
        are individually loop-free; descent may re-cross a relay between
        segments).
        """
        h = self.h
        if address is None:
            address = h.address(d)
        else:
            if address[-1] != d:
                raise ValueError("address must terminate in the destination id")
            # A supplied (possibly stale) address may disagree with the
            # current hierarchy depth; align it at the bottom, padding the
            # top with its highest component.
            want = h.num_levels + 1
            if len(address) > want:
                address = address[-want:]
            elif len(address) < want:
                address = (address[0],) * (want - len(address)) + tuple(address)
        limit = ttl if ttl is not None else 4 * self.g0.n
        path = [int(s)]
        at = int(s)
        hops = 0
        while hops < limit:
            if at == d:
                return ForwardResult(delivered=True, path=path)
            k, ck = self._target(at, address)
            if k == 0:
                # Final segment: same level-1 cluster as the destination.
                # Sticky like every other segment — the shortest path may
                # briefly exit the cluster (clusters need not be
                # geographically contiguous), and relays honor the
                # packet's target instead of re-deriving their own.
                nh = self._flood_toward(0, d)
                while hops < limit and at != d:
                    hop_idx = nh[int(np.searchsorted(self.g0.node_ids, at))]
                    if hop_idx < 0:
                        return ForwardResult(delivered=False, path=path,
                                             reason=f"no route at {at}")
                    at = int(self.g0.node_ids[hop_idx])
                    path.append(at)
                    hops += 1
                continue
            # Descend into cluster (k, ck): sticky segment.  All hops in
            # a segment follow one flood's next-hop field, so the BFS
            # distance to the target set strictly decreases (mixing the
            # confined per-node routes in would break the monotonicity
            # argument when parent clusters are not contiguous).
            nh = self._flood_toward(k, ck)
            while hops < limit and h.cluster_of(at, k) != ck:
                hop_idx = nh[int(np.searchsorted(self.g0.node_ids, at))]
                if hop_idx < 0:
                    return ForwardResult(delivered=False, path=path,
                                         reason=f"no route at {at}")
                nxt = int(self.g0.node_ids[hop_idx])
                path.append(int(nxt))
                at = int(nxt)
                hops += 1
        return ForwardResult(delivered=(at == d), path=path, reason="ttl")
