"""Hierarchical map / routing table size accounting (Section 2.1).

Under strict hierarchical routing every node keeps an O(log|V|)
"hierarchical map": routes to the level-0 nodes of its level-1 cluster,
and, for each level k, routes to the level-k clusters of its level-(k+1)
cluster.  With arity alpha = Theta(1) per level and L = Theta(log|V|)
levels this totals Theta(alpha * log |V|) entries versus |V| - 1 for flat
routing — the Kleinrock-Kamoun saving that EXP-T9 measures.
"""

from __future__ import annotations

import numpy as np

from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["hierarchical_table_size", "hierarchical_table_sizes", "flat_table_size"]


def flat_table_size(n: int) -> int:
    """Entries in a flat routing table: one per other node."""
    if n <= 0:
        raise ValueError("node count must be positive")
    return n - 1


def hierarchical_table_size(h: ClusteredHierarchy, v: int) -> int:
    """Hierarchical map size at node ``v``.

    Counts peers in the level-1 cluster plus sibling clusters at every
    higher level (own entries excluded at each level).
    """
    total = 0
    if h.num_levels == 0:
        return 0
    # Level-0 peers within the level-1 cluster.
    c1 = h.cluster_of(v, 1)
    total += int(h.members0(1, c1).size) - 1
    # Sibling level-k clusters within the level-(k+1) cluster.
    for k in range(1, h.num_levels):
        clusters = h.clusters(k + 1)
        parent = h.cluster_of(v, k + 1)
        total += int(clusters[parent].size) - 1
    return total


def hierarchical_table_sizes(h: ClusteredHierarchy) -> np.ndarray:
    """Hierarchical map size for every node (aligned with the level-0
    node_ids), computed in one vectorized pass per level."""
    n = h.n
    sizes = np.zeros(n, dtype=np.int64)
    if h.num_levels == 0:
        return sizes
    # Level-1 cluster population for each node.
    anc1 = h.ancestry(1)
    _, inverse, counts = np.unique(anc1, return_inverse=True, return_counts=True)
    sizes += counts[inverse] - 1
    # Sibling counts at each level k >= 1.
    for k in range(1, h.num_levels):
        clusters = h.clusters(k + 1)
        sibling_count = {parent: len(members) for parent, members in clusters.items()}
        anck1 = h.ancestry(k + 1)
        lookup = np.vectorize(lambda p: sibling_count[int(p)], otypes=[np.int64])
        sizes += lookup(anck1) - 1
    return sizes
