"""Strict hierarchical routing (Section 2.1, after Steenstrup [14]).

Forwarding decisions use only the destination's hierarchical address and
each node's O(log|V|) hierarchical map.  Packets are *not* forced through
clusterheads: the route descends the hierarchy — at the lowest level m
where source and destination share a cluster, the packet follows a
shortest path over the level-(m-1) cluster graph, crossing between
adjacent clusters at *gateway* node pairs (a physical link whose
endpoints lie in the two clusters), and recursing inside each cluster.

The router produces actual level-0 node paths, so the handoff meter can
charge real hop counts, and EXP-T2 can compare hierarchical path lengths
(h_k = Theta(sqrt(c_k))) against flat shortest paths.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import CompactGraph, bfs_path
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["HierarchicalRouter"]


class HierarchicalRouter:
    """Routes over a hierarchy snapshot.

    Parameters
    ----------
    hierarchy:
        The clustered hierarchy snapshot.
    g0:
        Compact view of the physical (level-0) graph; node IDs must match
        ``hierarchy.levels[0].node_ids``.
    confine:
        If True (default), intra-cluster segments are confined to the
        cluster's member set when possible, falling back to unrestricted
        BFS when the confined search fails (strictness with a liveness
        escape hatch).
    """

    def __init__(self, hierarchy: ClusteredHierarchy, g0: CompactGraph, confine: bool = True):
        if not np.array_equal(hierarchy.levels[0].node_ids, g0.node_ids):
            raise ValueError("hierarchy and graph node sets differ")
        self.h = hierarchy
        self.g0 = g0
        self.confine = confine
        self._level_graphs: dict[int, CompactGraph] = {}
        self._gateways: dict[int, dict[tuple[int, int], tuple[int, int]]] = {}

    # -- caches ---------------------------------------------------------------

    def _level_graph(self, k: int) -> CompactGraph:
        g = self._level_graphs.get(k)
        if g is None:
            lvl = self.h.levels[k]
            g = CompactGraph(lvl.node_ids, lvl.edges)
            self._level_graphs[k] = g
        return g

    def _gateway_table(self, k: int) -> dict[tuple[int, int], tuple[int, int]]:
        """For level k >= 1: boundary physical edges between each pair of
        adjacent level-k clusters.  ``table[(ci, cj)] = (a, b)`` with
        ``a`` in ci and ``b`` in cj, chosen deterministically (smallest
        edge in canonical order)."""
        table = self._gateways.get(k)
        if table is not None:
            return table
        table = {}
        anc = self.h.ancestry(k)
        base_ids = self.h.levels[0].node_ids
        edges = self.h.levels[0].edges
        if edges.size:
            ui = np.searchsorted(base_ids, edges[:, 0])
            vi = np.searchsorted(base_ids, edges[:, 1])
            cu = anc[ui]
            cv = anc[vi]
            crossing = cu != cv
            for a, b, ca, cb in zip(
                edges[crossing, 0].tolist(),
                edges[crossing, 1].tolist(),
                cu[crossing].tolist(),
                cv[crossing].tolist(),
            ):
                if (ca, cb) not in table:
                    table[(ca, cb)] = (a, b)
                if (cb, ca) not in table:
                    table[(cb, ca)] = (b, a)
        self._gateways[k] = table
        return table

    def _members_mask(self, k: int, cluster_id: int) -> np.ndarray:
        return self.h.ancestry(k) == cluster_id

    # -- routing ----------------------------------------------------------------

    def common_level(self, s: int, d: int) -> int:
        """Lowest level m with cluster_of(s, m) == cluster_of(d, m).

        Returns ``num_levels + 1`` when the two nodes never share a
        cluster (disconnected hierarchy).
        """
        for m in range(self.h.num_levels + 1):
            if self.h.cluster_of(s, m) == self.h.cluster_of(d, m):
                return m
        return self.h.num_levels + 1

    def path(self, s: int, d: int) -> list[int] | None:
        """Full hierarchical route from ``s`` to ``d`` as level-0 IDs.

        Nodes that share no real cluster (capped hierarchies leave
        several top-level clusters) are routed at the *virtual global
        level*: the top-level cluster graph spans the network, mirroring
        the paper's single whole-network top cluster.  Returns None only
        when no route exists at all (different components).
        """
        if s == d:
            return [int(s)]
        m = self.common_level(s, d)
        if m > self.h.num_levels:
            m = self.h.num_levels + 1
        return self._route_within(int(s), int(d), m)

    def hop_count(self, s: int, d: int) -> int:
        """Hops along the hierarchical route; -1 if unreachable."""
        p = self.path(s, d)
        return len(p) - 1 if p is not None else -1

    # -- internals ---------------------------------------------------------------

    def _intra_bfs(self, s: int, d: int, k: int) -> list[int] | None:
        """Physical BFS between two nodes of the same level-k cluster."""
        if self.confine and k <= self.h.num_levels:
            mask = self._members_mask(k, self.h.cluster_of(s, k))
            p = bfs_path(self.g0, s, d, restrict_idx=mask)
            if p is not None:
                return p
        return bfs_path(self.g0, s, d)

    def _route_within(self, s: int, d: int, m: int) -> list[int] | None:
        """Route two physical nodes sharing a level-m cluster."""
        if s == d:
            return [s]
        if m <= 1:
            return self._intra_bfs(s, d, max(m, 1))
        cs = self.h.cluster_of(s, m - 1)
        cd = self.h.cluster_of(d, m - 1)
        if cs == cd:
            return self._route_within(s, d, m - 1)

        level_g = self._level_graph(m - 1)
        if self.confine and m <= self.h.num_levels:
            # Confine the cluster-graph search to siblings within the
            # shared level-m cluster.  At the virtual global level there
            # is no parent to confine to.
            parent = self.h.cluster_of(s, m)
            sibling_ids = self.h.clusters(m)[parent]
            mask = np.isin(level_g.node_ids, sibling_ids)
            cpath = bfs_path(level_g, cs, cd, restrict_idx=mask)
            if cpath is None:
                cpath = bfs_path(level_g, cs, cd)
        else:
            cpath = bfs_path(level_g, cs, cd)
        if cpath is None:
            # Hierarchy says they share a cluster but the cluster graph
            # is stale/inconsistent; fall back to flat routing.
            return bfs_path(self.g0, s, d)

        gateways = self._gateway_table(m - 1)
        full = [s]
        cur = s
        for ci, cj in zip(cpath, cpath[1:]):
            gw = gateways.get((ci, cj))
            if gw is None:
                return bfs_path(self.g0, s, d)
            a, b = gw
            seg = self._route_within(cur, a, m - 1)
            if seg is None:
                return bfs_path(self.g0, s, d)
            full.extend(seg[1:])
            if full[-1] != b:
                full.append(b)
            cur = b
        seg = self._route_within(cur, d, m - 1)
        if seg is None:
            return bfs_path(self.g0, s, d)
        full.extend(seg[1:])
        return full
