"""Batched CSR BFS kernels for the forwarding fabric.

``ForwardingFabric`` derives every next hop from multi-source BFS
floods: one flood per routing target set (a level-1 member, or a sibling
cluster's member set).  The original implementation ran one pure-Python
deque BFS per flood — at n=1000 that is ~1200 full-graph traversals and
dominated the kernel benchmarks by two orders of magnitude.

This module replaces the traversal with *labeled, level-synchronous*
array kernels over :class:`~repro.graphs.CompactGraph`'s CSR arrays:

* :func:`labeled_next_hop` runs many independent floods ("labels") at
  once.  Each BFS level expands the whole frontier — across all labels —
  with ``np.repeat`` over the CSR ``offsets``/``nbr`` arrays, and
  resolves first-visit ties with a reversed scatter (last write wins on
  the reversed arrays, i.e. *first* occurrence wins), so no per-node
  Python and no sorting anywhere in the hot loop.
* :func:`deque_next_hop` is the original deque BFS, kept verbatim as the
  reference oracle the equivalence tests (and ``mode="reference"``
  fabrics) run against.
* :func:`flood_rows_safe` is the invalidation rule for cross-step reuse
  (:class:`~repro.routing.fabric_cache.FabricCache`): given a flood's
  distance/next-hop rows and a batch of link events, it reports which
  rows provably survive the events bit-identically.

Bit-identity with the deque oracle holds by construction: a FIFO BFS
with all sources at distance 0 is level-synchronous, so the deque's
visit order within one level equals the frontier-expansion concatenation
order, and "first discoverer wins" picks the same parent either way.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs import CompactGraph

__all__ = [
    "labeled_next_hop",
    "single_next_hop",
    "deque_next_hop",
    "flood_rows_safe",
]


def labeled_next_hop(
    g: CompactGraph,
    sources_idx: np.ndarray,
    labels: np.ndarray,
    n_labels: int,
    restrict_mask: np.ndarray | None = None,
    needed: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run ``n_labels`` independent multi-source BFS floods in one pass.

    Parameters
    ----------
    sources_idx, labels:
        Parallel arrays: node *index* ``sources_idx[i]`` seeds the flood
        of label ``labels[i]`` (labels in ``0..n_labels-1``).  Seed order
        within a label fixes tie-breaking exactly as the deque oracle's
        seeding order does.
    restrict_mask:
        Optional confinement: ``(n,)`` bool shared by every label, or
        ``(n_labels, n)`` bool per label.  Sources are seeded regardless
        of the mask (matching the oracle); only *discovery* is masked.
    needed:
        Optional scoped-flood early stop: flat ``(n_labels * n,)`` bool
        marking, per label, the node set whose next hops the caller will
        actually read.  A label's flood halts once its needed set is
        fully discovered (or its component exhausted).  Rows are then
        only valid at needed columns: beyond the stop horizon ``dist``
        reads -1 for nodes a full flood would have reached — but every
        needed column matches the full flood bit-for-bit, and undiscovered
        nodes provably sit strictly beyond every needed node, which is
        what :func:`flood_rows_safe` relies on.

    Returns
    -------
    (next_hop, dist):
        ``(n_labels, n)`` int64 arrays.  ``next_hop[j, i]`` is the
        neighbor index of node ``i`` on a shortest path toward label
        ``j``'s source set (-1 for sources and unreachable nodes);
        ``dist[j, i]`` the hop distance (-1 unreachable).
    """
    n = g.n
    offsets, nbr = g._offsets, g._nbr
    sources_idx = np.asarray(sources_idx, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if sources_idx.shape != labels.shape:
        raise ValueError("sources_idx and labels must be parallel arrays")
    flat = int(n_labels) * n
    next_hop = np.full(flat, -1, dtype=np.int64)
    dist = np.full(flat, -1, dtype=np.int64)
    if sources_idx.size == 0 or n == 0:
        return next_hop.reshape(n_labels, n), dist.reshape(n_labels, n)
    mask2d = None
    if restrict_mask is not None:
        restrict_mask = np.asarray(restrict_mask, dtype=bool)
        if restrict_mask.ndim == 2:
            mask2d = restrict_mask.reshape(-1)
    remaining = None
    if needed is not None:
        seed_keys = labels * n + sources_idx
        remaining = needed.reshape(n_labels, n).sum(axis=1)
        seeded = needed[seed_keys]
        if seeded.any():
            remaining -= np.bincount(labels[seeded], minlength=n_labels)

    dist[labels * n + sources_idx] = 0
    f_nodes = sources_idx.copy()
    f_labels = labels.copy()
    level = 0
    while f_nodes.size:
        level += 1
        starts = offsets[f_nodes]
        counts = offsets[f_nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather every frontier node's CSR neighbor slice in frontier
        # order: position r within slice s lands at starts[s] + r.
        cum = np.cumsum(counts)
        pos = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
        pos += np.repeat(starts, counts)
        dst = nbr[pos]
        src = np.repeat(f_nodes, counts)
        keys = np.repeat(f_labels * n, counts) + dst
        if restrict_mask is not None:
            keep = restrict_mask[dst] if mask2d is None else mask2d[keys]
            keys, src = keys[keep], src[keep]
        unvisited = dist[keys] < 0
        keys, src = keys[unvisited], src[unvisited]
        if keys.size == 0:
            break
        # First-visit dedup without sorting: scatter the *reversed*
        # arrays so the first occurrence is the last (surviving) write.
        rkeys = keys[::-1]
        dist[rkeys] = level
        next_hop[rkeys] = src[::-1]
        # Positions whose write survived are the first occurrences, in
        # original concatenation order — exactly the deque visit order.
        ksel = keys[next_hop[keys] == src]
        f_labels = ksel // n
        f_nodes = ksel - f_labels * n
        if remaining is not None:
            hits = needed[ksel]
            if hits.any():
                remaining -= np.bincount(f_labels[hits], minlength=n_labels)
                live = remaining > 0
                if not live.all():
                    keep = live[f_labels]
                    f_nodes, f_labels = f_nodes[keep], f_labels[keep]
    return next_hop.reshape(n_labels, n), dist.reshape(n_labels, n)


def single_next_hop(
    g: CompactGraph,
    targets: np.ndarray,
    restrict_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One multi-source flood (ID-space targets) via the batched kernel.

    Drop-in for :func:`deque_next_hop` — same signature and results,
    returned as flat ``(n,)`` arrays.
    """
    t = np.asarray(targets, dtype=np.int64).reshape(-1)
    t_idx = np.searchsorted(g.node_ids, t)
    nh, dist = labeled_next_hop(
        g, t_idx, np.zeros(t_idx.size, dtype=np.int64), 1,
        restrict_mask=restrict_mask,
    )
    return nh[0], dist[0]


def deque_next_hop(
    g: CompactGraph,
    targets: np.ndarray,
    restrict_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference oracle: the original pure-Python deque BFS.

    For every node index: neighbor index on a shortest path toward the
    nearest target (-1 for targets themselves / unreachable), plus the
    hop distance.  With ``restrict_mask`` the flood stays inside the
    allowed node set (sources exempt), confining sibling-cluster routes
    to the shared parent cluster so descent is monotone.
    """
    next_hop = np.full(g.n, -1, dtype=np.int64)
    dist = np.full(g.n, -1, dtype=np.int64)
    q = deque()
    for t in np.asarray(targets, dtype=np.int64).reshape(-1):
        ti = int(np.searchsorted(g.node_ids, t))
        dist[ti] = 0
        q.append(ti)
    while q:
        u = q.popleft()
        for w in g.neighbors_idx(u):
            if dist[w] < 0 and (restrict_mask is None or restrict_mask[w]):
                dist[w] = dist[u] + 1
                next_hop[w] = u
                q.append(w)
    return next_hop, dist


def flood_rows_safe(
    dist: np.ndarray,
    next_hop: np.ndarray,
    ups_idx: np.ndarray,
    downs_idx: np.ndarray,
    restrict_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Which flood rows provably survive a batch of link events?

    A row (one label's ``dist``/``next_hop`` pair) is *safe* when
    re-running its BFS on the post-event graph provably yields the
    bit-identical result, so the cached arrays can be reused:

    * link **up** (u, v): safe iff ``dist[u] == dist[v]`` — BFS never
      traverses equal-level edges, so neither distances nor parents (nor
      discovery order) change; this covers both-unreached too.  Any
      distance gap is conservatively unsafe (a gap of 1 could re-order
      parent selection, a larger gap shortens paths).
    * link **down** (u, v): safe iff both endpoints were unreached, or
      both reached and the edge was not a BFS tree edge
      (``next_hop[deeper] != shallower``) — removing a non-parent
      candidate never changes the first-discoverer choice.
    * with ``restrict_mask`` (sources assumed inside the mask), events
      with either endpoint outside the mask are irrelevant: the edge
      could never be traversed.

    Parameters are index-space: ``ups_idx``/``downs_idx`` are ``(m, 2)``
    node-index pairs.  ``dist``/``next_hop`` may be ``(n,)`` or
    ``(rows, n)``; returns a ``(rows,)`` bool array.
    """
    dist = np.atleast_2d(dist)
    next_hop = np.atleast_2d(next_hop)
    safe = np.ones(dist.shape[0], dtype=bool)
    ups_idx = np.asarray(ups_idx, dtype=np.int64).reshape(-1, 2)
    downs_idx = np.asarray(downs_idx, dtype=np.int64).reshape(-1, 2)
    if ups_idx.size:
        u, v = ups_idx[:, 0], ups_idx[:, 1]
        ok = dist[:, u] == dist[:, v]
        if restrict_mask is not None:
            ok |= ~(restrict_mask[u] & restrict_mask[v])[None, :]
        safe &= ok.all(axis=1)
    if downs_idx.size:
        u, v = downs_idx[:, 0], downs_idx[:, 1]
        du, dv = dist[:, u], dist[:, v]
        both_unreached = (du == -1) & (dv == -1)
        tree = ((du - dv == 1) & (next_hop[:, u] == v[None, :])) | (
            (dv - du == 1) & (next_hop[:, v] == u[None, :])
        )
        ok = both_unreached | ((du >= 0) & (dv >= 0) & ~tree)
        if restrict_mask is not None:
            ok |= ~(restrict_mask[u] & restrict_mask[v])[None, :]
        safe &= ok.all(axis=1)
    return safe
