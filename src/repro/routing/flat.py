"""Flat (non-hierarchical) shortest-path routing baseline.

Every node knows a route to every other node — the O(|V|) routing-table
regime that hierarchical routing is designed to escape (Kleinrock &
Kamoun [7]).  Used as the comparison baseline for EXP-T9 and as the
ground-truth hop count for the hierarchical router's stretch tests.
"""

from __future__ import annotations

import numpy as np

from repro.graphs import CompactGraph, bfs_distances, bfs_path

__all__ = ["FlatRouter"]


class FlatRouter:
    """Link-state shortest-path routing over the physical graph.

    BFS results are cached per source, so repeated queries from the same
    node (common in handoff metering) cost O(1) after the first.
    """

    def __init__(self, g: CompactGraph):
        self.g = g
        self._dist_cache: dict[int, np.ndarray] = {}

    def distances_from(self, s: int) -> np.ndarray:
        """Hop distances from ``s`` to every node (-1 = unreachable)."""
        cached = self._dist_cache.get(s)
        if cached is None:
            cached = bfs_distances(self.g, s)
            self._dist_cache[s] = cached
        return cached

    def hop_count(self, s: int, d: int) -> int:
        """Shortest-path hop count; -1 if unreachable."""
        if s == d:
            return 0
        return int(self.distances_from(s)[self.g.index_of(d)])

    def path(self, s: int, d: int) -> list[int] | None:
        """Shortest path as a node-ID list, or None if unreachable."""
        return bfs_path(self.g, s, d)

    def table_size(self, v: int) -> int:
        """Routing-table entries at ``v``: one per other node."""
        self.g.index_of(v)  # validate
        return self.g.n - 1

    def clear_cache(self) -> None:
        """Drop all cached BFS results (after a topology change)."""
        self._dist_cache.clear()
