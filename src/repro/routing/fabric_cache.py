"""Cross-step reuse of forwarding flood state.

Section 2.1's maintenance argument: link state changes are *scoped* —
a level-0 link event is flooded only within the clusters whose routes it
can affect, so steady-state overhead per node stays O(alpha * L) instead
of O(n).  :class:`FabricCache` is the computational mirror of that
scoping: instead of rebuilding every flood from scratch each simulator
step, it consumes the step's :class:`~repro.radio.linkevents.LinkDiff`
plus the hierarchy's changed-cluster set and invalidates only the flood
rows those events can actually touch.

Invalidation rules (all conservative — reused rows are provably
bit-identical to a fresh build, ``tests/routing/test_fabric_cache.py``):

* a cluster is **dirty** at level k when any node's level-k ancestor
  changed between the two hierarchy snapshots (old and new cluster both
  count);
* an ``("intra", c1)`` record is dropped when ``c1`` is dirty at level 1
  (member set changed); otherwise rows are kept per the link-event rules
  of :func:`~repro.routing.bfs_kernels.flood_rows_safe` — and because
  intra floods are *scoped* (early-stopped once the cluster is covered),
  events far from the cluster read distance -1/-1 and leave its rows
  untouched, exactly the paper's locality;
* a ``("sib", k, parent)`` record is dropped when ``parent`` is dirty at
  level k+1 (the confining mask changed) or its child label set changed;
  surviving rows go stale when their child cluster is dirty at level k
  or the mask-aware event rules say so;
* the ``("top",)`` record behaves like a sib record without a mask;
* cached unrestricted floods (``_nh_cache`` cluster entries and the
  level-0 LRU) are kept only when their target set is clean and every
  event passes the row-safety rules.

Surviving records transfer *ownership* to the new fabric (arrays are
spliced in place when stale rows are recomputed), so the previous fabric
must not be used after ``update()``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.graphs import CompactGraph
from repro.hierarchy.levels import ClusteredHierarchy
from repro.radio.linkevents import LinkDiff
from repro.routing.bfs_kernels import flood_rows_safe
from repro.routing.forwarding import (
    L0_CACHE_ENTRIES,
    NH_CACHE_ENTRIES,
    ForwardingFabric,
)

__all__ = ["FabricCache", "FabricCacheStats"]


@dataclass
class FabricCacheStats:
    """Reuse accounting across ``update()`` calls."""

    updates: int = 0
    full_rebuilds: int = 0
    mass_invalidations: int = 0
    explicit_invalidations: int = 0
    records_reused: int = 0
    records_dropped: int = 0
    rows_reused: int = 0
    rows_stale: int = 0
    floods_reused: int = 0
    floods_dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for experiment notes / telemetry)."""
        return {k: int(v) for k, v in self.__dict__.items()}


@dataclass
class FabricCache:
    """Maintains a :class:`ForwardingFabric` across topology snapshots.

    ``update(h, g, diff)`` returns the fabric for the new snapshot,
    reusing every flood record of the previous one that the step's link
    events and cluster changes provably left bit-identical.  Passing
    ``diff=None`` (or changing the node set / hierarchy depth) forces a
    full rebuild; ``mode="reference"`` always rebuilds eagerly with the
    deque oracle, which gives tests a per-step ground truth.
    """

    mode: str = "vectorized"
    l0_cache_entries: int = L0_CACHE_ENTRIES
    nh_cache_entries: int = NH_CACHE_ENTRIES
    mass_invalidate_fraction: float = 1.0
    """Link-event budget before incremental carry is abandoned: when a
    step's diff carries more than this fraction of the node count in
    up/down events (a mass crash, a dense partition severing or healing
    at once), nearly every flood row fails the safety rules anyway —
    the per-record scan costs more than the rebuild it avoids, so the
    cache rebuilds from scratch instead.  Carry is *correct* at any
    diff size (the rules are conservative); this is purely a cost
    cutoff.  Set to ``inf`` to always carry."""
    fabric: ForwardingFabric | None = None
    stats: FabricCacheStats = field(default_factory=FabricCacheStats)
    _h: ClusteredHierarchy | None = field(default=None, repr=False)

    def invalidate(self) -> None:
        """Drop all cached flood state; the next ``update()`` rebuilds.

        Call when topology changed through a channel the link diff does
        not describe (e.g. restoring external state).  Safe at any time
        — a rebuild is always bit-identical to a carry."""
        if self.fabric is not None or self._h is not None:
            self.stats.explicit_invalidations += 1
        self.fabric = None
        self._h = None

    def update(self, h: ClusteredHierarchy, g: CompactGraph,
               diff: LinkDiff | None = None,
               dirty: list[set[int]] | None = None) -> ForwardingFabric:
        """Advance to a new snapshot; returns its forwarding fabric.

        Reuses every flood record the step's link events and cluster
        changes provably left bit-identical; the previous fabric must
        not be used afterwards (array ownership transfers).  Oversized
        diffs (see ``mass_invalidate_fraction``) rebuild eagerly.

        ``dirty`` lets the event-driven hierarchy plane share its
        per-level dirty-cluster sets
        (:meth:`repro.hierarchy.delta.HierarchyDelta.dirty_sets`) so the
        ancestry diff is not recomputed here; the format — and the
        resulting fabric — is identical to the internally computed one
        (``tests/routing/test_fabric_cache.py`` asserts the equality).
        """
        prev, prev_h = self.fabric, self._h
        self.stats.updates += 1
        massive = (
            diff is not None
            and len(diff.ups) + len(diff.downs)
            > self.mass_invalidate_fraction * g.node_ids.size
        )
        if massive and prev is not None:
            self.stats.mass_invalidations += 1
        fresh = (
            prev is None or prev_h is None or diff is None or massive
            or self.mode != "vectorized" or prev.mode != "vectorized"
            or not np.array_equal(prev.g0.node_ids, g.node_ids)
            or prev_h.num_levels != h.num_levels
        )
        if fresh:
            self.stats.full_rebuilds += 1
            fab = ForwardingFabric(h, g, mode=self.mode,
                                   l0_cache_entries=self.l0_cache_entries,
                                   nh_cache_entries=self.nh_cache_entries)
        else:
            inherited = self._carry(prev, prev_h, h, g, diff, dirty=dirty)
            fab = ForwardingFabric(h, g, l0_cache_entries=self.l0_cache_entries,
                                   nh_cache_entries=self.nh_cache_entries,
                                   _inherited=inherited)
        self.fabric, self._h = fab, h
        return fab

    def _carry(self, prev: ForwardingFabric, h_old: ClusteredHierarchy,
               h_new: ClusteredHierarchy, g: CompactGraph,
               diff: LinkDiff, dirty: list[set[int]] | None = None) -> dict:
        ids = g.node_ids
        num_levels = h_new.num_levels
        anc_new = [h_new.ancestry(k) for k in range(num_levels + 1)]
        if dirty is None:
            anc_old = [h_old.ancestry(k) for k in range(num_levels + 1)]
            dirty = [set() for _ in range(num_levels + 1)]
            for k in range(1, num_levels + 1):
                moved = anc_old[k] != anc_new[k]
                if moved.any():
                    dirty[k] = set(np.unique(anc_old[k][moved]).tolist())
                    dirty[k] |= set(np.unique(anc_new[k][moved]).tolist())

        def to_idx(pairs: np.ndarray) -> np.ndarray:
            if len(pairs) == 0:
                return np.empty((0, 2), dtype=np.int64)
            return np.searchsorted(ids, np.asarray(pairs, dtype=np.int64))

        ups_idx, downs_idx = to_idx(diff.ups), to_idx(diff.downs)

        # Unconsumed inherited records from the previous step chain
        # through (their stale flags accumulate).
        records = {k: v for k, v in prev._inherited.items()
                   if k not in (("l0",), ("nh",))}
        records.update(prev._records)
        inherited: dict = {}
        for key, rec in records.items():
            if key[0] == "intra":
                if key[1] in dirty[1]:
                    self.stats.records_dropped += 1
                    continue
                stale = ~flood_rows_safe(rec.dist, rec.next_hop,
                                         ups_idx, downs_idx)
            else:
                if key[0] == "sib":
                    k, mask = key[1], rec.mask
                    if key[2] in dirty[k + 1]:
                        self.stats.records_dropped += 1
                        continue
                    new_labels = np.unique(anc_new[k][mask])
                else:  # ("top",)
                    k, mask = num_levels, None
                    new_labels = np.unique(anc_new[k])
                if not np.array_equal(new_labels, rec.label_ids):
                    self.stats.records_dropped += 1
                    continue
                label_dirty = np.array(
                    [ck in dirty[k] for ck in rec.label_ids.tolist()],
                    dtype=bool)
                stale = label_dirty | ~flood_rows_safe(
                    rec.dist, rec.next_hop, ups_idx, downs_idx,
                    restrict_mask=mask)
            if rec.stale is not None:
                stale |= rec.stale
            self.stats.records_reused += 1
            self.stats.rows_reused += int((~stale).sum())
            self.stats.rows_stale += int(stale.sum())
            rec.stale = stale if stale.any() else None
            inherited[key] = rec

        nh_keep: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        for (k, ck), (nh_arr, d_arr) in prev._nh_cache.items():
            if ck not in dirty[k] and flood_rows_safe(
                    d_arr, nh_arr, ups_idx, downs_idx)[0]:
                nh_keep[(k, ck)] = (nh_arr, d_arr)
                self.stats.floods_reused += 1
            else:
                self.stats.floods_dropped += 1
        l0_keep: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        for dst, (nh_arr, d_arr) in prev._l0_cache.items():
            if flood_rows_safe(d_arr, nh_arr, ups_idx, downs_idx)[0]:
                l0_keep[dst] = (nh_arr, d_arr)
                self.stats.floods_reused += 1
            else:
                self.stats.floods_dropped += 1
        if nh_keep:
            inherited[("nh",)] = nh_keep
        if l0_keep:
            inherited[("l0",)] = l0_keep
        return inherited
