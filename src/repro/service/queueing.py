"""Backpressure primitives for the open-loop service front-end.

Both classes operate in *simulated* time and are fully deterministic:
given the same arrival sequence and service times they produce the same
admissions, drops, start times, and completions — independent of how
the wall-clock dispatcher threads interleave.

:class:`TokenBucket` sheds load *before* queueing (admission control);
:class:`ServiceQueue` is a work-conserving multi-server FIFO queue with
a bounded backlog — requests that arrive to a full backlog are dropped
(backpressure), everything else is assigned a deterministic start and
completion time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["TokenBucket", "ServiceQueue", "QueueDecision"]


@dataclass
class TokenBucket:
    """Deterministic token-bucket admission controller.

    ``rate`` tokens refill per simulated second up to ``burst`` (one
    second of tokens by default); each admitted request spends one.
    ``rate <= 0`` admits everything (admission control off).
    """

    rate: float
    burst: float | None = None
    _tokens: float = field(default=0.0, repr=False)
    _t: float = field(default=0.0, repr=False)
    shed: int = 0
    """Requests rejected by the bucket so far."""

    def __post_init__(self):
        if self.burst is None:
            self.burst = max(float(self.rate), 1.0)
        self._tokens = float(self.burst)

    def admit(self, t: float) -> bool:
        """Spend one token at time ``t``; False sheds the request."""
        if self.rate <= 0:
            return True
        if t > self._t:
            self._tokens = min(self.burst,
                               self._tokens + (t - self._t) * self.rate)
            self._t = t
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.shed += 1
        return False


@dataclass(frozen=True)
class QueueDecision:
    """Outcome of submitting one request to the queue."""

    accepted: bool
    """False when the bounded backlog was full (request dropped)."""
    start: float = 0.0
    """Service start time (== arrival when a worker was free)."""
    completion: float = 0.0
    """Service completion time; ``completion - arrival`` is the
    request's sojourn latency."""


class ServiceQueue:
    """Work-conserving multi-server FIFO queue in simulated time.

    Requests must be submitted in non-decreasing arrival order.  Each
    accepted request is assigned to the earliest-free server — which,
    for in-order arrivals, yields exactly the start times of a single
    FIFO backlog feeding ``workers`` servers — so start and completion
    times are known at submission even for requests that wait.
    """

    def __init__(self, workers: int, capacity: int):
        if workers < 1:
            raise ValueError("need at least one worker")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._free = [0.0] * int(workers)
        # Start times of accepted-but-not-yet-started requests; starts
        # are non-decreasing (see submit), so this stays sorted.
        self._pending: deque[float] = deque()
        self.dropped = 0
        """Requests dropped on a full backlog so far."""

    def depth(self, t: float) -> int:
        """Backlog size at time ``t`` (accepted, not yet started)."""
        while self._pending and self._pending[0] <= t:
            self._pending.popleft()
        return len(self._pending)

    def submit(self, t: float, service_time: float) -> QueueDecision:
        """Offer a request arriving at ``t`` needing ``service_time``."""
        waiting = self.depth(t)
        i = min(range(len(self._free)), key=self._free.__getitem__)
        start = max(t, self._free[i])
        if start > t:
            if waiting >= self.capacity:
                self.dropped += 1
                return QueueDecision(accepted=False)
            self._pending.append(start)
        self._free[i] = start + max(float(service_time), 0.0)
        return QueueDecision(accepted=True, start=start,
                             completion=self._free[i])
