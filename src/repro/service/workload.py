"""Open-loop arrival generation for the location-service front-end.

The generator turns a configured arrival process into a concrete,
deterministic request stream: each metered step it draws the step's
arrival count, arrival offsets, request kinds (lookup vs. update),
endpoints, and one delivery seed per request — all from a single
dedicated RNG stream, so the whole workload replays bit-identically for
a given scenario seed regardless of how the dispatcher later schedules
the work across threads.

Processes
---------
``"poisson"``
    Homogeneous Poisson arrivals at ``rate`` requests per simulated
    second, uniform endpoints.
``"diurnal"``
    Poisson arrivals whose rate is sinusoidally modulated in time
    (period :data:`DIURNAL_PERIOD` seconds, relative amplitude
    :data:`DIURNAL_AMPLITUDE`) — the load-varying regime adaptive
    location-management schemes are designed against.
``"hotspot"``
    Poisson arrivals whose *targets* follow a Zipf law (exponent
    :data:`ZIPF_EXPONENT`) over a hidden random permutation of the
    node IDs: a few nodes soak up most lookups, as in real rendezvous
    workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ARRIVAL_PROCESSES",
    "DIURNAL_AMPLITUDE",
    "DIURNAL_PERIOD",
    "ZIPF_EXPONENT",
    "Request",
    "WorkloadGenerator",
]

ARRIVAL_PROCESSES = ("poisson", "diurnal", "hotspot")
"""Recognized ``arrival_process`` names."""

DIURNAL_PERIOD = 40.0
"""Diurnal modulation period in simulated seconds."""

DIURNAL_AMPLITUDE = 0.5
"""Relative amplitude of the diurnal rate swing (peak = 1.5x mean)."""

ZIPF_EXPONENT = 1.3
"""Zipf exponent of the hotspot target distribution."""


@dataclass(frozen=True)
class Request:
    """One service arrival, fully determined at generation time."""

    index: int
    """Global arrival counter (0-based, in arrival order)."""
    step: int
    """Metered step the arrival falls in."""
    t: float
    """Absolute arrival time in simulated seconds."""
    kind: str
    """``"lookup"`` or ``"update"``."""
    source: int
    """Requesting node (lookups) / registering node (updates)."""
    target: int
    """Node being looked up; equals ``source`` for updates."""
    delivery_seed: int
    """Seed of this request's private lossy-channel RNG, so retries
    replay identically no matter which dispatcher thread runs them."""


class WorkloadGenerator:
    """Deterministic per-step arrival sampler.

    Parameters
    ----------
    n:
        Node population (endpoints are drawn from ``range(n)``).
    rate:
        Mean arrival rate in requests per simulated second.
    process:
        One of :data:`ARRIVAL_PROCESSES`.
    dt:
        Step duration in simulated seconds.
    update_fraction:
        Fraction of arrivals that are updates rather than lookups.
    rng:
        Dedicated generator (the engine's ``"service"`` stream).
    """

    def __init__(self, n: int, rate: float, process: str = "poisson",
                 dt: float = 1.0, update_fraction: float = 0.2,
                 rng: np.random.Generator | None = None):
        if process not in ARRIVAL_PROCESSES:
            known = ", ".join(ARRIVAL_PROCESSES)
            raise ValueError(f"unknown arrival process {process!r}; "
                             f"known: {known}")
        if rate < 0:
            raise ValueError("arrival rate must be non-negative")
        self.n = int(n)
        self.rate = float(rate)
        self.process = process
        self.dt = float(dt)
        self.update_fraction = float(update_fraction)
        self._rng = np.random.default_rng() if rng is None else rng
        self._count = 0
        # Hidden hotspot identity: which physical node is rank r of the
        # Zipf law.  Drawn once so the hot set is stable across a run.
        self._perm = (self._rng.permutation(self.n)
                      if process == "hotspot" else None)

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at simulated time ``t``."""
        if self.process != "diurnal":
            return self.rate
        phase = 2.0 * math.pi * t / DIURNAL_PERIOD
        return self.rate * (1.0 + DIURNAL_AMPLITUDE * math.sin(phase))

    def _draw_target(self, source: int) -> int:
        """One lookup target != ``source`` under the process's law."""
        while True:
            if self._perm is not None:
                rank = (int(self._rng.zipf(ZIPF_EXPONENT)) - 1) % self.n
                target = int(self._perm[rank])
            else:
                target = int(self._rng.integers(0, self.n))
            if target != source:
                return target

    def step(self, step: int, t0: float) -> list[Request]:
        """Generate the arrivals of the step covering ``[t0, t0 + dt)``.

        Arrivals are returned sorted by arrival time; every random
        choice (count, offsets, kinds, endpoints, delivery seeds) comes
        from the generator's own stream, in a fixed order.
        """
        lam = self.rate_at(t0 + 0.5 * self.dt) * self.dt
        count = int(self._rng.poisson(lam)) if lam > 0 else 0
        out: list[Request] = []
        if count == 0:
            return out
        offsets = np.sort(self._rng.random(count)) * self.dt
        for i in range(count):
            is_update = float(self._rng.random()) < self.update_fraction
            source = int(self._rng.integers(0, self.n))
            target = source if is_update else self._draw_target(source)
            seed = int(self._rng.integers(0, 2**63))
            out.append(Request(
                index=self._count, step=int(step),
                t=float(t0 + offsets[i]),
                kind="update" if is_update else "lookup",
                source=source, target=target, delivery_seed=seed,
            ))
            self._count += 1
        return out
