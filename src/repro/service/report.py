"""Latency/throughput accounting for the service front-end.

:class:`ServiceReport` is what ``SimResult.extras["service"]`` holds
after a server-mode run: request counts by fate (shed, dropped, served
directly, rescued by the expanding-ring fallback, failed), per-step
series for offered load / shedding / queue depth, the full sojourn
latency sample, and the dispatcher's measured wall-clock cost.  All
latency quantities are in *simulated* seconds (packets charged through
the queueing model at ``service_hop_time`` per packet); wall time is
reported separately and never feeds a simulated metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ServiceReport"]


@dataclass
class ServiceReport:
    """Outcome of one open-loop service run."""

    duration: float = 0.0
    """Metered simulated seconds the workload ran for."""
    offered: int = 0
    """Total arrivals generated (lookups + updates)."""
    shed: int = 0
    """Arrivals rejected by the token-bucket admission controller."""
    dropped: int = 0
    """Admitted arrivals dropped on a full service queue."""
    lookups: int = 0
    """Lookup arrivals admitted into the queue."""
    updates: int = 0
    """Update arrivals admitted into the queue."""
    direct_hits: int = 0
    """Lookups resolved by the hierarchical probe path."""
    fallback_hits: int = 0
    """Lookups rescued by the expanding-ring flood."""
    failed: int = 0
    """Lookups that failed outright (unreachable target)."""
    packets: int = 0
    """Control packets charged across all served requests."""
    latencies: list[float] = field(default_factory=list)
    """Per-request sojourn latency (queue wait + service), simulated
    seconds, in arrival order over every queued request."""
    waits: list[float] = field(default_factory=list)
    """Per-request queue-wait component of the sojourn, same order."""
    arrivals_series: list[int] = field(default_factory=list)
    """Offered arrivals per metered step."""
    shed_series: list[int] = field(default_factory=list)
    """Admission-shed count per metered step."""
    dropped_series: list[int] = field(default_factory=list)
    """Queue-full drops per metered step."""
    queue_depth_series: list[int] = field(default_factory=list)
    """Backlog depth sampled at each step boundary."""
    wall_seconds: float = 0.0
    """Measured wall-clock time spent inside the thread-pool
    dispatcher (observation only, never a simulated quantity)."""

    @property
    def served(self) -> int:
        """Requests that entered service (admitted and not dropped)."""
        return len(self.latencies)

    @property
    def admitted(self) -> int:
        """Arrivals past admission control (queued or dropped)."""
        return self.offered - self.shed

    @property
    def throughput(self) -> float:
        """Served requests per simulated second."""
        return self.served / self.duration if self.duration > 0 else 0.0

    @property
    def peak_queue_depth(self) -> int:
        """Deepest backlog observed at a step boundary."""
        return max(self.queue_depth_series, default=0)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile sojourn latency (NaN when idle)."""
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def p50(self) -> float:
        """Median sojourn latency in simulated seconds."""
        return self.latency_percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile sojourn latency in simulated seconds."""
        return self.latency_percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile sojourn latency in simulated seconds."""
        return self.latency_percentile(99.0)

    @property
    def mean_latency(self) -> float:
        """Mean sojourn latency in simulated seconds (NaN when idle)."""
        if not self.latencies:
            return float("nan")
        return float(np.mean(self.latencies))

    @property
    def mean_wait(self) -> float:
        """Mean queue-wait component in simulated seconds."""
        if not self.waits:
            return float("nan")
        return float(np.mean(self.waits))

    @property
    def success_rate(self) -> float:
        """Fraction of served lookups that resolved (direct or flood)."""
        total = self.direct_hits + self.fallback_hits + self.failed
        if total == 0:
            return 1.0
        return (self.direct_hits + self.fallback_hits) / total

    def latency_histogram(self, bins: int = 20) -> tuple[list[int], list[float]]:
        """Histogram (counts, bin edges) of the sojourn latencies."""
        if not self.latencies:
            return [], []
        counts, edges = np.histogram(np.asarray(self.latencies), bins=bins)
        return counts.astype(int).tolist(), edges.tolist()

    def to_metrics(self) -> dict[str, float]:
        """Flat scalar summary for manifests / sweep reports."""
        return {
            "service_offered": float(self.offered),
            "service_served": float(self.served),
            "service_shed": float(self.shed),
            "service_dropped": float(self.dropped),
            "service_throughput": float(self.throughput),
            "service_p50_latency": float(self.p50),
            "service_p95_latency": float(self.p95),
            "service_p99_latency": float(self.p99),
            "service_mean_wait": float(self.mean_wait),
            "service_peak_queue_depth": float(self.peak_queue_depth),
            "service_success_rate": float(self.success_rate),
            "service_wall_seconds": float(self.wall_seconds),
        }
