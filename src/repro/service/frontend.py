"""The open-loop service front-end: workload in, SLO report out.

:class:`ServiceFrontend` ties the pieces together each metered step:

1. the :class:`~repro.service.workload.WorkloadGenerator` draws the
   step's arrivals from the dedicated ``"service"`` RNG stream,
2. the :class:`~repro.service.queueing.TokenBucket` sheds arrivals past
   the configured admission rate,
3. admitted requests resolve against the live simulator snapshot
   through the batch engine — CHLM probes via one per-step
   :class:`~repro.core.batch_query.BatchResolver` (lossless steps are
   pure vectorized array ops; lossy steps walk batch-precomputed probe
   plans on the thread pool with per-request delivery engines) or GLS
   lookups via :meth:`repro.gls.service.GridLocationService.query_cost`
   on the pool — measuring only *wall time*; every simulated quantity
   (packets, retries) is computed from per-request RNGs seeded at
   generation time, so results are bit-identical however threads
   interleave (and identical to the historical per-request scalar
   path, the oracle `tests/service/test_frontend.py` checks against),
4. the :class:`~repro.service.queueing.ServiceQueue` converts each
   request's packet count into service time
   (``(1 + packets) * service_hop_time``) and assigns deterministic
   start/completion times; arrivals to a full backlog are dropped.

The front-end is a *pure observer*: it owns its RNG streams and builds
its own per-request delivery engines, so enabling it never perturbs the
run's core metrics.  Dropped requests are rejected before service and
charge no simulated packets.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.service.queueing import ServiceQueue, TokenBucket
from repro.service.report import ServiceReport
from repro.service.workload import Request, WorkloadGenerator

__all__ = ["ServiceFrontend"]


class ServiceFrontend:
    """Drives one scenario's open-loop workload against live state.

    Parameters
    ----------
    scenario:
        The run's :class:`~repro.sim.scenario.Scenario`; the service
        fields (``arrival_rate`` etc.) configure every stage.
    rng:
        The engine's dedicated ``"service"`` stream.
    delivery:
        The engine's shared :class:`~repro.faults.DeliveryEngine`, or
        None on a lossless run.  Only its *current loss model* is read
        (so chaos loss bursts apply); all service-side channel draws
        come from per-request private RNGs, never the shared stream.
    """

    def __init__(self, scenario, rng: np.random.Generator, delivery=None):
        sc = scenario
        self.sc = sc
        self._workload = WorkloadGenerator(
            n=sc.n, rate=sc.arrival_rate, process=sc.arrival_process,
            dt=sc.dt, update_fraction=sc.service_update_fraction, rng=rng,
        )
        self._bucket = TokenBucket(rate=sc.admission_rate)
        self._queue = ServiceQueue(sc.service_workers,
                                   sc.service_queue_capacity)
        self._shared_delivery = delivery
        self._report = ServiceReport(duration=sc.duration)
        self._gls = None
        self._pool = None

    # -- lifecycle ----------------------------------------------------------------

    def __getstate__(self):
        """Checkpoint support: the thread pool is wall-clock machinery,
        never state — drop it and rebuild lazily after restore."""
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.sc.service_workers,
                thread_name_prefix="repro-serve",
            )
        return self._pool

    def close(self) -> None:
        """Shut the dispatcher pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- per-step processing --------------------------------------------------------

    def process_step(self, snap) -> None:
        """Generate, admit, resolve, and queue one step's arrivals."""
        sc = self.sc
        rep = self._report
        t0 = snap.step * sc.dt
        requests = self._workload.step(snap.step, t0)
        rep.offered += len(requests)
        rep.arrivals_series.append(len(requests))
        shed0 = self._bucket.shed
        drop0 = self._queue.dropped
        admitted = [r for r in requests if self._bucket.admit(r.t)]
        if sc.service_scheme == "gls":
            self._observe_gls(snap)
        resolved = self._dispatch(admitted, snap)
        for req, (packets, outcome) in zip(admitted, resolved):
            service_time = (1 + packets) * sc.service_hop_time
            decision = self._queue.submit(req.t, service_time)
            if not decision.accepted:
                continue  # dropped before service: nothing charged
            rep.latencies.append(decision.completion - req.t)
            rep.waits.append(decision.start - req.t)
            rep.packets += packets
            if req.kind == "update":
                rep.updates += 1
            else:
                rep.lookups += 1
                if outcome == "direct":
                    rep.direct_hits += 1
                elif outcome == "fallback":
                    rep.fallback_hits += 1
                else:
                    rep.failed += 1
        rep.shed_series.append(self._bucket.shed - shed0)
        rep.dropped_series.append(self._queue.dropped - drop0)
        rep.queue_depth_series.append(self._queue.depth(t0 + sc.dt))

    def finalize(self) -> ServiceReport:
        """Close the dispatcher and return the finished report."""
        rep = self._report
        rep.shed = self._bucket.shed
        rep.dropped = self._queue.dropped
        self.close()
        return rep

    # -- resolution ----------------------------------------------------------------

    def _dispatch(self, admitted: list[Request], snap) -> list[tuple[int, str]]:
        """Resolve every admitted request through the batch engine.

        CHLM requests run through one per-step
        :class:`~repro.core.batch_query.BatchResolver`: lossless steps
        are pure array ops (no thread pool at all), lossy steps keep the
        per-request delivery engines but walk batch-precomputed probe
        plans on the pool.  GLS keeps the scalar per-request path (its
        side-car service is stateful).  Wall time is metered into the
        report; the returned ``(packets, outcome)`` pairs are
        order-preserving and fully deterministic (per-request RNGs,
        read-only snapshot)."""
        if not admitted:
            return []
        loss = (self._shared_delivery.loss
                if self._shared_delivery is not None else None)
        retry = self.sc.retry_policy() if loss is not None else None

        t_wall = time.perf_counter()
        if self.sc.service_scheme == "gls":
            def work(req: Request) -> tuple[int, str]:
                return self._resolve(req, snap, loss, retry)

            out = list(self._ensure_pool().map(work, admitted))
        else:
            out = self._dispatch_chlm(admitted, snap, loss, retry)
        self._report.wall_seconds += time.perf_counter() - t_wall
        return out

    def _dispatch_chlm(
        self, admitted: list[Request], snap, loss, retry
    ) -> list[tuple[int, str]]:
        from repro.core.batch_query import BatchResolver
        from repro.faults import expanding_ring_cost

        sc = self.sc
        resolver = BatchResolver(snap.hierarchy, snap.assignment,
                                 snap.hop_fn, hash_fn=sc.hash_fn)
        upd = [i for i, r in enumerate(admitted) if r.kind == "update"]
        look = [i for i, r in enumerate(admitted) if r.kind != "update"]
        targets = np.fromiter((admitted[i].target for i in upd),
                              dtype=np.int64, count=len(upd))
        src = np.fromiter((admitted[i].source for i in look),
                          dtype=np.int64, count=len(look))
        dst = np.fromiter((admitted[i].target for i in look),
                          dtype=np.int64, count=len(look))
        out: list[tuple[int, str] | None] = [None] * len(admitted)
        if loss is None:
            ucosts = resolver.update_plans(targets).costs()
            for j, i in enumerate(upd):
                out[i] = (int(ucosts[j]), "update")
            res = resolver.resolve(src, dst)
            packets = res.packets
            hit = res.hits
        else:
            uplans = resolver.update_plans(targets)
            lplans = resolver.plans(src, dst)
            pos = {i: j for j, i in enumerate(upd)}
            pos.update({i: j for j, i in enumerate(look)})

            def work(i: int):
                req = admitted[i]
                delivery = self._delivery_for(req, loss, retry)
                if req.kind == "update":
                    return uplans.walk(pos[i], delivery), 0
                pkts, hit_level, _, _ = lplans.walk(pos[i], delivery)
                return pkts, hit_level

            walked = list(self._ensure_pool().map(work, range(len(admitted))))
            for i in upd:
                out[i] = (walked[i][0], "update")
            packets = np.fromiter((walked[i][0] for i in look),
                                  dtype=np.int64, count=len(look))
            hit = np.fromiter((walked[i][1] >= 0 for i in look),
                              dtype=bool, count=len(look))
        misses = np.flatnonzero(~hit)
        target_hops = np.zeros(len(look), dtype=np.int64)
        if misses.size:
            target_hops[misses] = resolver.hops(src[misses], dst[misses])
        for j, i in enumerate(look):
            pkts = int(packets[j])
            if hit[j]:
                out[i] = (pkts, "direct")
            elif target_hops[j] > 0:
                flood = expanding_ring_cost(
                    int(target_hops[j]), sc.n, sc.density, sc.r_tx)
                out[i] = (pkts + flood, "fallback")
            else:
                out[i] = (pkts, "failed")
        return out

    def _delivery_for(self, req: Request, loss, retry):
        if loss is None:
            return None
        from repro.faults import DeliveryEngine

        return DeliveryEngine(
            loss=loss, retry=retry,
            rng=np.random.default_rng(req.delivery_seed),
        )

    def _resolve(self, req: Request, snap, loss, retry) -> tuple[int, str]:
        """One request against the snapshot: (packets charged, outcome).

        Outcomes: ``"update"``, ``"direct"``, ``"fallback"`` (rescued by
        the expanding-ring flood), ``"failed"`` (unreachable)."""
        delivery = self._delivery_for(req, loss, retry)
        if req.kind == "update":
            return self._update_packets(req.target, snap, delivery), "update"
        s, d = req.source, req.target
        if self.sc.service_scheme == "gls":
            packets, hit = self._gls_lookup(s, d, snap, delivery)
        else:
            from repro.core.query import resolve

            qr = resolve(snap.hierarchy, snap.assignment, s, d, snap.hop_fn,
                         hash_fn=self.sc.hash_fn, delivery=delivery)
            packets, hit = qr.packets, qr.hit_level >= 0
        if hit:
            return packets, "direct"
        target_hops = snap.hop_fn(s, d)
        if target_hops > 0:
            from repro.faults import expanding_ring_cost

            packets += expanding_ring_cost(
                target_hops, self.sc.n, self.sc.density, self.sc.r_tx)
            return packets, "fallback"
        return packets, "failed"

    def _update_packets(self, d: int, snap, delivery) -> int:
        """Re-registration cost: one message from ``d`` to each of its
        current location servers (per level)."""
        packets = 0
        if self.sc.service_scheme == "gls":
            assignment = self._gls.assignment
            entries = (assignment.servers_of(d).items()
                       if assignment is not None else ())
            for level, servers in entries:
                for srv in servers:
                    packets += self._send(d, srv, level, snap, delivery)
            return packets
        from repro.core.servers import lm_levels

        for level in range(2, lm_levels(snap.hierarchy) + 1):
            srv = snap.assignment.servers.get((d, level))
            if srv is None:
                continue
            packets += self._send(d, srv, level, snap, delivery)
        return packets

    def _send(self, u: int, v: int, level: int, snap, delivery) -> int:
        hops = max(snap.hop_fn(u, v), 0)
        if delivery is None:
            return hops
        return delivery.send(hops, level=level).packets

    # -- GLS scheme ----------------------------------------------------------------

    def _observe_gls(self, snap) -> None:
        """Advance the side-car Grid Location Service to this snapshot
        (its own maintenance is not charged to service requests)."""
        if self._gls is None:
            from repro.geometry.region import SquareRegion
            from repro.gls import GridHierarchy, GridLocationService

            disc = self.sc.region
            square = SquareRegion(side=disc.diameter,
                                  origin=disc.center - disc.radius)
            grid = GridHierarchy.for_region(square, l=2.0 * self.sc.r_tx)
            self._gls = GridLocationService(grid=grid,
                                            node_ids=np.arange(self.sc.n))
        self._gls.observe(snap.positions, snap.hop_fn)

    def _gls_lookup(self, s: int, d: int, snap, delivery) -> tuple[int, bool]:
        """GLS resolution: the grid query's packet charge routed (as one
        round trip) through the request's lossy channel."""
        cost = self._gls.query_cost(s, d, snap.positions, snap.hop_fn)
        if cost < 0:
            return 0, False
        if delivery is None:
            return cost, True
        out = delivery.send(cost)
        return out.packets, out.delivered
