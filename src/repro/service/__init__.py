"""Open-loop location-service front-end ("server mode").

The paper meters handoff overhead per mobility event; a deployed
location service additionally faces *open-loop load* — lookups and
updates arrive whether or not the last one finished.  This package
turns the GLS/CHLM cores into such a service: a deterministic workload
generator (:mod:`repro.service.workload`), token-bucket admission and a
bounded multi-server queue (:mod:`repro.service.queueing`), a
thread-pool front-end resolving requests against live simulator state
(:mod:`repro.service.frontend`), and the resulting latency/throughput
SLO report (:mod:`repro.service.report`).

Enable it by setting ``Scenario.arrival_rate > 0`` (see
``repro serve`` in the CLI); the run's ``SimResult.extras["service"]``
then holds the :class:`~repro.service.report.ServiceReport`.  With the
service off, the engine is bit-identical to one without this package —
the same standing contract every fault feature in this repo obeys.
See docs/SERVICE.md.
"""

from repro.service.frontend import ServiceFrontend
from repro.service.queueing import QueueDecision, ServiceQueue, TokenBucket
from repro.service.report import ServiceReport
from repro.service.workload import (
    ARRIVAL_PROCESSES,
    Request,
    WorkloadGenerator,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "QueueDecision",
    "Request",
    "ServiceFrontend",
    "ServiceQueue",
    "ServiceReport",
    "TokenBucket",
    "WorkloadGenerator",
]
