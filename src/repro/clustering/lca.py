"""Linked Cluster Algorithm (LCA) election — Section 2.2 of the paper.

The election rule: a node ``v`` is *elected* clusterhead by a node ``u``
iff ``v``'s ID is the largest in the closed neighborhood of ``u`` (``u``
itself included).  The clusterhead set is the image of this "elected
head" map — which covers both cases of Fig. 1: node 97 (largest in its
own neighborhood, elects itself) and node 68 (not largest in its own
neighborhood, but largest in node 63's).

Cluster affiliation: a clusterhead anchors its own cluster; every other
node joins the cluster of the head it elected.  This yields a partition
of the node set where every member is within one hop of its head.

The paper applies this rule recursively on the level-k topology with the
same IDs (asynchronous LCA / ALCA); recursion lives in
:mod:`repro.hierarchy`.  Here we implement one level, vectorized: the
kernel is a few ``np.maximum.at`` / ``np.add.at`` scatter ops over the
edge array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Election", "elect"]


@dataclass(frozen=True)
class Election:
    """Result of one LCA election round on a single level.

    All per-node arrays are aligned with ``node_ids`` (which is sorted).

    Attributes
    ----------
    node_ids:
        Sorted unique node IDs participating at this level.
    elected_head:
        For each node ``u``, the ID with maximum value in ``u``'s closed
        neighborhood — the head ``u`` *elects* (possibly ``u`` itself).
    member_of:
        Cluster affiliation: the node's own ID if it is a clusterhead,
        otherwise ``elected_head``.  Defines the cluster partition.
    elector_count:
        Number of *neighbors* that elected this node (self-election not
        counted) — the ALCA state of Fig. 3.
    clusterheads:
        Sorted IDs of elected clusterheads (image of ``elected_head``).
    """

    node_ids: np.ndarray
    elected_head: np.ndarray
    member_of: np.ndarray
    elector_count: np.ndarray
    clusterheads: np.ndarray

    # -- mapping helpers -----------------------------------------------------

    def index_of(self, ids) -> np.ndarray:
        """Positions of ``ids`` within ``node_ids`` (must all be present)."""
        ids_arr = np.asarray(ids, dtype=np.int64)
        idx = np.searchsorted(self.node_ids, ids_arr)
        if np.any(idx >= len(self.node_ids)) or np.any(
            self.node_ids[np.minimum(idx, len(self.node_ids) - 1)] != ids_arr
        ):
            raise KeyError("some ids are not nodes of this level")
        return idx

    def head_of(self, v: int) -> int:
        """Cluster affiliation of node ``v`` (its own ID for heads)."""
        return int(self.member_of[self.index_of([v])[0]])

    def is_clusterhead(self, v: int) -> bool:
        """Whether ``v`` was elected clusterhead this round."""
        i = np.searchsorted(self.clusterheads, v)
        return i < len(self.clusterheads) and self.clusterheads[i] == v

    def state_of(self, v: int) -> int:
        """ALCA state of ``v``: how many neighbors elected it (Fig. 3)."""
        return int(self.elector_count[self.index_of([v])[0]])

    def clusters(self) -> dict[int, np.ndarray]:
        """Partition ``{head_id: sorted member ids (head included)}``."""
        order = np.argsort(self.member_of, kind="stable")
        heads, starts = np.unique(self.member_of[order], return_index=True)
        groups = np.split(self.node_ids[order], starts[1:])
        return {int(h): np.sort(g) for h, g in zip(heads, groups)}

    @property
    def n_clusters(self) -> int:
        return int(len(self.clusterheads))


def elect(node_ids, edges) -> Election:
    """Run one LCA election on the level graph ``(node_ids, edges)``.

    Parameters
    ----------
    node_ids:
        Iterable of unique integer node IDs (any values; the election
        compares them numerically, as in ID-based clustering).
    edges:
        ``(m, 2)`` array of undirected edges given as ID pairs.  Edges
        must reference IDs present in ``node_ids``; self-loops are
        rejected.

    Returns
    -------
    Election

    Notes
    -----
    Complexity is O(n log n + m) — one sort for ID lookup plus scatter
    passes over the edge array.
    """
    ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
    if ids.size == 0:
        raise ValueError("election requires at least one node")
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size and np.any(e[:, 0] == e[:, 1]):
        raise ValueError("self-loops are not valid links")

    # Compact indices for scatter ops.
    if e.size:
        ui = np.searchsorted(ids, e[:, 0])
        vi = np.searchsorted(ids, e[:, 1])
        bad = (
            (ui >= ids.size)
            | (vi >= ids.size)
            | (ids[np.minimum(ui, ids.size - 1)] != e[:, 0])
            | (ids[np.minimum(vi, ids.size - 1)] != e[:, 1])
        )
        if np.any(bad):
            raise ValueError("edges reference ids not in node_ids")
    else:
        ui = vi = np.empty(0, dtype=np.int64)

    # elected_head[u] = max ID over the closed neighborhood of u.
    elected = ids.copy()
    if e.size:
        np.maximum.at(elected, ui, ids[vi])
        np.maximum.at(elected, vi, ids[ui])

    clusterheads = np.unique(elected)

    # Affiliation: clusterheads anchor their own cluster.
    is_head = np.isin(ids, clusterheads, assume_unique=True)
    member_of = np.where(is_head, ids, elected)

    # ALCA state: number of neighbors that elected this node.
    elector_count = np.zeros(ids.size, dtype=np.int64)
    if e.size:
        u_elects_v = elected[ui] == ids[vi]
        v_elects_u = elected[vi] == ids[ui]
        np.add.at(elector_count, vi[u_elects_v], 1)
        np.add.at(elector_count, ui[v_elects_u], 1)

    return Election(
        node_ids=ids,
        elected_head=elected,
        member_of=member_of,
        elector_count=elector_count,
        clusterheads=clusterheads,
    )
