"""Max-Min d-cluster formation (Amis, Prakash, Vuong & Huynh, Infocom
2000) — the scalable d-hop clustering baseline cited in Section 2.2.

The algorithm runs 2d rounds of flooding:

* **Floodmax** (d rounds): each node propagates the largest ID heard so
  far over its closed neighborhood.
* **Floodmin** (d rounds): starting from the floodmax result, each node
  propagates the smallest value heard.

Clusterhead selection rules (in order, per node v):

1. If v heard its *own* ID during any floodmin round, v is a
   clusterhead (it "won" both directions) — elect v itself.
2. Node-pair rule: among IDs that occur in both v's floodmax round list
   and floodmin round list, elect the minimum.
3. Otherwise elect the maximum ID from the floodmax phase.

The paper notes the d = 1 instance behaves like an asynchronous LCA;
the hierarchy builder accepts either algorithm so benches can ablate
LCA vs max-min handoff behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MaxMinResult", "maxmin_cluster"]


@dataclass(frozen=True)
class MaxMinResult:
    """Outcome of max-min d-cluster formation.

    Attributes
    ----------
    node_ids:
        Sorted participating IDs.
    head_choice:
        For each node, the clusterhead ID selected by rules 1-3.
    clusterheads:
        Sorted IDs of all nodes selected as head by someone (including
        every rule-1 self-election).
    rounds:
        Number of flooding rounds used per phase (= d).
    floodmax / floodmin:
        ``(n, d)`` per-round value logs (column r = value after round
        r+1), retained for tests and for gateway selection heuristics.
    """

    node_ids: np.ndarray
    head_choice: np.ndarray
    clusterheads: np.ndarray
    rounds: int
    floodmax: np.ndarray
    floodmin: np.ndarray

    def clusters(self) -> dict[int, np.ndarray]:
        """Partition ``{head_id: member ids}`` induced by head_choice."""
        order = np.argsort(self.head_choice, kind="stable")
        heads, starts = np.unique(self.head_choice[order], return_index=True)
        groups = np.split(self.node_ids[order], starts[1:])
        return {int(h): np.sort(g) for h, g in zip(heads, groups)}


def _flood(ids: np.ndarray, ui: np.ndarray, vi: np.ndarray, start: np.ndarray,
           rounds: int, op) -> np.ndarray:
    """Run ``rounds`` of closed-neighborhood flooding with ufunc ``op``."""
    log = np.empty((ids.size, rounds), dtype=np.int64)
    cur = start.copy()
    for r in range(rounds):
        nxt = cur.copy()
        if ui.size:
            op.at(nxt, ui, cur[vi])
            op.at(nxt, vi, cur[ui])
        log[:, r] = nxt
        cur = nxt
    return log


def maxmin_cluster(node_ids, edges, d: int = 2) -> MaxMinResult:
    """Run max-min d-cluster formation on ``(node_ids, edges)``.

    Parameters
    ----------
    node_ids:
        Iterable of unique integer IDs.
    edges:
        ``(m, 2)`` undirected ID pairs within ``node_ids``.
    d:
        Cluster radius in hops (>= 1); every node ends within d hops of
        its clusterhead.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
    if ids.size == 0:
        raise ValueError("clustering requires at least one node")
    e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if e.size and np.any(e[:, 0] == e[:, 1]):
        raise ValueError("self-loops are not valid links")
    if e.size:
        ui = np.searchsorted(ids, e[:, 0])
        vi = np.searchsorted(ids, e[:, 1])
        bad = (
            (ui >= ids.size)
            | (vi >= ids.size)
            | (ids[np.minimum(ui, ids.size - 1)] != e[:, 0])
            | (ids[np.minimum(vi, ids.size - 1)] != e[:, 1])
        )
        if np.any(bad):
            raise ValueError("edges reference ids not in node_ids")
    else:
        ui = vi = np.empty(0, dtype=np.int64)

    fmax = _flood(ids, ui, vi, ids, d, np.maximum)
    fmin = _flood(ids, ui, vi, fmax[:, -1], d, np.minimum)

    head_choice = np.empty(ids.size, dtype=np.int64)

    # Rule 1: own ID seen in the floodmin phase.
    rule1 = np.any(fmin == ids[:, np.newaxis], axis=1)
    head_choice[rule1] = ids[rule1]

    # Rules 2 and 3 need per-node set intersections; these touch only the
    # (typically small) non-rule-1 remainder.
    rest = np.flatnonzero(~rule1)
    for i in rest:
        seen_max = set(fmax[i].tolist())
        seen_min = set(fmin[i].tolist())
        pairs = seen_max & seen_min
        if pairs:
            head_choice[i] = min(pairs)  # Rule 2
        else:
            head_choice[i] = fmax[i].max()  # Rule 3

    clusterheads = np.unique(head_choice)
    return MaxMinResult(
        node_ids=ids,
        head_choice=head_choice,
        clusterheads=clusterheads,
        rounds=d,
        floodmax=fmax,
        floodmin=fmin,
    )
