"""Cluster-structure metrics used throughout the analysis.

These implement the bookkeeping identities of Section 1.1: arity
alpha_k = |V_{k-1}| / |V_k| (Eq. 1b), aggregation factor
c_k = prod alpha_j (Eq. 2a), and mean level degree d_k (Eq. 1a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClusterSizeStats", "cluster_size_stats", "arity", "aggregation_factors"]


@dataclass(frozen=True)
class ClusterSizeStats:
    """Summary of a cluster partition at one level."""

    n_nodes: int
    n_clusters: int
    mean_size: float
    max_size: int
    min_size: int
    std_size: float

    @property
    def arity(self) -> float:
        """alpha at this level: nodes per cluster on average."""
        return self.mean_size


def cluster_size_stats(clusters: dict[int, np.ndarray]) -> ClusterSizeStats:
    """Compute size statistics of a ``{head: members}`` partition."""
    if not clusters:
        raise ValueError("empty partition")
    sizes = np.array([len(m) for m in clusters.values()], dtype=np.int64)
    return ClusterSizeStats(
        n_nodes=int(sizes.sum()),
        n_clusters=int(sizes.size),
        mean_size=float(sizes.mean()),
        max_size=int(sizes.max()),
        min_size=int(sizes.min()),
        std_size=float(sizes.std()),
    )


def arity(n_prev: int, n_cur: int) -> float:
    """alpha_k = |V_{k-1}| / |V_k| (Eq. 1b)."""
    if n_prev <= 0 or n_cur <= 0:
        raise ValueError("level sizes must be positive")
    return n_prev / n_cur


def aggregation_factors(level_sizes) -> np.ndarray:
    """c_k = |V| / |V_k| for k = 0..L given the per-level node counts.

    ``level_sizes[0]`` must be |V|; returns an array with c_0 = 1.
    Equivalent to the running product of arities (Eq. 2a/2b).
    """
    sizes = np.asarray(list(level_sizes), dtype=np.float64)
    if sizes.size == 0 or np.any(sizes <= 0):
        raise ValueError("level sizes must be positive and non-empty")
    if np.any(np.diff(sizes) > 0):
        raise ValueError("level sizes must be non-increasing")
    return sizes[0] / sizes
