"""Incremental LCA election — the event-driven ALCA reading.

The paper's ALCA is *asynchronous*: clusterhead status is re-evaluated
only where the topology actually changed, not by a global re-election
sweep.  :class:`IncrementalElection` is the computational mirror of that
rule for one level: it holds the election state of a fixed node set and
*patches* it from link deltas, touching only the closed neighborhoods of
edge endpoints.

Correctness rests on two invariants of :func:`repro.clustering.lca.elect`:

* ``elected_head[u]`` is a pure function of u's closed neighborhood
  (``max(u, neighbors)``), so after a batch of link events only the
  endpoints of added/removed edges can change their vote;
* every derived field follows from the vote multiset.  With
  ``support[v] = #{u : elected_head[u] == v}`` (self-votes included):

  - ``clusterheads``  = ids with positive support,
  - ``member_of``     = own id for heads, else ``elected_head``,
  - ``elector_count`` = ``support - [elected_head == id]`` (a non-self
    voter is necessarily a neighbor, which is exactly what the per-edge
    scatter in :func:`elect` counts).

:meth:`snapshot` therefore returns an :class:`Election` **bit-identical**
to a from-scratch ``elect(node_ids, edges)`` on the current topology —
the equivalence the fuzz harness in
``tests/clustering/test_incremental_election.py`` enforces over random
churn, crash, and partition bursts.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.lca import Election, elect

__all__ = ["IncrementalElection"]


class IncrementalElection:
    """Maintains one level's LCA election under link churn.

    Parameters
    ----------
    node_ids:
        The level's node IDs (fixed for the lifetime of the instance;
        topology changes arrive as edge events only — a "crashed" node
        simply loses all its links).
    edges:
        Initial ``(m, 2)`` edge array (ID pairs, no self-loops).
    """

    def __init__(self, node_ids, edges):
        base = elect(node_ids, edges)
        self._ids = base.node_ids
        self._elected = base.elected_head.copy()
        # support[i] = number of nodes (self included) voting for ids[i].
        self._support = np.zeros(self._ids.size, dtype=np.int64)
        np.add.at(self._support, self._index(self._elected), 1)
        # Adjacency as id -> set of neighbor ids (python sets: the churn
        # working set is O(events * degree), never O(n)).
        self._adj: dict[int, set[int]] = {int(v): set() for v in self._ids.tolist()}
        for u, v in np.asarray(edges, dtype=np.int64).reshape(-1, 2).tolist():
            self._adj[u].add(v)
            self._adj[v].add(u)

    # -- internals -----------------------------------------------------------

    def _index(self, ids_arr: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._ids, ids_arr)

    @property
    def node_ids(self) -> np.ndarray:
        return self._ids

    # -- event ingestion -----------------------------------------------------

    def apply(self, ups, downs) -> None:
        """Apply one batch of link events (``(k, 2)`` ID-pair arrays).

        Only the closed neighborhoods of event endpoints are re-voted;
        the support array absorbs each vote change in O(1).
        """
        ups = np.asarray(ups, dtype=np.int64).reshape(-1, 2)
        downs = np.asarray(downs, dtype=np.int64).reshape(-1, 2)
        affected: set[int] = set()
        for u, v in downs.tolist():
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            affected.add(u)
            affected.add(v)
        for u, v in ups.tolist():
            self._adj[u].add(v)
            self._adj[v].add(u)
            affected.add(u)
            affected.add(v)
        if not affected:
            return
        nodes = np.fromiter(affected, dtype=np.int64, count=len(affected))
        idx = self._index(nodes)
        for w, i in zip(nodes.tolist(), idx.tolist()):
            neigh = self._adj[w]
            new_vote = max(neigh) if neigh else w
            if new_vote < w:
                new_vote = w
            old_vote = int(self._elected[i])
            if new_vote != old_vote:
                self._support[self._index(np.int64(old_vote))] -= 1
                self._support[self._index(np.int64(new_vote))] += 1
                self._elected[i] = new_vote

    # -- views ---------------------------------------------------------------

    def snapshot(self) -> Election:
        """The current election, bit-identical to ``elect(ids, edges)``.

        The returned object owns fresh arrays (except the immutable
        ``node_ids``), so snapshots from consecutive steps can be diffed
        safely while this instance keeps mutating.
        """
        has_support = self._support > 0
        return Election(
            node_ids=self._ids,
            elected_head=self._elected.copy(),
            member_of=np.where(has_support, self._ids, self._elected),
            elector_count=self._support - (self._elected == self._ids),
            clusterheads=self._ids[has_support],
        )
