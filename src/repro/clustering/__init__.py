"""Clustering substrate: LCA/ALCA election, ALCA state machine, max-min
d-hop baseline, and cluster-structure metrics (Section 2.2 of the paper).
"""

from repro.clustering.alca import AlcaMaintainer
from repro.clustering.incremental import IncrementalElection
from repro.clustering.lca import Election, elect
from repro.clustering.maxmin import MaxMinResult, maxmin_cluster
from repro.clustering.metrics import (
    ClusterSizeStats,
    aggregation_factors,
    arity,
    cluster_size_stats,
)
from repro.clustering.state import (
    RecursionQuantities,
    StateStats,
    StateTracker,
    recursion_quantities,
)

__all__ = [
    "AlcaMaintainer",
    "IncrementalElection",
    "Election",
    "elect",
    "MaxMinResult",
    "maxmin_cluster",
    "ClusterSizeStats",
    "aggregation_factors",
    "arity",
    "cluster_size_stats",
    "RecursionQuantities",
    "StateStats",
    "StateTracker",
    "recursion_quantities",
]
