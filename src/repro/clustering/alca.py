"""Event-driven ALCA maintenance with election hysteresis.

The per-snapshot election of :func:`repro.clustering.lca.elect` is
*memoryless*: a node's head changes whenever the max-ID of its closed
neighborhood changes, which makes high-level clusterheads churn faster
than the paper's Fig. 3 birth-death idealization (see EXPERIMENTS.md,
deviation 1).  Deployed cluster protocols add stickiness — the
"least cluster change" (LCC) discipline of Chiang et al., which the
asynchronous-LCA literature folds into ALCA maintenance:

1. **Affiliation stickiness.**  A member keeps its current clusterhead
   as long as that head remains within one hop and keeps its head role.
2. **Forced re-election.**  A node whose head became invalid joins the
   highest-ID *existing* head in range; only if none is in range does
   it trigger a fresh LCA election in its closed neighborhood
   (promoting the local max).
3. **Head contention.**  When two heads become one-hop neighbors, the
   lower-ID head abdicates (the only rule that demotes a head), and its
   members re-affiliate by rule 2.

The result is a valid 1-hop clustering (every member adjacent to its
head) whose *changes* are driven by necessity, not by snapshot noise —
the state machine then matches Fig. 3's critical-transition picture
much more closely.  :class:`AlcaMaintainer` keeps the per-node head
state across topology updates and emits snapshots in the same
:class:`~repro.clustering.lca.Election` form as the memoryless path, so
the whole hierarchy/handoff stack is agnostic to the election mode.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.lca import Election

__all__ = ["AlcaMaintainer"]


class AlcaMaintainer:
    """Stateful one-level ALCA/LCC maintenance.

    The participating node set may change between updates (at hierarchy
    level k >= 1 the nodes are the level-(k-1) heads, which churn);
    state is kept for surviving nodes and new arrivals elect by rule 2.
    """

    def __init__(self):
        # node id -> current head id (head nodes map to themselves).
        self._head: dict[int, int] = {}

    @property
    def head_map(self) -> dict[int, int]:
        """Current affiliation map (copy)."""
        return dict(self._head)

    def reset(self) -> None:
        """Forget all affiliation state (next update elects afresh)."""
        self._head.clear()

    # -- update -------------------------------------------------------------------

    def update(self, node_ids, edges) -> Election:
        """Advance the clustering to the new topology; return a snapshot.

        Parameters
        ----------
        node_ids:
            Sorted unique IDs participating at this level now.
        edges:
            Canonical ``(m, 2)`` ID-pair array for the current topology.
        """
        ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
        if ids.size == 0:
            raise ValueError("maintenance requires at least one node")
        e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)

        id_set = set(ids.tolist())
        adj: dict[int, set[int]] = {v: set() for v in id_set}
        for a, b in e.tolist():
            if a == b:
                raise ValueError("self-loops are not valid links")
            if a not in id_set or b not in id_set:
                raise ValueError("edges reference ids not in node_ids")
            adj[a].add(b)
            adj[b].add(a)

        # Drop state of departed nodes; forget affiliations whose head
        # left the level.
        head = {v: h for v, h in self._head.items()
                if v in id_set and h in id_set}

        def is_head(x: int) -> bool:
            return head.get(x) == x

        # Rule 3: head contention.  When two heads become adjacent the
        # lower-ID one abdicates *if* all of its dependent members can
        # reach another head (the least-cluster-change reading —
        # otherwise abdication would just force a fresh election that
        # re-promotes it).  Ascending order resolves cascades
        # deterministically.
        members_of: dict[int, list[int]] = {}
        for v, h in head.items():
            if v != h:
                members_of.setdefault(h, []).append(v)
        for h in sorted(x for x in id_set if is_head(x)):
            if not is_head(h):
                continue
            bigger = [w for w in adj[h] if is_head(w) and w > h]
            if not bigger:
                continue
            covered = all(
                any(is_head(w) and w != h for w in adj[m])
                for m in members_of.get(h, [])
            )
            if covered:
                head[h] = max(bigger)
                for m in members_of.get(h, []):
                    alt = [w for w in adj[m] if is_head(w)]
                    if alt:
                        head[m] = max(alt)

        # Rule 2 (new arrivals): pure LCA election — a node with no
        # history elects the max of its closed neighborhood, promoting
        # it if needed.  On a fresh maintainer this reproduces the
        # one-shot LCA exactly.
        for v in sorted(id_set):
            if v in head:
                continue
            winner = max([v] + list(adj[v]))
            if head.get(winner) != winner:
                head[winner] = winner
            head[v] = winner

        # Rule 1 + forced re-election: a surviving member keeps its head
        # while the head is in range and still a head; otherwise it
        # joins the largest in-range head, falling back to a fresh LCA
        # election.
        for v in sorted(id_set):
            h = head[v]
            if (h == v and is_head(v)) or (h in adj[v] and is_head(h)):
                continue
            in_range_heads = [w for w in adj[v] if is_head(w)]
            if in_range_heads:
                head[v] = max(in_range_heads)
            else:
                winner = max([v] + list(adj[v]))
                head[winner] = winner
                if winner != v:
                    head[v] = winner

        # Consolidation: promotions above may have demoted nobody, but a
        # member's head could have been turned into a member by a later
        # fresh election is impossible (fresh elections only promote).
        # Still, verify the invariant defensively.
        for v in id_set:
            h = head[v]
            assert h == v or (h in adj[v] and head[h] == h), (v, h)

        self._head = head
        return self._snapshot(ids, adj)

    # -- snapshot -----------------------------------------------------------------

    def _snapshot(self, ids: np.ndarray, adj: dict[int, set[int]]) -> Election:
        head = self._head
        member_of = np.array([head[int(v)] for v in ids], dtype=np.int64)
        clusterheads = np.unique(member_of)
        elector_count = np.zeros(ids.size, dtype=np.int64)
        index = {int(v): i for i, v in enumerate(ids.tolist())}
        for v in ids.tolist():
            h = head[int(v)]
            if h != v:
                elector_count[index[h]] += 1
        return Election(
            node_ids=ids,
            elected_head=member_of.copy(),
            member_of=member_of,
            elector_count=elector_count,
            clusterheads=clusterheads,
        )
