"""ALCA cluster state machine (Fig. 3) and its statistics.

The ALCA state of a level-k node is the number of its level-k neighbors
that currently elect it as clusterhead.  Fig. 3 of the paper models this
as a birth-death chain where, in continuous time, only adjacent-state
transitions occur; states 0 and 1 are *critical* — clusterhead status can
only change while crossing the 0 <-> 1 boundary.

:class:`StateTracker` consumes one :class:`~repro.clustering.lca.Election`
per simulation step (for a fixed level) and accumulates:

* state occupancy histogram (time-weighted),
* transition magnitude histogram — the empirical check that, as dt -> 0,
  transitions concentrate on |delta| <= 1,
* the paper's p_j estimate (Eq. 18 context): probability that a level-j
  node is in state exactly 1,
* per-node state time series (optional, for detailed inspection).

Section 5.3.2 leaves "actual quantification of q_1 via simulation" as
future work; :func:`recursion_quantities` computes q_j, Q, P and the
q_1/Q lower bound of Eqs. (15)-(21) from measured p_j vectors, and the
EXP-F3 experiment drives it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.lca import Election

__all__ = ["StateTracker", "StateStats", "recursion_quantities", "RecursionQuantities"]


@dataclass(frozen=True)
class StateStats:
    """Aggregated ALCA state statistics for one hierarchy level."""

    occupancy: dict[int, float]
    """Fraction of node-steps spent in each state."""

    transition_histogram: dict[int, int]
    """Counts of per-step state changes keyed by |delta|."""

    p_state1: float
    """Empirical p_j: fraction of node-steps in state exactly 1."""

    p_state1_heads: float
    """p restricted to elected (state >= 1) nodes."""

    adjacent_fraction: float
    """Fraction of non-zero transitions with |delta| == 1."""

    critical_crossings: int
    """Number of 0 <-> 1 boundary crossings (status changes)."""

    samples: int
    """Total node-step samples."""


@dataclass
class StateTracker:
    """Accumulates ALCA state statistics across election snapshots.

    The tracker is robust to node churn at the observed level: only nodes
    present in *both* consecutive elections contribute transitions, while
    occupancy counts every present node.
    """

    record_series: bool = False
    _occ: dict[int, int] = field(default_factory=dict)
    _trans: dict[int, int] = field(default_factory=dict)
    _heads_state1: int = 0
    _heads_total: int = 0
    _critical: int = 0
    _samples: int = 0
    _prev: Election | None = None
    series: list[dict[int, int]] = field(default_factory=list)

    @property
    def samples(self) -> int:
        """Total node-step samples observed so far."""
        return self._samples

    def observe(self, election: Election) -> None:
        """Record one election snapshot for this level."""
        states = election.elector_count
        vals, counts = np.unique(states, return_counts=True)
        for v, c in zip(vals.tolist(), counts.tolist()):
            self._occ[v] = self._occ.get(v, 0) + c
        self._samples += int(states.size)
        elected_mask = states >= 1
        self._heads_total += int(elected_mask.sum())
        self._heads_state1 += int((states == 1).sum())

        if self._prev is not None:
            common, ia, ib = np.intersect1d(
                self._prev.node_ids, election.node_ids, return_indices=True
            )
            if common.size:
                before = self._prev.elector_count[ia]
                after = election.elector_count[ib]
                delta = np.abs(after - before)
                vals, counts = np.unique(delta, return_counts=True)
                for v, c in zip(vals.tolist(), counts.tolist()):
                    self._trans[v] = self._trans.get(v, 0) + c
                crossing = ((before == 0) & (after >= 1)) | (
                    (before >= 1) & (after == 0)
                )
                self._critical += int(crossing.sum())
        self._prev = election
        if self.record_series:
            vals, counts = np.unique(states, return_counts=True)
            self.series.append(dict(zip(vals.tolist(), counts.tolist())))

    def stats(self) -> StateStats:
        """Finalize the aggregate statistics."""
        if self._samples == 0:
            raise ValueError("no observations recorded")
        occupancy = {s: c / self._samples for s, c in sorted(self._occ.items())}
        nonzero = {d: c for d, c in self._trans.items() if d != 0}
        total_moves = sum(nonzero.values())
        adjacent = nonzero.get(1, 0) / total_moves if total_moves else 1.0
        return StateStats(
            occupancy=occupancy,
            transition_histogram=dict(sorted(self._trans.items())),
            p_state1=self._occ.get(1, 0) / self._samples,
            p_state1_heads=(
                self._heads_state1 / self._heads_total if self._heads_total else 0.0
            ),
            adjacent_fraction=adjacent,
            critical_crossings=self._critical,
            samples=self._samples,
        )


@dataclass(frozen=True)
class RecursionQuantities:
    """Eqs. (15)-(21): recursive-rejection chain quantities at level k."""

    k: int
    p: float  # Eq. (18): max over p_1..p_{k-1}
    q: np.ndarray  # Eq. (15a): q_j for j = 1..k-1
    Q: float  # Eq. (15b)
    P: float  # Eq. (21a): p^2 + q_1 (upper bound on Q)
    q1_over_Q: float
    q1_over_Q_lower_bound: float  # Eq. (21b): q_1 / (p^2 + q_1)


def recursion_quantities(p_levels, k: int) -> RecursionQuantities:
    """Evaluate the recursive-rejection bound chain for level ``k``.

    Parameters
    ----------
    p_levels:
        Sequence where ``p_levels[j]`` is the measured p_j (probability
        that a level-j node is in ALCA state 1) for j = 0..k-1 at least.
        Note Eq. (15a) consumes ``p_{k-1}, ..., p_1``.
    k:
        Hierarchy level under analysis; must be >= 2 so the recursion has
        at least one stage.
    """
    p_arr = np.asarray(p_levels, dtype=np.float64)
    if k < 2:
        raise ValueError("recursion analysis requires k >= 2")
    if p_arr.size < k:
        raise ValueError(f"need p_j for j=0..{k - 1}, got {p_arr.size} values")
    if np.any((p_arr < 0) | (p_arr > 1)):
        raise ValueError("probabilities must lie in [0, 1]")

    # Eq. (15a): q_j = (1 - p_{k-j-1}) * prod_{i=1..j} p_{k-i} for j < k-1,
    # and q_{k-1} = prod_{i=1..k-1} p_{k-i}.
    q = np.empty(k - 1, dtype=np.float64)
    for j in range(1, k):
        prod = float(np.prod(p_arr[[k - i for i in range(1, j + 1)]]))
        if j <= k - 2:
            q[j - 1] = (1.0 - p_arr[k - j - 1]) * prod
        else:
            q[j - 1] = prod
    Q = float(q.sum())
    p = float(p_arr[1:k].max()) if k >= 2 else 0.0  # Eq. (18): p_1..p_{k-1}
    q1 = float(q[0])
    P = p**2 + q1  # Eq. (21a)
    return RecursionQuantities(
        k=k,
        p=p,
        q=q,
        Q=Q,
        P=P,
        q1_over_Q=(q1 / Q) if Q > 0 else 1.0,
        q1_over_Q_lower_bound=(q1 / P) if P > 0 else 1.0,
    )
