"""Reference-point group mobility (RPGM).

Hierarchical routing papers (HSR [11,12], MMWN [13]) motivate clustering
with *group* mobility: squads of nodes move together.  RPGM models this
with per-group logical centers following random waypoint, and members
jittering around their center.  Group motion keeps clusters stable, so it
is the favorable regime for the paper's handoff bound — the benchmarks use
it as a sensitivity axis.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.region import DeploymentRegion
from repro.mobility.base import MobilityModel
from repro.mobility.random_waypoint import RandomWaypoint


class ReferencePointGroup(MobilityModel):
    """RPGM: ``n_groups`` reference points move by random waypoint; each
    member tracks its reference point plus a bounded random offset.

    Parameters
    ----------
    n_groups:
        Number of groups; nodes are assigned round-robin.
    group_radius:
        Maximum distance of a member's reference offset from the group
        center.
    jitter_speed:
        Speed at which a member's local offset wanders (m/s).
    """

    def __init__(
        self,
        n: int,
        region: DeploymentRegion,
        speed,
        rng: np.random.Generator,
        n_groups: int = 4,
        group_radius: float = 50.0,
        jitter_speed: float | None = None,
    ):
        super().__init__(n, region, speed, rng)
        if n_groups <= 0:
            raise ValueError("n_groups must be positive")
        if group_radius <= 0:
            raise ValueError("group_radius must be positive")
        self.n_groups = int(min(n_groups, n))
        self.group_radius = float(group_radius)
        self.jitter_speed = float(
            jitter_speed if jitter_speed is not None else max(self.mean_speed * 0.25, 1e-9)
        )
        self.group_of = np.arange(self.n) % self.n_groups
        # Group centers follow random waypoint with the model's speed spec.
        self._centers = RandomWaypoint(
            self.n_groups, region, self._speed_spec, rng, pause=0.0
        )
        # Member offsets, uniform in the group disc.
        r = self.group_radius * np.sqrt(rng.random(self.n))
        theta = rng.random(self.n) * (2.0 * np.pi)
        self._offsets = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)
        self.positions = self.region.clamp(
            self._centers.positions[self.group_of] + self._offsets
        )

    def step(self, dt: float) -> np.ndarray:
        self._advance_clock(dt)
        centers = self._centers.step(dt)
        # Random-walk the offsets, reflecting at the group radius.
        theta = self.rng.random(self.n) * (2.0 * np.pi)
        kick = np.stack([np.cos(theta), np.sin(theta)], axis=1)
        self._offsets += kick * (self.jitter_speed * dt)
        norm = np.sqrt(np.einsum("ij,ij->i", self._offsets, self._offsets))
        over = norm > self.group_radius
        if np.any(over):
            self._offsets[over] *= (self.group_radius / norm[over])[:, np.newaxis]
        self.positions = self.region.clamp(centers[self.group_of] + self._offsets)
        return self.positions
