"""Gauss-Markov mobility.

A temporally correlated model standard in MANET evaluation: speed and
heading each follow an AR(1) process

    s_t = a * s_{t-1} + (1 - a) * s_mean + sigma * sqrt(1 - a^2) * w_t

where ``a`` (memory) tunes between Brownian jitter (a = 0) and
straight-line motion (a = 1).  Unlike random waypoint it has no
destination discontinuities, so link lifetimes are smoother — useful for
checking that the handoff bounds do not hinge on RWP's turning
artifacts.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.region import DeploymentRegion
from repro.mobility.base import MobilityModel

__all__ = ["GaussMarkov"]


class GaussMarkov(MobilityModel):
    """Gauss-Markov model with boundary steering.

    Parameters
    ----------
    memory:
        AR(1) coefficient ``a`` in [0, 1): temporal correlation of speed
        and heading.
    speed_sigma:
        Stddev of the stationary speed distribution (m/s); defaults to
        a quarter of the mean speed.
    heading_sigma:
        Stddev of heading innovations (radians).
    """

    def __init__(
        self,
        n: int,
        region: DeploymentRegion,
        speed,
        rng: np.random.Generator,
        memory: float = 0.85,
        speed_sigma: float | None = None,
        heading_sigma: float = 0.6,
    ):
        super().__init__(n, region, speed, rng)
        if not 0 <= memory < 1:
            raise ValueError("memory must be in [0, 1)")
        if heading_sigma <= 0:
            raise ValueError("heading_sigma must be positive")
        self.memory = float(memory)
        self.mean_speed_target = float(self.speeds.mean())
        self.speed_sigma = float(
            speed_sigma if speed_sigma is not None
            else max(self.mean_speed_target * 0.25, 1e-9)
        )
        self.heading_sigma = float(heading_sigma)
        self._speed = self.speeds.copy()
        self._heading = rng.random(self.n) * 2.0 * np.pi

    def step(self, dt: float) -> np.ndarray:
        self._advance_clock(dt)
        a = self.memory
        noise_scale = np.sqrt(max(1.0 - a * a, 0.0))
        self._speed = (
            a * self._speed
            + (1 - a) * self.mean_speed_target
            + self.speed_sigma * noise_scale * self.rng.normal(size=self.n)
        )
        np.clip(self._speed, 0.0, None, out=self._speed)
        # Mean heading steers toward the region center near the border so
        # nodes do not pile up at the wall (the standard GM treatment).
        center = self.region.center
        rel = self.positions - center
        dist = np.sqrt(np.einsum("ij,ij->i", rel, rel))
        near_edge = dist > 0.85 * (self.region.diameter / 2.0)
        mean_heading = self._heading.copy()
        if np.any(near_edge):
            inward = np.arctan2(-rel[near_edge, 1], -rel[near_edge, 0])
            mean_heading[near_edge] = inward
        self._heading = (
            a * self._heading
            + (1 - a) * mean_heading
            + self.heading_sigma * noise_scale * self.rng.normal(size=self.n)
        )
        step_vec = np.stack(
            [np.cos(self._heading), np.sin(self._heading)], axis=1
        ) * (self._speed * dt)[:, np.newaxis]
        self.positions = self.region.clamp(self.positions + step_vec)
        self.speeds = self._speed
        return self.positions
