"""Random-direction mobility.

Each node travels along a uniformly random heading until it hits the
region boundary, where it reflects specularly (billiard dynamics).  Unlike
random waypoint, the uniform spatial distribution is invariant under this
flow, which makes the model a useful ablation for RWP's center-density
bias.

Disc reflection is computed exactly: the segment/circle intersection point
is found per offending node and the residual motion is reflected about the
boundary normal at that point.  An endpoint-based approximation would bias
the stationary distribution measurably (several percent at MANET speeds).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.region import DeploymentRegion, DiscRegion, SquareRegion
from repro.mobility.base import MobilityModel


class RandomDirection(MobilityModel):
    """Billiard-style random-direction model with boundary reflection.

    Headings are redrawn with rate ``turn_rate`` (Poisson), so nodes also
    change direction in the interior, not only at walls.
    """

    def __init__(
        self,
        n: int,
        region: DeploymentRegion,
        speed,
        rng: np.random.Generator,
        turn_rate: float = 0.0,
    ):
        if not isinstance(region, (DiscRegion, SquareRegion)):
            raise TypeError("RandomDirection supports disc and square regions")
        super().__init__(n, region, speed, rng)
        if turn_rate < 0:
            raise ValueError("turn_rate must be non-negative")
        self.turn_rate = float(turn_rate)
        theta = rng.random(self.n) * (2.0 * np.pi)
        self.headings = np.stack([np.cos(theta), np.sin(theta)], axis=1)

    # -- reflection kernels -------------------------------------------------

    def _reflect_square(self) -> None:
        assert isinstance(self.region, SquareRegion)
        lo = self.region.origin
        hi = lo + self.region.side
        # Mirror reflections are exact for axis-aligned walls; a couple of
        # passes handle corner double-hits.
        for _ in range(4):
            done = True
            for axis in range(2):
                low = self.positions[:, axis] < lo[axis]
                high = self.positions[:, axis] > hi[axis]
                if np.any(low):
                    self.positions[low, axis] = 2 * lo[axis] - self.positions[low, axis]
                    self.headings[low, axis] *= -1
                    done = False
                if np.any(high):
                    self.positions[high, axis] = 2 * hi[axis] - self.positions[high, axis]
                    self.headings[high, axis] *= -1
                    done = False
            if done:
                break
        self.positions = self.region.clamp(self.positions)

    def _reflect_disc(self, prev: np.ndarray) -> None:
        assert isinstance(self.region, DiscRegion)
        center = self.region.center
        radius = self.region.radius
        start = prev - center
        for _ in range(16):
            rel = self.positions - center
            dist_sq = np.einsum("ij,ij->i", rel, rel)
            out = np.flatnonzero(dist_sq > radius**2)
            if out.size == 0:
                break
            p0 = start[out]
            p1 = rel[out]
            d = p1 - p0
            a = np.einsum("ij,ij->i", d, d)
            b = 2.0 * np.einsum("ij,ij->i", p0, d)
            c = np.einsum("ij,ij->i", p0, p0) - radius**2
            disc = np.maximum(b * b - 4.0 * a * c, 0.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                t = np.where(a > 0, (-b + np.sqrt(disc)) / (2.0 * a), 0.0)
            t = np.clip(t, 0.0, 1.0)
            hit = p0 + t[:, np.newaxis] * d
            # Normalize the hit point onto the boundary (guards roundoff).
            hit_norm = np.sqrt(np.einsum("ij,ij->i", hit, hit))
            hit_norm = np.where(hit_norm > 0, hit_norm, 1.0)
            normal = hit / hit_norm[:, np.newaxis]
            residual = p1 - hit
            dot = np.einsum("ij,ij->i", residual, normal)
            residual -= 2.0 * dot[:, np.newaxis] * normal
            self.positions[out] = center + hit + residual
            h = self.headings[out]
            hdot = np.einsum("ij,ij->i", h, normal)
            self.headings[out] = h - 2.0 * hdot[:, np.newaxis] * normal
            start[out] = hit
        self.positions = self.region.clamp(self.positions)

    # -- stepping ------------------------------------------------------------

    def step(self, dt: float) -> np.ndarray:
        self._advance_clock(dt)
        if self.turn_rate > 0.0:
            turning = self.rng.random(self.n) < -np.expm1(-self.turn_rate * dt)
            if np.any(turning):
                theta = self.rng.random(int(turning.sum())) * (2.0 * np.pi)
                self.headings[turning, 0] = np.cos(theta)
                self.headings[turning, 1] = np.sin(theta)
        prev = self.positions.copy()
        self.positions += self.headings * (self.speeds * dt)[:, np.newaxis]
        if isinstance(self.region, SquareRegion):
            self._reflect_square()
        else:
            self._reflect_disc(prev)
        return self.positions
