"""Stationary placement — the zero-mobility control.

With mu = 0 the paper predicts *no* handoff at all (both f_k and g_k
vanish); the integration tests use this model to assert the simulator
meters exactly zero handoff packets on a static network.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.region import DeploymentRegion
from repro.mobility.base import MobilityModel


class Stationary(MobilityModel):
    """Nodes never move; ``step`` only advances the clock."""

    def __init__(self, n: int, region: DeploymentRegion, rng: np.random.Generator, speed=None):
        # Speed is irrelevant; accept and ignore any value for interface
        # compatibility with the scenario factory.
        super().__init__(n, region, 1.0, rng)
        self.speeds[:] = 0.0

    def step(self, dt: float) -> np.ndarray:
        self._advance_clock(dt)
        return self.positions
