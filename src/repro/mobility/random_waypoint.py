"""Random-waypoint mobility (the paper's model, Section 1.2).

Each node draws a uniform waypoint inside the region and travels toward it
in a straight line at its speed.  On arrival a new waypoint is drawn
immediately — the paper fixes the pause time at zero, though a nonzero
pause is supported for sensitivity studies.

The stepper is fully vectorized: one step costs a handful of O(n) array
ops, no Python-level per-node loop.  A node may reach several waypoints
within one ``dt``; the leftover travel budget is spent on the new leg in
an inner loop that only iterates over the (typically tiny) set of nodes
with remaining budget.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.region import DeploymentRegion
from repro.mobility.base import MobilityModel, resolve_speeds


class RandomWaypoint(MobilityModel):
    """Random-waypoint model with optional pause time.

    Parameters
    ----------
    n, region, speed, rng:
        See :class:`~repro.mobility.base.MobilityModel`.
    pause:
        Pause duration (seconds) at each waypoint.  The paper assumes 0.
    resample_speed:
        When ``speed`` is a range, re-draw a node's speed at every new leg
        (the classical RWP of Broch et al.).  Ignored for scalar speeds.
    """

    def __init__(
        self,
        n: int,
        region: DeploymentRegion,
        speed,
        rng: np.random.Generator,
        pause: float = 0.0,
        resample_speed: bool = True,
    ):
        super().__init__(n, region, speed, rng)
        if pause < 0:
            raise ValueError("pause must be non-negative")
        self.pause = float(pause)
        self.resample_speed = bool(resample_speed)
        self.waypoints = region.sample(self.n, rng)
        # Remaining pause time per node (0 = moving).
        self._pause_left = np.zeros(self.n, dtype=np.float64)

    def _redraw(self, idx: np.ndarray) -> None:
        """Assign fresh waypoints (and optionally speeds) to nodes ``idx``."""
        self.waypoints[idx] = self.region.sample(idx.size, self.rng)
        if self.resample_speed and not np.isscalar(self._speed_spec):
            self.speeds[idx] = resolve_speeds(self._speed_spec, idx.size, self.rng)

    def step(self, dt: float) -> np.ndarray:
        self._advance_clock(dt)
        budget = np.full(self.n, dt, dtype=np.float64)

        if self.pause > 0.0:
            pausing = self._pause_left > 0.0
            if np.any(pausing):
                spend = np.minimum(self._pause_left[pausing], budget[pausing])
                self._pause_left[pausing] -= spend
                budget[pausing] -= spend

        active = np.flatnonzero(budget > 1e-12)
        # Each iteration either exhausts a node's budget or consumes one
        # full leg; legs have strictly positive expected length so this
        # terminates quickly in practice.  A hard cap guards degenerate
        # regions (all waypoints equal) from spinning.
        for _ in range(64):
            if active.size == 0:
                break
            to_wp = self.waypoints[active] - self.positions[active]
            dist = np.sqrt(np.einsum("ij,ij->i", to_wp, to_wp))
            reach = self.speeds[active] * budget[active]

            arriving = reach >= dist
            move_idx = active[~arriving]
            arrive_idx = active[arriving]

            if move_idx.size:
                sel = ~arriving
                scale = (reach[sel] / dist[sel])[:, np.newaxis]
                self.positions[move_idx] += to_wp[sel] * scale
                budget[move_idx] = 0.0

            if arrive_idx.size:
                sel = arriving
                self.positions[arrive_idx] = self.waypoints[arrive_idx]
                # Time left after completing the leg.
                with np.errstate(divide="ignore", invalid="ignore"):
                    spent = np.where(
                        self.speeds[arrive_idx] > 0,
                        dist[sel] / self.speeds[arrive_idx],
                        0.0,
                    )
                budget[arrive_idx] -= spent
                self._redraw(arrive_idx)
                if self.pause > 0.0:
                    pay = np.minimum(self.pause, np.maximum(budget[arrive_idx], 0.0))
                    self._pause_left[arrive_idx] = self.pause - pay
                    budget[arrive_idx] -= pay

            active = active[arriving]
            active = active[budget[active] > 1e-12]
        else:  # pragma: no cover - defensive
            budget[active] = 0.0

        return self.positions
