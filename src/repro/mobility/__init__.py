"""Mobility substrate.

The paper evaluates the random-waypoint model with zero pause (Section
1.2); :class:`RandomWaypoint` is the reference implementation.  The other
models serve sensitivity studies: :class:`RandomDirection` removes RWP's
center-density bias, :class:`ReferencePointGroup` models the group motion
that motivates hierarchical clustering, and :class:`Stationary` is the
zero-mobility control under which handoff overhead must vanish; :class:`GaussMarkov` adds temporally correlated motion without RWP's turning discontinuities.
"""

from repro.mobility.base import MobilityModel, resolve_speeds
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.random_direction import RandomDirection
from repro.mobility.group import ReferencePointGroup
from repro.mobility.stationary import Stationary

MODEL_REGISTRY = {
    "random_waypoint": RandomWaypoint,
    "gauss_markov": GaussMarkov,
    "random_direction": RandomDirection,
    "group": ReferencePointGroup,
    "stationary": Stationary,
}


def make_model(name: str, n, region, speed, rng, **kwargs) -> MobilityModel:
    """Instantiate a mobility model by registry name.

    ``kwargs`` are forwarded to the model constructor (e.g. ``pause`` for
    random waypoint, ``n_groups`` for group mobility).
    """
    try:
        cls = MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise ValueError(f"unknown mobility model {name!r}; known: {known}") from None
    if cls is Stationary:
        return cls(n, region, rng, **kwargs)
    return cls(n, region, speed, rng, **kwargs)


__all__ = [
    "MobilityModel",
    "resolve_speeds",
    "GaussMarkov",
    "RandomWaypoint",
    "RandomDirection",
    "ReferencePointGroup",
    "Stationary",
    "MODEL_REGISTRY",
    "make_model",
]
