"""Mobility model interface.

Every model owns the node positions and advances them in place with
``step(dt)``.  Models are deterministic given their RNG, which the caller
supplies (seeded) so whole simulations replay exactly.

Speeds may be a scalar (the paper's fixed mu m/s) or a ``(low, high)``
range sampled uniformly per leg, matching the random-waypoint variants in
Broch et al. [4].
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.geometry.region import DeploymentRegion


def resolve_speeds(speed, n: int, rng: np.random.Generator) -> np.ndarray:
    """Expand a speed spec into a per-node speed vector.

    ``speed`` is either a positive scalar or a ``(low, high)`` tuple with
    ``0 < low <= high``; ranges are sampled uniformly.
    """
    if np.isscalar(speed):
        mu = float(speed)
        if mu <= 0:
            raise ValueError("speed must be positive")
        return np.full(n, mu, dtype=np.float64)
    lo, hi = (float(speed[0]), float(speed[1]))
    if lo <= 0 or hi < lo:
        raise ValueError("speed range must satisfy 0 < low <= high")
    return lo + rng.random(n) * (hi - lo)


class MobilityModel(ABC):
    """Base class for vectorized mobility models.

    Parameters
    ----------
    n:
        Number of nodes.
    region:
        Deployment region the nodes stay inside.
    speed:
        Scalar speed mu (m/s) or a ``(low, high)`` uniform range.
    rng:
        Seeded NumPy generator; all randomness flows through it.
    """

    def __init__(self, n: int, region: DeploymentRegion, speed, rng: np.random.Generator):
        if n <= 0:
            raise ValueError("node count must be positive")
        self.n = int(n)
        self.region = region
        self.rng = rng
        self._speed_spec = speed
        self.speeds = resolve_speeds(speed, self.n, rng)
        self.positions = region.sample(self.n, rng)
        self.time = 0.0

    @abstractmethod
    def step(self, dt: float) -> np.ndarray:
        """Advance all nodes by ``dt`` seconds; return the new positions.

        The returned array is the model's internal buffer — callers that
        need a snapshot must copy it.
        """

    def _advance_clock(self, dt: float) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.time += dt

    @property
    def mean_speed(self) -> float:
        """Average of the current per-node speeds."""
        return float(self.speeds.mean())
