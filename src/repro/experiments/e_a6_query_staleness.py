"""EXP-A6 (extension) — query correctness under propagation lag.

The paper treats queries as always answerable (Section 6 folds their
cost into the session).  In a real deployment the distributed LM
database lags the topology by at least one update round; this
experiment measures what that lag costs: at each step, queries are
resolved against the *previous* step's hierarchy and server assignment,
and the answer is graded against the target's *current* address.

Grades per query:

* **exact** — the stale answer equals the current address (the session
  can start immediately);
* **routable** — the level-1 component still holds (the packet reaches
  the target's current cluster; intra-cluster delivery fixes the rest);
* **stale** — even the level-1 component changed (the session opener
  must re-query).

The paper's locality story predicts high routability: addresses change
mostly at the bottom, and a one-step lag rarely invalidates upper
components.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.core import HandoffEngine, resolve
from repro.experiments.common import ExperimentResult
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.mobility import RandomWaypoint
from repro.radio import radius_for_degree, unit_disk_edges
from repro.sim.hops import EuclideanHops

__all__ = ["run"]


def _one_run(n: int, speed: float, steps: int, seed: int) -> dict[str, float]:
    density = 0.02
    degree = 9.0
    r_tx = radius_for_degree(degree, density)
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    model = RandomWaypoint(n, region, speed, rng)
    L = levels_for(n)

    def build(pts):
        edges = unit_disk_edges(pts, r_tx)
        return build_hierarchy(np.arange(n), edges, max_levels=L,
                               level_mode="radio", positions=pts, r0=r_tx)

    for _ in range(10):
        model.step(1.0)
    engine = HandoffEngine()
    pts = model.positions.copy()
    h_prev = build(pts)
    engine.observe(h_prev, EuclideanHops(pts, r_tx))
    a_prev = engine.assignment

    counts = {"exact": 0, "routable": 0, "stale": 0, "unresolved": 0}
    total = 0
    for _ in range(steps):
        model.step(1.0)
        pts = model.positions.copy()
        h_now = build(pts)
        hop = EuclideanHops(pts, r_tx)
        for _ in range(20):
            s, d = (int(x) for x in rng.integers(0, n, size=2))
            if s == d:
                continue
            q = resolve(h_prev, a_prev, s, d, hop)
            total += 1
            if q.hit_level < 0 or q.address is None:
                counts["unresolved"] += 1
                continue
            current = h_now.address(d)
            if q.address == current:
                counts["exact"] += 1
            elif q.address[-2] == current[-2]:  # level-1 component holds
                counts["routable"] += 1
            else:
                counts["stale"] += 1
        engine.observe(h_now, hop)
        h_prev, a_prev = h_now, engine.assignment
    return {k: v / max(total, 1) for k, v in counts.items()}


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 300 if quick else 800
    steps = 15 if quick else 40
    speeds = (0.5, 1.0, 2.0, 4.0)

    result = ExperimentResult(
        exp_id="EXP-A6",
        title="Extension: query correctness with a one-step stale LM database",
        columns=["speed (m/s)", "exact", "exact+routable", "stale",
                 "unresolved"],
    )
    for mu in speeds:
        acc: dict[str, list[float]] = {}
        for seed in seeds:
            rates = _one_run(n, mu, steps, seed)
            for k, v in rates.items():
                acc.setdefault(k, []).append(v)
        m = {k: float(np.mean(v)) for k, v in acc.items()}
        result.add_row(
            mu, round(m["exact"], 3),
            round(m["exact"] + m["routable"], 3),
            round(m["stale"], 3), round(m["unresolved"], 3),
        )
    result.add_note(
        "Reading: 'exact+routable' is the fraction of sessions a one-step "
        "lag cannot break — the operational content of the paper's claim "
        "that query overhead is absorbed into the session.  It should "
        "degrade gracefully (not collapse) as speed rises."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
