"""EXP-A6 (extension) — query correctness under propagation lag.

The paper treats queries as always answerable (Section 6 folds their
cost into the session).  In a real deployment the distributed LM
database lags the topology by at least one update round; this
experiment measures what that lag costs: at each step, queries are
resolved against the *previous* step's hierarchy and server assignment,
and the answer is graded against the target's *current* address.

Grades per query:

* **exact** — the stale answer equals the current address (the session
  can start immediately);
* **routable** — the level-1 component still holds (the packet reaches
  the target's current cluster; intra-cluster delivery fixes the rest);
* **stale** — even the level-1 component changed (the session opener
  must re-query).

The paper's locality story predicts high routability: addresses change
mostly at the bottom, and a one-step lag rarely invalidates upper
components.

The measurement rides the standard simulator as a custom
:class:`~repro.sim.collectors.Collector` (:class:`StalenessCollector`):
each :class:`~repro.sim.snapshot.StepSnapshot` carries the current
hierarchy, server assignment, and hop oracle, and the collector holds
the previous snapshot's pair as the "lagging database".
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.core import resolve
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, Simulator
from repro.sim.collectors import Collector

__all__ = ["run", "StalenessCollector"]


class StalenessCollector(Collector):
    """Grade queries resolved against a one-step-stale LM database.

    At each step, ``queries_per_step`` source/destination pairs are
    resolved against the hierarchy and assignment captured from the
    *previous* snapshot, and the answer is graded against the target's
    address in the *current* snapshot (exact / routable / stale /
    unresolved — see the module docstring).
    """

    name = "staleness"

    def __init__(self, rng: np.random.Generator, queries_per_step: int = 20):
        self._rng = rng
        self._per_step = int(queries_per_step)
        self._prev = None  # (hierarchy, assignment) one step behind
        self.counts = {"exact": 0, "routable": 0, "stale": 0, "unresolved": 0}
        self.total = 0

    def on_start(self, snap) -> None:
        """Seed the lagging database with the warmup-end state."""
        self._prev = (snap.hierarchy, snap.assignment)

    def on_step(self, snap) -> None:
        """Resolve stale, grade against current, then advance the lag."""
        h_prev, a_prev = self._prev
        h_now = snap.hierarchy
        n = snap.scenario.n
        for _ in range(self._per_step):
            s, d = (int(x) for x in self._rng.integers(0, n, size=2))
            if s == d:
                continue
            q = resolve(h_prev, a_prev, s, d, snap.hop_fn)
            self.total += 1
            if q.hit_level < 0 or q.address is None:
                self.counts["unresolved"] += 1
                continue
            current = h_now.address(d)
            if q.address == current:
                self.counts["exact"] += 1
            elif q.address[-2] == current[-2]:  # level-1 component holds
                self.counts["routable"] += 1
            else:
                self.counts["stale"] += 1
        self._prev = (h_now, snap.assignment)

    def finalize(self, elapsed: float) -> dict:
        """Return grade fractions under ``extras['staleness']``."""
        return {
            "staleness": {
                k: v / max(self.total, 1) for k, v in self.counts.items()
            }
        }


def _one_run(n: int, speed: float, steps: int, seed: int) -> dict[str, float]:
    sc = Scenario(
        n=n, steps=steps, warmup=10, speed=speed, dt=1.0,
        density=0.02, target_degree=9.0, seed=seed,
        max_levels=levels_for(n), hop_mode="euclidean",
    )
    collector = StalenessCollector(np.random.default_rng(seed))
    res = Simulator(sc, collectors=[collector]).run()
    return res.extras["staleness"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 300 if quick else 800
    steps = 15 if quick else 40
    speeds = (0.5, 1.0, 2.0, 4.0)

    result = ExperimentResult(
        exp_id="EXP-A6",
        title="Extension: query correctness with a one-step stale LM database",
        columns=["speed (m/s)", "exact", "exact+routable", "stale",
                 "unresolved"],
    )
    for mu in speeds:
        acc: dict[str, list[float]] = {}
        for seed in seeds:
            rates = _one_run(n, mu, steps, seed)
            for k, v in rates.items():
                acc.setdefault(k, []).append(v)
        m = {k: float(np.mean(v)) for k, v in acc.items()}
        result.add_row(
            mu, round(m["exact"], 3),
            round(m["exact"] + m["routable"], 3),
            round(m["stale"], 3), round(m["unresolved"], 3),
        )
    result.add_note(
        "Reading: 'exact+routable' is the fraction of sessions a one-step "
        "lag cannot break — the operational content of the paper's claim "
        "that query overhead is absorbed into the session.  It should "
        "degrade gracefully (not collapse) as speed rises."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
