"""EXP-T5 — Section 5: gamma = O(log^2 |V|) and the (i)-(vii) taxonomy.

Meters reorganization-handoff packets per node per second across |V|,
fits the scaling shape, and breaks raw reorganization events down by the
paper's seven trigger kinds per level — the empirical counterpart of
Section 5.2's enumeration.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis import (
    compare_shapes,
    fit_power,
    levels_for,
    shape_by_flatness,
)
from repro.core import EventKind
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, cached_sweep

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1), workers: int | None = None,
        cache_dir=None) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (100, 200, 400, 800, 1600) if quick else (100, 200, 400, 800, 1600, 3200, 6400)
    steps = 40 if quick else 100
    base = Scenario(n=100, steps=steps, warmup=10, speed=1.0, hop_mode="euclidean")

    points = cached_sweep(
        ns, base,
        metrics={"gamma": lambda r: r.gamma},
        seeds=seeds,
        scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
        keep_results=True,
        workers=workers,
        cache_dir=cache_dir,
    )

    result = ExperimentResult(
        exp_id="EXP-T5",
        title="Reorganization handoff gamma vs |V| (Section 5: O(log^2 |V|))",
        columns=["n", "L", "gamma (pkts/node/s)", "std", "gamma / log^2 n"],
    )
    for p in points:
        result.add_row(
            p.n, levels_for(p.n), round(p["gamma"], 4), round(p.stds["gamma"], 4),
            round(p["gamma"] / np.log(p.n) ** 2, 5),
        )

    xs = [p.n for p in points]
    ys = [p["gamma"] for p in points]
    fits = compare_shapes(xs, ys, shapes=("log2", "sqrt", "log", "linear"))
    result.add_note(
        f"AIC best shape: {fits[0].shape}; ranking: {[f.shape for f in fits]}"
    )
    flat = shape_by_flatness(xs, ys)
    result.add_note(
        "flatness ranking (CV of gamma/g(n); robust to the integer-L "
        f"staircase): {[(s, round(v, 3)) for s, v in flat]} "
        "(paper predicts log2 flattest)"
    )
    p_exp, _ = fit_power(xs, ys)
    result.add_note(f"power-law exponent: {p_exp:.3f} (sqrt would be ~0.5)")

    # Event taxonomy at the largest size.
    big = points[-1]
    if big.results:
        res = big.results[0]
        rates = res.ledger.reorg_event_rates()
        by_kind: dict[str, float] = {}
        for (kind, level), rate in rates.items():
            by_kind[kind.value] = by_kind.get(kind.value, 0.0) + rate
        order = [k.value for k in EventKind if k is not EventKind.MIGRATION]
        result.add_note(
            f"event rates at n={big.n} by kind (events/node/s): "
            + ", ".join(f"({k}) {by_kind.get(k, 0.0):.4f}" for k in order)
        )
        gk = res.ledger.gamma_k()
        result.add_note(
            f"gamma_k at n={big.n}: "
            + ", ".join(f"k={k}: {v:.3f}" for k, v in gk.items())
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
