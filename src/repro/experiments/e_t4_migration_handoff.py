"""EXP-T4 — Section 4: phi = O(log^2 |V|).

The headline migration-handoff bound.  Sweeps |V| with L = Theta(log n)
levels, meters phi (migration-handoff packets per node per second) and
its per-level decomposition phi_k, and runs the shape comparison: the
paper's claim holds if the log^2 fit beats sqrt/linear and phi_k stays
O(log n) per level.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis import (
    compare_shapes,
    fit_power,
    fit_shape,
    levels_for,
    shape_by_flatness,
)
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, cached_sweep

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1), workers: int | None = None,
        cache_dir=None) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (100, 200, 400, 800, 1600) if quick else (100, 200, 400, 800, 1600, 3200, 6400)
    steps = 40 if quick else 100
    base = Scenario(n=100, steps=steps, warmup=10, speed=1.0, hop_mode="euclidean")

    points = cached_sweep(
        ns, base,
        metrics={"phi": lambda r: r.phi},
        seeds=seeds,
        scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
        keep_results=True,
        workers=workers,
        cache_dir=cache_dir,
    )

    result = ExperimentResult(
        exp_id="EXP-T4",
        title="Migration handoff phi vs |V| (Section 4: O(log^2 |V|))",
        columns=["n", "L", "phi (pkts/node/s)", "std", "phi / log^2 n"],
    )
    for p in points:
        result.add_row(
            p.n, levels_for(p.n), round(p["phi"], 4), round(p.stds["phi"], 4),
            round(p["phi"] / np.log(p.n) ** 2, 5),
        )

    xs = [p.n for p in points]
    ys = [p["phi"] for p in points]
    fits = compare_shapes(xs, ys, shapes=("log2", "sqrt", "log", "linear"))
    result.add_note(
        f"AIC best shape: {fits[0].shape}; ranking: {[f.shape for f in fits]}"
    )
    flat = shape_by_flatness(xs, ys)
    result.add_note(
        "flatness ranking (CV of phi/g(n); robust to the integer-L "
        f"staircase): {[(s, round(v, 3)) for s, v in flat]} "
        "(paper predicts log2 flattest)"
    )
    p_exp, _ = fit_power(xs, ys)
    result.add_note(
        f"power-law exponent: {p_exp:.3f} (polylog drifts toward 0; "
        "sqrt growth would give ~0.5, linear ~1)"
    )
    # The bound's two factors, checked separately: phi_k = O(log n) per
    # level, and L = Theta(log n) levels.
    per_level: dict[int, list[tuple[int, float]]] = {}
    for p in points:
        for res in p.results:
            for k, v in res.ledger.phi_k().items():
                per_level.setdefault(k, []).append((p.n, v))
    for k in sorted(per_level):
        pts_k = per_level[k]
        if len({n for n, _ in pts_k}) >= 3:
            xs_k = [n for n, _ in pts_k]
            ys_k = [v for _, v in pts_k]
            f_log = fit_shape(xs_k, ys_k, "log")
            f_sqrt = fit_shape(xs_k, ys_k, "sqrt")
            winner = "log" if f_log.sse <= f_sqrt.sse else "sqrt"
            result.add_note(
                f"phi_k at level {k} across n: log-fit R^2={f_log.r2:.2f}, "
                f"better shape: {winner} (paper: O(log n) per level)"
            )
    big = points[-1]
    if big.results:
        phi_k = big.results[0].ledger.phi_k()
        result.add_note(
            f"phi_k at n={big.n}: "
            + ", ".join(f"k={k}: {v:.3f}" for k, v in phi_k.items())
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
