"""EXP-A2 (ablation) — radio-model vs contraction cluster graphs.

The paper's Section 5.3.1 argues level-k links live Theta(h_k / mu)
because breaking one requires clusterheads to drift Theta(sqrt(c_k))
apart — implicitly a *geometric* link model.  Deriving level-k links by
edge contraction instead (two clusters linked iff any boundary link
crosses) makes adjacency hinge on single level-0 links, which flip at
Theta(1) rate regardless of level.  This ablation measures both
constructions on identical traces and shows the contraction mode breaks
the Theta(1/h_k) decay that the gamma bound needs — the justification
for the repository's radio-mode default (DESIGN.md fidelity note 2).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 800 if quick else 1600
    steps = 40 if quick else 100

    result = ExperimentResult(
        exp_id="EXP-A2",
        title="Ablation: radio-model vs contraction level-k links",
        columns=["mode", "level k", "g'_k drift (1/link/s)", "h_k",
                 "drift * h_k", "gamma"],
    )
    summaries = {}
    for mode in ("radio", "contraction"):
        gpd_acc: dict[int, list[float]] = {}
        hk_acc: dict[int, list[float]] = {}
        gammas = []
        for seed in seeds:
            sc = Scenario(
                n=n, steps=steps, warmup=10, speed=1.0, seed=seed,
                hop_mode="euclidean", max_levels=levels_for(n),
                level_mode=mode,
            )
            res = run_scenario(sc, hop_sample_every=max(steps // 3, 1))
            gammas.append(res.gamma)
            for k, v in res.g_prime_k_drift().items():
                gpd_acc.setdefault(k, []).append(v)
            for k, v in res.mean_h_k().items():
                hk_acc.setdefault(k, []).append(v)
        gamma = float(np.mean(gammas))
        prods = []
        for k in sorted(gpd_acc):
            gpd = float(np.mean(gpd_acc[k]))
            hk = float(np.mean(hk_acc.get(k, [np.nan])))
            prod = gpd * hk if np.isfinite(hk) else float("nan")
            if np.isfinite(prod) and gpd > 0:
                prods.append(prod)
            result.add_row(
                mode, k, round(gpd, 4),
                round(hk, 2) if np.isfinite(hk) else "n/a",
                round(prod, 3) if np.isfinite(prod) else "n/a",
                round(gamma, 3),
            )
        if len(prods) >= 2:
            summaries[mode] = max(prods) / min(prods)

    for mode, spread in summaries.items():
        result.add_note(
            f"{mode}: drift g'_k * h_k spread = {spread:.2f} "
            "(1.0 would be the exact Eq. 14 constancy)"
        )
    result.add_note(
        "Reading: the radio model keeps g'_k ~ 1/h_k (small spread); "
        "contraction-mode adjacency flickers at high levels, inflating "
        "the spread and gamma — dropping the paper's geometric link "
        "assumption measurably breaks the bound's premise."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
