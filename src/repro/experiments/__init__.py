"""Experiment harness — one module per reproduced figure/claim.

See DESIGN.md Section 3 for the experiment index.  Each module exposes
``run(quick=True, ...) -> ExperimentResult``; the corresponding benchmark
executes it and prints the table.
"""

from repro.experiments import (
    e_a1_election_mode,
    e_a2_level_mode,
    e_a3_failures,
    e_a4_staleness,
    e_a5_persistent_ids,
    e_a6_query_staleness,
    e_a7_state_stretch,
    e_a8_magic_number,
    e_a9_end_to_end,
    e_a10_lossy_control,
    e_a11_chaos,
    e_a12_service_load,
    e_f1_hierarchy,
    e_f2_gls_grid,
    e_f3_alca_states,
    e_s1_scaling,
    e_t1_link_freq,
    e_t2_hopcount,
    e_t3_migration_freq,
    e_t4_migration_handoff,
    e_t5_reorg_handoff,
    e_t6_cluster_link_freq,
    e_t7_load_balance,
    e_t8_gls_vs_chlm,
    e_t9_table_size,
    e_t10_overhead_budget,
)
from repro.experiments.common import ExperimentResult

ALL_EXPERIMENTS = {
    "EXP-F1": e_f1_hierarchy.run,
    "EXP-F2": e_f2_gls_grid.run,
    "EXP-F3": e_f3_alca_states.run,
    "EXP-T1": e_t1_link_freq.run,
    "EXP-T2": e_t2_hopcount.run,
    "EXP-T3": e_t3_migration_freq.run,
    "EXP-T4": e_t4_migration_handoff.run,
    "EXP-T5": e_t5_reorg_handoff.run,
    "EXP-T6": e_t6_cluster_link_freq.run,
    "EXP-T7": e_t7_load_balance.run,
    "EXP-T8": e_t8_gls_vs_chlm.run,
    "EXP-T9": e_t9_table_size.run,
    "EXP-T10": e_t10_overhead_budget.run,
    "EXP-A1": e_a1_election_mode.run,
    "EXP-A2": e_a2_level_mode.run,
    "EXP-A3": e_a3_failures.run,
    "EXP-A4": e_a4_staleness.run,
    "EXP-A5": e_a5_persistent_ids.run,
    "EXP-A6": e_a6_query_staleness.run,
    "EXP-A7": e_a7_state_stretch.run,
    "EXP-A8": e_a8_magic_number.run,
    "EXP-A9": e_a9_end_to_end.run,
    "EXP-A10": e_a10_lossy_control.run,
    "EXP-A11": e_a11_chaos.run,
    "EXP-A12": e_a12_service_load.run,
    "EXP-S1": e_s1_scaling.run,
}

__all__ = ["ExperimentResult", "ALL_EXPERIMENTS"]
