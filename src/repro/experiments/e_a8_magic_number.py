"""EXP-A8 (extension) — "why six is a magic number", revisited.

The paper's hop-count scaling leans on Kleinrock & Silvester [2], whose
famous result is that an average degree around six maximizes progress
per hop in a random packet-radio network.  Degree also gates everything
else here: connectivity (too low → partitioned), link churn f_0 (radius
in the denominator of Eq. 4), cluster arity, and ultimately the handoff
bill.  This experiment sweeps the target degree at fixed node count and
tabulates the whole chain, locating the sweet spot the reference names.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 300 if quick else 800
    steps = 30 if quick else 80
    degrees = (4.0, 6.0, 9.0, 12.0, 16.0)

    result = ExperimentResult(
        exp_id="EXP-A8",
        title='Degree sensitivity ("six is a magic number" [2])',
        columns=["target degree", "giant frac", "h (hops)", "f_0",
                 "alpha_1", "handoff (pkts/node/s)"],
    )
    for d in degrees:
        acc: dict[str, list[float]] = {}
        for seed in seeds:
            sc = Scenario(
                n=n, steps=steps, warmup=10, speed=1.0, seed=seed,
                target_degree=d, hop_mode="euclidean",
                max_levels=levels_for(n),
            )
            res = run_scenario(sc, hop_sample_every=max(steps // 3, 1))
            size1 = res.level_series.mean_size(1)
            acc.setdefault("giant", []).append(res.giant_fraction)
            acc.setdefault("h", []).append(res.mean_h())
            acc.setdefault("f0", []).append(res.f0)
            acc.setdefault("alpha1", []).append(n / size1 if size1 else 0.0)
            acc.setdefault("handoff", []).append(res.handoff_rate)
        m = {k: float(np.mean(v)) for k, v in acc.items()}
        result.add_row(d, round(m["giant"], 3), round(m["h"], 2),
                       round(m["f0"], 3), round(m["alpha1"], 2),
                       round(m["handoff"], 3))

    result.add_note(
        "Reading: below ~6 the giant component crumbles (connectivity "
        "fails before anything else).  Raising the degree buys shorter "
        "paths and slightly cheaper handoff, but every extra link also "
        "churns — f_0 grows ~linearly with degree (|E|/|V| in Eq. 4's "
        "numerator) — so total control traffic per node keeps rising.  "
        "The usable band starts right at the reference's magic number: "
        "degree 6-9 is the first regime that is connected, short-pathed, "
        "and not yet churn-dominated."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
