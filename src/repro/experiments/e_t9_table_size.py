"""EXP-T9 — Section 2.1 / Kleinrock-Kamoun [7]: routing state.

Compares flat routing tables (|V| - 1 entries per node) with the strict
hierarchical map (peers in the level-1 cluster plus sibling clusters per
level).  The hierarchical map should grow ~logarithmically, the flat
table linearly — the reduction that motivates hierarchical routing in
the first place.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import compare_shapes, levels_for
from repro.experiments.common import ExperimentResult
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.routing import flat_table_size, hierarchical_table_sizes

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1, 2)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (100, 200, 400, 800, 1600) if quick else (100, 200, 400, 800, 1600, 3200, 6400)
    density = 0.02
    degree = 9.0

    result = ExperimentResult(
        exp_id="EXP-T9",
        title="Routing state: hierarchical map vs flat table",
        columns=["n", "flat entries", "hier mean", "hier max",
                 "hier/flat", "hier / log n"],
    )
    means = []
    for n in ns:
        samples = []
        maxes = []
        for seed in seeds:
            region = disc_for_density(n, density)
            rng = np.random.default_rng(seed)
            pts = region.sample(n, rng)
            r_tx = radius_for_degree(degree, density)
            edges = unit_disk_edges(pts, r_tx)
            h = build_hierarchy(
                np.arange(n), edges, max_levels=levels_for(n),
                level_mode="radio", positions=pts, r0=r_tx,
            )
            sizes = hierarchical_table_sizes(h)
            samples.append(sizes.mean())
            maxes.append(sizes.max())
        mean = float(np.mean(samples))
        means.append(mean)
        flat = flat_table_size(n)
        result.add_row(
            n, flat, round(mean, 1), int(np.mean(maxes)),
            round(mean / flat, 4), round(mean / np.log(n), 2),
        )

    fits = compare_shapes(list(ns), means, shapes=("log", "log2", "sqrt", "linear"))
    result.add_note(
        f"hierarchical map best shape: {fits[0].shape} "
        f"(expected log-ish; ranking: {[f.shape for f in fits]})"
    )
    reduction = flat_table_size(ns[-1]) / means[-1]
    result.add_note(
        f"at n={ns[-1]} the hierarchical map is {reduction:.0f}x smaller "
        "than the flat table"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
