"""EXP-A11 (extension) — chaos episodes and recovery SLOs.

The paper's steady-state analysis assumes the hierarchy exists and is
reachable; it never quantifies what a *structural* fault costs — a
clusterhead decapitation, a geographic partition, a burst of control
loss.  This extension drives the same simulator through scheduled fault
episodes (:mod:`repro.faults.chaos`) and measures the question the
analysis leaves open: how long until the location management structure
*reconverges*, and what breaks while it is down?

Four regimes share one deployment:

* **control** — no faults; what the invariant checker still counts is
  the *natural fragmentation baseline* (mobility occasionally strands a
  node, taking its location-DB pointers out of reach) that the fault
  regimes are read against;
* **ch-kill** — a one-shot kill of several level-1 clusterheads, the
  reorganization case of the paper's handoff taxonomy, forced;
* **partition** — a cut line severs the disc for a window, stranding
  every cross-cut location-DB pointer until the cut heals;
* **burst** — a loss window on top of the PR-2 delivery model, stressing
  registration delivery without touching the graph.

Per regime the table reports total/peak invariant violations, peak
simultaneously-down nodes, measured time-to-reconverge after the last
episode ends, the longest stale-location window, and end-to-end query
success.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.faults import CrashEpisode, LossBurstEpisode, PartitionEpisode
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def _scenario(n, steps, seed, chaos):
    # Dense deployment: keeps the natural-fragmentation baseline small
    # relative to the fault signal (it cannot be driven to zero — one
    # stray node strands every pointer it serves).
    return Scenario(
        n=n, steps=steps, warmup=5, speed=1.5, seed=seed,
        max_levels=3, target_degree=12.0, hop_mode="euclidean",
        queries_per_step=8, retry_attempts=2, loss_rate=0.02,
        chaos=chaos, invariant_mode="count",
    )


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 150 if quick else 400
    steps = 30 if quick else 80

    regimes = [
        ("control", ()),
        ("ch-kill", (
            CrashEpisode(start=8.0, duration=1.0, count=4,
                         targets="clusterheads", repair_time=8.0),
        )),
        ("partition", (
            PartitionEpisode(start=8.0, duration=10.0, angle=0.4),
        )),
        ("burst", (
            LossBurstEpisode(start=8.0, duration=8.0, rate=0.45),
        )),
    ]

    result = ExperimentResult(
        exp_id="EXP-A11",
        title="Extension: chaos episodes, invariant violations, recovery SLOs",
        columns=["regime", "violations", "peak", "peak down",
                 "reconverge (s)", "stale window", "query success"],
    )
    for name, chaos in regimes:
        totals, peaks, downs, ttrs, stales, succ = [], [], [], [], [], []
        for seed in seeds:
            res = run_scenario(_scenario(n, steps, seed, chaos),
                               hop_sample_every=10_000)
            rep = res.extras["chaos"]
            totals.append(rep.total_violations)
            peaks.append(rep.peak_violations)
            downs.append(rep.peak_down)
            ttr = rep.max_time_to_reconverge()
            if ttr is None:
                # Control: nothing to recover from.  Fault regime: the
                # run ended still broken — report an infinite SLO.
                ttr = np.inf if chaos else 0.0
            ttrs.append(ttr)
            stales.append(rep.max_stale_window)
            # None means "no queries sampled", not "all queries
            # failed": keep it out of the mean instead of zeroing it.
            rate = res.query_success_rate
            succ.append(np.nan if rate is None else rate)
        result.add_row(
            name,
            round(float(np.mean(totals)), 1),
            round(float(np.mean(peaks)), 1),
            round(float(np.mean(downs)), 1),
            round(float(np.mean(ttrs)), 1),
            round(float(np.mean(stales)), 1),
            "n/a" if np.all(np.isnan(succ))
            else f"{float(np.nanmean(succ)):.3f}",
        )
    result.add_note(
        "Finding: every fault regime reconverges in finite time once its "
        "episode ends — the hierarchy is self-healing, as the memoryless "
        "re-election argument predicts.  But the *location layer* lags "
        "the hierarchy: partitions strand cross-cut server pointers for "
        "the whole cut (violations track the cut window, not the "
        "re-election time), and bursts stretch the stale-location window "
        "far past the loss window itself.  Read fault rows against the "
        "control row: its nonzero count is the mobility-induced "
        "fragmentation baseline, not an injected fault."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
