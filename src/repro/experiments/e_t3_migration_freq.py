"""EXP-T3 — Eqs. (7)-(9): level-k migration frequency f_k = Theta(1/h_k).

From deep simulation runs, tabulates per level: the measured pure node
migration frequency f_k, the measured intra-cluster hop count h_k, and
the product f_k * h_k — which the paper predicts is level-independent
(Eq. 9), the exact condition that collapses phi_k to O(log|V|).
"""

from __future__ import annotations

import numpy as np

from dataclasses import replace

from repro.analysis import fit_shape, levels_for
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, expand_grid, run_sweep

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1), workers: int | None = None,
        cache_dir=None) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (400, 800) if quick else (400, 800, 1600, 3200)
    steps = 40 if quick else 100

    base = Scenario(n=400, steps=steps, warmup=10, speed=1.0,
                    hop_mode="euclidean")
    scenarios = expand_grid(
        base, ns, seeds,
        scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
    )
    results = run_sweep(scenarios, hop_sample_every=max(steps // 3, 1),
                        workers=workers, cache_dir=cache_dir)

    result = ExperimentResult(
        exp_id="EXP-T3",
        title="Migration frequency f_k vs 1/h_k (Eqs. 7-9)",
        columns=["n", "level k", "f_k (events/node/s)", "h_k", "f_k * h_k"],
    )
    products = []
    per_n = len(list(seeds))
    for i, n in enumerate(ns):
        fk_acc: dict[int, list[float]] = {}
        hk_acc: dict[int, list[float]] = {}
        for res in results[i * per_n : (i + 1) * per_n]:
            for k, v in res.ledger.f_k().items():
                fk_acc.setdefault(k, []).append(v)
            for k, v in res.mean_h_k().items():
                hk_acc.setdefault(k, []).append(v)
        for k in sorted(fk_acc):
            fk = float(np.mean(fk_acc[k]))
            hk = float(np.mean(hk_acc.get(k, [np.nan])))
            prod = fk * hk if np.isfinite(hk) else float("nan")
            result.add_row(n, k, round(fk, 4), round(hk, 2),
                           round(prod, 4) if np.isfinite(prod) else "n/a")
            if np.isfinite(prod):
                products.append((n, k, fk, hk, prod))

    # Shape check: f_k against 1/h_k within the deepest run.
    deepest_n = ns[-1]
    rows = [(hk, fk) for n, k, fk, hk, _ in products if n == deepest_n]
    if len(rows) >= 3:
        f = fit_shape([h for h, _ in rows], [fk for _, fk in rows], "inv_sqrt")
        result.add_note(
            f"n={deepest_n}: f_k vs h_k fit to a/sqrt(h_k): R^2={f.r2:.3f} "
            "(crude; the sharper check is the flat product below)"
        )
    if products:
        prods = [p for *_, p in products]
        result.add_note(
            f"f_k * h_k across all levels/sizes: mean={np.mean(prods):.4f}, "
            f"max/min={max(prods) / min(prods):.2f} "
            "(Eq. 9 predicts a level-independent constant)"
        )
        # Monotone decay of f_k with k at the largest n.
        fks = [(k, fk) for n, k, fk, _, _ in products if n == deepest_n]
        fks.sort()
        decreasing = all(a[1] >= b[1] * 0.7 for a, b in zip(fks, fks[1:]))
        result.add_note(
            f"f_k monotone decay at n={deepest_n}: "
            f"{[round(v, 4) for _, v in fks]} ({'yes' if decreasing else 'noisy'})"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
