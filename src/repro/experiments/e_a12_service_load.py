"""EXP-A12 (extension) — open-loop service load and latency SLOs.

The paper meters handoff overhead per mobility event; a deployed
location service additionally faces *open-loop load* — lookups and
updates arrive at their own rate, whether or not the last one finished.
This extension drives the PR-8 service front-end (:mod:`repro.service`)
up a load ladder over one deployment and tabulates the queueing story
the per-event analysis cannot see: sojourn-time percentiles against
offered load, the latency knee past the service capacity, and what
token-bucket admission control buys back.

Four regimes share one scenario (only the service knobs vary):

* **underload** — arrivals well below capacity; latency is pure service
  time and the queue never builds;
* **at-capacity** — arrivals near the worker pool's service rate; waits
  appear but the backlog stays bounded;
* **overload** — arrivals past capacity with admission off; the bounded
  queue saturates and the excess is *dropped* after queueing (worst
  case: the backlog penalty is paid, then work is lost);
* **admitted** — the same overload with a token bucket sized to
  capacity; the excess is *shed* before service and the served tail
  latency recovers.

Per regime the table reports offered/served totals, shed and dropped
counts, p50/p95/p99 sojourn latency (simulated seconds), throughput,
and peak queue depth.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def _scenario(n, steps, seed, *, arrival_rate, admission_rate):
    return Scenario(
        n=n, steps=steps, warmup=5, speed=1.5, seed=seed,
        max_levels=3, target_degree=12.0, hop_mode="euclidean",
        arrival_rate=arrival_rate, admission_rate=admission_rate,
        service_workers=4, service_queue_capacity=64,
    )


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 150 if quick else 400
    steps = 25 if quick else 60

    # The worker pool serves roughly workers / ((1 + packets) * hop_time)
    # requests/s; the ladder brackets that knee from both sides.
    regimes = [
        ("underload", dict(arrival_rate=30.0, admission_rate=0.0)),
        ("at-capacity", dict(arrival_rate=90.0, admission_rate=0.0)),
        ("overload", dict(arrival_rate=240.0, admission_rate=0.0)),
        ("admitted", dict(arrival_rate=240.0, admission_rate=90.0)),
    ]

    result = ExperimentResult(
        exp_id="EXP-A12",
        title="Extension: open-loop service load, admission control, latency SLOs",
        columns=["regime", "offered", "served", "shed", "dropped",
                 "p50 (s)", "p95 (s)", "p99 (s)", "thru (req/s)", "peak queue"],
    )
    for name, knobs in regimes:
        offered, served, shed, dropped = [], [], [], []
        p50s, p95s, p99s, thru, peakq = [], [], [], [], []
        for seed in seeds:
            sc = _scenario(n, steps, seed, **knobs)
            rep = run_scenario(sc, hop_sample_every=10_000).extras["service"]
            offered.append(rep.offered)
            served.append(rep.served)
            shed.append(rep.shed)
            dropped.append(rep.dropped)
            p50s.append(rep.p50)
            p95s.append(rep.p95)
            p99s.append(rep.p99)
            thru.append(rep.throughput)
            peakq.append(rep.peak_queue_depth)
        result.add_row(
            name,
            round(float(np.mean(offered)), 1),
            round(float(np.mean(served)), 1),
            round(float(np.mean(shed)), 1),
            round(float(np.mean(dropped)), 1),
            round(float(np.nanmean(p50s)), 4),
            round(float(np.nanmean(p95s)), 4),
            round(float(np.nanmean(p99s)), 4),
            round(float(np.mean(thru)), 1),
            round(float(np.mean(peakq)), 1),
        )
    result.add_note(
        "Finding: below capacity, sojourn latency is flat at the pure "
        "service time and the queue never builds.  Past the knee, the "
        "bounded queue saturates: p99 latency inflates by the full "
        "backlog and the excess is dropped only *after* inflating "
        "everyone else's wait.  A token bucket sized near capacity "
        "instead sheds the excess *before* it queues: fewer requests "
        "are served, but every served one meets a tail close to the "
        "underload latency — the overload trade-off made explicit at "
        "the front door rather than paid implicitly by every client in "
        "the backlog."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
