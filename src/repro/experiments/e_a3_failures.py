"""EXP-A3 (extension) — handoff under node failure.

Section 1 of the paper *excludes* clusterhead birth/death: "the
occurrence of node birth/death is assumed here to be extremely rare
and, therefore, its effect is not evaluated."  This extension evaluates
it: nodes crash at a Poisson rate (losing all links) and recover after
a fixed downtime.  Each crash of a clusterhead forces exactly the
reorganization handoff the paper's taxonomy describes; the experiment
measures how fast the excluded effect grows with the failure rate, and
at what rate it starts to rival mobility-induced handoff.

The crash model behind ``failure_rate`` is now served by the chaos
engine (``repro.faults.chaos``): the scenario field expands to a
whole-run ``CrashEpisode`` on the historical ``"failures"`` RNG
stream, so this experiment's numbers are unchanged — they are frozen
bit-for-bit in ``tests/sim/test_chaos_equivalence.py``.  EXP-A11
generalizes the model to scheduled episodes, partitions, and loss
bursts with invariant checking and recovery SLOs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 300 if quick else 800
    steps = 40 if quick else 100
    # Per-node crash rates: 0 (control) up to one crash per ~100 s.
    rates = (0.0, 0.001, 0.005, 0.01) if quick else (0.0, 0.0005, 0.001, 0.005, 0.01, 0.02)

    result = ExperimentResult(
        exp_id="EXP-A3",
        title="Extension: handoff under node failure (the paper's excluded factor)",
        columns=["failure rate (1/s)", "phi", "gamma", "total",
                 "vs control", "mean crashes/step"],
    )
    control = None
    for rate in rates:
        phis, gammas, crash_counts = [], [], []
        for seed in seeds:
            sc = Scenario(
                n=n, steps=steps, warmup=10, speed=1.0, seed=seed,
                hop_mode="euclidean", max_levels=levels_for(n),
                failure_rate=rate, repair_time=15.0,
            )
            res = run_scenario(sc, hop_sample_every=10_000)
            phis.append(res.phi)
            gammas.append(res.gamma)
            crash_counts.append(rate * n)  # expected crashes per second
        phi = float(np.mean(phis))
        gamma = float(np.mean(gammas))
        total = phi + gamma
        if control is None:
            control = total
        result.add_row(
            rate, round(phi, 3), round(gamma, 3), round(total, 3),
            f"{total / max(control, 1e-9):.2f}x",
            round(float(np.mean(crash_counts)), 2),
        )
    result.add_note(
        "Finding: at realistic rates, failures *reduce* the per-node "
        "handoff rate.  A crash does cost a burst of forced "
        "elections/rejections, but a crashed node then sits frozen for "
        "the whole repair window, contributing zero churn — and the "
        "frozen fraction (rate * repair_time) outweighs the bursts until "
        "crash rates approach the link-churn rate.  The paper's exclusion "
        "of birth/death is therefore *conservative*: adding rare failures "
        "cannot break the Theta(log^2 n) bound."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
