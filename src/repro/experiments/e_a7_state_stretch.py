"""EXP-A7 (extension) — the Kleinrock-Kamoun state/stretch tradeoff.

Hierarchical routing's whole bargain ([7], Section 2.1): exponentially
less routing state in exchange for a bounded path-length penalty.
EXP-T9 measured the state side; this experiment adds the price tag —
the stretch distribution of hop-by-hop hierarchical forwarding against
flat shortest paths — across network sizes and hierarchy depths.

Rows report, per (n, L): mean per-node map size, state reduction vs
flat, delivery ratio, and mean / p95 stretch.  The tradeoff claim holds
if stretch stays a small constant while state reduction grows with n.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.experiments.common import ExperimentResult
from repro.geometry import disc_for_density
from repro.graphs import CompactGraph
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges
from repro.radio.linkevents import LinkTracker
from repro.routing import FabricCache, FlatRouter, ForwardingFabric

__all__ = ["run"]


def _measure(n: int, L: int, seed: int, pairs: int = 150) -> dict[str, float]:
    density = 0.02
    r_tx = radius_for_degree(9.0, density)
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    edges = unit_disk_edges(pts, r_tx)
    g = CompactGraph(np.arange(n), edges)
    h = build_hierarchy(np.arange(n), edges, max_levels=L,
                        level_mode="radio", positions=pts, r0=r_tx)
    fabric = ForwardingFabric(h, g)
    flat = FlatRouter(g)

    stretches = []
    delivered = attempted = 0
    for _ in range(pairs):
        s, d = (int(x) for x in rng.integers(0, n, size=2))
        fp = flat.hop_count(s, d)
        if fp <= 0:
            continue
        attempted += 1
        res = fabric.forward(s, d)
        if res.delivered:
            delivered += 1
            stretches.append(res.hops / fp)
    return {
        "state": float(fabric.table_sizes().mean()),
        "delivery": delivered / max(attempted, 1),
        "stretch_mean": float(np.mean(stretches)) if stretches else float("nan"),
        "stretch_p95": float(np.percentile(stretches, 95)) if stretches else float("nan"),
    }


def _measure_steady(n: int, L: int, seed: int, steps: int = 6,
                    pairs: int = 40, drift: float = 0.2) -> dict[str, float]:
    """Steady-state variant: the fabric is *maintained* across drifting
    snapshots by a :class:`FabricCache` fed with each step's link events
    (instead of rebuilt per snapshot), measuring the same delivery /
    stretch quantities plus how much flood state the cache reused."""
    density = 0.02
    r_tx = radius_for_degree(9.0, density)
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    tracker = LinkTracker(n)
    cache = FabricCache()
    stretches: list[float] = []
    states: list[float] = []
    delivered = attempted = 0
    for _ in range(steps):
        edges = unit_disk_edges(pts, r_tx)
        g = CompactGraph(np.arange(n), edges)
        h = build_hierarchy(np.arange(n), edges, max_levels=L,
                            level_mode="radio", positions=pts, r0=r_tx)
        fabric = cache.update(h, g, tracker.observe(edges))
        states.append(float(fabric.table_sizes().mean()))
        flat = FlatRouter(g)
        for _ in range(pairs):
            s, d = (int(x) for x in rng.integers(0, n, size=2))
            fp = flat.hop_count(s, d)
            if fp <= 0:
                continue
            attempted += 1
            res = fabric.forward(s, d)
            if res.delivered:
                delivered += 1
                stretches.append(res.hops / fp)
        pts = pts + rng.normal(scale=drift, size=pts.shape)
    st = cache.stats
    total_rows = st.rows_reused + st.rows_stale
    return {
        "state": float(np.mean(states)),
        "delivery": delivered / max(attempted, 1),
        "stretch_mean": float(np.mean(stretches)) if stretches else float("nan"),
        "rows_reused_frac": st.rows_reused / max(total_rows, 1),
        "full_rebuilds": float(st.full_rebuilds),
    }


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (200, 400, 800) if quick else (200, 400, 800, 1600, 3200)

    result = ExperimentResult(
        exp_id="EXP-A7",
        title="Extension: routing state vs path stretch (Kleinrock-Kamoun tradeoff)",
        columns=["n", "L", "map entries/node", "state vs flat",
                 "delivery", "stretch mean", "stretch p95"],
    )
    reductions, stretches = [], []
    for n in ns:
        L = levels_for(n)
        acc: dict[str, list[float]] = {}
        for seed in seeds:
            m = _measure(n, L, seed)
            for k, v in m.items():
                acc.setdefault(k, []).append(v)
        mean = {k: float(np.nanmean(v)) for k, v in acc.items()}
        reduction = (n - 1) / max(mean["state"], 1e-9)
        reductions.append(reduction)
        stretches.append(mean["stretch_mean"])
        result.add_row(
            n, L, round(mean["state"], 1), f"{reduction:.0f}x smaller",
            round(mean["delivery"], 3), round(mean["stretch_mean"], 2),
            round(mean["stretch_p95"], 2),
        )
    result.add_note(
        f"state reduction grows {reductions[0]:.0f}x -> {reductions[-1]:.0f}x "
        f"while mean stretch stays ~{np.mean(stretches):.2f} — the [7] "
        "tradeoff: logarithmic state for a constant-factor detour."
    )
    # Depth sensitivity at the largest size.
    n = ns[-1]
    for L in (2, levels_for(n) + 1):
        m = _measure(n, L, seeds[0])
        result.add_note(
            f"n={n}, L={L}: state {m['state']:.1f}/node, "
            f"stretch {m['stretch_mean']:.2f} "
            "(deeper hierarchies trade state for stretch)"
        )
    # Steady state under mobility: the incrementally maintained fabric
    # (bit-identical to per-step rebuilds) with its reuse fraction.
    n0 = ns[0]
    m = _measure_steady(n0, levels_for(n0), seeds[0])
    result.add_note(
        f"steady state (incremental fabric, n={n0}): "
        f"state {m['state']:.1f}/node, delivery {m['delivery']:.3f}, "
        f"stretch {m['stretch_mean']:.2f}, "
        f"{100 * m['rows_reused_frac']:.0f}% of flood rows reused across steps, "
        f"{m['full_rebuilds']:.0f} full rebuild(s)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
