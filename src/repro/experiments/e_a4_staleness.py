"""EXP-A4 (extension) — LM consistency: address-component lifetimes.

GLS feature (c) — nearby servers updated often, distant ones rarely —
only works because high-level address components are long-lived.  This
experiment measures, per hierarchy level, the mean lifetime of a node's
level-k address component and the staleness fraction an LM entry would
suffer under a fixed one-step update lag.  The paper's locality story
predicts lifetimes growing ~h_k with level (the same Theta(sqrt(c_k))
scale as delta_k in Eq. 7), so staleness concentrates at the cheap,
nearby levels.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 400 if quick else 1600
    steps = 40 if quick else 120
    speeds = (0.5, 1.0, 2.0)

    result = ExperimentResult(
        exp_id="EXP-A4",
        title="Extension: address-component lifetimes and LM staleness",
        columns=["speed (m/s)", "level k", "component lifetime (s)",
                 "staleness @ dt lag", "lifetime * speed"],
    )
    per_speed: dict[float, dict[int, float]] = {}
    for mu in speeds:
        life_acc: dict[int, list[float]] = {}
        for seed in seeds:
            sc = Scenario(
                n=n, steps=steps, warmup=10, speed=mu, seed=seed,
                hop_mode="euclidean", max_levels=levels_for(n),
            )
            res = run_scenario(sc, hop_sample_every=10_000)
            for k, t in res.component_lifetimes().items():
                if np.isfinite(t):
                    life_acc.setdefault(k, []).append(t)
        lifetimes = {k: float(np.mean(v)) for k, v in life_acc.items()}
        per_speed[mu] = lifetimes
        for k in sorted(lifetimes):
            t = lifetimes[k]
            result.add_row(mu, k, round(t, 1), round(min(1.0 / t, 1.0), 4),
                           round(t * mu, 1))

    for mu, lifetimes in per_speed.items():
        ordered = [lifetimes[k] for k in sorted(lifetimes)]
        result.add_note(
            f"mu={mu}: lifetimes by level {['%.0f' % v for v in ordered]}"
        )
    result.add_note(
        "Finding: lifetimes are level-FLAT, not growing ~h_k as pure "
        "boundary-crossing (Eq. 7) would give.  Cause: clusters are named "
        "by head ID (Fig. 1 convention), so a head replacement renames the "
        "component for every member without anyone moving — the same "
        "high-level churn as EXPERIMENTS.md deviation 1.  A cluster-ID "
        "persistence scheme (IDs surviving head handover) would recover "
        "the Theta(sqrt(c_k)) growth; with head-named clusters, feature "
        "(c)'s saving comes from the update *path length*, not frequency."
    )
    # Lifetime ~ 1/mu: the product lifetime*speed should be speed-invariant.
    common = set.intersection(*(set(v) for v in per_speed.values()))
    for k in sorted(common):
        prods = [per_speed[mu][k] * mu for mu in speeds]
        result.add_note(
            f"level {k}: lifetime*mu across speeds = "
            + ", ".join(f"{p:.0f}" for p in prods)
            + " (constancy => lifetime = Theta(delta_k / mu), Eq. 7/8)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
