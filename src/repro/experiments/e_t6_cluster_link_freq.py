"""EXP-T6 — Eqs. (13)-(14): cluster-link structure and change frequency.

Per-level checks feeding the Section 5 bound:

* Eq. (13b): |E_k| / |V| = Theta(1/c_k) — level-k links per *physical*
  node decay inversely with aggregation;
* Eq. (14) via Section 5.3.1: the *drift* component of g'_k (link
  changes between persisting clusterheads — cluster migration) is
  O(1/h_k).  Election-churn link changes (Section 5.3.2's events) are
  tabulated separately; their packet impact is bounded through the
  recursion argument of EXP-F3, not through Eq. (14).

Degenerate top levels (fewer than 4 clusters on average) are excluded
from the constancy checks — the paper's Theta() statements assume
non-trivial cluster populations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_shape, levels_for
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 800 if quick else 3200
    steps = 40 if quick else 100

    result = ExperimentResult(
        exp_id="EXP-T6",
        title="Cluster links: |E_k|/|V| vs 1/c_k (Eq. 13b), drift g'_k vs 1/h_k (Eq. 14)",
        columns=["level k", "c_k", "|V_k|", "|E_k|/|V|", "(|E_k|/|V|)*c_k",
                 "g'_k drift", "g'_k all", "drift*h_k", "h_k"],
    )

    acc: dict[str, dict[int, list[float]]] = {
        key: {} for key in ("ek", "ck", "vk", "gp", "gpd", "hk")
    }

    def put(key: str, k: int, value: float) -> None:
        acc[key].setdefault(k, []).append(value)

    for seed in seeds:
        sc = Scenario(
            n=n, steps=steps, warmup=10, speed=1.0, seed=seed,
            hop_mode="euclidean", max_levels=levels_for(n),
        )
        res = run_scenario(sc, hop_sample_every=max(steps // 3, 1))
        for k in res.level_series.levels():
            if k < 1:
                continue
            size = res.level_series.mean_size(k)
            if size <= 0:
                continue
            put("ek", k, res.level_series.mean_edges(k) / n)
            put("ck", k, n / size)
            put("vk", k, size)
        for k, v in res.g_prime_k().items():
            put("gp", k, v)
        for k, v in res.g_prime_k_drift().items():
            put("gpd", k, v)
        for k, v in res.mean_h_k().items():
            put("hk", k, v)

    def mean_of(key: str, k: int) -> float:
        vals = acc[key].get(k)
        return float(np.mean(vals)) if vals else float("nan")

    rows = []
    for k in sorted(acc["ek"]):
        ek, ck, vk = mean_of("ek", k), mean_of("ck", k), mean_of("vk", k)
        gp, gpd, hk = mean_of("gp", k), mean_of("gpd", k), mean_of("hk", k)
        drift_hk = gpd * hk if np.isfinite(gpd) and np.isfinite(hk) else float("nan")

        def r(x, digits=4):
            return round(x, digits) if np.isfinite(x) else "n/a"

        result.add_row(k, r(ck, 1), r(vk, 1), r(ek), r(ek * ck, 2),
                       r(gpd), r(gp), r(drift_hk, 3), r(hk, 2))
        rows.append((k, ck, vk, ek, gpd, gp, hk))

    solid = [row for row in rows if row[2] >= 4]  # exclude degenerate top
    consts = [ek * ck for _, ck, _, ek, _, _, _ in solid]
    if consts:
        result.add_note(
            f"(|E_k|/|V|) * c_k spread over non-degenerate levels: "
            f"max/min = {max(consts) / min(consts):.2f} "
            "(Eq. 13b predicts a constant ~d_k/2)"
        )
    prods = [gpd * hk for _, _, _, _, gpd, _, hk in solid
             if np.isfinite(gpd) and np.isfinite(hk)]
    if len(prods) >= 2:
        result.add_note(
            f"drift g'_k * h_k spread: max/min = {max(prods) / min(prods):.2f} "
            "(Eq. 14 / Sec 5.3.1 predicts a constant)"
        )
    pts = [(hk, gpd) for _, _, _, _, gpd, _, hk in solid
           if np.isfinite(gpd) and np.isfinite(hk)]
    if len(pts) >= 3:
        f = fit_shape([h for h, _ in pts], [g for _, g in pts], "inv_sqrt")
        result.add_note(f"drift g'_k vs h_k inverse fit R^2 = {f.r2:.3f}")
    churn = [(gp - gpd) / gp for _, _, _, _, gpd, gp, _ in solid
             if np.isfinite(gp) and np.isfinite(gpd) and gp > 0]
    if churn:
        result.add_note(
            "election-churn share of link events per level: "
            + ", ".join(f"{c:.0%}" for c in churn)
            + " (bounded via the Sec 5.3.2 recursion, not Eq. 14)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
