"""Shared infrastructure for the experiment harness.

Each experiment module exposes ``run(quick=True, seeds=...) ->
ExperimentResult``; benchmarks execute them and print the same rows the
paper's evaluation would tabulate (see DESIGN.md's experiment index).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentResult:
    """A printable experiment outcome: one table plus prose notes."""

    exp_id: str
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one table row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Append a prose note rendered under the table."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        """Print the rendered table to stdout."""
        print(self.to_text())
