"""EXP-S1 — scale substrate: handoff overhead and batch queries at 10^5 nodes.

The paper's headline claim (Eq. 6c) is asymptotic — phi = O(log^2 |V|)
— but every other experiment in this harness stops around |V| = 3200,
where log^2 |V| only spans a factor of ~2.  This study pushes the
measured per-node handoff rate to |V| = 10^5 (a 4x span of log^2 |V|),
which is only tractable on the vectorized substrate:

* simulations run through the sweep runner with shared-memory result
  transport (:mod:`repro.sim.shm`), so the ~100 MB result payloads at
  the top sizes skip the executor pipe;
* the hierarchy is maintained incrementally (``incremental_hierarchy``)
  with Verlet-cached candidate edges feeding link diffs straight into
  the delta plane;
* a query throughput probe at the largest size replays the final
  topology and resolves a batch of lookups through
  :class:`repro.core.BatchResolver`, comparing against the scalar
  resolver on a subsample.

Few metered steps (the default ``steps=3``) keep the wall clock in
minutes; the handoff *rate* is a per-second quantity, so short runs
measure it at full precision — only seed-to-seed variance suffers,
which the multi-seed mean absorbs.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis import levels_for, phi_total_prediction
from repro.core import BatchResolver, full_assignment, resolve
from repro.experiments.common import ExperimentResult
from repro.hierarchy import build_hierarchy
from repro.radio import unit_disk_edges
from repro.sim import Scenario, expand_grid, run_sweep
from repro.sim.hops import EuclideanHops

__all__ = ["run"]

#: Probe size for the batched end of the throughput comparison.
BATCH_PROBE_QUERIES = 10_000
#: Scalar-resolver subsample (full 10^4 scalar queries would dominate
#: the experiment's wall clock — the per-query mean is stable long
#: before that).
SCALAR_PROBE_QUERIES = 200


def _batch_probe(res) -> dict:
    """Query throughput on a run's final snapshot.

    Rebuilds the topology from ``SimResult.final_positions`` (no
    re-simulation), then times ``BATCH_PROBE_QUERIES`` lookups through
    the batch resolver against ``SCALAR_PROBE_QUERIES`` through the
    scalar oracle.
    """
    sc = res.scenario
    pts = res.final_positions
    edges = unit_disk_edges(pts, sc.r_tx)
    hier = build_hierarchy(
        np.arange(sc.n), edges, max_levels=levels_for(sc.n),
        level_mode="radio", positions=pts, r0=sc.r_tx,
    )
    assignment = full_assignment(hier)
    hop = EuclideanHops(pts, sc.r_tx)
    rng = np.random.default_rng(sc.seed + 2000)
    src = rng.integers(0, sc.n, size=BATCH_PROBE_QUERIES)
    dst = rng.integers(0, sc.n, size=BATCH_PROBE_QUERIES)

    resolver = BatchResolver(hier, assignment, hop)
    resolver.resolve(src[:8], dst[:8])  # warm the per-level tables
    t0 = time.perf_counter()
    batch = resolver.resolve(src, dst)
    batch_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for s, d in zip(src[:SCALAR_PROBE_QUERIES].tolist(),
                    dst[:SCALAR_PROBE_QUERIES].tolist()):
        resolve(hier, assignment, s, d, hop)
    scalar_s = time.perf_counter() - t0

    per_scalar = scalar_s / SCALAR_PROBE_QUERIES
    per_batch = batch_s / BATCH_PROBE_QUERIES
    return {
        "n": sc.n,
        "queries": BATCH_PROBE_QUERIES,
        "batch_seconds": batch_s,
        "batch_qps": BATCH_PROBE_QUERIES / batch_s,
        "scalar_us_per_query": per_scalar * 1e6,
        "batch_us_per_query": per_batch * 1e6,
        "speedup": per_scalar / per_batch,
        "hit_fraction": float(np.mean(batch.hit_level >= 0)),
    }


def run(quick: bool = True, seeds=(0, 1), workers: int | None = None,
        cache_dir=None, report_path=None) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring).

    ``report_path`` (optional) additionally writes the table rows and
    the batch-query probe as JSON — CI uploads it as the scaling-report
    artifact.
    """
    ns = (1_000, 3_000, 10_000) if quick else (1_000, 3_000, 10_000, 30_000, 100_000)
    seeds = list(seeds)

    base = Scenario(n=1_000, steps=3, warmup=2, speed=1.0,
                    hop_mode="euclidean", incremental_hierarchy=True)
    scenarios = expand_grid(
        base, ns, seeds,
        scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
    )
    results = run_sweep(scenarios, hop_sample_every=10_000,
                        workers=workers, cache_dir=cache_dir)

    per_n = len(seeds)
    means, stds = [], []
    for i in range(len(ns)):
        chunk = results[i * per_n : (i + 1) * per_n]
        rates = [res.handoff_rate for res in chunk]
        means.append(float(np.mean(rates)))
        stds.append(float(np.std(rates)))

    # Least-squares coefficient for the Eq. (6c) reference curve
    # c * log^2 n (single free parameter, fitted over the whole grid).
    x = phi_total_prediction(ns)
    c = float(np.dot(x, means) / np.dot(x, x))
    refs = phi_total_prediction(ns, coeff=c)

    result = ExperimentResult(
        exp_id="EXP-S1",
        title="Scale study: handoff rate to |V| = 1e5 vs c*log^2|V| (Eq. 6c)",
        columns=["n", "handoff (pkts/node/s)", "std",
                 "c*log^2 n", "measured/ref"],
    )
    for n, m, s, r in zip(ns, means, stds, refs):
        result.add_row(n, round(m, 3), round(s, 3), round(float(r), 3),
                       round(m / float(r), 3))

    spread = (means[-1] / means[0]) / (float(refs[-1]) / float(refs[0]))
    result.add_note(
        f"fitted c = {c:.4f}; measured growth over the grid is "
        f"{spread:.2f}x the log^2 reference's "
        "(1.0 = perfect Eq. 6c scaling)."
    )

    probe = _batch_probe(results[(len(ns) - 1) * per_n])
    result.add_note(
        f"batch query probe at n={probe['n']}: "
        f"{probe['batch_qps']:,.0f} queries/s batched "
        f"({probe['batch_us_per_query']:.1f} us/query vs "
        f"{probe['scalar_us_per_query']:.0f} us scalar, "
        f"{probe['speedup']:.0f}x), hit fraction "
        f"{probe['hit_fraction']:.3f}."
    )

    if report_path is not None:
        report = {
            "exp_id": "EXP-S1",
            "ns": list(ns),
            "seeds": seeds,
            "handoff_rate_mean": means,
            "handoff_rate_std": stds,
            "fitted_coeff": c,
            "reference": [float(r) for r in refs],
            "batch_probe": probe,
        }
        Path(report_path).write_text(json.dumps(report, indent=2) + "\n")
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
