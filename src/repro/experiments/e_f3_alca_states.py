"""EXP-F3 — Fig. 3 + Eq. (22): ALCA state dynamics and q_1.

Runs the mobile simulator and, per hierarchy level j, measures the ALCA
state machine of Fig. 3: occupancy of each state (number of electors),
the fraction of state transitions that are adjacent (the continuous-time
model's unit-transition property), and p_j — the probability a level-j
node sits in the *critical* state 1.

From the measured p_j vector it evaluates the paper's recursive-
rejection chain (Eqs. 15-21) and the q_1 > epsilon condition of
Eq. (22), which the paper explicitly left to "future work" simulation —
this experiment is that future work.
"""

from __future__ import annotations

from repro.analysis import levels_for
from repro.clustering import recursion_quantities
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (150, 300) if quick else (150, 300, 600, 1200)
    steps = 40 if quick else 120
    dt = 0.5  # fine-grained: approaches Fig. 3's adjacent-transition regime

    result = ExperimentResult(
        exp_id="EXP-F3",
        title="ALCA state machine (Fig. 3) and q_1 quantification (Eq. 22)",
        columns=["n", "level j", "p_j (state 1)", "adjacent frac",
                 "critical crossings", "occupancy[0..3]"],
    )
    q1_values = []
    event_totals: dict[str, int] = {}
    for n in ns:
        for seed in seeds:
            sc = Scenario(
                n=n, steps=steps, warmup=10, dt=dt, speed=1.0, seed=seed,
                hop_mode="euclidean", max_levels=levels_for(n),
            )
            res = run_scenario(sc, hop_sample_every=10_000)
            for kind, entry in res.ledger.reorg_event_breakdown().items():
                event_totals[kind] = event_totals.get(kind, 0) + int(entry["count"])
            p_vec = res.p_levels()
            for j, stats in sorted(res.state_stats.items()):
                occ = [round(stats.occupancy.get(s, 0.0), 3) for s in range(4)]
                result.add_row(
                    n, j, round(stats.p_state1, 4),
                    round(stats.adjacent_fraction, 3),
                    stats.critical_crossings, str(occ),
                )
            k = len(p_vec)
            if k >= 2:
                rq = recursion_quantities(p_vec, k)
                q1_values.append((n, seed, float(rq.q[0]), rq.q1_over_Q_lower_bound))

    for n, seed, q1, bound in q1_values:
        result.add_note(
            f"n={n} seed={seed}: q_1 = {q1:.4f}, q_1/Q lower bound = {bound:.4f}"
        )
    if q1_values:
        min_q1 = min(q for _, _, q, _ in q1_values)
        result.add_note(
            f"Eq. (22) check: min q_1 across runs = {min_q1:.4f} "
            f"({'> 0: bounded away from zero' if min_q1 > 0 else 'VIOLATED'})"
        )
    result.add_note(
        "Fig. 3 check: transitions concentrate on |delta| <= 1 as dt shrinks "
        "(adjacent fraction column)."
    )
    if event_totals:
        top = max(event_totals, key=event_totals.get)
        counts = ", ".join(f"({k}) {v}" for k, v in event_totals.items())
        result.add_note(
            f"Section 5 taxonomy: reorg events {counts} — "
            f"type ({top}) dominates gamma across these runs."
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
