"""EXP-T2 — Eq. (3) and [2]: hop-count scaling.

Two claims:

* network-wide h = Theta(sqrt(|V|)) (Kleinrock-Silvester, Section 1.2),
* per-level h_k = Theta(sqrt(c_k)) (Eq. 3).

The first is a sweep over |V| with a shape comparison; the second reads
one deep hierarchy and regresses h_k against sqrt(c_k).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import compare_shapes, fit_shape, levels_for, sweep
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (100, 200, 400, 800) if quick else (100, 200, 400, 800, 1600)
    steps = 12 if quick else 30
    base = Scenario(n=100, steps=steps, warmup=5, speed=1.0, hop_mode="euclidean")

    points = sweep(
        ns, base,
        metrics={"h": lambda r: r.mean_h()},
        seeds=seeds,
        hop_sample_every=4,
    )

    result = ExperimentResult(
        exp_id="EXP-T2",
        title="Hop count scaling: h vs sqrt(|V|), h_k vs sqrt(c_k)",
        columns=["n", "h (hops)", "h / sqrt(n)"],
    )
    for p in points:
        result.add_row(p.n, round(p["h"], 3), round(p["h"] / np.sqrt(p.n), 4))

    fits = compare_shapes(
        [p.n for p in points], [p["h"] for p in points],
        shapes=("sqrt", "log", "linear", "log2"),
    )
    result.add_note(f"network h best shape: {fits[0].shape} (expected: sqrt); "
                    f"ranking: {[f.shape for f in fits]}")

    # Per-level h_k vs sqrt(c_k) from one deeper run.
    n_big = 800 if quick else 1600
    res = run_scenario(
        Scenario(n=n_big, steps=8, warmup=5, speed=1.0, hop_mode="euclidean",
                 max_levels=levels_for(n_big), seed=11),
        hop_sample_every=2,
    )
    hks = res.mean_h_k()
    cks = {
        k: n_big / res.level_series.mean_size(k)
        for k in res.level_series.levels()
        if k >= 1 and res.level_series.mean_size(k) > 0
    }
    pairs = [(k, cks[k], hks[k]) for k in sorted(hks) if k in cks and hks[k] > 0]
    for k, c, hk in pairs:
        result.add_note(
            f"n={n_big}: level {k}: c_k={c:.1f}, h_k={hk:.2f}, "
            f"h_k/sqrt(c_k)={hk / np.sqrt(c):.3f}"
        )
    if len(pairs) >= 3:
        f = fit_shape([c for _, c, _ in pairs], [h for _, _, h in pairs], "sqrt")
        result.add_note(
            f"h_k vs sqrt(c_k) fit: a={f.a:.3f}, b={f.b:.3f}, R^2={f.r2:.3f} "
            "(Eq. 3 predicts a clean sqrt law)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
