"""EXP-F2 — Fig. 2: grid-based GLS hierarchy.

Places nodes on a square region, overlays the recursive grid, and for a
focal node tabulates — per level — its own square, the three sibling
squares, and the Eq. (5)-selected location servers in each, reproducing
the structure the paper's Fig. 2 draws.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.geometry import square_for_density
from repro.gls import GridHierarchy, GridLocationService

__all__ = ["run"]


def run(quick: bool = True, n: int = 256, seed: int = 5, focal: int = 63) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    density = 0.02
    region = square_for_density(n, density)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    grid = GridHierarchy.for_region(region, l=region.side / 8)
    svc = GridLocationService(grid=grid, node_ids=np.arange(n))
    assignment = svc.compute_assignment(pts)

    focal = focal % n
    result = ExperimentResult(
        exp_id="EXP-F2",
        title=f"GLS grid hierarchy for node {focal} of {n} (Fig. 2 analogue)",
        columns=["level", "own square", "sibling squares", "servers"],
    )
    for level in range(1, grid.L):
        own = tuple(grid.square_of(pts[focal], level)[0].tolist())
        sibs = [tuple(s) for s in grid.siblings_of(pts[focal], level).tolist()]
        servers = assignment.servers.get((focal, level), ())
        result.add_row(level, str(own), str(sibs), str(list(servers)))

    load = assignment.load()
    if load:
        loads = np.array(list(load.values()))
        result.add_note(
            f"server load across {len(load)} serving nodes: "
            f"mean={loads.mean():.2f}, max={loads.max()}"
        )
    result.add_note(
        f"grid: L={grid.L} levels, level-1 side {grid.l:.1f} m, area side {grid.side:.1f} m"
    )
    result.add_note(
        "server density decays with distance: one server per sibling square "
        "per level (features (a)-(b) of Section 3.1)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
