"""EXP-A9 (extension) — end-to-end session success on the full stack.

The system-level number every component experiment feeds: a node opens
a session to a peer known only by ID — CHLM query against a
one-round-stale database, then hop-by-hop hierarchical forwarding using
the *resolved* (possibly stale) address.  Sweeps node speed and reports
delivery rate, stale-address rate, and the per-session cost split
(query packets vs data hops).

This is the claim the paper's conclusion gestures at — a complete,
IP-like service whose total control load scales polylogarithmically —
demonstrated as a working application rather than a bound.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.app import MessagingService
from repro.experiments.common import ExperimentResult
from repro.geometry import disc_for_density
from repro.mobility import RandomWaypoint
from repro.radio import radius_for_degree
from repro.sim import parallel_map
from repro.sim.hops import EuclideanHops

__all__ = ["run"]


def _one_run(n: int, speed: float, steps: int, seed: int,
             sessions_per_step: int = 8) -> dict[str, float]:
    density = 0.02
    r_tx = radius_for_degree(9.0, density)
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    model = RandomWaypoint(n, region, speed, rng)
    svc = MessagingService(n, r_tx, max_levels=levels_for(n))
    for _ in range(10):
        model.step(1.0)
    pts = model.positions.copy()
    svc.observe(pts, EuclideanHops(pts, r_tx))
    model.step(1.0)
    pts = model.positions.copy()
    svc.observe(pts, EuclideanHops(pts, r_tx))

    delivered = resolved = stale = total = 0
    query_pkts: list[int] = []
    data_hops: list[int] = []
    for _ in range(steps):
        model.step(1.0)
        pts = model.positions.copy()
        hop = EuclideanHops(pts, r_tx)
        svc.observe(pts, hop)
        for _ in range(sessions_per_step):
            s, d = (int(x) for x in rng.integers(0, n, size=2))
            if s == d:
                continue
            r = svc.send(s, d, hop)
            total += 1
            resolved += int(r.resolved)
            delivered += int(r.delivered)
            stale += int(r.stale_address)
            query_pkts.append(r.query_packets)
            if r.delivered:
                data_hops.append(r.data_hops)
    return {
        "delivered": delivered / max(total, 1),
        "resolved": resolved / max(total, 1),
        "stale": stale / max(total, 1),
        "query_pkts": float(np.mean(query_pkts)) if query_pkts else 0.0,
        "data_hops": float(np.mean(data_hops)) if data_hops else 0.0,
    }


def _one_run_task(args: tuple[int, float, int, int]) -> dict[str, float]:
    """Picklable wrapper so the grid fans out via the sweep runner."""
    return _one_run(*args)


def run(quick: bool = True, seeds=(0, 1),
        workers: int | None = None) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    n = 300 if quick else 800
    steps = 15 if quick else 40
    speeds = (0.5, 1.0, 2.0, 4.0)

    result = ExperimentResult(
        exp_id="EXP-A9",
        title="Extension: end-to-end session success on the full stack",
        columns=["speed (m/s)", "delivered", "resolved", "stale addr",
                 "query pkts", "data hops"],
    )
    tasks = [(n, mu, steps, seed) for mu in speeds for seed in seeds]
    metrics = parallel_map(_one_run_task, tasks, workers=workers)
    per_speed = len(list(seeds))
    for i, mu in enumerate(speeds):
        acc: dict[str, list[float]] = {}
        for m in metrics[i * per_speed : (i + 1) * per_speed]:
            for k, v in m.items():
                acc.setdefault(k, []).append(v)
        mean = {k: float(np.mean(v)) for k, v in acc.items()}
        result.add_row(mu, round(mean["delivered"], 3), round(mean["resolved"], 3),
                       round(mean["stale"], 3), round(mean["query_pkts"], 1),
                       round(mean["data_hops"], 1))
    result.add_note(
        "Pipeline per session: CHLM query against a one-round-stale "
        "database, then hop-by-hop forwarding with the *resolved* address "
        "(no oracle).  Delivery should stay high at pedestrian speeds and "
        "degrade gracefully — the working-system form of the paper's "
        "conclusion."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
