"""EXP-T8 — GLS (Section 3.1) vs CHLM (Section 3.2) under identical
mobility.

Runs both location services over the *same* random-waypoint trace on a
square region (GLS needs the grid; CHLM clusters the same deployment)
and compares per-node packet rates: handoff (server reassignment) plus
maintenance (GLS distance-triggered updates vs CHLM registration).  Both
schemes charge transfers with the same Euclidean hop estimator, so the
comparison isolates protocol structure.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.core import HandoffEngine
from repro.experiments.common import ExperimentResult
from repro.geometry import square_for_density
from repro.gls import GridHierarchy, GridLocationService
from repro.hierarchy import build_hierarchy
from repro.mobility import RandomWaypoint
from repro.radio import radius_for_degree, unit_disk_edges
from repro.sim.hops import EuclideanHops

__all__ = ["run"]


def _one_run(n: int, steps: int, warmup: int, seed: int) -> dict[str, float]:
    density = 0.02
    degree = 9.0
    speed = 1.0
    dt = 1.0
    region = square_for_density(n, density)
    r_tx = radius_for_degree(degree, density)
    rng = np.random.default_rng(seed)
    model = RandomWaypoint(n, region, speed, rng)
    for _ in range(warmup):
        model.step(dt)

    grid = GridHierarchy.for_region(region, l=2.0 * r_tx)
    gls = GridLocationService(grid=grid, node_ids=np.arange(n))
    chlm = HandoffEngine()
    L = levels_for(n)

    def build(pts):
        edges = unit_disk_edges(pts, r_tx)
        return build_hierarchy(
            np.arange(n), edges, max_levels=L,
            level_mode="radio", positions=pts, r0=r_tx,
        )

    # Baselines.
    pts = model.positions.copy()
    hop = EuclideanHops(pts, r_tx)
    gls.observe(pts, hop)
    chlm.observe(build(pts), hop)

    totals = {"gls_handoff": 0, "gls_update": 0, "chlm_handoff": 0, "chlm_reg": 0}
    for _ in range(steps):
        model.step(dt)
        pts = model.positions.copy()
        hop = EuclideanHops(pts, r_tx)
        g = gls.observe(pts, hop)
        c = chlm.observe(build(pts), hop)
        totals["gls_handoff"] += g.handoff_packets
        totals["gls_update"] += g.update_packets
        totals["chlm_handoff"] += c.total_handoff_packets
        totals["chlm_reg"] += sum(c.registration_packets.values())
    norm = n * steps * dt
    return {k: v / norm for k, v in totals.items()}


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (150, 300, 600) if quick else (150, 300, 600, 1200, 2400)
    steps = 30 if quick else 80

    result = ExperimentResult(
        exp_id="EXP-T8",
        title="GLS vs CHLM packet overhead under identical RWP mobility",
        columns=["n", "CHLM handoff", "CHLM reg", "CHLM total",
                 "GLS handoff", "GLS update", "GLS total", "GLS/CHLM"],
    )
    for n in ns:
        acc: dict[str, list[float]] = {}
        for seed in seeds:
            rates = _one_run(n, steps, warmup=10, seed=seed)
            for k, v in rates.items():
                acc.setdefault(k, []).append(v)
        m = {k: float(np.mean(v)) for k, v in acc.items()}
        chlm_total = m["chlm_handoff"] + m["chlm_reg"]
        gls_total = m["gls_handoff"] + m["gls_update"]
        result.add_row(
            n, round(m["chlm_handoff"], 3), round(m["chlm_reg"], 3),
            round(chlm_total, 3), round(m["gls_handoff"], 3),
            round(m["gls_update"], 3), round(gls_total, 3),
            round(gls_total / max(chlm_total, 1e-9), 2),
        )
    result.add_note(
        "Both schemes are polylog-style LM services; CHLM additionally "
        "rides the routing hierarchy (no separate grid state).  The paper "
        "claims comparability, not dominance — the ratio column should be "
        "a modest constant across n."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
