"""EXP-A1 (ablation) — memoryless vs sticky (LCC) ALCA elections.

DESIGN.md's fidelity notes flag the election dynamics as the main
modeling degree of freedom: the paper specifies the ALCA declaratively
("highest ID in the closed neighborhood"), which re-evaluated per step
gives *memoryless* elections, while deployed protocols add
least-cluster-change hysteresis.  EXPERIMENTS.md deviation 1 traces the
gamma_k level-growth to memoryless churn.  This ablation quantifies the
difference on identical mobility traces.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.core import EventKind
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (200, 400) if quick else (200, 400, 800, 1600)
    steps = 40 if quick else 100

    result = ExperimentResult(
        exp_id="EXP-A1",
        title="Ablation: memoryless vs sticky (LCC) ALCA elections",
        columns=["n", "mode", "phi", "gamma", "total",
                 "link events i+ii (/node/s)", "elections iii+v (/node/s)"],
    )
    deltas = []
    for n in ns:
        per_mode = {}
        for mode in ("memoryless", "sticky"):
            phis, gammas, links, elects = [], [], [], []
            for seed in seeds:
                sc = Scenario(
                    n=n, steps=steps, warmup=10, speed=1.0, seed=seed,
                    hop_mode="euclidean", max_levels=levels_for(n),
                    election_mode=mode,
                )
                res = run_scenario(sc, hop_sample_every=10_000)
                phis.append(res.phi)
                gammas.append(res.gamma)
                rates = res.ledger.reorg_event_rates()
                links.append(sum(
                    v for (kind, _), v in rates.items()
                    if kind in (EventKind.LINK_UP, EventKind.LINK_DOWN)
                ))
                elects.append(sum(
                    v for (kind, _), v in rates.items()
                    if kind in (EventKind.ELECT_MIGRATION, EventKind.ELECT_RECURSIVE)
                ))
            row = (
                float(np.mean(phis)), float(np.mean(gammas)),
                float(np.mean(phis)) + float(np.mean(gammas)),
                float(np.mean(links)), float(np.mean(elects)),
            )
            per_mode[mode] = row
            result.add_row(n, mode, round(row[0], 3), round(row[1], 3),
                           round(row[2], 3), round(row[3], 4), round(row[4], 4))
        deltas.append(
            (n,
             per_mode["memoryless"][2] / max(per_mode["sticky"][2], 1e-9),
             per_mode["memoryless"][3] / max(per_mode["sticky"][3], 1e-9))
        )
    for n, total_ratio, link_ratio in deltas:
        result.add_note(
            f"n={n}: sticky elections cut cluster-link events by "
            f"{(1 - 1 / link_ratio):.0%} and change total handoff by "
            f"{(1 - 1 / total_ratio):+.0%} relative to memoryless"
        )
    result.add_note(
        "Reading: hysteresis removes snapshot noise from head identities "
        "(fewer (i)/(ii) events and less phi), while necessity-driven "
        "reorganization — the component the paper's bound is about — "
        "remains."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
