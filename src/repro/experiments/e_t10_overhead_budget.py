"""EXP-T10 — Section 6: the LM overhead budget.

The conclusion argues the total control budget decomposes into

* handoff: Theta(log^2 |V|) per node per second (this paper),
* registration: Theta(log |V|) ([17]),
* queries: order of the requester-target hop count, once per session —
  "absorbed in the associated session".

This experiment meters all three from one simulation per size and
reports their shares, plus the measured query cost relative to the
session path length it precedes.  The simulations run through the
sweep runner (:mod:`repro.sim.sweep`), so they parallelize across
workers and memoize in the result cache; the query-cost probe replays
the final topology from ``SimResult.final_positions`` without
re-simulating.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis import fit_power, levels_for
from repro.core import full_assignment, resolve
from repro.experiments.common import ExperimentResult
from repro.hierarchy import build_hierarchy
from repro.radio import unit_disk_edges
from repro.sim import Scenario, expand_grid, run_sweep
from repro.sim.hops import EuclideanHops

__all__ = ["run"]


def _query_probe(res) -> tuple[list[float], list[float]]:
    """Query cost on a run's final snapshot: (packet counts, ratios)."""
    sc = res.scenario
    pts = res.final_positions
    edges = unit_disk_edges(pts, sc.r_tx)
    hier = build_hierarchy(
        np.arange(sc.n), edges, max_levels=levels_for(sc.n),
        level_mode="radio", positions=pts, r0=sc.r_tx,
    )
    assignment = full_assignment(hier)
    hop = EuclideanHops(pts, sc.r_tx)
    rng = np.random.default_rng(sc.seed + 1000)
    q_costs, q_ratios = [], []
    for _ in range(30):
        s, d = (int(x) for x in rng.integers(0, sc.n, size=2))
        if s == d:
            continue
        q = resolve(hier, assignment, s, d, hop)
        if q.hit_level >= 0:
            q_costs.append(q.packets)
            session = max(hop(s, d), 1)
            q_ratios.append(q.packets / session)
    return q_costs, q_ratios


def run(quick: bool = True, seeds=(0, 1), workers: int | None = None,
        cache_dir=None) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (200, 400, 800) if quick else (200, 400, 800, 1600, 3200)
    steps = 40 if quick else 100

    base = Scenario(n=200, steps=steps, warmup=10, speed=1.0,
                    hop_mode="euclidean")
    scenarios = expand_grid(
        base, ns, seeds,
        scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
    )
    results = run_sweep(scenarios, hop_sample_every=10_000,
                        workers=workers, cache_dir=cache_dir)

    result = ExperimentResult(
        exp_id="EXP-T10",
        title="LM overhead budget: handoff vs registration vs query",
        columns=["n", "handoff (pkts/node/s)", "registration", "handoff/reg",
                 "query pkts (mean)", "query/session-path"],
    )
    handoffs, regs = [], []
    per_n = len(list(seeds))
    for i, n in enumerate(ns):
        chunk = results[i * per_n : (i + 1) * per_n]
        h_rates = [res.handoff_rate for res in chunk]
        r_rates = [res.ledger.registration_rate for res in chunk]
        q_costs, q_ratios = [], []
        for res in chunk:
            costs, ratios = _query_probe(res)
            q_costs.extend(costs)
            q_ratios.extend(ratios)
        handoff = float(np.mean(h_rates))
        reg = float(np.mean(r_rates))
        handoffs.append(handoff)
        regs.append(reg)
        result.add_row(
            n, round(handoff, 3), round(reg, 3),
            round(handoff / max(reg, 1e-9), 2),
            round(float(np.mean(q_costs)), 2) if q_costs else "n/a",
            round(float(np.mean(q_ratios)), 2) if q_ratios else "n/a",
        )

    ratios = [h / max(r, 1e-9) for h, r in zip(handoffs, regs)]
    result.add_note(
        f"handoff dominates registration at every size "
        f"(ratio {min(ratios):.1f}x-{max(ratios):.1f}x), as the log^2-vs-log "
        "budget of Section 6 predicts."
    )
    if len(ns) >= 4:
        ph, _ = fit_power(list(ns), handoffs)
        pr, _ = fit_power(list(ns), [max(r, 1e-9) for r in regs])
        result.add_note(
            f"growth exponents (wide grid): handoff {ph:.3f} vs "
            f"registration {pr:.3f}"
        )
    result.add_note(
        "query/session-path column: a small constant means query overhead "
        "is absorbed into the session it precedes (Section 6)."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
