"""EXP-T10 — Section 6: the LM overhead budget.

The conclusion argues the total control budget decomposes into

* handoff: Theta(log^2 |V|) per node per second (this paper),
* registration: Theta(log |V|) ([17]),
* queries: order of the requester-target hop count, once per session —
  "absorbed in the associated session".

This experiment meters all three from one simulation per size and
reports their shares, plus the measured query cost relative to the
session path length it precedes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_power, levels_for
from repro.core import resolve
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, Simulator
from repro.sim.hops import EuclideanHops

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (200, 400, 800) if quick else (200, 400, 800, 1600, 3200)
    steps = 40 if quick else 100

    result = ExperimentResult(
        exp_id="EXP-T10",
        title="LM overhead budget: handoff vs registration vs query",
        columns=["n", "handoff (pkts/node/s)", "registration", "handoff/reg",
                 "query pkts (mean)", "query/session-path"],
    )
    handoffs, regs = [], []
    for n in ns:
        h_rates, r_rates, q_costs, q_ratios = [], [], [], []
        for seed in seeds:
            sc = Scenario(
                n=n, steps=steps, warmup=10, speed=1.0, seed=seed,
                hop_mode="euclidean", max_levels=levels_for(n),
            )
            sim = Simulator(sc, hop_sample_every=10_000)
            res = sim.run()
            h_rates.append(res.handoff_rate)
            r_rates.append(res.ledger.registration_rate)
            # Query cost on the final snapshot.
            pts = sim.model.positions.copy()
            from repro.hierarchy import build_hierarchy
            from repro.radio import unit_disk_edges

            edges = unit_disk_edges(pts, sc.r_tx)
            hier = build_hierarchy(
                np.arange(n), edges, max_levels=levels_for(n),
                level_mode="radio", positions=pts, r0=sc.r_tx,
            )
            from repro.core import full_assignment

            assignment = full_assignment(hier)
            hop = EuclideanHops(pts, sc.r_tx)
            rng = np.random.default_rng(seed + 1000)
            for _ in range(30):
                s, d = (int(x) for x in rng.integers(0, n, size=2))
                if s == d:
                    continue
                q = resolve(hier, assignment, s, d, hop)
                if q.hit_level >= 0:
                    q_costs.append(q.packets)
                    session = max(hop(s, d), 1)
                    q_ratios.append(q.packets / session)
        handoff = float(np.mean(h_rates))
        reg = float(np.mean(r_rates))
        handoffs.append(handoff)
        regs.append(reg)
        result.add_row(
            n, round(handoff, 3), round(reg, 3),
            round(handoff / max(reg, 1e-9), 2),
            round(float(np.mean(q_costs)), 2) if q_costs else "n/a",
            round(float(np.mean(q_ratios)), 2) if q_ratios else "n/a",
        )

    ratios = [h / max(r, 1e-9) for h, r in zip(handoffs, regs)]
    result.add_note(
        f"handoff dominates registration at every size "
        f"(ratio {min(ratios):.1f}x-{max(ratios):.1f}x), as the log^2-vs-log "
        "budget of Section 6 predicts."
    )
    if len(ns) >= 4:
        ph, _ = fit_power(list(ns), handoffs)
        pr, _ = fit_power(list(ns), [max(r, 1e-9) for r in regs])
        result.add_note(
            f"growth exponents (wide grid): handoff {ph:.3f} vs "
            f"registration {pr:.3f}"
        )
    result.add_note(
        "query/session-path column: a small constant means query overhead "
        "is absorbed into the session it precedes (Section 6)."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
