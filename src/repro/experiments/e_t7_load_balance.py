"""EXP-T7 — Section 3.2: server-load equitability.

The paper warns that applying GLS's Eq. (5) hash directly to cluster IDs
"would result in a disproportionately large number of nodes ... selecting
45" — i.e. the circular-successor rule skews badly on small, gappy
candidate sets — and therefore CHLM needs "a slightly more complex
hashing function".  This experiment quantifies that claim: it computes
full server assignments under both hashes on identical hierarchies and
compares load statistics (max/mean ratio, standard deviation, top-decile
share).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.core import full_assignment
from repro.experiments.common import ExperimentResult
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy
from repro.radio import radius_for_degree, unit_disk_edges

__all__ = ["run"]


def _load_stats(load: dict[int, int], n: int) -> tuple[float, int, float, float]:
    values = np.zeros(n, dtype=np.float64)
    for node, count in load.items():
        values[node] = count
    mean = values.mean()
    top = np.sort(values)[-max(n // 10, 1):].sum() / max(values.sum(), 1)
    return float(mean), int(values.max()), float(values.std()), float(top)


def run(quick: bool = True, seeds=(0, 1, 2)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (500, 1000) if quick else (500, 1000, 2000)
    density = 0.02
    degree = 9.0

    result = ExperimentResult(
        exp_id="EXP-T7",
        title="CHLM server-load equitability: rendezvous vs naive Eq. (5) hash",
        columns=["n", "hash", "mean load", "max load", "max/mean",
                 "std", "top-10% share"],
    )
    summary = {}
    for n in ns:
        for hash_name in ("rendezvous", "naive"):
            maxes, ratios = [], []
            stats_rows = []
            for seed in seeds:
                region = disc_for_density(n, density)
                rng = np.random.default_rng(seed)
                pts = region.sample(n, rng)
                r_tx = radius_for_degree(degree, density)
                edges = unit_disk_edges(pts, r_tx)
                h = build_hierarchy(
                    np.arange(n), edges, max_levels=levels_for(n),
                    level_mode="radio", positions=pts, r0=r_tx,
                )
                load = full_assignment(h, hash_name).load()
                mean, mx, std, top = _load_stats(load, n)
                maxes.append(mx)
                ratios.append(mx / max(mean, 1e-9))
                stats_rows.append((mean, mx, std, top))
            mean = float(np.mean([s[0] for s in stats_rows]))
            mx = float(np.mean([s[1] for s in stats_rows]))
            std = float(np.mean([s[2] for s in stats_rows]))
            top = float(np.mean([s[3] for s in stats_rows]))
            result.add_row(n, hash_name, round(mean, 2), round(mx, 1),
                           round(mx / max(mean, 1e-9), 2), round(std, 2),
                           round(top, 3))
            summary[(n, hash_name)] = mx

    for n in ns:
        factor = summary[(n, "naive")] / max(summary[(n, "rendezvous")], 1e-9)
        result.add_note(
            f"n={n}: naive max-load is {factor:.1f}x the rendezvous max-load "
            "(the paper's skew warning, quantified)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
