"""EXP-F1 — Fig. 1: example of a multi-level clustered hierarchy.

Builds an ALCA hierarchy on a random 100-node deployment and tabulates
the per-level structure (|V_k|, |E_k|, alpha_k, d_k) plus example
hierarchical addresses — the machine-checkable counterpart of the
paper's illustrative figure.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.geometry import disc_for_density
from repro.hierarchy import build_hierarchy, hierarchy_stats
from repro.radio import radius_for_degree, unit_disk_edges

__all__ = ["run"]


def run(quick: bool = True, n: int = 100, seed: int = 7) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    density = 0.02
    degree = 9.0
    region = disc_for_density(n, density)
    rng = np.random.default_rng(seed)
    pts = region.sample(n, rng)
    r_tx = radius_for_degree(degree, density)
    edges = unit_disk_edges(pts, r_tx)
    h = build_hierarchy(
        np.arange(n), edges, level_mode="radio", positions=pts, r0=r_tx
    )

    result = ExperimentResult(
        exp_id="EXP-F1",
        title=f"ALCA clustered hierarchy on {n} nodes (Fig. 1 analogue)",
        columns=["level", "|V_k|", "|E_k|", "alpha_k", "c_k", "d_k"],
    )
    for s in hierarchy_stats(h):
        result.add_row(s.k, s.n_nodes, s.n_edges, round(s.alpha, 2),
                       round(s.c, 2), round(s.mean_degree, 2))

    result.add_note(f"L = {h.num_levels} levels of clustering")
    sample = [int(v) for v in h.levels[0].node_ids[:: max(n // 4, 1)]][:4]
    for v in sample:
        result.add_note(f"address({v}) = {h.address(v)}")
    # The Fig. 1 phenomenon: a clusterhead that is not the max of its own
    # neighborhood (node 68 in the paper).
    e1 = h.levels[0].election
    if e1 is not None:
        humble = [
            int(v)
            for i, v in enumerate(e1.node_ids)
            if e1.member_of[i] == v and e1.elected_head[i] != v
        ]
        result.add_note(
            f"{len(humble)} clusterheads are not the max of their own "
            f"neighborhood (the paper's 'node 68' case): {humble[:5]}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
