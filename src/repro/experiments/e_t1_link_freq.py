"""EXP-T1 — Eq. (4): f_0 = Theta(1) in |V|.

Sweeps the node count at fixed density and measures the per-node level-0
link state change frequency.  The paper predicts a flat curve (f_0
depends on mu/R_tx, not on |V|); the shape comparison should prefer
"const" over any growing shape.  A second mini-sweep varies mu to verify
f_0 = Theta(mu / R_tx).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis import compare_shapes, f0_prediction, sweep
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (100, 200, 400, 800) if quick else (100, 200, 400, 800, 1600, 3200)
    steps = 30 if quick else 80
    base = Scenario(n=100, steps=steps, warmup=10, speed=1.0, hop_mode="euclidean")

    points = sweep(ns, base, metrics={"f0": lambda r: r.f0}, seeds=seeds)

    result = ExperimentResult(
        exp_id="EXP-T1",
        title="Level-0 link change frequency f_0 vs |V| (Eq. 4: Theta(1))",
        columns=["n", "f_0 (events/node/s)", "std", "f_0 / (mu/R_tx)"],
    )
    norm = f0_prediction(1.0, base.r_tx)
    for p in points:
        result.add_row(p.n, round(p["f0"], 4), round(p.stds["f0"], 4),
                       round(p["f0"] / norm, 3))

    fits = compare_shapes(
        [p.n for p in points], [p["f0"] for p in points],
        shapes=("const", "log", "sqrt", "linear"),
    )
    result.add_note(f"best shape: {fits[0].shape}; ranking: {[f.shape for f in fits]}")
    values = [p["f0"] for p in points]
    spread = max(values) / min(values)
    growing = values[-1] > values[0] * 1.2
    result.add_note(
        f"Eq. (4) check — f_0 = Theta(1) means *no growth* with |V|: "
        f"max/min = {spread:.3f}, trend "
        f"{'GROWS (violation)' if growing else 'flat/declining (consistent with O(1))'}. "
        "The mild decline comes from RWP legs lengthening with the region."
    )

    # Speed dependence: f_0 proportional to mu.
    speed_rows = []
    for mu in (0.5, 1.0, 2.0):
        res = run_scenario(
            replace(base, n=200, speed=mu, seed=99), hop_sample_every=10_000
        )
        speed_rows.append((mu, res.f0))
    ratios = [f / mu for mu, f in speed_rows]
    result.add_note(
        "f_0 / mu at n=200 for mu in {0.5, 1, 2}: "
        + ", ".join(f"{r:.3f}" for r in ratios)
        + " (constant => f_0 = Theta(mu/R_tx))"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
