"""EXP-A5 (extension) — cluster-identity persistence recovers gamma.

EXP-T5's documented deviation: with clusters named by head ID (the
Fig. 1 convention), head churn renames clusters, rekeys Theta(c_k) LM
entries per event, and drives gamma measurably above log^2 n.  The
diagnosis predicts a *structural* fix: give clusters stable identities
that survive head handover (``election_mode="persistent"``,
:mod:`repro.hierarchy.persistent`).

This experiment runs both identity schemes over the same sweep and
compares gamma's scaling shape.  If the diagnosis is right, the
persistent curve's gamma/log^2 n column is flat while the head-named
curve drifts upward — turning the deviation into a confirmed causal
finding.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import flatness, levels_for, sweep
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (100, 200, 400, 800, 1600) if quick else (100, 200, 400, 800, 1600, 3200, 6400)
    steps = 40 if quick else 100

    result = ExperimentResult(
        exp_id="EXP-A5",
        title="Extension: head-named vs persistent cluster identities (gamma fix)",
        columns=["n", "mode", "phi", "gamma", "gamma / log^2 n"],
    )
    curves: dict[str, list[float]] = {}
    for mode in ("memoryless", "persistent"):
        from dataclasses import replace

        base = Scenario(n=100, steps=steps, warmup=10, speed=1.0,
                        hop_mode="euclidean", election_mode=mode)
        points = sweep(
            ns, base,
            metrics={"phi": lambda r: r.phi, "gamma": lambda r: r.gamma},
            seeds=seeds,
            scenario_for=lambda sc, n: replace(sc, max_levels=levels_for(n)),
        )
        curves[mode] = [p["gamma"] for p in points]
        for p in points:
            result.add_row(p.n, mode, round(p["phi"], 3), round(p["gamma"], 3),
                           round(p["gamma"] / np.log(p.n) ** 2, 4))

    for mode, ys in curves.items():
        cv_log2 = flatness(list(ns), ys, "log2")
        cv_sqrt = flatness(list(ns), ys, "sqrt")
        winner = "log2" if cv_log2 < cv_sqrt else "sqrt"
        result.add_note(
            f"{mode}: gamma flatness CV — log2 {cv_log2:.3f} vs sqrt "
            f"{cv_sqrt:.3f} (flatter: {winner})"
        )
    reduction = [
        m / max(p, 1e-9) for m, p in zip(curves["memoryless"], curves["persistent"])
    ]
    result.add_note(
        "gamma reduction from identity persistence per size: "
        + ", ".join(f"{r:.2f}x" for r in reduction)
    )
    result.add_note(
        "Reading: if the persistent rows' gamma/log^2 n column is flat "
        "where the memoryless rows drift up, the EXP-T5 deviation is "
        "causally explained by cluster *renaming*, not by reorganization "
        "itself — and the paper's gamma bound is recoverable with one "
        "protocol change the paper's model abstracts away."
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
