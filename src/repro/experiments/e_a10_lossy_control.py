"""EXP-A10 (extension) — handoff overhead over a lossy control plane.

The paper's Theta(log^2 |V|) handoff bound (and every experiment up to
EXP-A9) assumes lossless control-packet delivery.  This extension drops
that assumption: every LM transfer, registration, and query probe
traverses a seeded Bernoulli per-hop channel with bounded
retransmission (exponential backoff + jitter, per-message timeout; see
``repro.faults`` and docs/ROBUSTNESS.md).  The sweep crosses loss rate
with network size and asks four questions:

1. **Retransmission inflation** — how much does the channel inflate
   phi + gamma, and does the total keep its log^2-shape in n?
2. **Abandonment** — how often does a transfer exhaust its retry budget,
   leaving a stale location server?
3. **Staleness recovery** — how long until the normal handoff machinery
   re-lands an abandoned entry?
4. **Query degradation** — what fraction of location queries still
   resolve (directly, or via the metered expanding-ring fallback)?

Per-hop loss compounds over route length, so high-level transfers
(long server-to-server routes) fail disproportionately — exactly the
regime where the paper's per-level accounting concentrates its cost.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import levels_for
from repro.experiments.common import ExperimentResult
from repro.sim import Scenario, run_scenario

__all__ = ["run"]


def run(quick: bool = True, seeds=(0, 1)) -> ExperimentResult:
    """Run this experiment; returns the printable table (see module docstring)."""
    ns = (150, 300) if quick else (200, 400, 800)
    rates = (0.0, 0.02, 0.05, 0.1) if quick else (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)
    steps = 30 if quick else 80

    result = ExperimentResult(
        exp_id="EXP-A10",
        title="Extension: LM overhead over a lossy control plane "
              "(loss rate x n, bounded retries)",
        columns=["loss/hop", "n", "phi", "gamma", "total", "total/log^2 n",
                 "retx rate", "abandon rate", "recovery (s)", "query ok",
                 "degraded"],
    )
    # {loss: {n: mean total}} for the shape notes.
    totals: dict[float, dict[int, float]] = {}
    for rate in rates:
        for n in ns:
            phis, gammas, retxs, abandons, recoveries = [], [], [], [], []
            query_ok, degraded = [], []
            for seed in seeds:
                sc = Scenario(
                    n=n, steps=steps, warmup=10, speed=1.0, seed=seed,
                    hop_mode="euclidean", max_levels=levels_for(n),
                    loss_rate=rate, retry_attempts=4, retry_timeout=2.0,
                    queries_per_step=5,
                )
                res = run_scenario(sc, hop_sample_every=10_000)
                phis.append(res.phi)
                gammas.append(res.gamma)
                retxs.append(res.ledger.retransmission_rate)
                abandons.append(res.ledger.abandonment_rate)
                recoveries.append(res.ledger.mean_recovery_time)
                query_ok.append(res.query_success_rate)
                degraded.append(res.queries.degraded_fraction)
            phi = float(np.mean(phis))
            gamma = float(np.mean(gammas))
            total = phi + gamma
            totals.setdefault(rate, {})[n] = total
            result.add_row(
                rate, n, round(phi, 3), round(gamma, 3), round(total, 3),
                round(total / np.log(n) ** 2, 5),
                round(float(np.mean(retxs)), 4),
                round(float(np.mean(abandons)), 4),
                round(float(np.mean(recoveries)), 2),
                f"{float(np.mean(query_ok)):.3f}",
                f"{float(np.mean(degraded)):.3f}",
            )

    _add_shape_notes(result, totals, ns)
    return result


def _add_shape_notes(result: ExperimentResult, totals, ns) -> None:
    """Summarize how the channel bends the total-overhead curve."""
    control = totals.get(0.0, {})
    worst = max(totals)
    if control and worst > 0.0:
        inflations = [
            totals[worst][n] / max(control[n], 1e-12) for n in ns if n in control
        ]
        result.add_note(
            f"Retransmission inflation at loss={worst}: total overhead is "
            f"{min(inflations):.2f}x-{max(inflations):.2f}x the lossless "
            "control, roughly uniform in n — the channel multiplies the "
            "constant, not the growth rate."
        )
    if len(ns) >= 3:
        from repro.analysis import compare_shapes

        for rate in sorted(totals):
            fits = compare_shapes(
                list(ns), [totals[rate][n] for n in ns],
                shapes=("log2", "sqrt", "log", "linear"),
            )
            result.add_note(
                f"loss={rate}: AIC-best shape for total(n) is "
                f"{fits[0].shape} (ranking {[f.shape for f in fits]})."
            )
    else:
        result.add_note(
            "Shape check needs >= 3 sizes; run with quick=False for the "
            "AIC comparison across n."
        )
    result.add_note(
        "Graceful degradation: failed queries fall back to an "
        "expanding-ring flood (metered, not free), so 'query ok' counts "
        "resolution through *either* path; abandonment leaves stale "
        "servers that the next steps' handoffs repair (recovery column)."
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
