"""repro — reproduction of Sucec & Marsic, "Location Management Handoff
Overhead in Hierarchically Organized Mobile Ad hoc Networks" (IPPS 2002).

Subpackages
-----------
``repro.geometry``
    Deployment regions and point kernels (paper §1.2).
``repro.mobility``
    Random waypoint (the paper's model) and alternatives.
``repro.radio``
    Unit-disk links, connectivity sizing, link-event tracking (Eq. 4).
``repro.clustering``
    LCA/ALCA election, the Fig. 3 state machine, max-min baseline.
``repro.hierarchy``
    Recursive clustered hierarchies, addresses, per-level statistics.
``repro.routing``
    Strict hierarchical routing, flat baseline, table accounting.
``repro.gls``
    Grid Location Service baseline (§3.1).
``repro.core``
    CHLM: hashed server placement, LM database, queries, and the
    handoff engine measuring the Θ(log²|V|) bound (§3.2, §4, §5).
``repro.faults``
    Fault injection: lossy control plane, retry/backoff, attempt-level
    delivery accounting, expanding-ring degradation (ROBUSTNESS.md).
``repro.sim``
    The time-stepped simulator composing everything.
``repro.service``
    Open-loop location-service front-end: workload generation,
    admission control, queueing, latency SLOs (docs/SERVICE.md).
``repro.obs``
    Run telemetry: phase timers, run manifests, JSONL export, sweep
    profiling reports (OBSERVABILITY.md).
``repro.analysis``
    Closed-form theory (Eqs. 3–24), shape fitting, sweeps.
``repro.experiments``
    One runnable module per reproduced figure/claim (see DESIGN.md).
``repro.app``
    End-to-end messaging on the full stack (query -> forward).
``repro.viz``
    Dependency-free SVG rendering of networks and hierarchies.

Quick start::

    from repro.sim import Scenario, run_scenario
    res = run_scenario(Scenario(n=200, steps=50, speed=1.0))
    print(res.phi, res.gamma)   # the paper's phi and gamma, measured
"""

__version__ = "1.0.0"

__all__ = [
    "geometry",
    "mobility",
    "radio",
    "clustering",
    "hierarchy",
    "routing",
    "gls",
    "core",
    "faults",
    "sim",
    "service",
    "obs",
    "analysis",
    "experiments",
    "app",
    "viz",
]
