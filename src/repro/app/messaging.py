"""End-to-end messaging on the full stack.

The system this paper's machinery exists for: a node opens a session to
a peer it knows only by ID.  One delivery is

1. **resolve** — CHLM query for the destination's hierarchical address
   (probing servers level by level, §3.2),
2. **forward** — hop-by-hop strict hierarchical forwarding *using the
   resolved address*, not oracle knowledge (§2.1).

:class:`MessagingService` maintains the stack across mobility steps —
crucially, sessions opened at step t resolve against the step-(t-1)
LM database (the one-update-round lag a real network pays), so the
measured session success rate is the honest end-to-end number, stale
addresses and all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import HandoffEngine, resolve
from repro.graphs import CompactGraph
from repro.hierarchy.levels import ClusteredHierarchy, build_hierarchy
from repro.radio.linkevents import LinkTracker
from repro.radio.unit_disk import unit_disk_edges
from repro.routing.fabric_cache import FabricCache
from repro.routing.forwarding import ForwardingFabric

__all__ = ["SessionResult", "MessagingService"]


@dataclass(frozen=True)
class SessionResult:
    """Outcome of one end-to-end session attempt."""

    source: int
    target: int
    resolved: bool
    delivered: bool
    query_packets: int
    data_hops: int
    stale_address: bool
    """True when the resolved address differs from the target's current
    address (the database lagged the topology)."""


class MessagingService:
    """Full-stack LM + routing service over a mobile node population.

    Parameters
    ----------
    n, r_tx, max_levels:
        Population size, unit-disk radius, hierarchy depth cap.
    hash_fn:
        CHLM hash forwarded to the handoff engine.
    incremental:
        When True (default) the forwarding fabric is maintained across
        steps by a :class:`~repro.routing.fabric_cache.FabricCache` fed
        with the step's link events, instead of being rebuilt from
        scratch per snapshot.  Results are bit-identical either way.
    incremental_hierarchy:
        When True, the *control plane* goes event-driven too: unit-disk
        edges come from a Verlet candidate cache, the ALCA hierarchy is
        patched per level from link deltas
        (:class:`~repro.hierarchy.delta.DeltaPlane`), the handoff engine
        re-hashes only dirty descent chains, and the fabric cache is fed
        the same dirty-cluster sets instead of re-diffing ancestry.
        Results are bit-identical either way; requires the rendezvous
        hash.
    """

    def __init__(self, n: int, r_tx: float, max_levels: int | None = None,
                 hash_fn: str = "rendezvous", incremental: bool = True,
                 incremental_hierarchy: bool = False):
        if n <= 1 or r_tx <= 0:
            raise ValueError("need n > 1 and a positive radius")
        if incremental_hierarchy and hash_fn != "rendezvous":
            raise ValueError(
                "incremental_hierarchy patches rendezvous descent chains; "
                f"hash_fn={hash_fn!r} is not supported"
            )
        self.n = int(n)
        self.r_tx = float(r_tx)
        self.max_levels = max_levels
        self.incremental = bool(incremental)
        self.incremental_hierarchy = bool(incremental_hierarchy)
        self._engine = HandoffEngine(hash_fn=hash_fn,
                                     incremental=self.incremental_hierarchy)
        self._delta_plane = None
        self._edge_cache = None
        if self.incremental_hierarchy:
            from repro.hierarchy.delta import DeltaPlane
            from repro.radio.edge_cache import VerletEdgeCache

            self._delta_plane = DeltaPlane(self.n, max_levels=max_levels,
                                           level_mode="radio", r0=self.r_tx)
            self._edge_cache = VerletEdgeCache(self.r_tx)
        self._tracker = LinkTracker(self.n)
        self._fabric_cache = FabricCache()
        self._hierarchy: ClusteredHierarchy | None = None
        self._fabric: ForwardingFabric | None = None
        self._graph: CompactGraph | None = None
        # The database sessions query: last step's hierarchy/assignment.
        self._db_hierarchy: ClusteredHierarchy | None = None
        self._db_assignment = None

    @property
    def ready(self) -> bool:
        """Whether at least two topology updates have been observed (the
        LM database exists and lags by one round)."""
        return self._db_assignment is not None and self._fabric is not None

    def observe(self, positions, hop_fn) -> None:
        """Advance the stack to the new topology snapshot.

        The previous snapshot's hierarchy/assignment become the queryable
        database; the new snapshot carries the data plane.
        """
        pts = np.asarray(positions, dtype=np.float64)
        if pts.shape[0] != self.n:
            raise ValueError("positions must cover all nodes")
        if self._edge_cache is not None:
            edges = self._edge_cache.edges(pts)
        else:
            edges = unit_disk_edges(pts, self.r_tx)
        delta = None
        if self._delta_plane is not None:
            h = self._delta_plane.advance(edges, pts)
            delta = self._delta_plane.delta()
        else:
            h = build_hierarchy(np.arange(self.n), edges,
                                max_levels=self.max_levels,
                                level_mode="radio", positions=pts,
                                r0=self.r_tx)
        # Database = what was current before this update.
        self._db_hierarchy = self._hierarchy
        self._db_assignment = self._engine.assignment
        self._engine.observe(h, hop_fn, delta=delta)
        self._hierarchy = h
        self._graph = CompactGraph(np.arange(self.n), edges)
        if self.incremental:
            diff = self._tracker.observe(edges)
            dirty = (
                delta.dirty_sets()
                if delta is not None and not delta.full
                else None
            )
            self._fabric = self._fabric_cache.update(h, self._graph, diff,
                                                     dirty=dirty)
        else:
            self._fabric = ForwardingFabric(h, self._graph)

    def send(self, s: int, d: int, hop_fn) -> SessionResult:
        """Attempt one session from ``s`` to ``d``.

        Resolution runs against the lagged database; forwarding runs on
        the current data plane with the *resolved* address.
        """
        if not self.ready:
            raise RuntimeError("observe() at least twice before sending")
        if s == d:
            return SessionResult(s, d, True, True, 0, 0, False)
        q = resolve(self._db_hierarchy, self._db_assignment, s, d, hop_fn)
        if q.hit_level < 0 or q.address is None:
            return SessionResult(s, d, False, False, q.packets, 0, False)
        current = self._hierarchy.address(d)
        stale = tuple(q.address) != tuple(current)
        res = self._fabric.forward(s, d, address=tuple(q.address))
        return SessionResult(
            source=s, target=d, resolved=True, delivered=res.delivered,
            query_packets=q.packets, data_hops=res.hops if res.delivered else 0,
            stale_address=stale,
        )
