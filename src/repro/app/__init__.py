"""Application layer: end-to-end messaging on the full LM + routing stack."""

from repro.app.messaging import MessagingService, SessionResult

__all__ = ["MessagingService", "SessionResult"]
