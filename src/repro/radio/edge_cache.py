"""Verlet-style unit-disk edge maintenance.

The per-step k-d tree rebuild in the simulator is a *candidate search*:
almost all of its output is identical step over step because nodes move
a small fraction of R_tx per step.  :class:`VerletEdgeCache` applies the
classic molecular-dynamics Verlet-list trick:

* build the k-d tree once over an **inflated** radius
  ``R_tx * (1 + skin)`` and keep that candidate pair list;
* each step, exact edges are the candidates within ``R_tx`` under the
  *current* positions — a single vectorized distance filter;
* rebuild the candidate list only when some node has drifted more than
  ``skin * R_tx / 2`` from its position at build time.

**Exactness.**  A pair at true distance ``d <= R_tx`` today was at
distance ``<= d + 2 * drift <= R_tx * (1 + skin)`` at build time (two
triangle inequalities), so it is always in the candidate list — the
filter can never miss an edge.  The filter compares the same float64
squared distances the k-d tree does and keeps the candidate list's
(row-sorted, lex-ordered) order, so the output array is bit-identical
to a fresh :func:`~repro.radio.unit_disk.unit_disk_edges` call
(``tests/radio/test_edge_cache.py`` fuzzes this).

**When it pays.**  A rebuild is amortized over ``skin * R_tx / 2``
worth of drift: with per-step displacement ``s`` the tree is rebuilt
every ``~skin * R_tx / (2 s)`` steps.  See docs/PERFORMANCE.md for the
threshold arithmetic against the stock scenario speeds.
"""

from __future__ import annotations

import numpy as np

from repro.radio.linkevents import LinkDiff
from repro.radio.unit_disk import unit_disk_edges

__all__ = ["VerletEdgeCache"]


class VerletEdgeCache:
    """Maintains exact unit-disk edges from a skin-inflated candidate list.

    Parameters
    ----------
    r_tx:
        Exact unit-disk radius.
    skin:
        Candidate-radius inflation factor (default 0.5: candidates
        within ``1.5 * r_tx``, rebuild after ``0.25 * r_tx`` drift).
    """

    def __init__(self, r_tx: float, skin: float = 0.5):
        if r_tx <= 0:
            raise ValueError("r_tx must be positive")
        if skin <= 0:
            raise ValueError("skin must be positive (0 would rebuild "
                             "every step; use unit_disk_edges directly)")
        self._r = float(r_tx)
        self._skin = float(skin)
        self._ref: np.ndarray | None = None
        self._candidates: np.ndarray | None = None
        self._prev_keep: np.ndarray | None = None
        self.rebuilds = 0
        """Candidate-list (k-d tree) rebuilds so far — the cost driver."""

    def edges(self, positions: np.ndarray) -> np.ndarray:
        """Exact canonical unit-disk edges for ``positions``."""
        return self.edges_with_diff(positions)[0]

    def edges_with_diff(
        self, positions: np.ndarray
    ) -> tuple[np.ndarray, LinkDiff | None]:
        """Edges plus the exact :class:`LinkDiff` against the previous
        call's output — for free.

        The diff falls out of two boolean masks over one fixed
        candidate list: an edge appeared iff it is kept now but wasn't
        last step, and vice versa.  Candidates are canonical
        (lex-ordered, ``u < v``), so masked subsets come out in the
        same ascending-key order a sorted set difference of the two
        edge arrays would produce — consumers patching incremental
        state from the diff stay bit-identical to re-diffing.

        Returns ``None`` for the diff when there is no comparable
        previous step (first call, or the candidate list was just
        rebuilt): a rebuild swaps the mask's index space, so the caller
        must fall back to its own diffing for that step.
        """
        pos = np.asarray(positions, dtype=np.float64)
        stale = self._ref is None or pos.shape != self._ref.shape
        if not stale:
            drift2 = float(np.max(np.sum((pos - self._ref) ** 2, axis=1)))
            # Worst case: two nodes drifting toward each other, hence
            # the factor 2 against the skin margin.
            stale = 2.0 * np.sqrt(drift2) > self._skin * self._r
        if stale:
            self._ref = pos.copy()
            self._candidates = unit_disk_edges(
                pos, self._r * (1.0 + self._skin)
            )
            self._prev_keep = None
            self.rebuilds += 1
        cand = self._candidates
        if cand.shape[0] == 0:
            return cand, None
        d = pos[cand[:, 0]] - pos[cand[:, 1]]
        keep = d[:, 0] ** 2 + d[:, 1] ** 2 <= self._r * self._r
        diff = None
        if self._prev_keep is not None:
            diff = LinkDiff(
                ups=cand[keep & ~self._prev_keep],
                downs=cand[self._prev_keep & ~keep],
            )
        self._prev_keep = keep
        return cand[keep], diff
