"""Unit-disk transmission model (Section 1.2 of the paper).

A bidirectional link exists between u and v iff their Euclidean distance
is at most the transmission radius ``r_tx``.  Neighbor discovery is the
single hottest operation of the simulator, so edges are computed with a
``scipy.spatial.cKDTree`` (O(n log n)) and exposed as a raw ``(m, 2)``
int array; the NetworkX view is built lazily only where graph algorithms
need it.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.points import as_points


def unit_disk_edges(positions, r_tx: float) -> np.ndarray:
    """Edge array of the unit-disk graph.

    Returns an ``(m, 2)`` int64 array of node-index pairs with
    ``u < v`` for every row, sorted lexicographically — a canonical form
    that makes snapshot diffs (link events) cheap.
    """
    pts = as_points(positions)
    if r_tx <= 0:
        raise ValueError("transmission radius must be positive")
    if pts.shape[0] < 2:
        return np.empty((0, 2), dtype=np.int64)
    tree = cKDTree(pts)
    pairs = tree.query_pairs(r_tx, output_type="ndarray")
    if pairs.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.sort(pairs.astype(np.int64), axis=1)
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


def edges_to_graph(n: int, edges: np.ndarray, positions=None) -> nx.Graph:
    """NetworkX view of an edge array over nodes ``0..n-1``.

    Isolated nodes are preserved.  If ``positions`` is given, each node
    gets a ``pos`` attribute (tuple) for plotting and geographic lookups.
    """
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(map(tuple, np.asarray(edges, dtype=np.int64)))
    if positions is not None:
        pts = as_points(positions)
        if pts.shape[0] != n:
            raise ValueError("positions length must equal node count")
        nx.set_node_attributes(g, {i: tuple(pts[i]) for i in range(n)}, "pos")
    return g


def unit_disk_graph(positions, r_tx: float) -> nx.Graph:
    """Convenience wrapper: positions -> NetworkX unit-disk graph."""
    pts = as_points(positions)
    return edges_to_graph(pts.shape[0], unit_disk_edges(pts, r_tx), pts)


def degree_counts(n: int, edges: np.ndarray) -> np.ndarray:
    """Per-node degree vector from an edge array."""
    deg = np.zeros(n, dtype=np.int64)
    if len(edges):
        e = np.asarray(edges, dtype=np.int64)
        np.add.at(deg, e[:, 0], 1)
        np.add.at(deg, e[:, 1], 1)
    return deg


def encode_edges(edges: np.ndarray, n: int) -> np.ndarray:
    """Encode canonical edges as scalar keys ``u * n + v`` for set diffs."""
    e = np.asarray(edges, dtype=np.int64)
    if e.size == 0:
        return np.empty(0, dtype=np.int64)
    return e[:, 0] * np.int64(n) + e[:, 1]


def decode_edges(keys: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`encode_edges`."""
    k = np.asarray(keys, dtype=np.int64)
    if k.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    return np.stack([k // n, k % n], axis=1)
