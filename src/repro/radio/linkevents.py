"""Link state change detection between topology snapshots.

Equation (4) of the paper defines f_0, the per-node frequency of level-0
link state change events, and argues it is Theta(1) under fixed density:
links live Theta(R_tx / mu) seconds, and each node has Theta(1) of them.
:class:`LinkTracker` meters exactly this quantity: feed it the canonical
edge array after every mobility step and it reports links that appeared
(ups) and disappeared (downs).

Diffs operate on scalar-encoded edge keys (``u * n + v``), so one step is
two ``np.isin`` calls on sorted int arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.radio.unit_disk import decode_edges, encode_edges


@dataclass
class LinkDiff:
    """Result of one snapshot comparison."""

    ups: np.ndarray  # (k, 2) edges that appeared
    downs: np.ndarray  # (m, 2) edges that disappeared

    @property
    def n_events(self) -> int:
        """Total link state change events (ups + downs)."""
        return int(len(self.ups) + len(self.downs))


@dataclass
class LinkTracker:
    """Accumulates link up/down events across a run.

    Attributes
    ----------
    n:
        Node count (fixes the edge-key encoding).
    total_ups / total_downs:
        Cumulative event counts.
    per_node_events:
        Event count attributed to each endpoint (each event charges both
        endpoints once, matching the per-node accounting of Eq. (4)).
    """

    n: int
    total_ups: int = 0
    total_downs: int = 0
    steps: int = 0
    per_node_events: np.ndarray = field(default=None)  # type: ignore[assignment]
    _prev_keys: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("node count must be positive")
        if self.per_node_events is None:
            self.per_node_events = np.zeros(self.n, dtype=np.int64)

    def observe(self, edges: np.ndarray) -> LinkDiff:
        """Record a snapshot; return the diff against the previous one.

        The first observation establishes the baseline and reports an
        empty diff.
        """
        keys = encode_edges(edges, self.n)
        if self._prev_keys is None:
            self._prev_keys = keys
            return LinkDiff(
                ups=np.empty((0, 2), dtype=np.int64),
                downs=np.empty((0, 2), dtype=np.int64),
            )
        prev = self._prev_keys
        up_keys = keys[~np.isin(keys, prev, assume_unique=True)]
        down_keys = prev[~np.isin(prev, keys, assume_unique=True)]
        self._prev_keys = keys
        ups = decode_edges(up_keys, self.n)
        downs = decode_edges(down_keys, self.n)
        self.total_ups += len(ups)
        self.total_downs += len(downs)
        self.steps += 1
        for arr in (ups, downs):
            if len(arr):
                np.add.at(self.per_node_events, arr[:, 0], 1)
                np.add.at(self.per_node_events, arr[:, 1], 1)
        return LinkDiff(ups=ups, downs=downs)

    def events_per_node_per_second(self, elapsed: float) -> float:
        """Mean link change frequency per node — the measured f_0.

        ``elapsed`` is the simulated time spanned by the observed diffs
        (i.e. excluding the baseline snapshot).
        """
        if elapsed <= 0:
            raise ValueError("elapsed time must be positive")
        return float(self.per_node_events.mean() / elapsed)

    def reset(self) -> None:
        """Forget all state, including the baseline snapshot."""
        self.total_ups = 0
        self.total_downs = 0
        self.steps = 0
        self.per_node_events[:] = 0
        self._prev_keys = None
