"""Radio substrate: unit-disk links, connectivity sizing, link events."""

from repro.radio.unit_disk import (
    unit_disk_edges,
    unit_disk_graph,
    edges_to_graph,
    degree_counts,
    encode_edges,
    decode_edges,
)
from repro.radio.connectivity import (
    radius_for_degree,
    gupta_kumar_radius,
    expected_degree,
    is_connected,
    giant_component_fraction,
    largest_component_nodes,
)
from repro.radio.edge_cache import VerletEdgeCache
from repro.radio.linkevents import LinkDiff, LinkTracker

__all__ = [
    "unit_disk_edges",
    "unit_disk_graph",
    "edges_to_graph",
    "degree_counts",
    "encode_edges",
    "decode_edges",
    "radius_for_degree",
    "gupta_kumar_radius",
    "expected_degree",
    "is_connected",
    "giant_component_fraction",
    "largest_component_nodes",
    "VerletEdgeCache",
    "LinkDiff",
    "LinkTracker",
]
