"""Connectivity tools for random unit-disk deployments.

The paper (Section 1.2, citing Gupta & Kumar [3]) notes that to keep a
random deployment connected the transmission radius must scale like
Theta(sqrt(log n / n)) relative to the region side — equivalently, the
average degree must grow like Theta(log n).  These helpers size ``r_tx``
for a target degree or for asymptotic connectivity, and check the giant
component of a realized deployment.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.radio.unit_disk import unit_disk_edges, edges_to_graph


def radius_for_degree(target_degree: float, density: float) -> float:
    """Transmission radius giving an expected unit-disk degree.

    For a Poisson field of intensity ``density``, the expected number of
    neighbors within radius r is density * pi * r^2, so
    ``r = sqrt(d / (pi * density))``.  The paper's "six is a magic number"
    reference [2] suggests d around 6-8 for good connectivity/throughput.
    """
    if target_degree <= 0:
        raise ValueError("target degree must be positive")
    if density <= 0:
        raise ValueError("density must be positive")
    return float(np.sqrt(target_degree / (np.pi * density)))


def gupta_kumar_radius(n: int, area: float, c: float = 1.0) -> float:
    """Critical connectivity radius sqrt(c * area * log n / (pi * n)).

    With c > 1 the random geometric graph is asymptotically almost surely
    connected (Gupta-Kumar); with c < 1 it is a.a.s. disconnected.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if area <= 0:
        raise ValueError("area must be positive")
    return float(np.sqrt(c * area * np.log(n) / (np.pi * n)))


def expected_degree(r_tx: float, density: float) -> float:
    """Expected unit-disk degree for a radius at a given density."""
    if r_tx <= 0 or density <= 0:
        raise ValueError("radius and density must be positive")
    return float(density * np.pi * r_tx**2)


def is_connected(positions, r_tx: float) -> bool:
    """Whether the realized unit-disk graph is a single component."""
    pts = np.asarray(positions, dtype=np.float64)
    n = pts.shape[0]
    if n <= 1:
        return True
    g = edges_to_graph(n, unit_disk_edges(pts, r_tx))
    return nx.is_connected(g)


def giant_component_fraction(positions, r_tx: float) -> float:
    """Fraction of nodes in the largest connected component."""
    pts = np.asarray(positions, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("empty deployment")
    g = edges_to_graph(n, unit_disk_edges(pts, r_tx))
    return max(len(c) for c in nx.connected_components(g)) / n


def largest_component_nodes(positions, r_tx: float) -> np.ndarray:
    """Sorted node indices of the largest connected component."""
    pts = np.asarray(positions, dtype=np.float64)
    n = pts.shape[0]
    if n == 0:
        raise ValueError("empty deployment")
    g = edges_to_graph(n, unit_disk_edges(pts, r_tx))
    comp = max(nx.connected_components(g), key=len)
    return np.array(sorted(comp), dtype=np.int64)
