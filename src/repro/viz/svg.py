"""Dependency-free SVG rendering of deployments and hierarchies.

Produces self-contained ``.svg`` files (no matplotlib required) showing
the Fig. 1 picture for *your* network: level-0 nodes and links, cluster
hulls per hierarchy level, clusterheads, and optionally a highlighted
route.  Used by ``examples/visualize_network.py`` and handy when
debugging clustering behavior.

The renderer is deliberately small: primitives are emitted as plain
strings, colors cycle per cluster, and coordinates are mapped from
world space to a fixed canvas with padding.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = ["SvgCanvas", "render_network_svg"]

_PALETTE = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
]


class SvgCanvas:
    """Minimal SVG document builder with world-to-canvas mapping."""

    def __init__(self, points: np.ndarray, width: int = 900, padding: int = 30):
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] == 0:
            raise ValueError("need a non-empty (n, 2) point set")
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        span = np.maximum(hi - lo, 1e-9)
        self.width = int(width)
        self.height = int(width * span[1] / span[0]) + 2 * padding
        self._lo, self._span, self._pad = lo, span, padding
        self._scale = (width - 2 * padding) / span[0]
        self._parts: list[str] = []

    def xy(self, p) -> tuple[float, float]:
        """Map a world point to canvas coordinates (y flipped)."""
        p = np.asarray(p, dtype=np.float64).reshape(2)
        x = self._pad + (p[0] - self._lo[0]) * self._scale
        y = self.height - self._pad - (p[1] - self._lo[1]) * self._scale
        return float(x), float(y)

    def line(self, a, b, stroke="#999", width=0.6, opacity=1.0) -> None:
        """Draw a line between two world points."""
        x1, y1 = self.xy(a)
        x2, y2 = self.xy(b)
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}" opacity="{opacity}"/>'
        )

    def circle(self, center, r=3.0, fill="#333", stroke="none", title=None) -> None:
        """Draw a dot at a world point (radius in canvas px)."""
        x, y = self.xy(center)
        t = f"<title>{title}</title>" if title else ""
        self._parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{fill}" '
            f'stroke="{stroke}">{t}</circle>'
        )

    def polygon(self, world_pts, fill="#ccc", opacity=0.25, stroke="#888") -> None:
        """Draw a filled polygon through world points."""
        coords = " ".join(
            f"{x:.1f},{y:.1f}" for x, y in (self.xy(p) for p in world_pts)
        )
        self._parts.append(
            f'<polygon points="{coords}" fill="{fill}" opacity="{opacity}" '
            f'stroke="{stroke}" stroke-width="0.8"/>'
        )

    def text(self, pos, s, size=11, fill="#222") -> None:
        """Place a text label at a world point."""
        x, y = self.xy(pos)
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'fill="{fill}" font-family="sans-serif">{s}</text>'
        )

    def to_svg(self) -> str:
        """Serialize the document."""
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n{body}\n</svg>\n'
        )

    def save(self, path) -> Path:
        """Write the SVG file; returns the path."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_svg())
        return p


def _convex_hull(pts: np.ndarray) -> np.ndarray:
    """Tiny Andrew-monotone-chain hull (avoids importing scipy here)."""
    pts = np.unique(np.asarray(pts, dtype=np.float64), axis=0)
    if len(pts) <= 2:
        return pts
    pts = pts[np.lexsort((pts[:, 1], pts[:, 0]))]

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return np.array(lower[:-1] + upper[:-1])


def render_network_svg(
    positions,
    edges,
    hierarchy=None,
    hull_level: int = 1,
    route: list[int] | None = None,
    path=None,
    width: int = 900,
) -> str:
    """Render a deployment (and optionally its hierarchy) to SVG.

    Parameters
    ----------
    positions:
        ``(n, 2)`` node coordinates (row i = node i).
    edges:
        ``(m, 2)`` index pairs (level-0 links).
    hierarchy:
        Optional :class:`~repro.hierarchy.ClusteredHierarchy`; when given,
        level-``hull_level`` cluster hulls are shaded (color per cluster)
        and clusterheads drawn enlarged.
    route:
        Optional node-index path highlighted in red.
    path:
        When given, the SVG is also written to this file.

    Returns
    -------
    The SVG markup.
    """
    pts = np.asarray(positions, dtype=np.float64)
    canvas = SvgCanvas(pts, width=width)

    if hierarchy is not None:
        anc = hierarchy.ancestry(min(hull_level, hierarchy.num_levels))
        for i, cid in enumerate(np.unique(anc).tolist()):
            members = pts[anc == cid]
            color = _PALETTE[i % len(_PALETTE)]
            if len(members) >= 3:
                canvas.polygon(_convex_hull(members), fill=color)
            for m in members:
                canvas.circle(m, r=2.2, fill=color)
    for a, b in np.asarray(edges, dtype=np.int64).tolist():
        canvas.line(pts[a], pts[b], stroke="#bbb", width=0.5, opacity=0.7)
    if hierarchy is None:
        for i in range(len(pts)):
            canvas.circle(pts[i], r=2.2, fill="#4e79a7", title=str(i))
    else:
        level = min(hull_level, hierarchy.num_levels)
        if level >= 1:
            heads = hierarchy.levels[level].node_ids
            base = hierarchy.levels[0].node_ids
            for head in heads.tolist():
                idx = int(np.searchsorted(base, head))
                if idx < len(base) and base[idx] == head:
                    canvas.circle(pts[idx], r=5.0, fill="#222",
                                  title=f"head {head}")
    if route:
        for a, b in zip(route, route[1:]):
            canvas.line(pts[a], pts[b], stroke="#e15759", width=2.2)
        canvas.circle(pts[route[0]], r=5, fill="#59a14f", title="source")
        canvas.circle(pts[route[-1]], r=5, fill="#e15759", title="destination")

    svg = canvas.to_svg()
    if path is not None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(svg)
    return svg
