"""Visualization: dependency-free SVG renderings of networks/hierarchies."""

from repro.viz.svg import SvgCanvas, render_network_svg

__all__ = ["SvgCanvas", "render_network_svg"]
