"""repro.obs — run telemetry and profiling.

The observability layer for the simulator and sweep runner:

* :class:`~repro.obs.timers.StepTimings` — per-phase wall-clock
  accumulators the engine fills when run with ``profile=True``
  (bit-identical metrics; timing never touches an RNG stream).
* :class:`~repro.obs.manifest.RunManifest` — provenance + cost record
  (scenario hash, ``CODE_VERSION``, platform, phase breakdown) for one
  run, serialized as JSON.
* JSONL export (:mod:`repro.obs.export`) — traces, manifests, and
  counter records as JSON Lines for offline analysis.
* :class:`~repro.obs.report.SweepReport` — sweep-level aggregation
  (throughput, ETA, cache-hit rate, retry/timeout counts, per-n phase
  breakdowns) behind the ``repro profile`` CLI.

See docs/OBSERVABILITY.md for usage and schemas.
"""

from repro.obs.export import (
    jsonl_dumps,
    read_jsonl,
    result_counters,
    trace_from_records,
    trace_records,
    write_jsonl,
)
from repro.obs.manifest import RunManifest
from repro.obs.report import SweepReport
from repro.obs.timers import PHASES, StepTimings

__all__ = [
    "PHASES",
    "StepTimings",
    "RunManifest",
    "SweepReport",
    "jsonl_dumps",
    "write_jsonl",
    "read_jsonl",
    "trace_records",
    "trace_from_records",
    "result_counters",
]
