"""Sweep-level telemetry aggregation.

:class:`SweepReport` is both a progress callback (pass the instance as
``progress=`` to any sweep entry point) and an aggregator: it folds the
stream of :class:`~repro.sim.sweep.SweepProgress` events into live
throughput/ETA/cache statistics, and — once the sweep finishes — joins
the results and error records into per-n phase breakdowns and
retry/timeout counts for the ``repro profile`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SweepReport"]


@dataclass
class SweepReport:
    """Accumulates sweep telemetry from progress events and results."""

    total: int = 0
    done: int = 0
    cached: int = 0
    executed: int = 0
    """Tasks actually simulated this sweep (``done`` minus cache hits)."""
    task_seconds: list[float] = field(default_factory=list)
    """Per-task simulation durations (cache hits excluded)."""
    ser_seconds: list[float] = field(default_factory=list)
    """Per-task result-serialization times (worker pack + parent
    unpack; cache hits excluded, zero for serial in-process runs)."""
    cache_seconds: float = 0.0
    """Wall seconds spent loading cache hits (excluded from the
    execution clock that throughput is computed over)."""
    workers_seen: set = field(default_factory=set)
    retries: int = 0
    """Extra attempts consumed by tasks that eventually succeeded."""
    sweep_seconds: float = 0.0
    """Sweep wall time at the latest progress event."""
    errors: list = field(default_factory=list)
    results: list = field(default_factory=list)

    # -- ingestion ----------------------------------------------------------------

    def record(self, p) -> None:
        """Fold in one :class:`SweepProgress` event."""
        self.total = p.total
        self.done = p.done
        self.cached = p.cached
        self.sweep_seconds = max(self.sweep_seconds, p.elapsed)
        if p.from_cache:
            self.cache_seconds += p.task_seconds
        else:
            self.executed += 1
            self.task_seconds.append(p.task_seconds)
            self.ser_seconds.append(getattr(p, "ser_seconds", 0.0))
            self.retries += max(0, p.attempts - 1)
            if p.worker is not None:
                self.workers_seen.add(p.worker)

    # Passing the report object itself as ``progress=`` just works.
    __call__ = record

    def finish(self, run) -> None:
        """Attach a finished :class:`~repro.sim.sweep.SweepRun` (or any
        object with ``results``/``errors``) for result-side aggregation."""
        self.results = [r for r in run.results if r is not None]
        self.errors = list(run.errors)

    # -- live statistics ----------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of completed tasks served from the result cache."""
        return self.cached / self.done if self.done else 0.0

    @property
    def mean_task_seconds(self) -> float:
        ts = self.task_seconds
        return sum(ts) / len(ts) if ts else 0.0

    @property
    def mean_ser_seconds(self) -> float:
        ts = self.ser_seconds
        return sum(ts) / len(ts) if ts else 0.0

    @property
    def run_seconds(self) -> float:
        """Sweep wall time net of cache-hit loading — the clock actual
        executions ran against."""
        return max(self.sweep_seconds - self.cache_seconds, 0.0)

    @property
    def throughput_per_min(self) -> float:
        """Executed tasks per minute of execution wall time.

        Cache hits count in neither numerator nor denominator: a warm
        sweep that replays 90 cached tasks and runs 10 reports the
        throughput of those 10, not a fictitious 10x speedup.
        """
        if self.executed <= 0 or self.run_seconds <= 0:
            return 0.0
        return 60.0 * self.executed / self.run_seconds

    @property
    def eta_seconds(self) -> float:
        """Projected seconds to finish the remaining tasks.

        0 when done; NaN while no task has actually *executed* yet — an
        all-cache-hits prefix says nothing about how long the pending
        simulations will take, and the old 0.0 read as "almost done".
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if not self.task_seconds:
            return float("nan")
        lanes = max(len(self.workers_seen), 1)
        return remaining * self.mean_task_seconds / lanes

    def error_counts(self) -> dict[str, int]:
        """Failed-task counts by kind (``exception``/``crash``/``timeout``)."""
        out: dict[str, int] = {}
        for e in self.errors:
            out[e.kind] = out.get(e.kind, 0) + 1
        return dict(sorted(out.items()))

    @property
    def failed_attempts(self) -> int:
        """Attempts consumed by tasks that never succeeded."""
        return sum(e.attempts for e in self.errors)

    # -- result-side aggregation --------------------------------------------------

    def per_n_phases(self) -> dict[int, dict[str, float]]:
        """Mean per-step phase seconds by scenario size n.

        Uses each profiled result's :class:`StepTimings`; unprofiled
        results are skipped (an unprofiled cache hit carries no timings).
        """
        from repro.obs.timers import StepTimings

        merged: dict[int, StepTimings] = {}
        for res in self.results:
            timings = getattr(res, "timings", None)
            if timings is None:
                continue
            merged.setdefault(res.scenario.n, StepTimings()).merge(timings)
        return {
            n: t.mean_per_step() for n, t in sorted(merged.items()) if t.steps
        }

    def invariant_summary(self) -> dict[str, int]:
        """Aggregate hierarchy-invariant violations across results.

        Scans each result's chaos report (``extras["chaos"]``, attached
        by the :class:`~repro.sim.collectors.chaos.ChaosCollector`) and
        returns ``{"checked": ..., "flagged": ..., "violations": ...}``
        — how many runs were invariant-checked, how many of those had at
        least one violation, and the violation total.  All zeros when no
        run in the sweep carried a chaos report.
        """
        checked = flagged = violations = 0
        for res in self.results:
            chaos = getattr(res, "extras", {}).get("chaos")
            if chaos is None:
                continue
            checked += 1
            total = int(chaos.total_violations)
            violations += total
            if total:
                flagged += 1
        return {
            "checked": checked, "flagged": flagged, "violations": violations
        }

    def service_summary(self) -> dict[str, float]:
        """Aggregate service-mode SLOs across results.

        Scans each result's service report (``extras["service"]``,
        attached by the
        :class:`~repro.sim.collectors.service.ServiceCollector`) and
        returns totals plus worst-case tail latency:
        ``{"runs": ..., "offered": ..., "served": ..., "shed": ...,
        "dropped": ..., "worst_p99": ...}``.  All zeros when no run in
        the sweep carried a service report.
        """
        import math

        runs = offered = served = shed = dropped = 0
        worst_p99 = 0.0
        for res in self.results:
            rep = getattr(res, "extras", {}).get("service")
            if rep is None:
                continue
            runs += 1
            offered += int(rep.offered)
            served += int(rep.served)
            shed += int(rep.shed)
            dropped += int(rep.dropped)
            p99 = rep.p99
            if not math.isnan(p99):
                worst_p99 = max(worst_p99, float(p99))
        return {
            "runs": runs, "offered": offered, "served": served,
            "shed": shed, "dropped": dropped, "worst_p99": worst_p99,
        }

    def reorg_event_summary(self) -> dict[str, int]:
        """Aggregate (i)-(vii) reorganization event counts across results.

        Sums each result ledger's
        :meth:`~repro.core.accounting.OverheadLedger.reorg_event_breakdown`
        over the whole sweep, keyed by the roman-numeral event kind —
        the sweep-level answer to *which event type dominates gamma*
        (EXP-F3's question).  Empty when no result carried a ledger.
        """
        out: dict[str, int] = {}
        for res in self.results:
            ledger = getattr(res, "ledger", None)
            if ledger is None:
                continue
            for kind, entry in ledger.reorg_event_breakdown().items():
                out[kind] = out.get(kind, 0) + int(entry["count"])
        return out

    def flagged_results(self) -> list:
        """Results whose hierarchy invariants were violated at least once."""
        return [
            res for res in self.results
            if getattr(res, "extras", {}).get("chaos") is not None
            and getattr(res, "extras", {})["chaos"].total_violations > 0
        ]

    # -- rendering ----------------------------------------------------------------

    def to_lines(self) -> list[str]:
        """Render the report as aligned text for the CLI."""
        lines = [
            f"tasks      {self.done}/{self.total} done"
            f" ({self.cached} cached, {100 * self.cache_hit_rate:.0f}% hit rate)",
            f"wall       {self.sweep_seconds:.1f} s sweep"
            f" | {self.mean_task_seconds:.2f} s mean/task"
            f" | {self.throughput_per_min:.1f} tasks/min",
        ]
        if any(s > 0 for s in self.ser_seconds):
            total_ser = sum(self.ser_seconds)
            lines.append(
                f"transport  {total_ser:.2f} s serializing results"
                f" ({self.mean_ser_seconds * 1e3:.1f} ms mean/task)"
            )
        if self.done < self.total:
            eta = self.eta_seconds
            lines.append(
                "eta        unknown (no executed task yet)"
                if eta != eta else f"eta        {eta:.1f} s"
            )
        if self.workers_seen:
            lines.append(f"workers    {len(self.workers_seen)} distinct")
        if self.retries or self.errors:
            counts = ", ".join(
                f"{k}={v}" for k, v in self.error_counts().items()
            ) or "none"
            lines.append(
                f"faults     {self.retries} retried-then-succeeded, "
                f"{len(self.errors)} failed ({counts})"
            )
        inv = self.invariant_summary()
        if inv["checked"]:
            lines.append(
                f"invariants {inv['flagged']}/{inv['checked']} checked runs"
                f" with violations ({inv['violations']} total)"
            )
        svc = self.service_summary()
        if svc["runs"]:
            lines.append(
                f"service    {svc['served']}/{svc['offered']} served across"
                f" {svc['runs']} runs ({svc['shed']} shed,"
                f" {svc['dropped']} dropped,"
                f" worst p99 {svc['worst_p99']:.4f} s)"
            )
        reorg = self.reorg_event_summary()
        if reorg:
            top = max(reorg, key=reorg.get)
            counts = ", ".join(f"({k}) {v}" for k, v in reorg.items())
            lines.append(
                f"reorg      {counts} — ({top}) dominates gamma"
            )
        phases = self.per_n_phases()
        if phases:
            keys = sorted({k for d in phases.values() for k in d})
            header = f"{'n':>8} " + " ".join(f"{k:>10}" for k in keys)
            lines.append("phase mean ms/step:")
            lines.append(header)
            for n, d in phases.items():
                lines.append(
                    f"{n:>8} "
                    + " ".join(f"{1e3 * d.get(k, 0.0):>10.3f}" for k in keys)
                )
        return lines

    def render(self) -> str:
        """The full report as one printable block."""
        return "\n".join(self.to_lines())
