"""Run manifests: a portable, JSON-safe record of one simulation run.

A manifest captures *provenance* (scenario hash, ``CODE_VERSION``,
package versions, platform) and *cost* (wall time, per-phase breakdown)
next to the headline metrics, so a result file on disk can always answer
"what produced this, and where did the time go?".  Manifests are plain
JSON; a list of them streams naturally as JSONL via
:func:`repro.obs.export.write_jsonl`.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["RunManifest"]

SCHEMA = "repro.manifest/v1"


def _platform_info() -> dict:
    import numpy

    import repro

    return {
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
        "numpy": numpy.__version__,
        "repro": repro.__version__,
    }


@dataclass(frozen=True)
class RunManifest:
    """Provenance + cost record for one :class:`~repro.sim.metrics.SimResult`.

    Attributes
    ----------
    scenario_key:
        The sweep cache key (SHA-256 over scenario, cadence, and
        ``CODE_VERSION``) — the run's stable identity.
    code_version:
        :data:`repro.sim.sweep.CODE_VERSION` at creation time.
    scenario:
        The full scenario as a JSON-safe dict (numpy scalars normalized).
    platform:
        Interpreter/OS/package versions the run executed under.
    wall_seconds:
        Measured wall time of the run (0 when the run was not profiled).
    phases:
        Per-phase wall-clock totals from :class:`~repro.obs.timers.StepTimings`
        (empty when the run was not profiled).
    metrics:
        Headline scalar metrics (phi, gamma, handoff rate, f0, ...).
    """

    scenario_key: str
    code_version: str
    scenario: dict
    platform: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    phases: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    schema: str = SCHEMA

    @classmethod
    def from_result(cls, res, hop_sample_every: int | None = None) -> "RunManifest":
        """Build a manifest from a finished :class:`SimResult`.

        ``hop_sample_every`` must match the value the run used — it is
        part of the cache key.  ``None`` (default) uses the scenario's
        own ``hop_sample_every``, which is what every default-cadence
        run and sweep uses.
        """
        # Imported here: obs must stay importable before repro.sim
        # finishes initializing (the engine lazily imports obs.timers).
        from repro.sim.sweep import CODE_VERSION, normalize_for_json, scenario_key

        timings = getattr(res, "timings", None)
        metrics = {
            "phi": float(res.phi),
            "gamma": float(res.gamma),
            "handoff_rate": float(res.handoff_rate),
            "f0": float(res.f0),
            "mean_degree": float(res.mean_degree),
            "giant_fraction": float(res.giant_fraction),
            "elapsed_sim_seconds": float(res.elapsed),
        }
        if res.query_success_rate is not None:
            metrics["query_success_rate"] = float(res.query_success_rate)
        for kind, entry in res.ledger.reorg_event_breakdown().items():
            # (i)-(vii) taxonomy: which reorg event type dominates gamma.
            metrics[f"reorg_{kind}_count"] = int(entry["count"])
            metrics[f"reorg_{kind}_rate"] = float(entry["rate"])
        service = getattr(res, "extras", {}).get("service")
        if service is not None:
            metrics.update(service.to_metrics())
        chaos = getattr(res, "extras", {}).get("chaos")
        if chaos is not None:
            ttr = chaos.max_time_to_reconverge()
            metrics["invariant_violations"] = int(chaos.total_violations)
            metrics["peak_invariant_violations"] = int(chaos.peak_violations)
            metrics["peak_down_nodes"] = int(chaos.peak_down)
            metrics["max_stale_window_steps"] = int(chaos.max_stale_window)
            if ttr is not None:
                metrics["max_time_to_reconverge"] = float(ttr)
        return cls(
            scenario_key=scenario_key(res.scenario, hop_sample_every),
            code_version=CODE_VERSION,
            scenario=normalize_for_json(asdict(res.scenario)),
            platform=_platform_info(),
            wall_seconds=float(timings.wall_seconds) if timings else 0.0,
            phases=dict(timings.totals) if timings else {},
            metrics=metrics,
        )

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form, ready for JSON or JSONL streaming."""
        return asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize as (pretty-printed) JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "RunManifest":
        if d.get("schema", SCHEMA) != SCHEMA:
            raise ValueError(f"unsupported manifest schema {d.get('schema')!r}")
        return cls(
            scenario_key=str(d["scenario_key"]),
            code_version=str(d["code_version"]),
            scenario=dict(d.get("scenario", {})),
            platform=dict(d.get("platform", {})),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            phases={str(k): float(v) for k, v in d.get("phases", {}).items()},
            metrics=dict(d.get("metrics", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def write(self, path: str | Path) -> Path:
        """Write the manifest as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def read(cls, path: str | Path) -> "RunManifest":
        return cls.from_json(Path(path).read_text())
