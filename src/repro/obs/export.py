"""JSONL export/import for traces, manifests, and counters.

JSON Lines is the interchange format for offline analysis: one JSON
object per line, streamable, greppable, and append-safe.  This module
owns the generic reader/writer plus the trace round-trip
(:class:`~repro.sim.trace.EventTrace` delegates its ``to_jsonl`` here).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

__all__ = [
    "jsonl_dumps",
    "write_jsonl",
    "read_jsonl",
    "trace_records",
    "trace_from_records",
    "result_counters",
]

TRACE_SCHEMA = "repro.trace/v1"


def _json_default(obj):
    """Last-resort JSON coercion: numpy scalars to Python, else str."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)


def jsonl_dumps(records: Iterable[dict]) -> str:
    """Serialize records as JSON Lines text (one compact object per line)."""
    return "".join(
        json.dumps(r, sort_keys=True, default=_json_default) + "\n"
        for r in records
    )


def write_jsonl(path_or_file: str | Path | IO[str],
                records: Iterable[dict]) -> int:
    """Write records as JSONL to a path or open text file.

    Returns the number of records written.  Paths get parent directories
    created; open files are written in place (and left open).
    """
    records = list(records)
    text = jsonl_dumps(records)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        path = Path(path_or_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return len(records)


def read_jsonl(path_or_file: str | Path | IO[str]) -> list[dict]:
    """Read a JSONL file back into a list of dicts (blank lines skipped)."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        text = Path(path_or_file).read_text()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# -- trace round-trip --------------------------------------------------------------


def trace_records(trace) -> list[dict]:
    """Flatten an :class:`~repro.sim.trace.EventTrace` into JSONL records.

    The first record is a header carrying the schema, capacity, and
    dropped-event count; each following record is one event.
    """
    head = {
        "schema": TRACE_SCHEMA,
        "capacity": trace.capacity,
        "dropped": trace.dropped,
        "events": len(trace.events),
    }
    out = [head]
    for ev in trace.events:
        out.append({"t": ev.t, "kind": ev.kind, "payload": dict(ev.payload)})
    return out


def trace_from_records(records: list[dict]):
    """Rebuild an :class:`EventTrace` from :func:`trace_records` output."""
    from repro.sim.trace import EventTrace, TraceEvent

    if not records or records[0].get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"not a {TRACE_SCHEMA} stream: missing or unknown header record"
        )
    head = records[0]
    trace = EventTrace(capacity=head.get("capacity"),
                       dropped=int(head.get("dropped", 0)))
    for rec in records[1:]:
        trace.events.append(TraceEvent(
            t=float(rec["t"]), kind=str(rec["kind"]),
            payload=dict(rec.get("payload", {})),
        ))
    return trace


# -- counters ----------------------------------------------------------------------


def result_counters(res) -> dict:
    """One flat JSON-safe record of a run's headline counters.

    The streaming complement of :class:`~repro.obs.manifest.RunManifest`:
    manifests carry provenance, counter records carry the numbers you
    plot — suitable for appending one line per run to a shared JSONL.
    """
    rec = {
        "n": int(res.scenario.n),
        "seed": int(res.scenario.seed),
        "steps": int(res.scenario.steps),
        "phi": float(res.phi),
        "gamma": float(res.gamma),
        "handoff_rate": float(res.handoff_rate),
        "f0": float(res.f0),
        "mean_degree": float(res.mean_degree),
        "giant_fraction": float(res.giant_fraction),
        "mean_h": float(res.mean_h()),
    }
    timings = getattr(res, "timings", None)
    if timings is not None:
        rec["wall_seconds"] = float(timings.wall_seconds)
        rec["phases"] = {k: float(v) for k, v in timings.totals.items()}
    return rec
