"""Per-phase wall-clock accumulators for the simulator pipeline.

The simulator's metered loop is a fixed pipeline (mobility -> unit-disk
rebuild -> hierarchy election -> handoff diff -> level diff -> hop
sampling).  :class:`StepTimings` accumulates wall-clock seconds per
phase so a profiled run can answer "which phase dominates at this n?"
without touching any simulation state.

Design constraints (enforced by ``tests/obs/test_equivalence.py``):

* Timing uses :func:`time.perf_counter` only — never an RNG stream, so a
  profiled run is bit-identical to an unprofiled one.
* When profiling is off the simulator holds no ``StepTimings`` at all;
  the per-phase cost is a single ``is None`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PHASES", "StepTimings"]

PHASES = (
    "setup",
    "mobility",
    "rebuild",
    "hierarchy",
    "delta",
    "handoff",
    "diff",
    "sampling",
)
"""Canonical pipeline phase names, in execution order.

``setup`` covers warmup stepping plus the unmetered baseline snapshot;
the rest are the per-step phases of :meth:`repro.sim.engine.Simulator.run`.
``delta`` is the event-plane phase (link-delta distillation into a
:class:`~repro.hierarchy.delta.HierarchyDelta`); it is metered on every
profiled run and reads as ~zero when ``incremental_hierarchy`` is off.
"""


@dataclass
class StepTimings:
    """Wall-clock seconds accumulated per pipeline phase.

    Attributes
    ----------
    totals:
        ``{phase: seconds}`` summed over every metered step (plus the
        one-time ``setup`` entry).
    steps:
        Number of metered steps accumulated.
    wall_seconds:
        Total wall time of the run (set once by the simulator; covers
        setup + loop + result assembly).
    """

    totals: dict[str, float] = field(default_factory=dict)
    steps: int = 0
    wall_seconds: float = 0.0

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time into ``phase``."""
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds

    def tick_step(self) -> None:
        """Mark one metered step complete."""
        self.steps += 1

    # -- views --------------------------------------------------------------------

    @property
    def phase_seconds(self) -> float:
        """Sum over all phase totals (excludes untimed glue)."""
        return float(sum(self.totals.values()))

    def fractions(self) -> dict[str, float]:
        """Each phase's share of the total phase time (empty when no
        time was recorded)."""
        total = self.phase_seconds
        if total <= 0:
            return {}
        return {k: v / total for k, v in self.totals.items()}

    def mean_per_step(self) -> dict[str, float]:
        """Mean seconds per metered step for each per-step phase
        (``setup`` excluded: it runs once, not per step)."""
        if self.steps <= 0:
            return {}
        return {
            k: v / self.steps for k, v in self.totals.items() if k != "setup"
        }

    def merge(self, other: "StepTimings") -> None:
        """Fold another run's timings into this accumulator (used for
        per-n aggregation across seeds)."""
        for k, v in other.totals.items():
            self.add(k, v)
        self.steps += other.steps
        self.wall_seconds += other.wall_seconds

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe) for manifests and JSONL export."""
        return {
            "totals": {k: float(v) for k, v in self.totals.items()},
            "steps": int(self.steps),
            "wall_seconds": float(self.wall_seconds),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StepTimings":
        return cls(
            totals={str(k): float(v) for k, v in d.get("totals", {}).items()},
            steps=int(d.get("steps", 0)),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
        )

    def to_lines(self) -> list[str]:
        """Human-readable per-phase table (ordered by :data:`PHASES`,
        unknown phases last)."""
        order = {p: i for i, p in enumerate(PHASES)}
        keys = sorted(self.totals, key=lambda k: (order.get(k, len(order)), k))
        fracs = self.fractions()
        lines = []
        for k in keys:
            lines.append(
                f"{k:10s} {self.totals[k]:9.4f} s  {100 * fracs.get(k, 0.0):5.1f}%"
            )
        if self.steps:
            per_step = 1e3 * sum(self.mean_per_step().values())
            lines.append(
                f"{'per step':10s} {per_step:9.3f} ms over {self.steps} steps"
            )
        return lines
