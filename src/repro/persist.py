"""Result persistence — JSON artifacts for runs and sweeps, and binary
checkpoints for long runs.

Long sweeps are expensive; this module serializes their outputs
(scenario echo + scalar metrics, never raw traces) so benches and
notebooks can reload results without re-simulating.  The schema is
versioned and loading validates it, so stale artifacts fail loudly
rather than silently misplotting.

Checkpoints (:func:`save_checkpoint` / :func:`load_checkpoint`) are a
different beast: full mid-run simulator state, pickled as one object so
shared references survive, written atomically (tmp + rename) so a crash
mid-write never leaves a truncated file, and validated against
:data:`repro.sim.sweep.CODE_VERSION` on load so a resumed run can never
silently mix simulator versions.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from pathlib import Path

from repro.analysis.scaling import SweepPoint
from repro.core.events import EventKind
from repro.sim.checkpoint import CHECKPOINT_SCHEMA, SimCheckpoint
from repro.sim.metrics import SimResult
from repro.sim.scenario import Scenario

__all__ = [
    "SCHEMA_VERSION",
    "result_to_dict",
    "save_result",
    "load_result_dict",
    "save_sweep",
    "load_sweep",
    "save_checkpoint",
    "load_checkpoint",
]

SCHEMA_VERSION = 1


def _scenario_dict(sc: Scenario) -> dict:
    d = dataclasses.asdict(sc)
    if isinstance(d.get("speed"), tuple):
        d["speed"] = list(d["speed"])
    return d


def result_to_dict(res: SimResult) -> dict:
    """Flatten a SimResult into JSON-safe scalars.

    Event-kind keys are serialized as ``"<kind>@<level>"`` strings.
    """
    led = res.ledger
    return {
        "schema": SCHEMA_VERSION,
        "scenario": _scenario_dict(res.scenario),
        "elapsed": res.elapsed,
        "f0": res.f0,
        "phi": res.phi,
        "gamma": res.gamma,
        "handoff_rate": res.handoff_rate,
        "registration_rate": led.registration_rate,
        "phi_k": {str(k): v for k, v in led.phi_k().items()},
        "gamma_k": {str(k): v for k, v in led.gamma_k().items()},
        "f_k": {str(k): v for k, v in led.f_k().items()},
        "g_prime_k": {str(k): v for k, v in res.g_prime_k().items()},
        "g_prime_k_drift": {str(k): v for k, v in res.g_prime_k_drift().items()},
        "reorg_event_rates": {
            f"{kind.value}@{level}": rate
            for (kind, level), rate in led.reorg_event_rates().items()
        },
        "level_sizes": {
            str(k): res.level_series.mean_size(k)
            for k in res.level_series.levels()
        },
        "h_network": res.mean_h(),
        "h_levels": {str(k): v for k, v in res.mean_h_k().items()},
        "mean_degree": res.mean_degree,
        "giant_fraction": res.giant_fraction,
        "component_lifetimes": {
            str(k): (v if v != float("inf") else None)
            for k, v in res.component_lifetimes().items()
        },
    }


def save_result(res: SimResult, path) -> Path:
    """Serialize one run to ``path`` (JSON).  Returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(result_to_dict(res), indent=2, sort_keys=True))
    return p


def load_result_dict(path) -> dict:
    """Load a saved run; validates the schema version."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema {data.get('schema')!r} != {SCHEMA_VERSION} "
            f"(stale file: {path})"
        )
    return data


def save_sweep(points: list[SweepPoint], path, meta: dict | None = None) -> Path:
    """Serialize sweep points (aggregates only) to JSON."""
    payload = {
        "schema": SCHEMA_VERSION,
        "meta": meta or {},
        "points": [
            {
                "n": p.n,
                "values": p.values,
                "stds": p.stds,
                "seeds": p.seeds,
            }
            for p in points
        ],
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return p


def save_checkpoint(ck: SimCheckpoint, path) -> Path:
    """Write a simulator checkpoint atomically; returns the path.

    The checkpoint is pickled as a single object (shared references —
    e.g. the delivery engine held by both the engine state and a query
    collector — stay shared on load) and written via tmp + rename so a
    crash mid-write leaves the previous checkpoint intact.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    tmp = p.with_suffix(p.suffix + f".tmp-{os.getpid()}")
    with tmp.open("wb") as fh:
        pickle.dump(ck, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(p)
    return p


def load_checkpoint(path) -> SimCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Validates the checkpoint schema and the simulator
    :data:`~repro.sim.sweep.CODE_VERSION`: a checkpoint from different
    simulator semantics raises ``ValueError`` (resuming it could not
    reproduce the uninterrupted run).  Corrupt files raise whatever
    pickle raises — callers that want "fresh run on any failure"
    semantics (e.g. the sweep runner) catch broadly.
    """
    # Imported here: sweep sits above this module in the import layering
    # (persist -> analysis.scaling -> engine; sweep imports engine too).
    from repro.sim.sweep import CODE_VERSION

    with Path(path).open("rb") as fh:
        ck = pickle.load(fh)
    if not isinstance(ck, SimCheckpoint):
        raise ValueError(f"not a simulator checkpoint: {path}")
    if ck.schema != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"checkpoint schema {ck.schema!r} != {CHECKPOINT_SCHEMA} "
            f"(stale file: {path})"
        )
    if ck.code_version != CODE_VERSION:
        raise ValueError(
            f"checkpoint written by simulator version {ck.code_version!r}, "
            f"this is {CODE_VERSION!r} — a resumed run would not match an "
            f"uninterrupted one (stale file: {path})"
        )
    return ck


def load_sweep(path) -> list[SweepPoint]:
    """Load sweep points saved by :func:`save_sweep`."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema {data.get('schema')!r} != {SCHEMA_VERSION} "
            f"(stale file: {path})"
        )
    return [
        SweepPoint(
            n=int(item["n"]),
            values=dict(item["values"]),
            stds=dict(item["stds"]),
            seeds=int(item["seeds"]),
            results=(),
        )
        for item in data["points"]
    ]
