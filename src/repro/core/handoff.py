"""LM handoff engine — the paper's central quantity, measured.

The engine holds the previous hierarchy snapshot and its CHLM server
assignment.  Each step it recomputes both, and **every (subject, level)
entry whose responsible server changed is a handoff transfer**, charged
as the hop count between outgoing and incoming server.  This is the
operational meaning of the paper's handoff overhead:

* the entries a migrating node served move to new servers inside the
  cluster it left ("transfer Theta(log|V|) LM entries to the appropriate
  members of its previous level-k cluster"),
* entries newly hashed onto it move in ("acquire Theta(log|V|) entries
  from its new cluster"),
* and a reorganizing level-k cluster redistributes the entries of all
  Theta(c_k) affected nodes with its level-(k+1) cluster.

Cause classification (phi vs gamma, Sections 4 and 5):

1. If the *subject*'s level-j cluster changed at a level j <= the entry
   level, the handoff is attributed to the subject's move — MIGRATION
   when the move was pure (both clusters persisted, "topology intact"),
   REORG otherwise.
2. Else if the *outgoing server* migrated (its own cluster chain
   changed), the handoff is the Section-4 server-side transfer —
   MIGRATION when pure, REORG otherwise.
3. Else the assignment changed because the cluster tree itself was
   restructured (elections, rejections, cluster link changes) — REORG.

Registration traffic (the subject refreshing its *address* at servers
whose identity did not change) is metered separately — the paper cites
[17] for its Theta(log|V|) bound, and EXP-T10 compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.events import EventKind, HierarchyDiff, diff_hierarchies
from repro.core.servers import ServerAssignment, full_assignment
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["HandoffReport", "HandoffEngine"]

HopFn = Callable[[int, int], int]


@dataclass(frozen=True)
class HandoffReport:
    """Packet accounting for one step.

    All ``dict[int, int]`` maps are keyed by hierarchy level.
    """

    migration_packets: dict[int, int]
    migration_entries: dict[int, int]
    reorg_packets: dict[int, int]
    reorg_entries: dict[int, int]
    registration_packets: dict[int, int]
    registration_events: int
    migration_events: dict[int, int]
    """Pure level-k node migration event counts (the f_k numerator)."""
    reorg_event_counts: dict[tuple[EventKind, int], int]
    """Raw reorganization events (i)-(vii) by (kind, level)."""
    diff: HierarchyDiff

    @property
    def phi_packets(self) -> int:
        """Total migration-handoff packets this step (phi numerator)."""
        return sum(self.migration_packets.values())

    @property
    def gamma_packets(self) -> int:
        """Total reorganization-handoff packets this step (gamma)."""
        return sum(self.reorg_packets.values())

    @property
    def total_handoff_packets(self) -> int:
        return self.phi_packets + self.gamma_packets


def _lowest_changed_levels(h0: ClusteredHierarchy, h1: ClusteredHierarchy) -> np.ndarray:
    """Per base node: lowest level where its cluster chain differs
    (0 = unchanged through the comparable levels)."""
    n = h0.n
    min_l = min(h0.num_levels, h1.num_levels)
    lcl = np.zeros(n, dtype=np.int64)
    for k in range(min_l, 0, -1):
        changed = h0.ancestry(k) != h1.ancestry(k)
        lcl[changed] = k
    return lcl


class HandoffEngine:
    """Stateful handoff meter over a sequence of hierarchy snapshots.

    Parameters
    ----------
    hash_fn:
        CHLM hash ("rendezvous" default, or "naive" / callable).
    """

    def __init__(self, hash_fn="rendezvous"):
        self.hash_fn = hash_fn
        self._prev_h: ClusteredHierarchy | None = None
        self._prev_a: ServerAssignment | None = None

    @property
    def assignment(self) -> ServerAssignment | None:
        """Most recent server assignment (None before first observe)."""
        return self._prev_a

    def observe(self, h: ClusteredHierarchy, hop_fn: HopFn) -> HandoffReport:
        """Meter one step against the previous snapshot.

        The first call establishes the baseline and reports zero cost.
        """
        assignment = full_assignment(h, self.hash_fn)
        empty: HandoffReport | None = None
        if self._prev_h is None or self._prev_a is None:
            empty = HandoffReport(
                migration_packets={},
                migration_entries={},
                reorg_packets={},
                reorg_entries={},
                registration_packets={},
                registration_events=0,
                migration_events={},
                reorg_event_counts={},
                diff=HierarchyDiff(),
            )
        if empty is not None:
            self._prev_h, self._prev_a = h, assignment
            return empty

        h0, a0 = self._prev_h, self._prev_a
        diff = diff_hierarchies(h0, h)
        purity = {(ev.node, ev.level): ev.pure for ev in diff.migrations}
        lcl = _lowest_changed_levels(h0, h)
        base_ids = h.levels[0].node_ids
        idx = {int(v): i for i, v in enumerate(base_ids.tolist())}

        migration_packets: dict[int, int] = {}
        migration_entries: dict[int, int] = {}
        reorg_packets: dict[int, int] = {}
        reorg_entries: dict[int, int] = {}

        def charge(cause: str, level: int, packets: int) -> None:
            if cause == "migration":
                migration_packets[level] = migration_packets.get(level, 0) + packets
                migration_entries[level] = migration_entries.get(level, 0) + 1
            else:
                reorg_packets[level] = reorg_packets.get(level, 0) + packets
                reorg_entries[level] = reorg_entries.get(level, 0) + 1

        keys = set(assignment.servers) | set(a0.servers)
        for key in keys:
            subject, level = key
            old_srv = a0.servers.get(key)
            new_srv = assignment.servers.get(key)
            if old_srv == new_srv:
                continue
            if new_srv is None:
                # Hierarchy got shallower; entry expires without transfer.
                continue
            if old_srv is None:
                # Hierarchy got deeper; fresh placement from the subject.
                packets = max(hop_fn(subject, new_srv), 0)
                charge("reorg", level, packets)
                continue
            packets = max(hop_fn(old_srv, new_srv), 0)

            subj_change = int(lcl[idx[subject]])
            if 0 < subj_change <= level:
                pure = purity.get((subject, subj_change), False)
                charge("migration" if pure else "reorg", level, packets)
                continue
            srv_change = int(lcl[idx[old_srv]])
            if srv_change > 0:
                pure = purity.get((old_srv, srv_change), False)
                charge("migration" if pure else "reorg", level, packets)
                continue
            charge("reorg", level, packets)

        # Registration: the level-k server stores the subject's
        # level-(k-1) cluster (the granularity a recursive query needs),
        # so it requires an update exactly when that component changes.
        # This locality is what bounds registration at Theta(log|V|) in
        # the companion paper [17]: the level-(k-1) component changes
        # with frequency ~f_{k-1} and the update crosses ~h_k hops.
        registration_packets: dict[int, int] = {}
        registration_events = 0
        min_l = min(h0.num_levels, h.num_levels)
        # Levels 2..min_l plus the virtual global level (whose stored
        # component is the subject's top-level cluster).
        for level in range(2, min_l + 2):
            component_changed = h0.ancestry(level - 1) != h.ancestry(level - 1)
            for i in np.flatnonzero(component_changed).tolist():
                v = int(base_ids[i])
                key = (v, level)
                srv_now = assignment.servers.get(key)
                if srv_now is None or a0.servers.get(key) != srv_now:
                    continue  # moved entries carry the fresh address
                registration_events += 1
                registration_packets[level] = registration_packets.get(
                    level, 0
                ) + max(hop_fn(v, srv_now), 0)

        report = HandoffReport(
            migration_packets=migration_packets,
            migration_entries=migration_entries,
            reorg_packets=reorg_packets,
            reorg_entries=reorg_entries,
            registration_packets=registration_packets,
            registration_events=registration_events,
            migration_events=diff.migration_counts(),
            reorg_event_counts=diff.reorg_counts(),
            diff=diff,
        )
        self._prev_h, self._prev_a = h, assignment
        return report
