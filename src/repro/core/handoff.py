"""LM handoff engine — the paper's central quantity, measured.

The engine holds the previous hierarchy snapshot and its CHLM server
assignment.  Each step it recomputes both, and **every (subject, level)
entry whose responsible server changed is a handoff transfer**, charged
as the hop count between outgoing and incoming server.  This is the
operational meaning of the paper's handoff overhead:

* the entries a migrating node served move to new servers inside the
  cluster it left ("transfer Theta(log|V|) LM entries to the appropriate
  members of its previous level-k cluster"),
* entries newly hashed onto it move in ("acquire Theta(log|V|) entries
  from its new cluster"),
* and a reorganizing level-k cluster redistributes the entries of all
  Theta(c_k) affected nodes with its level-(k+1) cluster.

Cause classification (phi vs gamma, Sections 4 and 5):

1. If the *subject*'s level-j cluster changed at a level j <= the entry
   level, the handoff is attributed to the subject's move — MIGRATION
   when the move was pure (both clusters persisted, "topology intact"),
   REORG otherwise.
2. Else if the *outgoing server* migrated (its own cluster chain
   changed), the handoff is the Section-4 server-side transfer —
   MIGRATION when pure, REORG otherwise.
3. Else the assignment changed because the cluster tree itself was
   restructured (elections, rejections, cluster link changes) — REORG.

Registration traffic (the subject refreshing its *address* at servers
whose identity did not change) is metered separately — the paper cites
[17] for its Theta(log|V|) bound, and EXP-T10 compares the two.

Lossy control plane (EXP-A10): pass a
:class:`~repro.faults.delivery.DeliveryEngine` to :meth:`observe` and
every transfer/registration is routed through it.  An *abandoned*
transfer leaves the entry on its outgoing server — the engine tracks
the key as **stale** (the hash points at a server that never received
the entry, so queries miss) and the normal diff machinery retries the
transfer on subsequent steps until it lands, at which point the
staleness-recovery time is recorded.  With ``delivery=None`` (or a
zero-loss engine) the metering is bit-identical to the lossless rule
``charge = hops``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.events import EventKind, HierarchyDiff, diff_hierarchies
from repro.core.servers import (
    ChainedAssignment,
    ServerAssignment,
    assignment_with_chains,
    full_assignment,
    patch_assignment,
)
from repro.hierarchy.delta import HierarchyDelta
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["HandoffReport", "HandoffEngine"]

HopFn = Callable[[int, int], int]


@dataclass(frozen=True)
class HandoffReport:
    """Packet accounting for one step.

    All ``dict[int, int]`` maps are keyed by hierarchy level.
    """

    migration_packets: dict[int, int]
    migration_entries: dict[int, int]
    reorg_packets: dict[int, int]
    reorg_entries: dict[int, int]
    registration_packets: dict[int, int]
    registration_events: int
    migration_events: dict[int, int]
    """Pure level-k node migration event counts (the f_k numerator)."""
    reorg_event_counts: dict[tuple[EventKind, int], int]
    """Raw reorganization events (i)-(vii) by (kind, level)."""
    diff: HierarchyDiff
    retransmitted_packets: int = 0
    """Extra transmissions beyond the lossless charge (0 without faults)."""
    abandoned_entries: int = 0
    """Entry transfers given up this step (each leaves a stale server)."""
    abandoned_registrations: int = 0
    """Address refreshes given up this step."""
    recovered_entries: int = 0
    """Previously-stale entries whose transfer finally landed this step."""
    recovery_time_total: float = 0.0
    """Summed abandon-to-recovery durations of this step's recoveries."""
    stale_entries: int = 0
    """Stale (subject, level) keys outstanding after this step."""

    @property
    def phi_packets(self) -> int:
        """Total migration-handoff packets this step (phi numerator)."""
        return sum(self.migration_packets.values())

    @property
    def gamma_packets(self) -> int:
        """Total reorganization-handoff packets this step (gamma)."""
        return sum(self.reorg_packets.values())

    @property
    def total_handoff_packets(self) -> int:
        return self.phi_packets + self.gamma_packets


def _lowest_changed_levels(h0: ClusteredHierarchy, h1: ClusteredHierarchy) -> np.ndarray:
    """Per base node: lowest level where its cluster chain differs
    (0 = unchanged through the comparable levels)."""
    n = h0.n
    min_l = min(h0.num_levels, h1.num_levels)
    lcl = np.zeros(n, dtype=np.int64)
    for k in range(min_l, 0, -1):
        changed = h0.ancestry(k) != h1.ancestry(k)
        lcl[changed] = k
    return lcl


class HandoffEngine:
    """Stateful handoff meter over a sequence of hierarchy snapshots.

    Parameters
    ----------
    hash_fn:
        CHLM hash ("rendezvous" default, or "naive" / callable).
    incremental:
        When True *and* the caller supplies a non-full
        :class:`~repro.hierarchy.delta.HierarchyDelta` to
        :meth:`observe`, the CHLM assignment is **patched** instead of
        recomputed — only descent chains through dirty clusters are
        re-hashed, and only those keys (plus outstanding stale keys)
        enter the handoff diff.  The metering is bit-identical to the
        full path: the delta's dirtiness claims are exact, so every key
        outside the candidate set provably kept its server.  Requires
        the rendezvous hash; other hashes silently use the full path.
    """

    def __init__(self, hash_fn="rendezvous", incremental=False):
        self.hash_fn = hash_fn
        self.incremental = bool(incremental)
        self._prev_h: ClusteredHierarchy | None = None
        self._prev_a: ServerAssignment | None = None
        # Incremental state: the previous *intent* (hash output) chains.
        # Distinct from _prev_a, which under loss reflects the effective
        # holders; patch cleanliness is an intent-to-intent claim.
        self._chains: ChainedAssignment | None = None
        # Abandoned-transfer bookkeeping: (subject, level) -> abandon time.
        self._stale: dict[tuple[int, int], float] = {}

    @property
    def assignment(self) -> ServerAssignment | None:
        """Most recent *effective* assignment (None before first observe).

        Under a lossy channel this reflects reality, not the hash: an
        abandoned transfer leaves the entry keyed to its old holder (or
        absent for a failed fresh placement), which is exactly what
        queries should see.
        """
        return self._prev_a

    @property
    def stale_keys(self) -> frozenset[tuple[int, int]]:
        """(subject, level) entries whose last transfer was abandoned."""
        return frozenset(self._stale)

    def observe(
        self,
        h: ClusteredHierarchy,
        hop_fn: HopFn,
        delivery=None,
        now: float = 0.0,
        delta: HierarchyDelta | None = None,
    ) -> HandoffReport:
        """Meter one step against the previous snapshot.

        The first call establishes the baseline and reports zero cost.
        ``delivery`` (a :class:`~repro.faults.delivery.DeliveryEngine`)
        routes every charge through the lossy channel; ``now`` is the
        simulation clock used to timestamp abandonments and measure
        staleness recovery.  ``delta`` (see the class docstring) enables
        assignment patching and dirty-key candidate narrowing when the
        engine was built with ``incremental=True``.
        """
        use_chains = self.incremental and self.hash_fn == "rendezvous"
        dirty_keys: list[tuple[int, int]] | None = None
        if (
            use_chains
            and delta is not None
            and not delta.full
            and self._chains is not None
        ):
            self._chains, dirty_keys = patch_assignment(self._chains, h, delta)
            assignment = self._chains.as_assignment()
        elif use_chains:
            self._chains = assignment_with_chains(h)
            assignment = self._chains.as_assignment()
        else:
            assignment = full_assignment(h, self.hash_fn)
        empty: HandoffReport | None = None
        if self._prev_h is None or self._prev_a is None:
            empty = HandoffReport(
                migration_packets={},
                migration_entries={},
                reorg_packets={},
                reorg_entries={},
                registration_packets={},
                registration_events=0,
                migration_events={},
                reorg_event_counts={},
                diff=HierarchyDiff(),
            )
        if empty is not None:
            self._prev_h, self._prev_a = h, assignment
            return empty

        h0, a0 = self._prev_h, self._prev_a
        diff = diff_hierarchies(h0, h)
        purity = {(ev.node, ev.level): ev.pure for ev in diff.migrations}
        lcl = _lowest_changed_levels(h0, h)
        base_ids = h.levels[0].node_ids

        def pos_of(node: int) -> int:
            return int(np.searchsorted(base_ids, node))

        migration_packets: dict[int, int] = {}
        migration_entries: dict[int, int] = {}
        reorg_packets: dict[int, int] = {}
        reorg_entries: dict[int, int] = {}
        retransmitted = 0
        abandoned = 0
        recovered = 0
        recovery_time = 0.0
        # Effective post-step assignment: starts as the hash's intent,
        # corrected wherever the channel abandoned a transfer.
        eff = dict(assignment.servers) if delivery is not None else None

        def charge(cause: str, level: int, packets: int) -> None:
            if cause == "migration":
                migration_packets[level] = migration_packets.get(level, 0) + packets
                migration_entries[level] = migration_entries.get(level, 0) + 1
            else:
                reorg_packets[level] = reorg_packets.get(level, 0) + packets
                reorg_entries[level] = reorg_entries.get(level, 0) + 1

        def transfer(key: tuple[int, int], hops: int) -> int:
            """Send one entry over the channel; returns packets to charge
            and maintains the stale/effective bookkeeping."""
            nonlocal retransmitted, abandoned, recovered, recovery_time
            if delivery is None:
                return hops
            out = delivery.send(hops, level=key[1])
            retransmitted += out.retransmitted
            if out.delivered:
                if key in self._stale:
                    recovered += 1
                    recovery_time += now - self._stale.pop(key)
            else:
                abandoned += 1
                old = a0.servers.get(key)
                if old is None:
                    eff.pop(key, None)  # fresh placement failed: no holder
                else:
                    eff[key] = old  # entry stays on the outgoing server
                self._stale.setdefault(key, now)
            return out.packets

        # Candidate keys.  Full path: every key either side knows.
        # Incremental path: the patch's dirty keys (the only keys whose
        # intent may have moved) plus outstanding stale keys (whose
        # effective holder differs from an unchanged intent, or which
        # await the old==new staleness-recovery rule).  Sorted iteration
        # fixes the lossy-channel draw order, so both paths consume the
        # RNG identically: clean non-candidate keys never touch it.
        if dirty_keys is None:
            keys = sorted(set(assignment.servers) | set(a0.servers))
        else:
            keys = sorted(set(dirty_keys) | set(self._stale))
        for key in keys:
            subject, level = key
            old_srv = a0.servers.get(key)
            new_srv = assignment.servers.get(key)
            if old_srv == new_srv:
                if old_srv is not None and key in self._stale:
                    # The hash swung back to the actual holder: the entry
                    # is authoritative again without any transfer.
                    recovered += 1
                    recovery_time += now - self._stale.pop(key)
                continue
            if new_srv is None:
                # Hierarchy got shallower; entry expires without transfer.
                self._stale.pop(key, None)
                continue
            if old_srv is None:
                # Hierarchy got deeper; fresh placement from the subject.
                packets = transfer(key, max(hop_fn(subject, new_srv), 0))
                charge("reorg", level, packets)
                continue
            packets = transfer(key, max(hop_fn(old_srv, new_srv), 0))

            subj_change = int(lcl[pos_of(subject)])
            if 0 < subj_change <= level:
                pure = purity.get((subject, subj_change), False)
                charge("migration" if pure else "reorg", level, packets)
                continue
            srv_change = int(lcl[pos_of(old_srv)])
            if srv_change > 0:
                pure = purity.get((old_srv, srv_change), False)
                charge("migration" if pure else "reorg", level, packets)
                continue
            charge("reorg", level, packets)

        if delivery is not None and self._stale:
            # Keys whose level vanished entirely can never recover.
            self._stale = {
                k: t for k, t in self._stale.items() if k in assignment.servers
            }

        # Registration: the level-k server stores the subject's
        # level-(k-1) cluster (the granularity a recursive query needs),
        # so it requires an update exactly when that component changes.
        # This locality is what bounds registration at Theta(log|V|) in
        # the companion paper [17]: the level-(k-1) component changes
        # with frequency ~f_{k-1} and the update crosses ~h_k hops.
        registration_packets: dict[int, int] = {}
        registration_events = 0
        abandoned_regs = 0
        min_l = min(h0.num_levels, h.num_levels)
        # Levels 2..min_l plus the virtual global level (whose stored
        # component is the subject's top-level cluster).
        for level in range(2, min_l + 2):
            component_changed = h0.ancestry(level - 1) != h.ancestry(level - 1)
            for i in np.flatnonzero(component_changed).tolist():
                v = int(base_ids[i])
                key = (v, level)
                srv_now = assignment.servers.get(key)
                if srv_now is None or a0.servers.get(key) != srv_now:
                    continue  # moved entries carry the fresh address
                registration_events += 1
                hops = max(hop_fn(v, srv_now), 0)
                if delivery is not None:
                    out = delivery.send(hops, level=level)
                    retransmitted += out.retransmitted
                    if not out.delivered:
                        abandoned_regs += 1
                    hops = out.packets
                registration_packets[level] = registration_packets.get(
                    level, 0
                ) + hops

        report = HandoffReport(
            migration_packets=migration_packets,
            migration_entries=migration_entries,
            reorg_packets=reorg_packets,
            reorg_entries=reorg_entries,
            registration_packets=registration_packets,
            registration_events=registration_events,
            migration_events=diff.migration_counts(),
            reorg_event_counts=diff.reorg_counts(),
            diff=diff,
            retransmitted_packets=retransmitted,
            abandoned_entries=abandoned,
            abandoned_registrations=abandoned_regs,
            recovered_entries=recovered,
            recovery_time_total=recovery_time,
            stale_entries=len(self._stale),
        )
        if eff is not None and eff != assignment.servers:
            assignment = ServerAssignment(servers=eff)
        self._prev_h, self._prev_a = h, assignment
        return report
