"""Handoff trigger events — the taxonomy of Sections 4 and 5.2.

Comparing two consecutive hierarchy snapshots yields:

* **Node migration** (Section 4): a physical node's level-k cluster
  changed while both old and new clusters persist — the level-k topology
  stayed intact, only membership moved.

* **Cluster reorganization** (Section 5.2, events i-vii):

  =====  =========================================================
  kind   trigger
  =====  =========================================================
  i      level-k link formed between clusters (one a level-(k+1) node)
  ii     level-k link broken between clusters (one a level-(k+1) node)
  iii    v promoted to level k by a *migrating* elector
  iv     v demoted from level k by a *migrating* elector
  v      v promoted to level k by a *newly elected* elector (recursive)
  vi     v demoted from level k because its elector was demoted
         (recursive — the "domino" chain of Section 5.2)
  vii    a level-k neighbor of v was elected level-(k+1) clusterhead
  =====  =========================================================

The detector classifies iii vs v (and iv vs vi) by checking whether the
responsible elector itself entered (resp. left) the level-(k-1) node set
in the same step, which is exactly the recursion the paper's Eq. (15)
chain quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.hierarchy.levels import ClusteredHierarchy

__all__ = [
    "EventKind",
    "MigrationEvent",
    "ReorgEvent",
    "HierarchyDiff",
    "diff_hierarchies",
]


class EventKind(Enum):
    """Reorganization event types (i)-(vii) plus pure migration."""

    MIGRATION = "migration"
    LINK_UP = "i"
    LINK_DOWN = "ii"
    ELECT_MIGRATION = "iii"
    REJECT_MIGRATION = "iv"
    ELECT_RECURSIVE = "v"
    REJECT_RECURSIVE = "vi"
    NEIGHBOR_ELECTED = "vii"


@dataclass(frozen=True)
class MigrationEvent:
    """A node's level-k cluster changed between snapshots."""

    node: int
    level: int
    old_cluster: int
    new_cluster: int
    pure: bool
    """True when this is Section 4's *node migration*: both clusters
    exist in both snapshots ("the level-k topology remains intact") AND
    the change originates from the node's own re-affiliation (its level-1
    cluster changed).  When a whole level-(k-1) cluster re-affiliates,
    every member's level-k ancestry flips at once — the paper counts that
    as ONE cluster-migration reorganization event (kinds i/ii), so those
    per-node flips are impure here and their handoff cost lands in gamma.
    """
    origin_level: int = 1
    """Lowest level at which the node's ancestry changed — 1 for an
    individual move, > 1 when an ancestor cluster re-affiliated."""


@dataclass(frozen=True)
class ReorgEvent:
    """A cluster reorganization event of kind (i)-(vii) at ``level``."""

    kind: EventKind
    level: int
    subject: int
    """The cluster/node the event is about (v_k in the paper)."""
    other: int | None = None
    """The counterpart (u_k: link peer, elector, or new head)."""


@dataclass
class HierarchyDiff:
    """All events between two hierarchy snapshots."""

    migrations: list[MigrationEvent] = field(default_factory=list)
    reorgs: list[ReorgEvent] = field(default_factory=list)

    def migration_counts(self) -> dict[int, int]:
        """Pure migration events per level (f_k numerators)."""
        counts: dict[int, int] = {}
        for ev in self.migrations:
            if ev.pure:
                counts[ev.level] = counts.get(ev.level, 0) + 1
        return counts

    def reorg_counts(self) -> dict[tuple[EventKind, int], int]:
        """Reorg events per (kind, level)."""
        counts: dict[tuple[EventKind, int], int] = {}
        for ev in self.reorgs:
            key = (ev.kind, ev.level)
            counts[key] = counts.get(key, 0) + 1
        return counts


def _edge_set(edges: np.ndarray) -> set[tuple[int, int]]:
    return {tuple(e) for e in np.asarray(edges, dtype=np.int64).tolist()}


def _electors_of(h: ClusteredHierarchy, level: int, head: int) -> list[int]:
    """Level-(level-1) nodes whose *raw* election points at ``head``."""
    election = h.levels[level - 1].election
    if election is None:
        return []
    mask = election.elected_head == head
    return election.node_ids[mask].tolist()


def diff_hierarchies(h0: ClusteredHierarchy, h1: ClusteredHierarchy) -> HierarchyDiff:
    """Detect all migration and reorganization events from h0 to h1.

    Both snapshots must cover the same physical node set.
    """
    if not np.array_equal(h0.levels[0].node_ids, h1.levels[0].node_ids):
        raise ValueError("snapshots cover different node sets")
    diff = HierarchyDiff()
    max_l = max(h0.num_levels, h1.num_levels)

    v_sets0 = [set(lvl.node_ids.tolist()) for lvl in h0.levels]
    v_sets1 = [set(lvl.node_ids.tolist()) for lvl in h1.levels]

    def v0(k: int) -> set[int]:
        return v_sets0[k] if k < len(v_sets0) else set()

    def v1(k: int) -> set[int]:
        return v_sets1[k] if k < len(v_sets1) else set()

    # --- node migration (per level) -------------------------------------------
    # Origin level per node: the lowest level where its ancestry changed.
    min_l = min(h0.num_levels, h1.num_levels)
    origin = np.zeros(h0.n, dtype=np.int64)
    for k in range(min_l, 0, -1):
        origin[h0.ancestry(k) != h1.ancestry(k)] = k

    for k in range(1, max_l + 1):
        if k > h0.num_levels or k > h1.num_levels:
            continue
        a0 = h0.ancestry(k)
        a1 = h1.ancestry(k)
        moved = np.flatnonzero(a0 != a1)
        for i in moved.tolist():
            node = int(h0.levels[0].node_ids[i])
            old_c = int(a0[i])
            new_c = int(a1[i])
            org = int(origin[i])
            pure = (
                org == 1
                and old_c in v0(k)
                and old_c in v1(k)
                and new_c in v0(k)
                and new_c in v1(k)
            )
            diff.migrations.append(
                MigrationEvent(node=node, level=k, old_cluster=old_c,
                               new_cluster=new_c, pure=pure, origin_level=org)
            )

    # --- cluster link events (i)/(ii) -----------------------------------------
    for k in range(1, max_l + 1):
        e0 = _edge_set(h0.levels[k].edges) if k <= h0.num_levels else set()
        e1 = _edge_set(h1.levels[k].edges) if k <= h1.num_levels else set()
        up1 = v1(k + 1)
        up0 = v0(k + 1)
        for u, v in sorted(e1 - e0):
            if u in up1 or v in up1:
                subject, other = (v, u) if v in up1 else (u, v)
                diff.reorgs.append(
                    ReorgEvent(kind=EventKind.LINK_UP, level=k, subject=subject, other=other)
                )
        for u, v in sorted(e0 - e1):
            if u in up0 or v in up0:
                subject, other = (v, u) if v in up0 else (u, v)
                diff.reorgs.append(
                    ReorgEvent(kind=EventKind.LINK_DOWN, level=k, subject=subject, other=other)
                )

    # --- elections / rejections (iii)-(vi) --------------------------------------
    for k in range(1, max_l + 1):
        elected = sorted(v1(k) - v0(k))
        rejected = sorted(v0(k) - v1(k))
        for v in elected:
            electors_now = set(_electors_of(h1, k, v)) - {v}
            new_electors = electors_now - v0(k - 1) if k >= 1 else set()
            recursive = bool(new_electors & v1(k - 1)) and k >= 2
            diff.reorgs.append(
                ReorgEvent(
                    kind=EventKind.ELECT_RECURSIVE if recursive else EventKind.ELECT_MIGRATION,
                    level=k,
                    subject=int(v),
                    other=int(min(new_electors)) if recursive else (
                        int(min(electors_now)) if electors_now else None
                    ),
                )
            )
        for v in rejected:
            electors_before = set(_electors_of(h0, k, v)) - {v}
            gone_electors = electors_before - v1(k - 1) if k >= 1 else set()
            recursive = bool(gone_electors & v0(k - 1)) and k >= 2
            diff.reorgs.append(
                ReorgEvent(
                    kind=EventKind.REJECT_RECURSIVE if recursive else EventKind.REJECT_MIGRATION,
                    level=k,
                    subject=int(v),
                    other=int(min(gone_electors)) if recursive else (
                        int(min(electors_before)) if electors_before else None
                    ),
                )
            )

    # --- neighbor elected to level k+1 (vii) --------------------------------------
    for k in range(1, max_l + 1):
        newly_up = v1(k + 1) - v0(k + 1)
        if not newly_up or k > h1.num_levels:
            continue
        lvl = h1.levels[k]
        e1 = lvl.edges
        if e1.size == 0:
            continue
        for u, v in e1.tolist():
            if u in newly_up and v not in newly_up:
                diff.reorgs.append(
                    ReorgEvent(kind=EventKind.NEIGHBOR_ELECTED, level=k, subject=v, other=u)
                )
            elif v in newly_up and u not in newly_up:
                diff.reorgs.append(
                    ReorgEvent(kind=EventKind.NEIGHBOR_ELECTED, level=k, subject=u, other=v)
                )

    return diff
