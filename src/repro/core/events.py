"""Handoff trigger events — the taxonomy of Sections 4 and 5.2.

Comparing two consecutive hierarchy snapshots yields:

* **Node migration** (Section 4): a physical node's level-k cluster
  changed while both old and new clusters persist — the level-k topology
  stayed intact, only membership moved.

* **Cluster reorganization** (Section 5.2, events i-vii):

  =====  =========================================================
  kind   trigger
  =====  =========================================================
  i      level-k link formed between clusters (one a level-(k+1) node)
  ii     level-k link broken between clusters (one a level-(k+1) node)
  iii    v promoted to level k by a *migrating* elector
  iv     v demoted from level k by a *migrating* elector
  v      v promoted to level k by a *newly elected* elector (recursive)
  vi     v demoted from level k because its elector was demoted
         (recursive — the "domino" chain of Section 5.2)
  vii    a level-k neighbor of v was elected level-(k+1) clusterhead
  =====  =========================================================

The detector classifies iii vs v (and iv vs vi) by checking whether the
responsible elector itself entered (resp. left) the level-(k-1) node set
in the same step, which is exactly the recursion the paper's Eq. (15)
chain quantifies.

The detector is event-sized: every per-node python loop below runs over
*changed* rows only (vectorized masks pick them out first), so a
steady-state step with few topology events costs little more than the
ancestry comparisons themselves.  Event lists keep the exact order the
original per-element scan produced, so traces diff clean across the
incremental/full hierarchy paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.hierarchy.levels import ClusteredHierarchy

__all__ = [
    "EventKind",
    "MigrationEvent",
    "ReorgEvent",
    "HierarchyDiff",
    "diff_hierarchies",
]


class EventKind(Enum):
    """Reorganization event types (i)-(vii) plus pure migration."""

    MIGRATION = "migration"
    LINK_UP = "i"
    LINK_DOWN = "ii"
    ELECT_MIGRATION = "iii"
    REJECT_MIGRATION = "iv"
    ELECT_RECURSIVE = "v"
    REJECT_RECURSIVE = "vi"
    NEIGHBOR_ELECTED = "vii"


@dataclass(frozen=True)
class MigrationEvent:
    """A node's level-k cluster changed between snapshots."""

    node: int
    level: int
    old_cluster: int
    new_cluster: int
    pure: bool
    """True when this is Section 4's *node migration*: both clusters
    exist in both snapshots ("the level-k topology remains intact") AND
    the change originates from the node's own re-affiliation (its level-1
    cluster changed).  When a whole level-(k-1) cluster re-affiliates,
    every member's level-k ancestry flips at once — the paper counts that
    as ONE cluster-migration reorganization event (kinds i/ii), so those
    per-node flips are impure here and their handoff cost lands in gamma.
    """
    origin_level: int = 1
    """Lowest level at which the node's ancestry changed — 1 for an
    individual move, > 1 when an ancestor cluster re-affiliated."""


@dataclass(frozen=True)
class ReorgEvent:
    """A cluster reorganization event of kind (i)-(vii) at ``level``."""

    kind: EventKind
    level: int
    subject: int
    """The cluster/node the event is about (v_k in the paper)."""
    other: int | None = None
    """The counterpart (u_k: link peer, elector, or new head)."""


@dataclass
class HierarchyDiff:
    """All events between two hierarchy snapshots."""

    migrations: list[MigrationEvent] = field(default_factory=list)
    reorgs: list[ReorgEvent] = field(default_factory=list)

    def migration_counts(self) -> dict[int, int]:
        """Pure migration events per level (f_k numerators)."""
        counts: dict[int, int] = {}
        for ev in self.migrations:
            if ev.pure:
                counts[ev.level] = counts.get(ev.level, 0) + 1
        return counts

    def reorg_counts(self) -> dict[tuple[EventKind, int], int]:
        """Reorg events per (kind, level)."""
        counts: dict[tuple[EventKind, int], int] = {}
        for ev in self.reorgs:
            key = (ev.kind, ev.level)
            counts[key] = counts.get(key, 0) + 1
        return counts


def _isin_sorted(sorted_ids: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in a sorted unique id array."""
    if sorted_ids.size == 0:
        return np.zeros(np.shape(values), dtype=bool)
    pos = np.minimum(
        np.searchsorted(sorted_ids, values), sorted_ids.size - 1
    )
    return sorted_ids[pos] == values


_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_EDGES = np.empty((0, 2), dtype=np.int64)


def _edge_diffs(e0: np.ndarray, e1: np.ndarray):
    """(e1 - e0, e0 - e1) as edge arrays in ascending (u, v) lex order.

    Canonical edge arrays encode to unique keys ``u * big + v``; the
    sorted key set-diffs decode back in exactly the order the legacy
    ``sorted(set(tuples))`` scan produced.  Falls back to python sets
    for ids large enough to overflow the encoding (never the case for
    level node IDs drawn from base IDs, but kept for safety).
    """
    hi = max(
        int(e0.max(initial=-1)),
        int(e1.max(initial=-1)),
    )
    lo = min(int(e0.min(initial=0)), int(e1.min(initial=0)))
    big = hi + 1
    if lo < 0 or big >= 2**31:  # pragma: no cover - exotic id ranges
        s0 = {tuple(e) for e in e0.tolist()}
        s1 = {tuple(e) for e in e1.tolist()}
        up = np.asarray(sorted(s1 - s0), dtype=np.int64).reshape(-1, 2)
        down = np.asarray(sorted(s0 - s1), dtype=np.int64).reshape(-1, 2)
        return up, down
    k0 = e0[:, 0] * big + e0[:, 1]
    k1 = e1[:, 0] * big + e1[:, 1]
    up_k = np.setdiff1d(k1, k0, assume_unique=True)
    down_k = np.setdiff1d(k0, k1, assume_unique=True)
    up = np.stack([up_k // big, up_k % big], axis=1) if up_k.size else _EMPTY_EDGES
    down = (
        np.stack([down_k // big, down_k % big], axis=1)
        if down_k.size
        else _EMPTY_EDGES
    )
    return up, down


def _electors_of(h: ClusteredHierarchy, level: int, head: int) -> list[int]:
    """Level-(level-1) nodes whose *raw* election points at ``head``."""
    election = h.levels[level - 1].election
    if election is None:
        return []
    mask = election.elected_head == head
    return election.node_ids[mask].tolist()


def _election_events(
    diff: HierarchyDiff,
    kind_plain: EventKind,
    kind_recursive: EventKind,
    h_ref: ClusteredHierarchy,
    k: int,
    heads: np.ndarray,
    below_other: np.ndarray,
    below_same: np.ndarray,
) -> None:
    """Shared body for (iii)/(v) promotions and (iv)/(vi) demotions.

    ``h_ref`` is the snapshot that *contains* the head at level k (h1
    for promotions, h0 for demotions); ``below_other`` is the other
    snapshot's level-(k-1) node set and ``below_same`` is ``h_ref``'s.
    """
    election = (
        h_ref.levels[k - 1].election if k <= h_ref.num_levels else None
    )
    for v in heads.tolist():
        if election is not None:
            cand = election.node_ids[election.elected_head == v]
            cand = cand[cand != v]
        else:  # pragma: no cover - heads imply the level exists
            cand = _EMPTY_IDS
        moved = cand[~_isin_sorted(below_other, cand)]
        recursive = k >= 2 and bool(np.any(_isin_sorted(below_same, moved)))
        if recursive:
            other = int(moved.min())
        else:
            other = int(cand.min()) if cand.size else None
        diff.reorgs.append(
            ReorgEvent(
                kind=kind_recursive if recursive else kind_plain,
                level=k,
                subject=int(v),
                other=other,
            )
        )


def diff_hierarchies(h0: ClusteredHierarchy, h1: ClusteredHierarchy) -> HierarchyDiff:
    """Detect all migration and reorganization events from h0 to h1.

    Both snapshots must cover the same physical node set.
    """
    if not np.array_equal(h0.levels[0].node_ids, h1.levels[0].node_ids):
        raise ValueError("snapshots cover different node sets")
    diff = HierarchyDiff()
    max_l = max(h0.num_levels, h1.num_levels)

    def v0(k: int) -> np.ndarray:
        return h0.levels[k].node_ids if k < len(h0.levels) else _EMPTY_IDS

    def v1(k: int) -> np.ndarray:
        return h1.levels[k].node_ids if k < len(h1.levels) else _EMPTY_IDS

    # --- node migration (per level) -------------------------------------------
    # Origin level per node: the lowest level where its ancestry changed.
    min_l = min(h0.num_levels, h1.num_levels)
    origin = np.zeros(h0.n, dtype=np.int64)
    for k in range(min_l, 0, -1):
        origin[h0.ancestry(k) != h1.ancestry(k)] = k

    base_ids = h0.levels[0].node_ids
    for k in range(1, min_l + 1):
        a0 = h0.ancestry(k)
        a1 = h1.ancestry(k)
        moved = np.flatnonzero(a0 != a1)
        if moved.size == 0:
            continue
        old_c = a0[moved]
        new_c = a1[moved]
        pure = (
            (origin[moved] == 1)
            & _isin_sorted(v0(k), old_c)
            & _isin_sorted(v1(k), old_c)
            & _isin_sorted(v0(k), new_c)
            & _isin_sorted(v1(k), new_c)
        )
        nodes = base_ids[moved]
        for i in range(moved.size):
            diff.migrations.append(
                MigrationEvent(
                    node=int(nodes[i]),
                    level=k,
                    old_cluster=int(old_c[i]),
                    new_cluster=int(new_c[i]),
                    pure=bool(pure[i]),
                    origin_level=int(origin[moved[i]]),
                )
            )

    # --- cluster link events (i)/(ii) -----------------------------------------
    for k in range(1, max_l + 1):
        e0 = h0.levels[k].edges if k <= h0.num_levels else _EMPTY_EDGES
        e1 = h1.levels[k].edges if k <= h1.num_levels else _EMPTY_EDGES
        up_edges, down_edges = _edge_diffs(e0, e1)
        for edges, upper, kind in (
            (up_edges, v1(k + 1), EventKind.LINK_UP),
            (down_edges, v0(k + 1), EventKind.LINK_DOWN),
        ):
            if edges.shape[0] == 0:
                continue
            u_in = _isin_sorted(upper, edges[:, 0])
            v_in = _isin_sorted(upper, edges[:, 1])
            for i in np.flatnonzero(u_in | v_in).tolist():
                u, v = int(edges[i, 0]), int(edges[i, 1])
                subject, other = (v, u) if v_in[i] else (u, v)
                diff.reorgs.append(
                    ReorgEvent(kind=kind, level=k, subject=subject, other=other)
                )

    # --- elections / rejections (iii)-(vi) --------------------------------------
    for k in range(1, max_l + 1):
        elected = np.setdiff1d(v1(k), v0(k), assume_unique=True)
        rejected = np.setdiff1d(v0(k), v1(k), assume_unique=True)
        _election_events(
            diff, EventKind.ELECT_MIGRATION, EventKind.ELECT_RECURSIVE,
            h1, k, elected, below_other=v0(k - 1), below_same=v1(k - 1),
        )
        _election_events(
            diff, EventKind.REJECT_MIGRATION, EventKind.REJECT_RECURSIVE,
            h0, k, rejected, below_other=v1(k - 1), below_same=v0(k - 1),
        )

    # --- neighbor elected to level k+1 (vii) --------------------------------------
    for k in range(1, max_l + 1):
        newly_up = np.setdiff1d(v1(k + 1), v0(k + 1), assume_unique=True)
        if newly_up.size == 0 or k > h1.num_levels:
            continue
        e1 = h1.levels[k].edges
        if e1.size == 0:
            continue
        u_new = _isin_sorted(newly_up, e1[:, 0])
        v_new = _isin_sorted(newly_up, e1[:, 1])
        for i in np.flatnonzero(u_new ^ v_new).tolist():
            u, v = int(e1[i, 0]), int(e1[i, 1])
            if u_new[i]:
                diff.reorgs.append(
                    ReorgEvent(kind=EventKind.NEIGHBOR_ELECTED, level=k,
                               subject=v, other=u)
                )
            else:
                diff.reorgs.append(
                    ReorgEvent(kind=EventKind.NEIGHBOR_ELECTED, level=k,
                               subject=u, other=v)
                )

    return diff
