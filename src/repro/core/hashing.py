"""CHLM hash functions (Section 3.2).

The paper requires an LM hash with two properties: *unambiguous* server
selection (every node computing the hash over the same candidate set gets
the same answer) and *equitable* load distribution.  It explicitly warns
that the GLS rule of Eq. (5) — circular ID successor — fails equity when
the candidate set is small (cluster IDs at a given level): candidates
following a large ID gap absorb a disproportionate share of subjects.
"The specific implementation is not crucial" as long as both goals hold,
so this reproduction uses a rendezvous (highest-random-weight) hash built
on a SplitMix64 mixer: deterministic, uniform, and O(#candidates) per
selection.  EXP-T7 measures both hashes' load skew.
"""

from __future__ import annotations

import numpy as np

from repro.gls.servers import select_server

__all__ = ["mix64", "rendezvous_choice", "naive_circular_choice", "HASH_REGISTRY"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SALT_CAND = np.uint64(0xC2B2AE3D27D4EB4F)


def mix64(x) -> np.ndarray:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.

    Accepts scalars or arrays; computes in uint64 with wraparound.
    """
    v = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        v = (v ^ (v >> np.uint64(30))) * _MIX1
        v = (v ^ (v >> np.uint64(27))) * _MIX2
        v = v ^ (v >> np.uint64(31))
    return v


def rendezvous_choice(subject: int, salt: int, candidates) -> int | None:
    """Highest-random-weight choice among ``candidates``.

    Every participant evaluating the same ``(subject, salt, candidates)``
    picks the same winner (unambiguous), and for uniform mixing each
    candidate wins with probability ~1/len(candidates) (equitable).
    ``salt`` varies per hierarchy level / descent stage so a subject's
    choices at different stages are independent.
    """
    cand = np.asarray(list(candidates), dtype=np.int64)
    if cand.size == 0:
        return None
    with np.errstate(over="ignore"):
        key = (
            np.uint64(np.uint64(subject) * _GOLDEN)
            ^ mix64(np.uint64(salt))
            ^ (cand.astype(np.uint64) * _SALT_CAND)
        )
    weights = mix64(key)
    best = int(np.argmax(weights))
    # Deterministic tie-break on ID (ties are ~impossible with 64 bits,
    # but the selection must be a total order).
    ties = np.flatnonzero(weights == weights[best])
    if ties.size > 1:
        best = int(ties[np.argmax(cand[ties])])
    return int(cand[best])


def naive_circular_choice(subject: int, salt: int, candidates, modulus: int = 1 << 20) -> int | None:
    """The Eq. (5) rule applied verbatim to a candidate set.

    Kept as the *negative control* for EXP-T7: on small, gappy candidate
    sets (cluster IDs) this skews server load badly, which is exactly why
    the paper says CHLM needs "a slightly more complex hashing function".
    ``salt`` is ignored — Eq. (5) has no per-stage salt, which is part of
    the problem.

    When the only candidate is the subject itself (a singleton cluster),
    the node serves its own entry.
    """
    del salt
    chosen = select_server(subject, candidates, modulus)
    if chosen is not None:
        return chosen
    cand = list(candidates)
    return int(cand[0]) if cand else None


HASH_REGISTRY = {
    "rendezvous": rendezvous_choice,
    "naive": naive_circular_choice,
}
