"""Vectorized CHLM location-query resolution.

:func:`repro.core.query.resolve` climbs one query at a time through
per-level hashed descents — fine for a few hundred queries per step,
hopeless for the service front-end's "millions of requests" regime
(ROADMAP).  The per-query work is pure table lookups: the descent is the
same grouped rendezvous stage :func:`repro.core.servers.full_assignment`
already vectorizes, the hit test is an equality against the assignment
table, and the round-trip charge is a hop count.  This module batches
all of it:

* :class:`BatchResolver` precomputes per-level server tables (dense
  int64 arrays indexed by base-node position, ``-1`` = no entry) from a
  :class:`~repro.core.servers.ServerAssignment` once, then resolves
  whole int64 ``src``/``dst`` arrays with grouped-stage descents and
  batched hop lookups.
* :meth:`BatchResolver.resolve` is the lossless path: bit-identical to
  the scalar oracle (same packets, hit levels, servers, probe counts),
  with early exit per level as queries hit.
* :meth:`BatchResolver.plans` precomputes *probe plans* — per-level
  candidate/round-trip/hit-eligibility tables — so lossy runs keep their
  per-request :class:`~repro.faults.DeliveryEngine` draws (identical RNG
  consumption order) while all hashing and hop counting happens in
  batch.

The scalar ``resolve`` stays the reference oracle under the repo's
bit-identical-equivalence pattern (tests/core/test_batch_query.py fuzzes
the two against each other, including stale/patched assignments and
missing-server entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.query import QueryResult
from repro.core.servers import (
    ServerAssignment,
    _stage_salt,
    _vectorized_rendezvous_stage,
    lm_levels,
)
from repro.hierarchy.delta import LazyClusters
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = [
    "BatchQueryResult",
    "BatchProbePlans",
    "BatchUpdatePlans",
    "BatchResolver",
    "resolve_batch",
]


def batch_hops(hop_fn, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Hop counts for aligned ID arrays, via the provider's vectorized
    ``batch`` method when it has one (BfsHops/EuclideanHops do), else a
    scalar fallback loop.  Returns raw counts (may be -1 = unreachable;
    callers clamp exactly like the scalar path)."""
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if us.size == 0:
        return np.empty(0, dtype=np.int64)
    batch = getattr(hop_fn, "batch", None)
    if batch is not None:
        return np.asarray(batch(us, vs), dtype=np.int64)
    return np.fromiter(
        (hop_fn(int(u), int(v)) for u, v in zip(us, vs)),
        dtype=np.int64,
        count=us.size,
    )


@dataclass(frozen=True)
class BatchQueryResult:
    """Array-of-structs outcome of one resolved batch.

    ``hit_level[i]`` follows the scalar convention (0 trivial, 1 shared
    level-1 cluster, k >= 2 the probed hit level, -1 failure); ``server``
    uses -1 where the scalar result has ``None``.
    """

    requesters: np.ndarray
    targets: np.ndarray
    hit_level: np.ndarray
    server: np.ndarray
    packets: np.ndarray
    probes: np.ndarray
    _h: ClusteredHierarchy = field(repr=False)

    def __len__(self) -> int:
        return int(self.hit_level.size)

    @property
    def hits(self) -> np.ndarray:
        """Boolean mask of queries that resolved (hit_level >= 0)."""
        return self.hit_level >= 0

    def result(self, i: int) -> QueryResult:
        """The scalar :class:`QueryResult` view of query ``i``."""
        level = int(self.hit_level[i])
        srv = int(self.server[i])
        d = int(self.targets[i])
        return QueryResult(
            requester=int(self.requesters[i]),
            target=d,
            hit_level=level,
            server=srv if srv >= 0 else None,
            address=self._h.address(d) if level >= 0 else None,
            packets=int(self.packets[i]),
            probes=int(self.probes[i]),
        )

    def results(self) -> list[QueryResult]:
        """All queries as scalar :class:`QueryResult` views, in order."""
        return [self.result(i) for i in range(len(self))]


@dataclass(frozen=True)
class BatchProbePlans:
    """Precomputed probe tables for lossy per-request replay.

    Row ``i`` holds query i's full climb: for each LM level (column j,
    level ``levels[j]``) the hashed candidate server, the lossless
    round-trip charge, whether the scalar path would probe at all
    (``probed``; False only for hash functions that can abstain), and
    whether a *delivered* probe terminates there (``hit_ok``: the two
    nodes share the level and the candidate is the actual assignment
    entry).  :meth:`walk` replays one request through a delivery engine
    with exactly the scalar ``resolve``'s send sequence.
    """

    requesters: np.ndarray
    targets: np.ndarray
    levels: np.ndarray
    candidate: np.ndarray
    round_trip: np.ndarray
    probed: np.ndarray
    hit_ok: np.ndarray
    trivial: np.ndarray
    level1: np.ndarray

    def __len__(self) -> int:
        return int(self.trivial.size)

    def walk(self, i: int, delivery) -> tuple[int, int, int, int]:
        """Replay query ``i`` through ``delivery`` (None = lossless).

        Returns ``(packets, hit_level, server, probes)`` with server -1
        for None — the exact fields of the scalar result, minus the
        address (callers that need it use the hierarchy)."""
        if self.trivial[i]:
            return 0, 0, -1, 0
        if self.level1[i]:
            return 0, 1, -1, 0
        packets = 0
        probes = 0
        for j in range(self.levels.size):
            if not self.probed[i, j]:
                continue
            probes += 1
            rt = int(self.round_trip[i, j])
            if delivery is None:
                packets += rt
            else:
                out = delivery.send(rt, level=int(self.levels[j]))
                packets += out.packets
                if not out.delivered:
                    continue
            if self.hit_ok[i, j]:
                return packets, int(self.levels[j]), int(self.candidate[i, j]), probes
        return packets, -1, -1, probes


@dataclass(frozen=True)
class BatchUpdatePlans:
    """Per-level re-registration plans for a batch of update targets.

    Column j is LM level ``levels[j]``; ``present`` marks targets that
    actually have a level-j server entry (stale assignments can lack
    some), ``hops`` the already-clamped message cost to it."""

    targets: np.ndarray
    levels: np.ndarray
    hops: np.ndarray
    present: np.ndarray

    def __len__(self) -> int:
        return int(self.targets.size)

    def costs(self) -> np.ndarray:
        """Lossless packet totals per target (sum of per-level sends)."""
        return np.where(self.present, self.hops, 0).sum(axis=1)

    def walk(self, i: int, delivery) -> int:
        """Replay target ``i``'s updates through a delivery engine,
        preserving the scalar send order (levels ascending)."""
        packets = 0
        for j in range(self.levels.size):
            if not self.present[i, j]:
                continue
            packets += delivery.send(
                int(self.hops[i, j]), level=int(self.levels[j])
            ).packets
        return packets


class BatchResolver:
    """Vectorized CHLM resolution against one (hierarchy, assignment)
    snapshot.

    Construction cost is one pass over the assignment dict (the dense
    per-level server tables) plus lazy per-level cluster groupings;
    every subsequent :meth:`resolve`/:meth:`plans` call is array ops
    only.  Non-rendezvous hash functions fall back to the scalar oracle
    per query (same results, no speedup)."""

    def __init__(
        self,
        h: ClusteredHierarchy,
        assignment: ServerAssignment,
        hop_fn,
        hash_fn="rendezvous",
    ):
        self._h = h
        self._assignment = assignment
        self._hop_fn = hop_fn
        self._hash_fn = hash_fn
        self._vectorized = hash_fn == "rendezvous"
        self._top = lm_levels(h)
        self._base = h.levels[0].node_ids
        self._lazy = {
            depth: LazyClusters(h.levels[depth - 1].election)
            for depth in range(1, h.num_levels + 1)
        }
        self._global_partition = {0: h.levels[-1].node_ids}
        self._tables = self._server_tables()

    # -- precomputation ---------------------------------------------------------

    def _server_tables(self) -> dict[int, np.ndarray]:
        """Dense per-level server tables: ``tables[level][base_pos]`` is
        the level-``level`` server of the base node at ``base_pos``, or
        -1 when the (stale) assignment has no such entry."""
        tables = {
            level: np.full(self._base.size, -1, dtype=np.int64)
            for level in range(2, self._top + 1)
        }
        servers = self._assignment.servers
        if not servers:
            return tables
        count = len(servers)
        subj = np.fromiter((k[0] for k in servers), dtype=np.int64, count=count)
        lvl = np.fromiter((k[1] for k in servers), dtype=np.int64, count=count)
        srv = np.fromiter(servers.values(), dtype=np.int64, count=count)
        pos = np.searchsorted(self._base, subj)
        known = (pos < self._base.size) & (
            self._base[np.minimum(pos, self._base.size - 1)] == subj
        )
        for level, table in tables.items():
            m = known & (lvl == level)
            table[pos[m]] = srv[m]
        return tables

    def hops(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Raw batched hop counts (see :func:`batch_hops`)."""
        return batch_hops(self._hop_fn, us, vs)

    def _descend(self, dsub: np.ndarray, idx_s_sub: np.ndarray, level: int) -> np.ndarray:
        """Candidate servers for a sub-batch at one LM level: d hashed
        down s's cluster tree (the scalar ``_probe_server``), grouped."""
        h = self._h
        if level == h.num_levels + 1:
            current = _vectorized_rendezvous_stage(
                dsub,
                np.zeros(dsub.size, dtype=np.int64),
                self._global_partition,
                _stage_salt(level, level),
            )
            start_depth = h.num_levels
        else:
            current = h.ancestry(level)[idx_s_sub]
            start_depth = level
        for depth in range(start_depth, 0, -1):
            current = _vectorized_rendezvous_stage(
                dsub, current, self._lazy[depth], _stage_salt(level, depth)
            )
        return current

    # -- lossless resolution ----------------------------------------------------

    def resolve(self, src, dst) -> BatchQueryResult:
        """Resolve the whole batch losslessly; bit-identical to calling
        the scalar oracle per pair with ``delivery=None``."""
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src/dst must be aligned 1-D arrays")
        if not self._vectorized:
            return self._resolve_scalar(src, dst)
        h = self._h
        q = src.size
        hit_level = np.full(q, -1, dtype=np.int64)
        server = np.full(q, -1, dtype=np.int64)
        packets = np.zeros(q, dtype=np.int64)
        probes = np.zeros(q, dtype=np.int64)
        idx_s = h._base_index(src) if q else np.empty(0, dtype=np.int64)
        idx_d = h._base_index(dst) if q else np.empty(0, dtype=np.int64)
        trivial = src == dst
        hit_level[trivial] = 0
        active = ~trivial
        if h.num_levels >= 1:
            anc1 = h.ancestry(1)
            level1 = active & (anc1[idx_s] == anc1[idx_d])
            hit_level[level1] = 1
            active &= ~level1
        for level in range(2, self._top + 1):
            sub = np.flatnonzero(active)
            if sub.size == 0:
                break
            dsub = dst[sub]
            candidate = self._descend(dsub, idx_s[sub], level)
            rt = 2 * np.maximum(self.hops(src[sub], candidate), 0)
            packets[sub] += rt
            probes[sub] += 1
            if level == h.num_levels + 1:
                shared = np.ones(sub.size, dtype=bool)
            else:
                anc = h.ancestry(level)
                shared = anc[idx_s[sub]] == anc[idx_d[sub]]
            actual = self._tables[level][idx_d[sub]]
            hit = shared & (actual == candidate)
            won = sub[hit]
            hit_level[won] = level
            server[won] = candidate[hit]
            active[won] = False
        return BatchQueryResult(
            requesters=src, targets=dst, hit_level=hit_level,
            server=server, packets=packets, probes=probes, _h=h,
        )

    def _resolve_scalar(self, src: np.ndarray, dst: np.ndarray) -> BatchQueryResult:
        from repro.core.query import resolve

        q = src.size
        hit_level = np.full(q, -1, dtype=np.int64)
        server = np.full(q, -1, dtype=np.int64)
        packets = np.zeros(q, dtype=np.int64)
        probes = np.zeros(q, dtype=np.int64)
        for i in range(q):
            qr = resolve(
                self._h, self._assignment, int(src[i]), int(dst[i]),
                self._hop_fn, hash_fn=self._hash_fn,
            )
            hit_level[i] = qr.hit_level
            server[i] = -1 if qr.server is None else qr.server
            packets[i] = qr.packets
            probes[i] = qr.probes
        return BatchQueryResult(
            requesters=src, targets=dst, hit_level=hit_level,
            server=server, packets=packets, probes=probes, _h=self._h,
        )

    # -- lossy probe plans ------------------------------------------------------

    def plans(self, src, dst) -> BatchProbePlans:
        """Precompute every query's full climb (no early exit — a lost
        probe climbs past its would-be hit level, so lossy replay needs
        all levels)."""
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src/dst must be aligned 1-D arrays")
        h = self._h
        q = src.size
        levels = np.arange(2, self._top + 1, dtype=np.int64)
        nlev = levels.size
        candidate = np.full((q, nlev), -1, dtype=np.int64)
        round_trip = np.zeros((q, nlev), dtype=np.int64)
        probed = np.zeros((q, nlev), dtype=bool)
        hit_ok = np.zeros((q, nlev), dtype=bool)
        trivial = src == dst
        idx_s = h._base_index(src) if q else np.empty(0, dtype=np.int64)
        idx_d = h._base_index(dst) if q else np.empty(0, dtype=np.int64)
        level1 = np.zeros(q, dtype=bool)
        if h.num_levels >= 1:
            anc1 = h.ancestry(1)
            level1 = ~trivial & (anc1[idx_s] == anc1[idx_d])
        climbing = ~trivial & ~level1
        sub = np.flatnonzero(climbing)
        if sub.size:
            if self._vectorized:
                dsub = dst[sub]
                for j, level in enumerate(levels.tolist()):
                    cand = self._descend(dsub, idx_s[sub], level)
                    rt = 2 * np.maximum(self.hops(src[sub], cand), 0)
                    candidate[sub, j] = cand
                    round_trip[sub, j] = rt
                    probed[sub, j] = True
                    if level == h.num_levels + 1:
                        shared = np.ones(sub.size, dtype=bool)
                    else:
                        anc = h.ancestry(level)
                        shared = anc[idx_s[sub]] == anc[idx_d[sub]]
                    actual = self._tables[level][idx_d[sub]]
                    hit_ok[sub, j] = shared & (actual == cand)
            else:
                self._plans_scalar(
                    src, dst, sub, levels, candidate, round_trip, probed, hit_ok
                )
        return BatchProbePlans(
            requesters=src, targets=dst, levels=levels, candidate=candidate,
            round_trip=round_trip, probed=probed, hit_ok=hit_ok,
            trivial=trivial, level1=level1,
        )

    def _plans_scalar(
        self, src, dst, sub, levels, candidate, round_trip, probed, hit_ok
    ) -> None:
        from repro.core.query import _probe_server

        h = self._h
        for i in sub.tolist():
            s, d = int(src[i]), int(dst[i])
            for j, level in enumerate(levels.tolist()):
                cand = _probe_server(h, s, d, level, self._hash_fn)
                if cand is None:
                    continue
                probed[i, j] = True
                candidate[i, j] = cand
                round_trip[i, j] = 2 * max(self._hop_fn(s, cand), 0)
                is_global = level == h.num_levels + 1
                if is_global or h.cluster_of(s, level) == h.cluster_of(d, level):
                    hit_ok[i, j] = (
                        self._assignment.servers.get((d, level)) == cand
                    )

    # -- update (re-registration) plans -----------------------------------------

    def update_plans(self, targets) -> BatchUpdatePlans:
        """Per-level re-registration costs for a batch of subjects: one
        message from each target to each of its current servers."""
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        levels = np.arange(2, self._top + 1, dtype=np.int64)
        q = targets.size
        hops = np.zeros((q, levels.size), dtype=np.int64)
        present = np.zeros((q, levels.size), dtype=bool)
        idx = self._h._base_index(targets) if q else np.empty(0, dtype=np.int64)
        for j, level in enumerate(levels.tolist()):
            srv = self._tables[level][idx]
            m = srv >= 0
            present[:, j] = m
            if m.any():
                hops[m, j] = np.maximum(self.hops(targets[m], srv[m]), 0)
        return BatchUpdatePlans(
            targets=targets, levels=levels, hops=hops, present=present
        )


def resolve_batch(
    h: ClusteredHierarchy,
    assignment: ServerAssignment,
    src,
    dst,
    hop_fn,
    hash_fn="rendezvous",
) -> BatchQueryResult:
    """One-shot batched resolution (see :class:`BatchResolver`); use the
    resolver directly to amortize table construction across calls."""
    return BatchResolver(h, assignment, hop_fn, hash_fn).resolve(src, dst)
