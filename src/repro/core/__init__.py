"""CHLM — Clustered Hierarchy Location Management (the paper's core).

Server selection by hashed descent (Section 3.2), the distributed LM
database, location queries, and the handoff engine measuring the
Theta(log^2 |V|) overhead bound of Sections 4-5.
"""

from repro.core.accounting import OverheadLedger
from repro.core.batch_query import (
    BatchProbePlans,
    BatchQueryResult,
    BatchResolver,
    BatchUpdatePlans,
    resolve_batch,
)
from repro.core.database import LMDatabase, LocationRecord
from repro.core.events import (
    EventKind,
    HierarchyDiff,
    MigrationEvent,
    ReorgEvent,
    diff_hierarchies,
)
from repro.core.handoff import HandoffEngine, HandoffReport
from repro.core.hashing import (
    HASH_REGISTRY,
    mix64,
    naive_circular_choice,
    rendezvous_choice,
)
from repro.core.query import QueryResult, resolve
from repro.core.servers import (
    ChainedAssignment,
    ServerAssignment,
    assignment_with_chains,
    full_assignment,
    lm_levels,
    patch_assignment,
    select_server,
)

__all__ = [
    "OverheadLedger",
    "BatchProbePlans",
    "BatchQueryResult",
    "BatchResolver",
    "BatchUpdatePlans",
    "resolve_batch",
    "LMDatabase",
    "LocationRecord",
    "EventKind",
    "HierarchyDiff",
    "MigrationEvent",
    "ReorgEvent",
    "diff_hierarchies",
    "HandoffEngine",
    "HandoffReport",
    "HASH_REGISTRY",
    "mix64",
    "naive_circular_choice",
    "rendezvous_choice",
    "QueryResult",
    "resolve",
    "ChainedAssignment",
    "ServerAssignment",
    "assignment_with_chains",
    "full_assignment",
    "patch_assignment",
    "lm_levels",
    "select_server",
]
