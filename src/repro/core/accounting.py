"""Overhead ledger: accumulates handoff reports into the paper's
normalized quantities phi_k, gamma_k, phi, gamma (packets per node per
second).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import EventKind
from repro.core.handoff import HandoffReport

__all__ = ["OverheadLedger"]


def _acc(target: dict, source: dict) -> None:
    for k, v in source.items():
        target[k] = target.get(k, 0) + v


@dataclass
class OverheadLedger:
    """Running totals over a simulation run.

    Parameters
    ----------
    n_nodes:
        Population size |V| (for per-node normalization).
    """

    n_nodes: int
    elapsed: float = 0.0
    steps: int = 0
    migration_packets: dict[int, int] = field(default_factory=dict)
    migration_entries: dict[int, int] = field(default_factory=dict)
    reorg_packets: dict[int, int] = field(default_factory=dict)
    reorg_entries: dict[int, int] = field(default_factory=dict)
    registration_packets: dict[int, int] = field(default_factory=dict)
    registration_events: int = 0
    migration_events: dict[int, int] = field(default_factory=dict)
    reorg_event_counts: dict[tuple[EventKind, int], int] = field(default_factory=dict)
    retransmitted_packets: int = 0
    abandoned_entries: int = 0
    abandoned_registrations: int = 0
    recovered_entries: int = 0
    recovery_time_total: float = 0.0
    stale_series: list[int] = field(default_factory=list)
    """Outstanding stale entries after each metered step (all zeros when
    the run had no fault injection)."""

    def __post_init__(self):
        if self.n_nodes <= 0:
            raise ValueError("node count must be positive")

    def record(self, report: HandoffReport, dt: float) -> None:
        """Fold one step's report into the totals."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.elapsed += dt
        self.steps += 1
        _acc(self.migration_packets, report.migration_packets)
        _acc(self.migration_entries, report.migration_entries)
        _acc(self.reorg_packets, report.reorg_packets)
        _acc(self.reorg_entries, report.reorg_entries)
        _acc(self.registration_packets, report.registration_packets)
        self.registration_events += report.registration_events
        _acc(self.migration_events, report.migration_events)
        _acc(self.reorg_event_counts, report.reorg_event_counts)
        self.retransmitted_packets += report.retransmitted_packets
        self.abandoned_entries += report.abandoned_entries
        self.abandoned_registrations += report.abandoned_registrations
        self.recovered_entries += report.recovered_entries
        self.recovery_time_total += report.recovery_time_total
        self.stale_series.append(report.stale_entries)

    # -- normalized quantities -------------------------------------------------

    def _rate(self, total: float) -> float:
        if self.elapsed <= 0:
            return 0.0
        return total / (self.n_nodes * self.elapsed)

    def phi_k(self) -> dict[int, float]:
        """Per-level migration handoff packets per node per second."""
        return {k: self._rate(v) for k, v in sorted(self.migration_packets.items())}

    def gamma_k(self) -> dict[int, float]:
        """Per-level reorganization handoff packets per node per second."""
        return {k: self._rate(v) for k, v in sorted(self.reorg_packets.items())}

    @property
    def phi(self) -> float:
        """Total migration handoff rate — Eq. (6c)."""
        return self._rate(sum(self.migration_packets.values()))

    @property
    def gamma(self) -> float:
        """Total reorganization handoff rate — Eq. (11)."""
        return self._rate(sum(self.reorg_packets.values()))

    @property
    def handoff_rate(self) -> float:
        """phi + gamma: the paper's headline Theta(log^2 |V|) quantity."""
        return self.phi + self.gamma

    @property
    def registration_rate(self) -> float:
        """Registration packets per node per second (the Theta(log|V|)
        component of [17], metered for EXP-T10)."""
        return self._rate(sum(self.registration_packets.values()))

    # -- fault/degradation quantities (EXP-A10) --------------------------------

    @property
    def retransmission_rate(self) -> float:
        """Retransmitted control packets per node per second — the
        channel's inflation of the lossless charge."""
        return self._rate(self.retransmitted_packets)

    @property
    def abandonment_rate(self) -> float:
        """Abandoned LM entry transfers per node per second (each one
        leaves a stale location server until recovery)."""
        return self._rate(self.abandoned_entries)

    @property
    def mean_recovery_time(self) -> float:
        """Mean seconds from a transfer's abandonment to the step its
        retry finally landed (0 when nothing recovered)."""
        if self.recovered_entries == 0:
            return 0.0
        return self.recovery_time_total / self.recovered_entries

    @property
    def mean_stale_entries(self) -> float:
        """Mean outstanding stale entries per metered step."""
        if not self.stale_series:
            return 0.0
        return float(sum(self.stale_series)) / len(self.stale_series)

    def f_k(self) -> dict[int, float]:
        """Measured level-k migration event frequency per node per second
        (Eq. 8's f_k)."""
        return {k: self._rate(v) for k, v in sorted(self.migration_events.items())}

    def reorg_event_rates(self) -> dict[tuple[EventKind, int], float]:
        """Per (kind, level) reorganization event rates."""
        return {
            key: self._rate(v) for key, v in sorted(
                self.reorg_event_counts.items(), key=lambda kv: (kv[0][1], kv[0][0].value)
            )
        }

    def reorg_event_breakdown(self) -> dict[str, dict[str, float]]:
        """Per-kind (i)-(vii) totals summed over levels.

        Answers Section 5's taxonomy question directly — *which* event
        type dominates gamma.  Keys are the roman-numeral
        :class:`EventKind` values (JSON-safe for manifests and sweep
        reports); each entry carries the raw count and the per-node
        per-second rate.
        """
        counts: dict[str, int] = {}
        for (kind, _level), v in self.reorg_event_counts.items():
            counts[kind.value] = counts.get(kind.value, 0) + int(v)
        order = [k.value for k in EventKind if k is not EventKind.MIGRATION]
        return {
            key: {"count": counts[key], "rate": self._rate(counts[key])}
            for key in order if key in counts
        }
