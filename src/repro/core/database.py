"""Distributed LM database view.

Materializes, from a hierarchy and its server assignment, the per-server
tables the CHLM protocol maintains: each level-k server of a subject
stores the subject's hierarchical address (the routable name strict
hierarchical routing needs).  The view exists for queries, invariants
("each node serves Theta(log|V|) entries"), and the examples; the
handoff engine itself diffs assignments directly for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.servers import ServerAssignment
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["LocationRecord", "LMDatabase"]


@dataclass(frozen=True)
class LocationRecord:
    """One stored entry: the subject's hierarchical address at a level."""

    subject: int
    level: int
    address: tuple[int, ...]


class LMDatabase:
    """Materialized per-server LM tables."""

    def __init__(self, h: ClusteredHierarchy, assignment: ServerAssignment):
        self.hierarchy = h
        self.assignment = assignment
        self._tables: dict[int, dict[tuple[int, int], LocationRecord]] = {}
        for (subject, level), server in assignment.servers.items():
            rec = LocationRecord(
                subject=subject, level=level, address=h.address(subject)
            )
            self._tables.setdefault(server, {})[(subject, level)] = rec

    def table_of(self, server: int) -> dict[tuple[int, int], LocationRecord]:
        """Entries stored at ``server`` (empty dict if none)."""
        return self._tables.get(server, {})

    def lookup(self, server: int, subject: int) -> LocationRecord | None:
        """Highest-level record for ``subject`` held at ``server``."""
        best = None
        for (subj, level), rec in self._tables.get(server, {}).items():
            if subj == subject and (best is None or level > best.level):
                best = rec
        return best

    def entries_per_node(self) -> np.ndarray:
        """Table size for every physical node (zeros included)."""
        ids = self.hierarchy.levels[0].node_ids
        return np.array([len(self._tables.get(int(v), {})) for v in ids])

    @property
    def total_entries(self) -> int:
        return sum(len(t) for t in self._tables.values())
