"""CHLM location queries.

A requester ``s`` resolving target ``d`` climbs its own cluster
hierarchy: at each level k = 2, 3, ..., it computes — purely from the
hash and the internal hierarchy of *its own* level-k cluster — the node
that *would be* d's level-k server if d shared that cluster, and asks
it.  The probe hits at the lowest level m where s and d actually share a
cluster (the true server stores d's address); lower probes miss.

The returned cost is the sum of probe round-trips up to the hit; the
paper argues this is of the order of the s-d hop count and is absorbed
into the communication session it precedes (Section 6).

Lossy control plane (EXP-A10): pass ``delivery`` and each probe's round
trip is routed through the channel — an abandoned probe gets no reply
and the requester climbs to the next level.  Run against the handoff
engine's *effective* assignment, probes that land on a server whose
entry transfer was abandoned miss naturally (the hash's candidate is
not the actual holder), so stale state degrades queries without any
extra modeling.  Callers meter the expanding-ring fallback for queries
that fail outright (see :func:`repro.faults.expanding_ring_cost`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.servers import ServerAssignment, select_server
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["QueryResult", "resolve"]

HopFn = Callable[[int, int], int]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one location query."""

    requester: int
    target: int
    hit_level: int
    """Lowest shared cluster level where the query resolved (0 when
    requester == target, -1 on failure)."""
    server: int | None
    """The server that answered (None on failure or trivial query)."""
    address: tuple[int, ...] | None
    """The resolved hierarchical address of the target."""
    packets: int
    """Total probe packets spent (round trips to each probed server)."""
    probes: int
    """Number of servers contacted."""


def resolve(
    h: ClusteredHierarchy,
    assignment: ServerAssignment,
    s: int,
    d: int,
    hop_fn: HopFn,
    hash_fn="rendezvous",
    delivery=None,
) -> QueryResult:
    """Resolve ``d``'s hierarchical address on behalf of ``s``.

    ``assignment`` must be the current CHLM assignment for ``h`` (used
    to verify hits — the probed candidate is the real server exactly
    when the two nodes share the level-k cluster).  With ``delivery``
    set, probe round trips traverse the lossy channel: lost probes
    charge the packets actually transmitted and yield no answer.
    """
    if s == d:
        return QueryResult(
            requester=s, target=d, hit_level=0, server=None,
            address=h.address(d), packets=0, probes=0,
        )
    packets = 0
    probes = 0
    # Level 1: complete topology knowledge within the level-1 cluster —
    # no LM messaging needed (Section 3.2).
    if h.num_levels >= 1 and h.cluster_of(s, 1) == h.cluster_of(d, 1):
        return QueryResult(
            requester=s, target=d, hit_level=1, server=None,
            address=h.address(d), packets=0, probes=0,
        )
    from repro.core.servers import lm_levels

    for level in range(2, lm_levels(h) + 1):
        # Who would be d's level-k server inside *s's* level-k cluster?
        # select_server descends from cluster_of(subject, level); compute
        # it with s's cluster substituted by hashing d against s's
        # cluster tree.  At the virtual global level every node shares
        # the implicit whole-network cluster, so the probe is the true
        # server and the query always terminates there.
        candidate = _probe_server(h, s, d, level, hash_fn)
        if candidate is None:
            continue
        round_trip = 2 * max(hop_fn(s, candidate), 0)
        probes += 1
        if delivery is not None:
            out = delivery.send(round_trip, level=level)
            packets += out.packets
            if not out.delivered:
                continue  # probe (or its reply) lost: climb to next level
        else:
            packets += round_trip
        is_global = level == h.num_levels + 1
        if is_global or h.cluster_of(s, level) == h.cluster_of(d, level):
            # The probe landed on d's actual level-k server.
            actual = assignment.servers.get((d, level))
            if actual == candidate:
                return QueryResult(
                    requester=s, target=d, hit_level=level, server=candidate,
                    address=h.address(d), packets=packets, probes=probes,
                )
    return QueryResult(
        requester=s, target=d, hit_level=-1, server=None,
        address=None, packets=packets, probes=probes,
    )


def _probe_server(h, s, d, level, hash_fn):
    """d's would-be level-``level`` server within s's level cluster."""
    from repro.core.servers import _resolve_hash, _stage_salt, select_server

    if level == h.num_levels + 1:
        # Global level: s's "cluster" is the whole network, so the probe
        # coincides with d's actual global server.
        return select_server(h, d, level, hash_fn)
    hfn = _resolve_hash(hash_fn)
    current = h.cluster_of(s, level)
    for depth in range(level, 0, -1):
        members = h.clusters(depth)[current]
        choice = hfn(d, _stage_salt(level, depth), members)
        if choice is None:
            return None
        current = int(choice)
    return current
