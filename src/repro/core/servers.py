"""CHLM location-server selection (Section 3.2).

For each node v and each level k >= 2, CHLM places one LM server inside
v's level-k cluster by hashed *descent*, exactly as the paper walks
through for node 63 of Fig. 1:

1. Among the level-(k-1) clusters composing v's level-k cluster, a hash
   of (v, stage) picks one (e.g. cluster 59 for 63's level-2 server).
2. Within that cluster, another hash picks a level-(k-2) member, and so
   on down to a level-0 node (node 33 in the example), which becomes
   v's level-k location server.

Level 1 needs no server: complete topology is known inside a level-1
cluster ("no LM messaging is required for level-1 server maintenance").

The descent is a pure function of (subject, hierarchy), so any node that
knows the relevant cluster's internal hierarchy can recompute the server
— this is what makes queries routable (feature (a) of GLS carried over).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.hashing import HASH_REGISTRY
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["ServerAssignment", "select_server", "full_assignment"]

HashFn = Callable[[int, int, "np.ndarray"], int | None]


def _resolve_hash(hash_fn) -> HashFn:
    if callable(hash_fn):
        return hash_fn
    try:
        return HASH_REGISTRY[hash_fn]
    except KeyError:
        known = ", ".join(sorted(HASH_REGISTRY))
        raise ValueError(f"unknown hash {hash_fn!r}; known: {known}") from None


def lm_levels(h: ClusteredHierarchy) -> int:
    """Highest LM server level: the hierarchy's L levels plus one
    *virtual global level*.

    The paper's example hierarchy tops out in a single cluster covering
    the whole network ("the level-3 cluster with ID 100 (top level
    cluster)").  When the recursion is capped at L = Theta(log n) levels
    the top level holds several nodes, so CHLM treats the entire
    top-level node set as one implicit cluster at level L + 1 — exactly
    like GLS's whole-area square.  Every pair of connected nodes then
    shares at least the global level, which is what makes queries total.
    """
    return h.num_levels + 1


def select_server(
    h: ClusteredHierarchy,
    subject: int,
    level: int,
    hash_fn="rendezvous",
) -> int | None:
    """Level-``level`` LM server of ``subject`` under hierarchy ``h``.

    ``level`` ranges over 2..``lm_levels(h)``; the topmost value is the
    virtual global level (see :func:`lm_levels`).  Returns the chosen
    level-0 node ID, or None when the level does not exist for this
    hierarchy.

    The stage salt mixes the target level and descent depth so the same
    subject hashes independently at each stage.
    """
    if level < 2:
        raise ValueError("CHLM places servers for levels >= 2 only")
    if level > lm_levels(h):
        return None
    hfn = _resolve_hash(hash_fn)
    if level == h.num_levels + 1:
        members = h.levels[-1].node_ids
        choice = hfn(subject, _stage_salt(level, level), members)
        if choice is None:  # pragma: no cover - top never empty
            return None
        current = int(choice)
        start_depth = h.num_levels
    else:
        current = h.cluster_of(subject, level)
        start_depth = level
    # Descend: current = the level-`depth` cluster chosen so far.
    for depth in range(start_depth, 0, -1):
        members = h.clusters(depth)[current]
        choice = hfn(subject, _stage_salt(level, depth), members)
        if choice is None:  # pragma: no cover - members never empty
            return None
        current = int(choice)
    return current


@dataclass(frozen=True)
class ServerAssignment:
    """Snapshot of every (subject, level) -> server mapping.

    ``servers[(subject, level)]`` is the level-0 ID of the LM server
    storing ``subject``'s level-``level`` address entry.
    """

    servers: dict[tuple[int, int], int]

    def servers_of(self, subject: int) -> dict[int, int]:
        """Per-level server of one subject."""
        return {
            lvl: srv for (subj, lvl), srv in self.servers.items() if subj == subject
        }

    def load(self) -> dict[int, int]:
        """Entries stored per server — the Theta(log|V|) duty the paper
        uses to size handoff transfers."""
        counts: dict[int, int] = {}
        for srv in self.servers.values():
            counts[srv] = counts.get(srv, 0) + 1
        return counts

    def entries_served_by(self, server: int) -> list[tuple[int, int]]:
        """(subject, level) entries held at ``server``."""
        return [key for key, srv in self.servers.items() if srv == server]


def _stage_salt(level: int, depth: int) -> int:
    return level * 1315423911 + depth * 2654435761


def _vectorized_rendezvous_stage(
    subjects: np.ndarray, current: np.ndarray, partition: dict[int, np.ndarray], salt: int
) -> np.ndarray:
    """One descent stage for all subjects at once.

    ``current[i]`` is subject i's cluster at this depth; the winner among
    that cluster's members replaces it.  Grouped by cluster so each group
    is one (s x m) uint64 weight matrix.
    """
    from repro.core.hashing import _GOLDEN, _SALT_CAND, mix64  # private reuse

    out = np.empty_like(current)
    order = np.argsort(current, kind="stable")
    uniq, starts = np.unique(current[order], return_index=True)
    groups = np.split(order, starts[1:])
    salt_mix = mix64(np.uint64(salt))
    with np.errstate(over="ignore"):
        for cid, grp in zip(uniq.tolist(), groups):
            members = partition[int(cid)]
            subj_keys = subjects[grp].astype(np.uint64) * _GOLDEN
            cand_keys = members.astype(np.uint64) * _SALT_CAND
            weights = mix64(subj_keys[:, np.newaxis] ^ salt_mix ^ cand_keys[np.newaxis, :])
            out[grp] = members[np.argmax(weights, axis=1)]
    return out


def full_assignment(h: ClusteredHierarchy, hash_fn="rendezvous") -> ServerAssignment:
    """Compute the complete CHLM server assignment for a hierarchy.

    One entry per (subject, level) for level = 2..``lm_levels(h)`` —
    i.e. every real hierarchy level plus the virtual global level.  With
    L = Theta(log|V|) levels this is the distributed database whose
    per-node share is Theta(log|V|) entries (Section 3.2's closing
    observation).

    The default rendezvous hash runs a fully vectorized descent (grouped
    weight matrices per cluster); other hashes fall back to the scalar
    per-subject path.
    """
    servers: dict[tuple[int, int], int] = {}
    top = lm_levels(h)
    if top < 2:
        return ServerAssignment(servers=servers)

    partitions = {depth: h.clusters(depth) for depth in range(1, h.num_levels + 1)}
    subjects = h.levels[0].node_ids
    # The virtual global level: one implicit cluster holding every
    # top-level node, keyed by a sentinel id.
    global_partition = {0: h.levels[-1].node_ids}

    if hash_fn == "rendezvous":
        for level in range(2, top + 1):
            if level == h.num_levels + 1:
                current = np.zeros(subjects.size, dtype=np.int64)
                current = _vectorized_rendezvous_stage(
                    subjects, current, global_partition, _stage_salt(level, level)
                )
                start_depth = h.num_levels
            else:
                current = h.ancestry(level).copy()
                start_depth = level
            for depth in range(start_depth, 0, -1):
                current = _vectorized_rendezvous_stage(
                    subjects, current, partitions[depth], _stage_salt(level, depth)
                )
            for subj, srv in zip(subjects.tolist(), current.tolist()):
                servers[(subj, level)] = srv
        return ServerAssignment(servers=servers)

    for subject in subjects.tolist():
        for level in range(2, top + 1):
            srv = select_server(h, subject, level, hash_fn)
            if srv is not None:
                servers[(subject, level)] = srv
    return ServerAssignment(servers=servers)
