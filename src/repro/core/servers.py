"""CHLM location-server selection (Section 3.2).

For each node v and each level k >= 2, CHLM places one LM server inside
v's level-k cluster by hashed *descent*, exactly as the paper walks
through for node 63 of Fig. 1:

1. Among the level-(k-1) clusters composing v's level-k cluster, a hash
   of (v, stage) picks one (e.g. cluster 59 for 63's level-2 server).
2. Within that cluster, another hash picks a level-(k-2) member, and so
   on down to a level-0 node (node 33 in the example), which becomes
   v's level-k location server.

Level 1 needs no server: complete topology is known inside a level-1
cluster ("no LM messaging is required for level-1 server maintenance").

The descent is a pure function of (subject, hierarchy), so any node that
knows the relevant cluster's internal hierarchy can recompute the server
— this is what makes queries routable (feature (a) of GLS carried over).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.hashing import HASH_REGISTRY
from repro.hierarchy.delta import HierarchyDelta, LazyClusters
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = [
    "ServerAssignment",
    "ChainedAssignment",
    "select_server",
    "full_assignment",
    "assignment_with_chains",
    "patch_assignment",
]

HashFn = Callable[[int, int, "np.ndarray"], int | None]


def _resolve_hash(hash_fn) -> HashFn:
    if callable(hash_fn):
        return hash_fn
    try:
        return HASH_REGISTRY[hash_fn]
    except KeyError:
        known = ", ".join(sorted(HASH_REGISTRY))
        raise ValueError(f"unknown hash {hash_fn!r}; known: {known}") from None


def lm_levels(h: ClusteredHierarchy) -> int:
    """Highest LM server level: the hierarchy's L levels plus one
    *virtual global level*.

    The paper's example hierarchy tops out in a single cluster covering
    the whole network ("the level-3 cluster with ID 100 (top level
    cluster)").  When the recursion is capped at L = Theta(log n) levels
    the top level holds several nodes, so CHLM treats the entire
    top-level node set as one implicit cluster at level L + 1 — exactly
    like GLS's whole-area square.  Every pair of connected nodes then
    shares at least the global level, which is what makes queries total.
    """
    return h.num_levels + 1


def select_server(
    h: ClusteredHierarchy,
    subject: int,
    level: int,
    hash_fn="rendezvous",
) -> int | None:
    """Level-``level`` LM server of ``subject`` under hierarchy ``h``.

    ``level`` ranges over 2..``lm_levels(h)``; the topmost value is the
    virtual global level (see :func:`lm_levels`).  Returns the chosen
    level-0 node ID, or None when the level does not exist for this
    hierarchy.

    The stage salt mixes the target level and descent depth so the same
    subject hashes independently at each stage.
    """
    if level < 2:
        raise ValueError("CHLM places servers for levels >= 2 only")
    if level > lm_levels(h):
        return None
    hfn = _resolve_hash(hash_fn)
    if level == h.num_levels + 1:
        members = h.levels[-1].node_ids
        choice = hfn(subject, _stage_salt(level, level), members)
        if choice is None:  # pragma: no cover - top never empty
            return None
        current = int(choice)
        start_depth = h.num_levels
    else:
        current = h.cluster_of(subject, level)
        start_depth = level
    # Descend: current = the level-`depth` cluster chosen so far.
    for depth in range(start_depth, 0, -1):
        members = h.clusters(depth)[current]
        choice = hfn(subject, _stage_salt(level, depth), members)
        if choice is None:  # pragma: no cover - members never empty
            return None
        current = int(choice)
    return current


@dataclass(frozen=True)
class ServerAssignment:
    """Snapshot of every (subject, level) -> server mapping.

    ``servers[(subject, level)]`` is the level-0 ID of the LM server
    storing ``subject``'s level-``level`` address entry.
    """

    servers: dict[tuple[int, int], int]

    def servers_of(self, subject: int) -> dict[int, int]:
        """Per-level server of one subject."""
        return {
            lvl: srv for (subj, lvl), srv in self.servers.items() if subj == subject
        }

    def load(self) -> dict[int, int]:
        """Entries stored per server — the Theta(log|V|) duty the paper
        uses to size handoff transfers."""
        counts: dict[int, int] = {}
        for srv in self.servers.values():
            counts[srv] = counts.get(srv, 0) + 1
        return counts

    def entries_served_by(self, server: int) -> list[tuple[int, int]]:
        """(subject, level) entries held at ``server``."""
        return [key for key, srv in self.servers.items() if srv == server]


def _stage_salt(level: int, depth: int) -> int:
    return level * 1315423911 + depth * 2654435761


def _vectorized_rendezvous_stage(
    subjects: np.ndarray, current: np.ndarray, partition: dict[int, np.ndarray], salt: int
) -> np.ndarray:
    """One descent stage for all subjects at once.

    ``current[i]`` is subject i's cluster at this depth; the winner among
    that cluster's members replaces it.  Grouped by cluster so each group
    is one (s x m) uint64 weight matrix.
    """
    from repro.core.hashing import _GOLDEN, _SALT_CAND, mix64  # private reuse

    out = np.empty_like(current)
    order = np.argsort(current, kind="stable")
    uniq, starts = np.unique(current[order], return_index=True)
    groups = np.split(order, starts[1:])
    salt_mix = mix64(np.uint64(salt))
    with np.errstate(over="ignore"):
        for cid, grp in zip(uniq.tolist(), groups):
            members = partition[int(cid)]
            subj_keys = subjects[grp].astype(np.uint64) * _GOLDEN
            cand_keys = members.astype(np.uint64) * _SALT_CAND
            weights = mix64(subj_keys[:, np.newaxis] ^ salt_mix ^ cand_keys[np.newaxis, :])
            out[grp] = members[np.argmax(weights, axis=1)]
    return out


def full_assignment(h: ClusteredHierarchy, hash_fn="rendezvous") -> ServerAssignment:
    """Compute the complete CHLM server assignment for a hierarchy.

    One entry per (subject, level) for level = 2..``lm_levels(h)`` —
    i.e. every real hierarchy level plus the virtual global level.  With
    L = Theta(log|V|) levels this is the distributed database whose
    per-node share is Theta(log|V|) entries (Section 3.2's closing
    observation).

    The default rendezvous hash runs a fully vectorized descent (grouped
    weight matrices per cluster); other hashes fall back to the scalar
    per-subject path.
    """
    servers: dict[tuple[int, int], int] = {}
    top = lm_levels(h)
    if top < 2:
        return ServerAssignment(servers=servers)

    partitions = {depth: h.clusters(depth) for depth in range(1, h.num_levels + 1)}
    subjects = h.levels[0].node_ids
    # The virtual global level: one implicit cluster holding every
    # top-level node, keyed by a sentinel id.
    global_partition = {0: h.levels[-1].node_ids}

    if hash_fn == "rendezvous":
        for level in range(2, top + 1):
            if level == h.num_levels + 1:
                current = np.zeros(subjects.size, dtype=np.int64)
                current = _vectorized_rendezvous_stage(
                    subjects, current, global_partition, _stage_salt(level, level)
                )
                start_depth = h.num_levels
            else:
                current = h.ancestry(level).copy()
                start_depth = level
            for depth in range(start_depth, 0, -1):
                current = _vectorized_rendezvous_stage(
                    subjects, current, partitions[depth], _stage_salt(level, depth)
                )
            for subj, srv in zip(subjects.tolist(), current.tolist()):
                servers[(subj, level)] = srv
        return ServerAssignment(servers=servers)

    for subject in subjects.tolist():
        for level in range(2, top + 1):
            srv = select_server(h, subject, level, hash_fn)
            if srv is not None:
                servers[(subject, level)] = srv
    return ServerAssignment(servers=servers)


# --------------------------------------------------------------------------
# Incremental CHLM: descent chains + dirty-cluster patching
# --------------------------------------------------------------------------


@dataclass
class ChainedAssignment:
    """A server assignment plus the *descent chains* that produced it.

    ``chains[level][depth]`` is the per-subject array of the level-
    ``depth`` cluster each subject's level-``level`` descent consulted
    when it entered that depth (for the virtual global level, depth
    ``num_levels`` holds the winner of the global stage).  Because the
    descent is a pure function of (subject, consulted cells), a recorded
    chain whose entry point is unchanged and whose every consulted cell
    kept its member list provably re-derives the same server — that is
    the cleanliness test :func:`patch_assignment` applies.
    """

    servers: dict[tuple[int, int], int]
    chains: dict[int, dict[int, np.ndarray]]
    subjects: np.ndarray

    def as_assignment(self) -> ServerAssignment:
        """The plain :class:`ServerAssignment` view (shares the dict)."""
        return ServerAssignment(servers=self.servers)


def assignment_with_chains(h: ClusteredHierarchy) -> ChainedAssignment:
    """Rendezvous :func:`full_assignment` that also records chains.

    The ``servers`` dict is built by the same grouped-stage descent, so
    it is bit-identical to ``full_assignment(h, "rendezvous").servers``;
    the chain arrays are the stage inputs the descent consumed anyway
    (zero extra hashing).
    """
    servers: dict[tuple[int, int], int] = {}
    chains: dict[int, dict[int, np.ndarray]] = {}
    subjects = h.levels[0].node_ids
    top = lm_levels(h)
    if top < 2:
        return ChainedAssignment(servers=servers, chains=chains,
                                 subjects=subjects)
    partitions = {depth: h.clusters(depth) for depth in range(1, h.num_levels + 1)}
    global_partition = {0: h.levels[-1].node_ids}
    for level in range(2, top + 1):
        if level == h.num_levels + 1:
            current = np.zeros(subjects.size, dtype=np.int64)
            current = _vectorized_rendezvous_stage(
                subjects, current, global_partition, _stage_salt(level, level)
            )
            start_depth = h.num_levels
        else:
            current = h.ancestry(level).copy()
            start_depth = level
        lvl_chain: dict[int, np.ndarray] = {}
        for depth in range(start_depth, 0, -1):
            lvl_chain[depth] = current
            current = _vectorized_rendezvous_stage(
                subjects, current, partitions[depth], _stage_salt(level, depth)
            )
        chains[level] = lvl_chain
        for subj, srv in zip(subjects.tolist(), current.tolist()):
            servers[(subj, level)] = srv
    return ChainedAssignment(servers=servers, chains=chains, subjects=subjects)


def _dirty_mask(dirty_cells: np.ndarray, consulted: np.ndarray) -> np.ndarray:
    """Which subjects consulted a dirty cell (sorted-array membership)."""
    pos = np.minimum(
        np.searchsorted(dirty_cells, consulted), dirty_cells.size - 1
    )
    return dirty_cells[pos] == consulted


def patch_assignment(
    prev: ChainedAssignment,
    h: ClusteredHierarchy,
    delta: HierarchyDelta,
) -> tuple[ChainedAssignment, list[tuple[int, int]]]:
    """Patch a chained assignment onto the next hierarchy snapshot.

    A (subject, level) entry is *clean* when its descent entry point is
    unchanged (same level-``level`` ancestor; same global-stage winner
    for the virtual level) and no consulted cell appears in the delta's
    ``dirty_cells`` — then the recorded chain replays identically and
    the server is untouched.  Everything else is re-descended as one
    vectorized batch per level over lazily grouped clusters.

    Returns the new chained assignment plus the *dirty keys* — the only
    keys whose server may differ from ``prev`` (a superset of the keys
    that actually changed).  ``delta`` must not be ``full``.
    """
    if delta.full:
        raise ValueError("cannot patch across a full delta")
    num_levels = h.num_levels
    top = lm_levels(h)
    subjects = prev.subjects
    lazy = {
        depth: LazyClusters(h.levels[depth - 1].election)
        for depth in range(1, num_levels + 1)
    }
    new_servers = dict(prev.servers)
    new_chains: dict[int, dict[int, np.ndarray]] = {}
    dirty_keys: list[tuple[int, int]] = []
    for level in range(2, top + 1):
        old_chain = prev.chains[level]
        if level == num_levels + 1:
            start_depth = num_levels
            if delta.top_changed:
                entry = _vectorized_rendezvous_stage(
                    subjects,
                    np.zeros(subjects.size, dtype=np.int64),
                    {0: h.levels[-1].node_ids},
                    _stage_salt(level, level),
                )
                dirty = entry != old_chain[start_depth]
            else:
                entry = old_chain[start_depth]
                dirty = np.zeros(subjects.size, dtype=bool)
        else:
            start_depth = level
            entry = h.ancestry(level)
            dirty = delta.level_changed[level].copy()
        for depth in range(start_depth, 0, -1):
            cells = delta.dirty_cells[depth]
            if cells.size:
                dirty |= _dirty_mask(cells, old_chain[depth])
        sub = np.flatnonzero(dirty)
        if sub.size == 0:
            new_chains[level] = old_chain
            continue
        subs = subjects[sub]
        current = entry[sub]
        lvl_chain: dict[int, np.ndarray] = {}
        for depth in range(start_depth, 0, -1):
            arr = old_chain[depth].copy()
            arr[sub] = current
            lvl_chain[depth] = arr
            current = _vectorized_rendezvous_stage(
                subs, current, lazy[depth], _stage_salt(level, depth)
            )
        new_chains[level] = lvl_chain
        for subj, srv in zip(subs.tolist(), current.tolist()):
            key = (subj, level)
            new_servers[key] = srv
            dirty_keys.append(key)
    return (
        ChainedAssignment(servers=new_servers, chains=new_chains,
                          subjects=subjects),
        dirty_keys,
    )
