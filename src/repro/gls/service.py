"""Grid Location Service — distributed location database (Section 3.1).

Implements the three salient GLS features the paper lists:

(a) unambiguous, ID-hashed server selection per grid square (Eq. 5),
(b) server density graded by distance (one server per sibling square at
    every grid level: many nearby, few far away),
(c) distance-graded update frequency (a node re-registers with its
    level-i servers only after moving a fraction of the level-i square
    side).

Overhead accounting uses the same *assignment diff* rule as CHLM so the
two schemes are directly comparable (EXP-T8): whenever the server
responsible for a (subject, level) entry changes, the entry must be
handed off, charged as the hop count between outgoing and incoming
server (or from the subject for a fresh placement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.geometry.points import as_points
from repro.gls.grid import GridHierarchy
from repro.gls.servers import select_server_sorted

__all__ = ["GLSAssignment", "GLSStepReport", "GridLocationService"]

HopFn = Callable[[int, int], int]


@dataclass(frozen=True)
class GLSAssignment:
    """Server assignment snapshot: ``servers[(subject, level)]`` is the
    sorted tuple of server IDs across the subject's sibling squares."""

    servers: dict[tuple[int, int], tuple[int, ...]]

    def servers_of(self, subject: int) -> dict[int, tuple[int, ...]]:
        """Per-level servers of one subject."""
        return {
            lvl: srv for (subj, lvl), srv in self.servers.items() if subj == subject
        }

    def load(self) -> dict[int, int]:
        """Number of (subject, level) entries each server stores."""
        counts: dict[int, int] = {}
        for srv_tuple in self.servers.values():
            for s in srv_tuple:
                counts[s] = counts.get(s, 0) + 1
        return counts


@dataclass(frozen=True)
class GLSStepReport:
    """Packet accounting for one observation step."""

    handoff_packets: int
    handoff_events: int
    update_packets: int
    update_events: int
    retransmitted_packets: int = 0
    """Extra transmissions beyond the lossless charge (0 without faults)."""
    abandoned_handoffs: int = 0
    """Entry transfers the channel gave up on (stale GLS state)."""
    abandoned_updates: int = 0
    """Location updates the channel gave up on (retried next step, since
    the mover's update trigger stays armed until delivery succeeds)."""

    @property
    def total_packets(self) -> int:
        return self.handoff_packets + self.update_packets


@dataclass
class GridLocationService:
    """Stateful GLS instance over a fixed node population.

    Parameters
    ----------
    grid:
        The grid hierarchy covering the deployment area.
    node_ids:
        All participating node IDs (IDs are hashed by Eq. (5); the
        modulus defaults to ``max(id) + 1``).
    update_fraction:
        A node re-registers with its level-i servers after moving this
        fraction of the level-i square side (feature (c)).
    """

    grid: GridHierarchy
    node_ids: np.ndarray
    modulus: int | None = None
    update_fraction: float = 0.5
    _prev: GLSAssignment | None = field(default=None, repr=False)
    _last_update_pos: dict[tuple[int, int], np.ndarray] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self):
        self.node_ids = np.unique(np.asarray(self.node_ids, dtype=np.int64))
        if self.node_ids.size == 0:
            raise ValueError("GLS needs at least one node")
        if self.modulus is None:
            self.modulus = int(self.node_ids.max()) + 1
        if self.update_fraction <= 0:
            raise ValueError("update_fraction must be positive")

    # -- assignment ------------------------------------------------------------

    @property
    def assignment(self) -> GLSAssignment | None:
        """The server assignment from the most recent :meth:`observe`
        call, or None before the first observation.  Read-only view for
        callers (e.g. the service front-end) that charge per-server
        update traffic without re-deriving server placement."""
        return self._prev

    def compute_assignment(self, positions) -> GLSAssignment:
        """Select every node's servers from current positions.

        For each level i = 1..L-1, each node owns one server per sibling
        square of its level-i square (up to 3), chosen by the Eq. (5)
        circular-successor rule among the nodes located in that square.
        Empty squares contribute no server.
        """
        pts = as_points(positions)
        if pts.shape[0] != self.node_ids.size:
            raise ValueError("positions must align with node_ids")
        servers: dict[tuple[int, int], tuple[int, ...]] = {}
        for level in range(1, self.grid.L):
            keys = self.grid.square_key(pts, level)
            order = np.argsort(keys, kind="stable")
            uniq, starts = np.unique(keys[order], return_index=True)
            groups = np.split(order, starts[1:])
            occupants = {
                int(k): np.sort(self.node_ids[g]) for k, g in zip(uniq, groups)
            }
            width = 2 ** (self.grid.L - level)
            coords = self.grid.square_of(pts, level)
            parents = coords // 2
            for i, v in enumerate(self.node_ids.tolist()):
                base = parents[i] * 2
                chosen = []
                for dx in (0, 1):
                    for dy in (0, 1):
                        sq = (base[0] + dx, base[1] + dy)
                        if sq[0] == coords[i, 0] and sq[1] == coords[i, 1]:
                            continue  # own square: no server there
                        key = int(sq[0] * width + sq[1])
                        cand = occupants.get(key)
                        if cand is None:
                            continue
                        srv = select_server_sorted(v, cand, self.modulus)
                        if srv is not None:
                            chosen.append(srv)
                servers[(v, level)] = tuple(sorted(chosen))
        return GLSAssignment(servers=servers)

    # -- overhead metering ---------------------------------------------------------

    def observe(self, positions, hop_fn: HopFn, delivery=None) -> GLSStepReport:
        """Meter one step: handoffs from server reassignment plus
        distance-triggered location updates.

        ``hop_fn(u, v)`` returns the packet transmissions needed to move
        one entry from u to v (hop count of the route; implementations
        may estimate).  The first observation establishes the baseline
        and reports zero overhead.  With ``delivery`` set (a
        :class:`~repro.faults.delivery.DeliveryEngine`) every transfer
        and update traverses the lossy channel; an update that the
        channel abandons leaves the mover's trigger armed, so it retries
        on the next step — GLS's periodic re-registration is its natural
        repair mechanism.
        """
        pts = as_points(positions)
        assignment = self.compute_assignment(pts)
        handoff_packets = 0
        handoff_events = 0
        update_packets = 0
        update_events = 0
        retransmitted = 0
        abandoned_handoffs = 0
        abandoned_updates = 0

        def send(u: int, v: int, level: int) -> tuple[int, bool]:
            """Packets actually spent moving one message u -> v, and
            whether it arrived."""
            nonlocal retransmitted
            hops = max(hop_fn(u, v), 0)
            if delivery is None:
                return hops, True
            out = delivery.send(hops, level=level)
            retransmitted += out.retransmitted
            return out.packets, out.delivered

        if self._prev is not None:
            for key, new_servers in assignment.servers.items():
                old_servers = self._prev.servers.get(key, ())
                if old_servers == new_servers:
                    continue
                subject, lvl = key
                removed = sorted(set(old_servers) - set(new_servers))
                added = sorted(set(new_servers) - set(old_servers))
                for r, a in zip(removed, added):
                    handoff_events += 1
                    pkts, ok = send(r, a, lvl)
                    handoff_packets += pkts
                    if not ok:
                        abandoned_handoffs += 1
                for a in added[len(removed):]:
                    handoff_events += 1
                    pkts, ok = send(subject, a, lvl)
                    handoff_packets += pkts
                    if not ok:
                        abandoned_handoffs += 1
                # Surplus removals: entries simply expire.

            # Feature (c): movement-threshold updates.
            idx = {int(v): i for i, v in enumerate(self.node_ids.tolist())}
            for level in range(1, self.grid.L):
                threshold = self.update_fraction * self.grid.square_side(level)
                for v in self.node_ids.tolist():
                    pos = pts[idx[v]]
                    last = self._last_update_pos.get((v, level))
                    if last is None or np.linalg.norm(pos - last) >= threshold:
                        if last is not None:
                            update_events += 1
                            all_ok = True
                            for srv in assignment.servers.get((v, level), ()):
                                pkts, ok = send(v, srv, level)
                                update_packets += pkts
                                all_ok = all_ok and ok
                            if not all_ok:
                                # Keep the trigger armed: the node retries
                                # its registration next step.
                                abandoned_updates += 1
                                continue
                        self._last_update_pos[(v, level)] = pos.copy()
        else:
            for level in range(1, self.grid.L):
                for i, v in enumerate(self.node_ids.tolist()):
                    self._last_update_pos[(v, level)] = pts[i].copy()

        self._prev = assignment
        return GLSStepReport(
            handoff_packets=handoff_packets,
            handoff_events=handoff_events,
            update_packets=update_packets,
            update_events=update_events,
            retransmitted_packets=retransmitted,
            abandoned_handoffs=abandoned_handoffs,
            abandoned_updates=abandoned_updates,
        )

    # -- queries ------------------------------------------------------------------

    def query_cost(self, s: int, d: int, positions, hop_fn: HopFn) -> int:
        """Packet cost for ``s`` to resolve ``d``'s location.

        The requester climbs its own grid squares until one contains a
        server of ``d`` (or ``d`` itself), then the answer leg runs from
        that server toward ``d`` — matching the paper's claim that query
        overhead is of the order of the requester-target hop count.
        Returns -1 when resolution fails at every level.
        """
        if self._prev is None:
            raise RuntimeError("observe() must run before queries")
        pts = as_points(positions)
        idx = {int(v): i for i, v in enumerate(self.node_ids.tolist())}
        if s not in idx or d not in idx:
            raise KeyError("unknown node id")
        if s == d:
            return 0
        d_servers = {
            srv
            for (subj, _lvl), tup in self._prev.servers.items()
            if subj == d
            for srv in tup
        }
        d_servers.add(d)
        for level in range(1, self.grid.L + 1):
            s_sq = self.grid.square_of(pts[idx[s]], level)[0]
            hits = [
                w
                for w in d_servers
                if np.array_equal(self.grid.square_of(pts[idx[w]], level)[0], s_sq)
            ]
            if hits:
                # Deterministic choice: the circularly closest ID to d.
                w = min(hits, key=lambda z: (z - d) % self.modulus)
                return max(hop_fn(s, w), 0) + max(hop_fn(w, d), 0)
        return -1
