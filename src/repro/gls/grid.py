"""Grid hierarchy for the Grid Location Service (Fig. 2 of the paper).

A square deployment area of side ``l * 2**(L-1)`` is recursively
quartered: level-1 squares have side ``l``; a level-i square has side
``l * 2**(i-1)`` and contains exactly four level-(i-1) squares.  The
level-L square is the whole area.

Squares are addressed by integer grid coordinates ``(ix, iy)`` at each
level; the parent of a level-i square is its coordinates floor-divided
by two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.points import as_points
from repro.geometry.region import SquareRegion

__all__ = ["GridHierarchy"]


@dataclass(frozen=True)
class GridHierarchy:
    """Recursive 2^L x 2^L grid over a square area.

    Attributes
    ----------
    origin:
        Lower-left corner of the covered area.
    l:
        Side of a level-1 (smallest) square.
    L:
        Number of levels; the level-L square (side ``l * 2**(L-1)``)
        covers the whole area.
    """

    origin: tuple[float, float]
    l: float
    L: int

    def __post_init__(self):
        if self.l <= 0:
            raise ValueError("level-1 square side must be positive")
        if self.L < 1:
            raise ValueError("need at least one level")

    @classmethod
    def for_region(cls, region: SquareRegion, l: float) -> "GridHierarchy":
        """Smallest grid with level-1 side ``l`` covering ``region``."""
        if l <= 0:
            raise ValueError("level-1 square side must be positive")
        ratio = region.side / l
        L = int(np.ceil(np.log2(ratio))) + 1 if ratio > 1 else 1
        return cls(origin=tuple(region.origin), l=float(l), L=L)

    @property
    def side(self) -> float:
        """Side of the level-L (whole-area) square."""
        return self.l * 2 ** (self.L - 1)

    def square_side(self, level: int) -> float:
        """Side of a level-``level`` square."""
        self._check_level(level)
        return self.l * 2 ** (level - 1)

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.L:
            raise ValueError(f"level {level} outside 1..{self.L}")

    def square_of(self, points, level: int) -> np.ndarray:
        """Grid coordinates ``(ix, iy)`` of each point's level square.

        Points outside the covered area are clamped to the border cell,
        mirroring GLS deployments where the grid covers the region.
        """
        self._check_level(level)
        pts = as_points(points)
        side = self.square_side(level)
        rel = (pts - np.asarray(self.origin)) / side
        coords = np.floor(rel).astype(np.int64)
        max_idx = 2 ** (self.L - level) - 1
        return np.clip(coords, 0, max_idx)

    def square_key(self, points, level: int) -> np.ndarray:
        """Scalar key for each point's level square (for grouping)."""
        coords = self.square_of(points, level)
        width = 2 ** (self.L - level)
        return coords[:, 0] * width + coords[:, 1]

    def parent(self, coords, level: int) -> np.ndarray:
        """Parent (level+1) coordinates of level-``level`` squares."""
        self._check_level(level)
        if level == self.L:
            raise ValueError("the top square has no parent")
        return np.asarray(coords, dtype=np.int64) // 2

    def children(self, coords, level: int) -> np.ndarray:
        """The four level-(level-1) children of a level-``level`` square."""
        self._check_level(level)
        if level == 1:
            raise ValueError("level-1 squares have no children")
        c = np.asarray(coords, dtype=np.int64).reshape(2)
        base = c * 2
        offs = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.int64)
        return base + offs

    def siblings_of(self, point, level: int) -> np.ndarray:
        """The 3 sibling squares of ``point``'s level-``level`` square
        (children of the same parent, excluding the point's own square).

        This is the square set in which GLS places the point's level
        servers.
        """
        self._check_level(level)
        if level == self.L:
            raise ValueError("the top square has no siblings")
        own = self.square_of(point, level)[0]
        parent = own // 2
        kids = self.children(parent, level + 1)
        mask = ~np.all(kids == own, axis=1)
        return kids[mask]

    def square_center(self, coords, level: int) -> np.ndarray:
        """Geometric center of a level square (for distance heuristics)."""
        self._check_level(level)
        side = self.square_side(level)
        c = np.asarray(coords, dtype=np.float64).reshape(-1, 2)
        return np.asarray(self.origin) + (c + 0.5) * side
