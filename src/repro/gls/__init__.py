"""Grid Location Service (GLS) — the baseline LM scheme of Section 3.1."""

from repro.gls.grid import GridHierarchy
from repro.gls.servers import circular_distance, select_server, select_server_sorted
from repro.gls.service import GLSAssignment, GLSStepReport, GridLocationService

__all__ = [
    "GridHierarchy",
    "circular_distance",
    "select_server",
    "select_server_sorted",
    "GLSAssignment",
    "GLSStepReport",
    "GridLocationService",
]
