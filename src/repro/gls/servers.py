"""GLS server selection — the ID-hash of Eq. (5).

Within a candidate square, node v's location server is the node whose ID
is the *least ID greater than v* in circular ID space: the z minimizing
``(z - v) mod N`` over candidates z != v (Eq. (5) of the paper,
normalizing the ``mod_{v+|V|}(z+|V|)`` notation).  The selection is
unambiguous and, when IDs in a square are numerous and uniform, spreads
server duty evenly; the paper's Section 3.2 observes that the same rule
applied to *small* candidate sets (cluster IDs) skews badly — which
EXP-T7 demonstrates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["circular_distance", "select_server", "select_server_sorted"]


def circular_distance(v: int, z, modulus: int) -> np.ndarray:
    """``(z - v) mod modulus`` with z == v mapped to ``modulus`` (worst).

    The modulus must exceed every ID in play so distinct IDs never
    collide in circular space.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    z_arr = np.asarray(z, dtype=np.int64)
    d = np.mod(z_arr - v, modulus)
    return np.where(d == 0, modulus, d)


def select_server(v: int, candidates, modulus: int) -> int | None:
    """Least-ID-greater-than-v (circular) among ``candidates``.

    Returns None when there are no candidates other than ``v`` itself.
    """
    cand = np.asarray(list(candidates), dtype=np.int64)
    if cand.size == 0:
        return None
    d = circular_distance(v, cand, modulus)
    best = int(np.argmin(d))
    if d[best] >= modulus:
        return None  # only v itself present
    return int(cand[best])


def select_server_sorted(v: int, sorted_candidates: np.ndarray, modulus: int) -> int | None:
    """Same as :func:`select_server` but O(log n) on a pre-sorted array.

    The least ID strictly greater than ``v`` is the first element after
    ``v``'s insertion point; wrap to the smallest candidate if none —
    skipping ``v`` itself in both cases.
    """
    cand = sorted_candidates
    if cand.size == 0:
        return None
    # First candidate strictly greater than v, else wrap to the smallest.
    i = int(np.searchsorted(cand, v, side="right"))
    if i < cand.size:
        return int(cand[i])
    smallest = int(cand[0])
    return smallest if smallest != v else None
