"""Shared lightweight graph kernels (adjacency lists + BFS).

Both the hierarchy statistics (h_k estimation) and the routing layer need
many unweighted shortest-path queries per simulation step.  NetworkX is
convenient but allocates heavily; this module keeps a compact
adjacency-list representation (a list of sorted int arrays) and a plain
deque BFS, which profiling shows is the fastest pure-Python option at the
simulator's graph sizes (hundreds to a few thousands of nodes).
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = [
    "CompactGraph",
    "bfs_distances",
    "bfs_path",
    "bfs_tree_path",
]


class CompactGraph:
    """Immutable adjacency-list graph over arbitrary integer IDs.

    IDs are mapped to compact indices once at construction; all queries
    accept and return original IDs.
    """

    def __init__(self, node_ids, edges):
        self.node_ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
        e = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        n = self.node_ids.size
        if e.size:
            ui = np.searchsorted(self.node_ids, e[:, 0])
            vi = np.searchsorted(self.node_ids, e[:, 1])
            if (
                np.any(ui >= n)
                or np.any(vi >= n)
                or np.any(self.node_ids[np.minimum(ui, n - 1)] != e[:, 0])
                or np.any(self.node_ids[np.minimum(vi, n - 1)] != e[:, 1])
            ):
                raise ValueError("edges reference ids not in node_ids")
        else:
            ui = vi = np.empty(0, dtype=np.int64)
        # CSR-style neighbor lists, built without a Python loop: duplicate
        # each undirected edge into both directions, sort by source.
        src = np.concatenate([ui, vi])
        dst = np.concatenate([vi, ui])
        order = np.argsort(src, kind="stable")
        self._nbr = dst[order]
        counts = np.bincount(src, minlength=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._offsets = offsets
        self._sparse = None  # lazy scipy CSR for C-level BFS

    @property
    def n(self) -> int:
        return int(self.node_ids.size)

    def index_of(self, v: int) -> int:
        """Compact index of node ID ``v`` (KeyError if absent)."""
        i = int(np.searchsorted(self.node_ids, v))
        if i >= self.n or self.node_ids[i] != v:
            raise KeyError(f"unknown node id {v}")
        return i

    def neighbors_idx(self, i: int) -> np.ndarray:
        """Neighbor *indices* of node index ``i``."""
        return self._nbr[self._offsets[i] : self._offsets[i + 1]]

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor IDs of node ID ``v``."""
        return self.node_ids[self.neighbors_idx(self.index_of(v))]

    def degree(self, v: int) -> int:
        """Number of neighbors of node ID ``v``."""
        i = self.index_of(v)
        return int(self._offsets[i + 1] - self._offsets[i])

    def sparse(self):
        """Lazily-built ``scipy.sparse.csr_matrix`` adjacency view."""
        if self._sparse is None:
            from scipy.sparse import csr_matrix

            data = np.ones(self._nbr.size, dtype=np.int8)
            self._sparse = csr_matrix(
                (data, self._nbr, self._offsets), shape=(self.n, self.n)
            )
        return self._sparse


def bfs_distances(g: CompactGraph, source: int, restrict_idx=None) -> np.ndarray:
    """Hop distance from ``source`` (ID) to every node; -1 if unreachable.

    ``restrict_idx``: optional boolean mask over node indices; traversal
    only visits allowed nodes (used for intra-cluster routing).

    Unrestricted queries run through scipy's C-level unweighted Dijkstra
    (single-source BFS); masked queries use the pure-Python traversal.
    """
    s = g.index_of(source)
    if restrict_idx is None:
        from scipy.sparse.csgraph import dijkstra

        d = dijkstra(g.sparse(), directed=False, unweighted=True, indices=s)
        dist = np.where(np.isinf(d), -1, d).astype(np.int64)
        return dist
    dist = np.full(g.n, -1, dtype=np.int64)
    if not restrict_idx[s]:
        return dist
    dist[s] = 0
    q = deque([s])
    offsets, nbr = g._offsets, g._nbr
    while q:
        u = q.popleft()
        du = dist[u] + 1
        for w in nbr[offsets[u] : offsets[u + 1]]:
            if dist[w] < 0 and (restrict_idx is None or restrict_idx[w]):
                dist[w] = du
                q.append(w)
    return dist


def bfs_path(g: CompactGraph, source: int, target: int, restrict_idx=None) -> list[int] | None:
    """Shortest path (list of IDs, inclusive) or None if unreachable."""
    s = g.index_of(source)
    t = g.index_of(target)
    if s == t:
        return [int(source)]
    if restrict_idx is not None and (not restrict_idx[s] or not restrict_idx[t]):
        return None
    parent = np.full(g.n, -2, dtype=np.int64)
    parent[s] = -1
    q = deque([s])
    offsets, nbr = g._offsets, g._nbr
    found = False
    while q and not found:
        u = q.popleft()
        for w in nbr[offsets[u] : offsets[u + 1]]:
            if parent[w] == -2 and (restrict_idx is None or restrict_idx[w]):
                parent[w] = u
                if w == t:
                    found = True
                    break
                q.append(w)
    if not found:
        return None
    path_idx = [t]
    while path_idx[-1] != s:
        path_idx.append(int(parent[path_idx[-1]]))
    path_idx.reverse()
    return [int(g.node_ids[i]) for i in path_idx]


def bfs_tree_path(parent: np.ndarray, g: CompactGraph, target: int) -> list[int] | None:
    """Extract a path from a parent array produced by a prior full BFS.

    ``parent`` uses -1 for the source and -2 for unreached nodes.
    """
    t = g.index_of(target)
    if parent[t] == -2:
        return None
    path_idx = [t]
    while parent[path_idx[-1]] != -1:
        path_idx.append(int(parent[path_idx[-1]]))
    path_idx.reverse()
    return [int(g.node_ids[i]) for i in path_idx]
