"""Event-driven hierarchy plane: link deltas -> dirty clusters.

The paper's ALCA reorganizes *by events* — its seven event types
(i)-(vii) and the handoff bound are defined over discrete cluster-link
changes, not over global rebuilds.  This module is the stepping-plane
mirror of that model:

* :class:`DeltaPlane` consumes each step's canonical edge array,
  computes the level-0 :class:`~repro.radio.linkevents.LinkDiff`
  implicitly (per-level encoded-key set diffs), and **patches** the
  recursive ALCA election level by level with
  :class:`~repro.clustering.incremental.IncrementalElection` — re-voting
  only the affected-node closure of added/removed edges.  The resulting
  :class:`~repro.hierarchy.levels.ClusteredHierarchy` is bit-identical
  to a from-scratch :func:`~repro.hierarchy.levels.build_hierarchy`
  (``tests/hierarchy/test_delta_plane.py`` fuzzes this over churn,
  crash, and partition bursts).

* :func:`compute_delta` distills two consecutive snapshots into a
  :class:`HierarchyDelta`: per-level changed-ancestry masks, the
  *dirty cells* whose member lists changed (exactly the clusters a CHLM
  hash descent could consult differently), and the dirty-cluster sets
  the routing cache (:class:`~repro.routing.fabric_cache.FabricCache`)
  shares.  The handoff engine uses it to re-hash only dirty keys and
  diff only dirty clusters.

The delta plane never touches an RNG stream and is carried inside
simulator checkpoints, so incremental runs resume bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.clustering.incremental import IncrementalElection
from repro.clustering.lca import Election
from repro.hierarchy.cluster_graph import contract_edges
from repro.hierarchy.levels import ClusteredHierarchy, LevelTopology
from repro.radio.unit_disk import decode_edges, encode_edges, unit_disk_edges

__all__ = ["HierarchyDelta", "DeltaPlane", "LazyClusters", "compute_delta"]


class LazyClusters:
    """Mapping view of one level's partition, built lazily and without
    the per-cluster python loop of :meth:`Election.clusters`.

    ``lazy[cid]`` returns the *same* sorted member array
    ``Election.clusters()[cid]`` would — the grouped slice of sorted
    ``node_ids`` is already ascending — but the grouping arrays are
    computed once on first access, and no per-cluster dict is
    materialized.  This is what lets the incremental hash descent touch
    only the clusters on dirty chains.
    """

    def __init__(self, election: Election):
        self._election = election
        self._heads: np.ndarray | None = None

    def _build(self) -> None:
        e = self._election
        order = np.argsort(e.member_of, kind="stable")
        heads, starts = np.unique(e.member_of[order], return_index=True)
        self._members = e.node_ids[order]
        self._heads = heads
        self._starts = np.append(starts, e.node_ids.size)

    def __getitem__(self, cid: int) -> np.ndarray:
        if self._heads is None:
            self._build()
        i = int(np.searchsorted(self._heads, cid))
        if i >= self._heads.size or self._heads[i] != cid:
            raise KeyError(cid)
        return self._members[self._starts[i]:self._starts[i + 1]]


@dataclass
class HierarchyDelta:
    """Exact change summary between two consecutive hierarchy snapshots.

    ``full=True`` means no incremental claims can be made (first step,
    node set changed, or hierarchy depth changed) and every consumer
    must fall back to its from-scratch path.  Otherwise:

    Attributes
    ----------
    level_changed:
        ``level_changed[k]`` is a boolean mask over base nodes whose
        level-k ancestor changed (``k = 0..L``; level 0 is all-False).
    dirty_cells:
        ``dirty_cells[d]`` (``d = 1..L``) is the sorted array of
        level-d cluster IDs whose *member list* (of level-(d-1) IDs)
        changed.  A CHLM descent that consults no dirty cell and starts
        from an unchanged cluster provably picks the same server.
    top_changed:
        Whether the top-level node set changed (the virtual global
        level's candidate set).
    """

    h0: ClusteredHierarchy | None
    h1: ClusteredHierarchy | None
    full: bool
    level_changed: list[np.ndarray] = field(default_factory=list)
    dirty_cells: list[np.ndarray] = field(default_factory=list)
    top_changed: bool = False

    @property
    def n_changed(self) -> int:
        """Base nodes whose ancestry changed at any level."""
        if self.full:
            return -1
        total = np.zeros(0, dtype=bool)
        for mask in self.level_changed[1:]:
            total = mask if total.size == 0 else (total | mask)
        return int(total.sum()) if total.size else 0

    def dirty_sets(self) -> list[set[int]]:
        """Per-level dirty-cluster sets in the exact format
        :meth:`repro.routing.fabric_cache.FabricCache` computes
        internally: old and new ancestors of every moved node.
        """
        if self.full or self.h0 is None or self.h1 is None:
            raise ValueError("dirty_sets() is undefined for a full delta")
        out: list[set[int]] = [set() for _ in range(self.h1.num_levels + 1)]
        for k in range(1, self.h1.num_levels + 1):
            moved = self.level_changed[k]
            if moved.any():
                out[k] = set(np.unique(self.h0.ancestry(k)[moved]).tolist())
                out[k] |= set(np.unique(self.h1.ancestry(k)[moved]).tolist())
        return out


def _dirty_cells_of(el0: Election, el1: Election) -> np.ndarray:
    """Sorted cluster IDs whose member list differs between elections."""
    ids0, ids1 = el0.node_ids, el1.node_ids
    if el0 is el1:
        return np.empty(0, dtype=np.int64)
    if np.array_equal(ids0, ids1):
        moved = el0.member_of != el1.member_of
        if not moved.any():
            return np.empty(0, dtype=np.int64)
        parts = [el0.member_of[moved], el1.member_of[moved]]
    else:
        in1 = np.isin(ids0, ids1, assume_unique=True)
        in0 = np.isin(ids1, ids0, assume_unique=True)
        common = ids0[in1]
        mo0 = el0.member_of[in1]
        mo1 = el1.member_of[np.searchsorted(ids1, common)]
        moved = mo0 != mo1
        parts = [mo0[moved], mo1[moved],
                 el0.member_of[~in1],  # departed ids: old cluster shrank
                 el1.member_of[~in0]]  # arrived ids: new cluster grew
    return np.unique(np.concatenate(parts))


def compute_delta(h0: ClusteredHierarchy | None,
                  h1: ClusteredHierarchy | None) -> HierarchyDelta:
    """Distill two consecutive snapshots into a :class:`HierarchyDelta`.

    Works for *any* construction path (incremental build, sticky or
    persistent maintainers, full rebuild): the delta is computed from
    the snapshots themselves, so its dirtiness claims are exact by
    construction.
    """
    if (
        h0 is None or h1 is None
        or h0.num_levels != h1.num_levels
        or not np.array_equal(h0.levels[0].node_ids, h1.levels[0].node_ids)
    ):
        return HierarchyDelta(h0=h0, h1=h1, full=True)
    num_levels = h1.num_levels
    level_changed = [np.zeros(h1.n, dtype=bool)]
    for k in range(1, num_levels + 1):
        level_changed.append(h0.ancestry(k) != h1.ancestry(k))
    dirty_cells = [np.empty(0, dtype=np.int64)]
    for d in range(1, num_levels + 1):
        el0 = h0.levels[d - 1].election
        el1 = h1.levels[d - 1].election
        assert el0 is not None and el1 is not None
        dirty_cells.append(_dirty_cells_of(el0, el1))
    top_changed = not np.array_equal(
        h0.levels[-1].node_ids, h1.levels[-1].node_ids
    )
    return HierarchyDelta(
        h0=h0, h1=h1, full=False,
        level_changed=level_changed,
        dirty_cells=dirty_cells,
        top_changed=top_changed,
    )


@dataclass
class _LevelState:
    """Per-level incremental election state (ids, edge keys, voter)."""

    ids: np.ndarray
    keys: np.ndarray
    inc: IncrementalElection
    snapshot: Election


class DeltaPlane:
    """Maintains the recursive ALCA hierarchy from link deltas.

    Two operating modes:

    * **build** (``build=True``, memoryless LCA): :meth:`advance` takes
      the step's canonical edge array and patches each level's election
      in place, producing a hierarchy bit-identical to
      :func:`build_hierarchy` on the same topology.  A level whose node
      set changed (head churn) is re-elected from scratch; a level whose
      node set *and* edges are unchanged reuses last step's election
      object outright.
    * **adopt** (``build=False``, sticky/persistent maintainers):
      :meth:`adopt` registers an externally built hierarchy; the plane
      then only tracks consecutive snapshots for :meth:`delta`.

    Either way, :meth:`delta` yields the step's exact
    :class:`HierarchyDelta` for the handoff engine and routing cache.
    """

    def __init__(self, n: int, max_levels: int | None = None,
                 level_mode: str = "radio", r0: float | None = None,
                 build: bool = True):
        if level_mode not in ("radio", "contraction"):
            raise ValueError(f"unknown level_mode {level_mode!r}")
        if level_mode == "radio" and build and r0 is None:
            raise ValueError("radio level_mode requires r0")
        if n <= 1:
            raise ValueError("need at least two nodes")
        self._n = int(n)
        self._max_levels = max_levels
        self._level_mode = level_mode
        self._r0 = None if r0 is None else float(r0)
        self._build = bool(build)
        self._base_ids = np.arange(self._n, dtype=np.int64)
        self._state: dict[int, _LevelState] = {}
        # True when the previous advance() never elected level 0 (empty
        # edge array, first call): state[0] is then stale relative to
        # the last edge snapshot, and a caller-supplied one-step diff
        # must not be trusted against it.
        self._stale0 = True
        self._h: ClusteredHierarchy | None = None
        self._prev_h: ClusteredHierarchy | None = None
        self._delta: HierarchyDelta | None = None

    @property
    def hierarchy(self) -> ClusteredHierarchy | None:
        """Most recent snapshot (None before the first step)."""
        return self._h

    # -- build mode ----------------------------------------------------------

    def _level_election(self, k: int, cur_ids: np.ndarray,
                        cur_edges: np.ndarray,
                        diff=None) -> Election:
        """Election at level k: patched when the node set held, rebuilt
        otherwise, reused outright when nothing changed.

        ``diff`` is an optional pre-computed
        :class:`~repro.radio.linkevents.LinkDiff` between ``cur_edges``
        and the edges of the previous call at this level (the Verlet
        edge cache emits one for free).  When supplied, the two sorted
        set differences below are skipped — the caller vouches that
        ``diff`` is exact, which the engine guarantees by passing it
        only when the cache's output reaches the plane unfiltered.
        """
        st = self._state.get(k)
        if st is not None and (
            st.ids is cur_ids or np.array_equal(st.ids, cur_ids)
        ):
            if diff is not None:
                if diff.n_events == 0:
                    return st.snapshot
                ups, downs = diff.ups, diff.downs
                keys = encode_edges(cur_edges, self._n)
            else:
                keys = encode_edges(cur_edges, self._n)
                if np.array_equal(st.keys, keys):
                    return st.snapshot
                ups = decode_edges(
                    np.setdiff1d(keys, st.keys, assume_unique=True), self._n
                )
                downs = decode_edges(
                    np.setdiff1d(st.keys, keys, assume_unique=True), self._n
                )
            st.inc.apply(ups, downs)
            st.keys = keys
            st.snapshot = st.inc.snapshot()
            return st.snapshot
        keys = encode_edges(cur_edges, self._n)
        inc = IncrementalElection(cur_ids, cur_edges)
        snap = inc.snapshot()
        self._state[k] = _LevelState(ids=cur_ids, keys=keys, inc=inc,
                                     snapshot=snap)
        return snap

    def advance(self, edges: np.ndarray,
                positions=None, diff=None) -> ClusteredHierarchy:
        """One step: patch the hierarchy onto the new canonical edge
        array (node IDs are ``0..n-1``; edges must be canonical — the
        unit-disk builder's output, chaos-filtered or not).

        ``diff`` is an optional exact level-0
        :class:`~repro.radio.linkevents.LinkDiff` of ``edges`` against
        the previous call's (the Verlet cache's by-product); it spares
        the plane re-deriving the same set differences from edge keys.
        Pass ``None`` whenever the edges were post-processed (chaos
        filtering) or the previous step isn't comparable.
        """
        if not self._build:
            raise RuntimeError(
                "this DeltaPlane adopts externally built hierarchies; "
                "call adopt(h) instead"
            )
        cur_edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if self._level_mode == "radio":
            if positions is None:
                raise ValueError("radio level_mode requires positions")
            pos = np.asarray(positions, dtype=np.float64)
            if pos.shape[0] != self._n:
                raise ValueError("positions must align with node ids")
        if self._stale0:
            diff = None
        cur_ids = self._base_ids
        levels: list[LevelTopology] = []
        elected0 = False
        k = 0
        while True:
            at_cap = self._max_levels is not None and k >= self._max_levels
            if at_cap or cur_ids.size <= 1 or cur_edges.shape[0] == 0:
                levels.append(LevelTopology(k, cur_ids, cur_edges,
                                            election=None))
                break
            result = self._level_election(k, cur_ids, cur_edges,
                                          diff=diff if k == 0 else None)
            if k == 0:
                elected0 = True
            heads = result.clusterheads
            if heads.size == cur_ids.size:
                # No aggregation possible; treat as top.
                levels.append(LevelTopology(k, cur_ids, cur_edges,
                                            election=None))
                break
            levels.append(LevelTopology(k, cur_ids, cur_edges,
                                        election=result))
            if self._level_mode == "radio":
                head_idx = np.searchsorted(self._base_ids, heads)
                r_k = self._r0 * float(np.sqrt(self._n / heads.size))
                pair_idx = unit_disk_edges(pos[head_idx], r_k)
                cur_edges = (
                    heads[pair_idx]
                    if pair_idx.size
                    else np.empty((0, 2), dtype=np.int64)
                )
            else:
                cur_edges = contract_edges(cur_edges, cur_ids,
                                           result.member_of)
            cur_ids = heads
            k += 1
        self._stale0 = not elected0
        h = ClusteredHierarchy(levels)
        self.adopt(h)
        return h

    # -- adopt mode / shared -------------------------------------------------

    def adopt(self, h: ClusteredHierarchy) -> None:
        """Register the step's hierarchy (built here or externally)."""
        self._prev_h = self._h
        self._h = h
        self._delta = None

    def delta(self) -> HierarchyDelta:
        """The exact delta between the two most recent snapshots
        (``full=True`` before the second one exists)."""
        if self._delta is None:
            self._delta = compute_delta(self._prev_h, self._h)
        return self._delta
