"""Stateful hierarchy maintenance (sticky elections across steps).

Pairs one :class:`~repro.clustering.alca.AlcaMaintainer` with each
hierarchy level and rebuilds the multi-level snapshot from the current
physical topology while *preserving affiliations* wherever the LCC
rules allow.  Produces ordinary :class:`ClusteredHierarchy` snapshots,
so the handoff engine and every downstream consumer work unchanged —
only the election dynamics differ from the memoryless
:func:`~repro.hierarchy.levels.build_hierarchy` path.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.alca import AlcaMaintainer
from repro.hierarchy.cluster_graph import canonical_edges, contract_edges
from repro.hierarchy.levels import ClusteredHierarchy, LevelTopology

__all__ = ["HierarchyMaintainer"]


class HierarchyMaintainer:
    """Maintains an L-level clustered hierarchy across topology updates.

    Parameters
    ----------
    max_levels:
        Hierarchy depth cap (None = recurse until no shrink).
    level_mode:
        "radio" (geometric level links; requires positions and r0 on
        every update) or "contraction".
    r0:
        Level-0 transmission radius for radio mode.
    """

    def __init__(self, max_levels: int | None = None,
                 level_mode: str = "radio", r0: float | None = None):
        if level_mode not in ("radio", "contraction"):
            raise ValueError(f"unknown level_mode {level_mode!r}")
        if level_mode == "radio" and r0 is None:
            raise ValueError("radio level_mode requires r0")
        self.max_levels = max_levels
        self.level_mode = level_mode
        self.r0 = r0
        self._maintainers: list[AlcaMaintainer] = []

    def _maintainer(self, k: int) -> AlcaMaintainer:
        while len(self._maintainers) <= k:
            self._maintainers.append(AlcaMaintainer())
        return self._maintainers[k]

    def update(self, node_ids, edges, positions=None) -> ClusteredHierarchy:
        """Advance all levels to the new physical topology."""
        cur_ids = np.unique(np.asarray(list(node_ids), dtype=np.int64))
        cur_edges = canonical_edges(edges)
        if self.level_mode == "radio":
            if positions is None:
                raise ValueError("radio level_mode requires positions")
            pos = np.asarray(positions, dtype=np.float64)
            if pos.shape[0] != cur_ids.size:
                raise ValueError("positions must align with node_ids")
            base_ids = cur_ids
            n0 = cur_ids.size

        levels: list[LevelTopology] = []
        k = 0
        while True:
            at_cap = self.max_levels is not None and k >= self.max_levels
            if at_cap or cur_ids.size <= 1 or cur_edges.shape[0] == 0:
                levels.append(LevelTopology(k, cur_ids, cur_edges, election=None))
                break
            election = self._maintainer(k).update(cur_ids, cur_edges)
            heads = election.clusterheads
            if heads.size == cur_ids.size:
                levels.append(LevelTopology(k, cur_ids, cur_edges, election=None))
                break
            levels.append(LevelTopology(k, cur_ids, cur_edges, election=election))
            if self.level_mode == "radio":
                from repro.radio.unit_disk import unit_disk_edges

                head_idx = np.searchsorted(base_ids, heads)
                r_k = float(self.r0) * float(np.sqrt(n0 / heads.size))
                pair_idx = unit_disk_edges(pos[head_idx], r_k)
                cur_edges = (
                    heads[pair_idx]
                    if pair_idx.size
                    else np.empty((0, 2), dtype=np.int64)
                )
            else:
                cur_edges = contract_edges(cur_edges, cur_ids, election.member_of)
            cur_ids = heads
            k += 1
        return ClusteredHierarchy(levels)
