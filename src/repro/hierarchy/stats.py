"""Hierarchy statistics: the notation quantities of Section 1.1.

Implements estimators for

* c_k, alpha_k, d_k — exact bookkeeping from the level sizes/degrees
  (Eqs. 1-2),
* h_k — the average hop count, *in level-0 hops*, across a level-k
  cluster (Eq. 3 predicts Theta(sqrt(c_k))), estimated by BFS sampling
  inside clusters,
* h — the network-wide mean shortest-path hop count (Theta(sqrt(|V|))
  per Kleinrock-Silvester [2]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs import CompactGraph, bfs_distances
from repro.hierarchy.levels import ClusteredHierarchy

__all__ = ["LevelStats", "hierarchy_stats", "mean_hop_count", "level_hop_counts"]


@dataclass(frozen=True)
class LevelStats:
    """Per-level structural quantities."""

    k: int
    n_nodes: int  # |V_k|
    n_edges: int  # |E_k|
    alpha: float  # |V_{k-1}| / |V_k| (1.0 at k=0)
    c: float  # |V| / |V_k|
    mean_degree: float  # d_k
    h: float | None = None  # mean level-0 hops across a level-k cluster


def hierarchy_stats(h: ClusteredHierarchy) -> list[LevelStats]:
    """Exact per-level bookkeeping (no hop estimation)."""
    out = []
    n0 = h.n
    prev = n0
    for lvl in h.levels:
        out.append(
            LevelStats(
                k=lvl.k,
                n_nodes=lvl.n_nodes,
                n_edges=lvl.n_edges,
                alpha=prev / lvl.n_nodes if lvl.k > 0 else 1.0,
                c=n0 / lvl.n_nodes,
                mean_degree=lvl.mean_degree,
            )
        )
        prev = lvl.n_nodes
    return out


def mean_hop_count(
    g: CompactGraph,
    rng: np.random.Generator,
    n_sources: int = 16,
) -> float:
    """Network-wide mean shortest-path hop count by BFS sampling.

    Samples ``n_sources`` source nodes; averages hop distance to all
    reachable nodes (excluding the source itself).  Unreachable pairs are
    skipped, so on a disconnected graph this measures the intra-component
    mean.
    """
    if g.n < 2:
        return 0.0
    n_sources = min(n_sources, g.n)
    sources = rng.choice(g.node_ids, size=n_sources, replace=False)
    total = 0.0
    count = 0
    for s in sources:
        dist = bfs_distances(g, int(s))
        reached = dist > 0
        total += float(dist[reached].sum())
        count += int(reached.sum())
    return total / count if count else 0.0


def level_hop_counts(
    h: ClusteredHierarchy,
    g0: CompactGraph,
    rng: np.random.Generator,
    clusters_per_level: int = 8,
    sources_per_cluster: int = 2,
) -> dict[int, float]:
    """Estimate h_k for each level k = 1..L.

    For sampled level-k clusters, run BFS from sampled member nodes over
    the *full* level-0 graph and average the hop distance to the other
    members of the same cluster.  (The paper defines h_k as the level-0
    hop count across a level-k cluster; shortest paths may leave the
    cluster region, which matches strict hierarchical forwarding where
    packets are not confined to cluster boundaries.)
    """
    out: dict[int, float] = {}
    base_ids = h.levels[0].node_ids
    for k in range(1, h.num_levels + 1):
        anc = h.ancestry(k)
        heads = np.unique(anc)
        chosen = (
            heads
            if heads.size <= clusters_per_level
            else rng.choice(heads, size=clusters_per_level, replace=False)
        )
        total = 0.0
        count = 0
        for head in chosen:
            members = base_ids[anc == head]
            if members.size < 2:
                continue
            srcs = (
                members
                if members.size <= sources_per_cluster
                else rng.choice(members, size=sources_per_cluster, replace=False)
            )
            member_idx = np.searchsorted(base_ids, members)
            for s in srcs:
                dist = bfs_distances(g0, int(s))
                d = dist[member_idx]
                ok = d > 0
                total += float(d[ok].sum())
                count += int(ok.sum())
        out[k] = total / count if count else 0.0
    return out
