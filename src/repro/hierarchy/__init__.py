"""Clustered hierarchy substrate: recursive levels, addresses, statistics."""

from repro.hierarchy.cluster_graph import canonical_edges, contract_edges
from repro.hierarchy.delta import (
    DeltaPlane,
    HierarchyDelta,
    LazyClusters,
    compute_delta,
)
from repro.hierarchy.levels import ClusteredHierarchy, LevelTopology, build_hierarchy
from repro.hierarchy.maintain import HierarchyMaintainer
from repro.hierarchy.persistent import (
    PersistentHierarchyMaintainer,
    PersistentLevelMaintainer,
)
from repro.hierarchy.render import render_hierarchy, render_summary
from repro.hierarchy.stats import (
    LevelStats,
    hierarchy_stats,
    level_hop_counts,
    mean_hop_count,
)

__all__ = [
    "canonical_edges",
    "contract_edges",
    "DeltaPlane",
    "HierarchyDelta",
    "LazyClusters",
    "compute_delta",
    "ClusteredHierarchy",
    "LevelTopology",
    "build_hierarchy",
    "HierarchyMaintainer",
    "PersistentHierarchyMaintainer",
    "PersistentLevelMaintainer",
    "render_hierarchy",
    "render_summary",
    "LevelStats",
    "hierarchy_stats",
    "level_hop_counts",
    "mean_hop_count",
]
